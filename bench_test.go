// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact (see DESIGN.md §4 for the
// mapping). Custom metrics attach the quantity the paper plots:
// intersections/op and memberships/op for the operation-count figures,
// MB for the memory tables, accuracy/p-value metrics where relevant.
//
// Defaults are scaled to keep `go test -bench=.` under a few minutes; set
// REPRO_BENCH_FULL=1 to run the paper's namespace sizes (much slower —
// the dictionary attack alone is O(M) per sample).
package bloomsample_test

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	bloomsample "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/stats"
	"repro/internal/workload"
)

func fullScale() bool { return os.Getenv("REPRO_BENCH_FULL") == "1" }

// benchNamespaces returns the three namespace sizes standing in for the
// paper's 10⁵/10⁶/10⁷ sweep.
func benchNamespaces() (small, mid, large uint64) {
	if fullScale() {
		return 100_000, 1_000_000, 10_000_000
	}
	return 100_000, 300_000, 1_000_000
}

func benchTree(b *testing.B, acc float64, n int, M uint64, kind bloomsample.HashKind) *bloomsample.Tree {
	b.Helper()
	plan, err := bloomsample.Plan(acc, uint64(n), M, 3)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := bloomsample.NewTree(plan, kind, 42)
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func benchQuery(b *testing.B, tree *bloomsample.Tree, M uint64, n int, clustered bool) *bloomsample.Filter {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	var set []uint64
	var err error
	if clustered {
		set, err = workload.ClusteredSet(rng, M, n, workload.DefaultClusterP)
	} else {
		set, err = workload.UniformSet(rng, M, n)
	}
	if err != nil {
		b.Fatal(err)
	}
	q := tree.NewQueryFilter()
	for _, x := range set {
		q.Add(x)
	}
	return q
}

// benchSamplingOps measures BST sampling and reports the paper's Figure
// 3/4 metrics.
func benchSamplingOps(b *testing.B, clustered bool) {
	small, _, _ := benchNamespaces()
	for _, n := range []int{100, 1000, 10000} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			tree := benchTree(b, 0.9, n, small, bloomsample.Murmur3)
			q := benchQuery(b, tree, small, n, clustered)
			rng := rand.New(rand.NewSource(1))
			var ops bloomsample.Ops
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Sample(q, rng, &ops); err != nil && err != bloomsample.ErrNoSample {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ops.Intersections)/float64(b.N), "intersections/op")
			b.ReportMetric(float64(ops.Memberships)/float64(b.N), "memberships/op")
		})
	}
}

func BenchmarkFig3SamplingOpsUniform(b *testing.B)   { benchSamplingOps(b, false) }
func BenchmarkFig4SamplingOpsClustered(b *testing.B) { benchSamplingOps(b, true) }

// benchSamplingTime measures wall-clock per sample for BST vs DA
// (Figures 5 and 6 use the two larger namespaces).
func benchSamplingTime(b *testing.B, M uint64, clustered bool) {
	const n = 1000
	tree := benchTree(b, 0.9, n, M, bloomsample.Murmur3)
	q := benchQuery(b, tree, M, n, clustered)
	b.Run("BST", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := tree.Sample(q, rng, nil); err != nil && err != bloomsample.ErrNoSample {
				b.Fatal(err)
			}
		}
	})
	b.Run("DA", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		da := bloomsample.DictionaryAttack{Namespace: M}
		for i := 0; i < b.N; i++ {
			da.Sample(q, rng, nil)
		}
	})
}

func BenchmarkFig5SamplingTimeLargeM(b *testing.B) {
	_, _, large := benchNamespaces()
	benchSamplingTime(b, large, false)
}

func BenchmarkFig6SamplingTimeMidM(b *testing.B) {
	_, mid, _ := benchNamespaces()
	benchSamplingTime(b, mid, false)
}

// BenchmarkFig7HashFamilies compares sampling time across the paper's
// hash families.
func BenchmarkFig7HashFamilies(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	for _, kind := range []bloomsample.HashKind{bloomsample.Simple, bloomsample.Murmur3, bloomsample.MD5} {
		b.Run(string(kind), func(b *testing.B) {
			tree := benchTree(b, 0.9, n, small, kind)
			q := benchQuery(b, tree, small, n, false)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Sample(q, rng, nil); err != nil && err != bloomsample.ErrNoSample {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPlanAndBuild times planning + construction and reports the memory
// column of Tables 2/3.
func benchPlanAndBuild(b *testing.B, M uint64) {
	for _, acc := range []float64{0.5, 0.9} {
		b.Run("acc="+ftoa(acc), func(b *testing.B) {
			var mem uint64
			for i := 0; i < b.N; i++ {
				plan, err := bloomsample.Plan(acc, 1000, M, 3)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)
				if err != nil {
					b.Fatal(err)
				}
				mem = tree.MemoryBytes()
			}
			b.ReportMetric(float64(mem)/(1<<20), "MB")
		})
	}
}

func BenchmarkTable2PlanMidM(b *testing.B) {
	_, mid, _ := benchNamespaces()
	benchPlanAndBuild(b, mid)
}

func BenchmarkTable3PlanLargeM(b *testing.B) {
	_, _, large := benchNamespaces()
	benchPlanAndBuild(b, large)
}

// BenchmarkTable4CreationTime times BuildTree alone (Table 4's creation
// time column) across namespace sizes.
func BenchmarkTable4CreationTime(b *testing.B) {
	small, mid, large := benchNamespaces()
	for _, M := range []uint64{small, mid, large} {
		b.Run("M="+itoa(int(M)), func(b *testing.B) {
			plan, err := bloomsample.Plan(0.9, 1000, M, 3)
			if err != nil {
				b.Fatal(err)
			}
			cfg := plan.TreeConfig(bloomsample.Murmur3, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildTree(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5ChiSquared runs the uniformity pipeline (batched
// multi-sampling plus the chi-squared statistic) and reports the p-value.
func BenchmarkTable5ChiSquared(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 200
	tree := benchTree(b, 0.9, n, small, bloomsample.Murmur3)
	rng := rand.New(rand.NewSource(3))
	set, err := workload.UniformSet(rng, small, n)
	if err != nil {
		b.Fatal(err)
	}
	q := tree.NewQueryFilter()
	index := make(map[uint64]int, n)
	for i, x := range set {
		q.Add(x)
		index[x] = i
	}
	var p float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make([]int, n)
		for done := 0; done < 130*n; {
			got, err := tree.SampleN(q, 128, true, rng, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) == 0 {
				break
			}
			for _, x := range got {
				if j, ok := index[x]; ok {
					counts[j]++
				}
			}
			done += len(got)
		}
		res, err := stats.ChiSquaredUniform(counts)
		if err != nil {
			b.Fatal(err)
		}
		p = res.PValue
	}
	b.ReportMetric(p, "p-value")
}

// BenchmarkTable6MeasuredAccuracy samples and reports the measured
// accuracy metric for design accuracy 0.9.
func BenchmarkTable6MeasuredAccuracy(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	tree := benchTree(b, 0.9, n, small, bloomsample.Murmur3)
	rng := rand.New(rand.NewSource(4))
	set, err := workload.UniformSet(rng, small, n)
	if err != nil {
		b.Fatal(err)
	}
	inSet := make(map[uint64]bool, n)
	q := tree.NewQueryFilter()
	for _, x := range set {
		q.Add(x)
		inSet[x] = true
	}
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			b.Fatal(err)
		}
		if inSet[x] {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "accuracy")
}

// benchReconstruction measures one reconstruction per iteration for the
// three methods (Figures 8–12; 11/12 are the time view of the same runs).
func benchReconstruction(b *testing.B, M uint64) {
	const n = 1000
	plan, err := bloomsample.Plan(0.9, n, M, 3)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.Simple, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(b, tree, M, n, false)
	b.Run("BST", func(b *testing.B) {
		var ops bloomsample.Ops
		for i := 0; i < b.N; i++ {
			if _, err := tree.Reconstruct(q, bloomsample.PruneByEstimate, &ops); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops.Memberships)/float64(b.N), "memberships/op")
		b.ReportMetric(float64(ops.Intersections)/float64(b.N), "intersections/op")
	})
	b.Run("HI", func(b *testing.B) {
		hi := bloomsample.HashInvert{Namespace: M}
		var ops bloomsample.Ops
		for i := 0; i < b.N; i++ {
			if _, err := hi.Reconstruct(q, &ops); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ops.Memberships)/float64(b.N), "memberships/op")
	})
	b.Run("DA", func(b *testing.B) {
		da := bloomsample.DictionaryAttack{Namespace: M}
		var ops bloomsample.Ops
		for i := 0; i < b.N; i++ {
			da.Reconstruct(q, &ops)
		}
		b.ReportMetric(float64(ops.Memberships)/float64(b.N), "memberships/op")
	})
}

func BenchmarkFig8ReconstructionSmallM(b *testing.B) {
	small, _, _ := benchNamespaces()
	benchReconstruction(b, small)
}

func BenchmarkFig9ReconstructionMidM(b *testing.B) {
	_, mid, _ := benchNamespaces()
	benchReconstruction(b, mid)
}

func BenchmarkFig10ReconstructionLargeM(b *testing.B) {
	_, _, large := benchNamespaces()
	benchReconstruction(b, large)
}

// Figures 11/12 report the same runs as wall-clock time; the ns/op of
// these benchmarks is that series at a second query-set size.
func benchReconstructionTime(b *testing.B, M uint64) {
	const n = 100
	plan, err := bloomsample.Plan(0.9, n, M, 3)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.Simple, 42)
	if err != nil {
		b.Fatal(err)
	}
	q := benchQuery(b, tree, M, n, false)
	hi := bloomsample.HashInvert{Namespace: M}
	da := bloomsample.DictionaryAttack{Namespace: M}
	b.Run("BST", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tree.Reconstruct(q, bloomsample.PruneByEstimate, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hi.Reconstruct(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			da.Reconstruct(q, nil)
		}
	})
}

func BenchmarkFig11ReconstructionTimeMidM(b *testing.B) {
	_, mid, _ := benchNamespaces()
	benchReconstructionTime(b, mid)
}

func BenchmarkFig12ReconstructionTimeLargeM(b *testing.B) {
	_, _, large := benchNamespaces()
	benchReconstructionTime(b, large)
}

// benchCrawl builds the §8 synthetic crawl and pruned tree at one
// namespace fraction.
func benchCrawl(b *testing.B, fraction float64) (*bloomsample.Tree, *workload.Crawl) {
	b.Helper()
	scale := 1000
	if fullScale() {
		scale = 100
	}
	M := workload.TwitterNamespace / uint64(scale)
	population := workload.TwitterPopulation / scale
	rng := rand.New(rand.NewSource(9))
	idx, err := workload.SelectLeavesUniform(rng, workload.NamespaceLeaves, fraction)
	if err != nil {
		b.Fatal(err)
	}
	ns, err := workload.PopulateNamespace(rng, M, workload.NamespaceLeaves, idx, population)
	if err != nil {
		b.Fatal(err)
	}
	crawl, err := workload.SynthesizeCrawl(rng, ns, workload.CrawlConfig{
		M: M, Population: population, Hashtags: 100, MinTagSize: population / 7200 * 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := bloomsample.Plan(0.8, uint64(population/100), M, 3)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := bloomsample.NewPrunedTree(plan, bloomsample.Murmur3, 5, ns.IDs)
	if err != nil {
		b.Fatal(err)
	}
	return tree, crawl
}

// BenchmarkFig13LowOccupancySampling measures per-sample time on the
// pruned tree at two namespace fractions.
func BenchmarkFig13LowOccupancySampling(b *testing.B) {
	for _, fraction := range []float64{0.1, 0.5} {
		b.Run("fraction="+ftoa(fraction), func(b *testing.B) {
			tree, crawl := benchCrawl(b, fraction)
			rng := rand.New(rand.NewSource(2))
			filters := make([]*bloomsample.Filter, len(crawl.Tags))
			for i, tag := range crawl.Tags {
				f := tree.NewQueryFilter()
				for _, u := range tag {
					f.Add(u)
				}
				filters[i] = f
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := filters[i%len(filters)]
				if _, err := tree.Sample(q, rng, nil); err != nil && err != bloomsample.ErrNoSample {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14LowOccupancyMemory reports pruned-tree memory at two
// fractions (the build is the timed operation).
func BenchmarkFig14LowOccupancyMemory(b *testing.B) {
	for _, fraction := range []float64{0.1, 0.5} {
		b.Run("fraction="+ftoa(fraction), func(b *testing.B) {
			var mem uint64
			for i := 0; i < b.N; i++ {
				tree, _ := benchCrawl(b, fraction)
				mem = tree.MemoryBytes()
			}
			b.ReportMetric(float64(mem)/(1<<20), "MB")
		})
	}
}

// BenchmarkFig15LowOccupancyAccuracy reports measured sampling accuracy on
// the pruned tree (designed 0.8; §8 expects higher at low occupancy).
func BenchmarkFig15LowOccupancyAccuracy(b *testing.B) {
	tree, crawl := benchCrawl(b, 0.2)
	rng := rand.New(rand.NewSource(3))
	hits, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := crawl.Tags[i%len(crawl.Tags)]
		q := tree.NewQueryFilter()
		for _, u := range tag {
			q.Add(u)
		}
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			continue
		}
		total++
		if sortedContains(tag, x) {
			hits++
		}
	}
	if total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "accuracy")
	}
}

// BenchmarkAblationThreshold sweeps the §5.6 empty-intersection threshold.
func BenchmarkAblationThreshold(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	plan, err := bloomsample.Plan(0.9, n, small, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []float64{0.1, 0.5, 2} {
		b.Run("thr="+ftoa(thr), func(b *testing.B) {
			cfg := plan.TreeConfig(bloomsample.Murmur3, 42)
			cfg.EmptyThreshold = thr
			tree, err := bloomsample.NewTreeFromConfig(cfg)
			if err != nil {
				b.Fatal(err)
			}
			q := benchQuery(b, tree, small, n, false)
			rng := rand.New(rand.NewSource(1))
			var ops bloomsample.Ops
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Sample(q, rng, &ops); err != nil && err != bloomsample.ErrNoSample {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ops.Memberships)/float64(b.N), "memberships/op")
		})
	}
}

// BenchmarkAblationMultiSample compares one 100-path pass against 100
// repeated single samples.
func BenchmarkAblationMultiSample(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	tree := benchTree(b, 0.9, n, small, bloomsample.Murmur3)
	q := benchQuery(b, tree, small, n, false)
	b.Run("single-pass-100", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := tree.SampleN(q, 100, true, rng, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("repeated-100", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			for j := 0; j < 100; j++ {
				if _, err := tree.Sample(q, rng, nil); err != nil && err != bloomsample.ErrNoSample {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationBuild compares the leaf-up union construction against
// naive per-level insertion (the hashing work only).
func BenchmarkAblationBuild(b *testing.B) {
	small, _, _ := benchNamespaces()
	plan, err := bloomsample.Plan(0.9, 1000, small, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := plan.TreeConfig(bloomsample.Murmur3, 42)
	b.Run("leaf-up-unions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildTree(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-level-insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naivePerLevelInsert(cfg)
		}
	})
}

func naivePerLevelInsert(cfg core.Config) {
	fam := hashfam.MustNew(cfg.HashKind, cfg.Bits, cfg.K, cfg.Seed)
	for level := 0; level <= cfg.Depth; level++ {
		nodes := uint64(1) << level
		per := (cfg.Namespace + nodes - 1) / nodes
		f := make([]*bloomFilterShim, nodes)
		for i := range f {
			f[i] = newShim(fam)
		}
		for x := uint64(0); x < cfg.Namespace; x++ {
			f[x/per].add(x)
		}
	}
}

// bloomFilterShim avoids importing internal/bloom twice with different
// names; it reproduces the insert cost (hashing + bit sets).
type bloomFilterShim struct {
	fam  hashfam.Family
	bits []uint64
	buf  []uint64
}

func newShim(fam hashfam.Family) *bloomFilterShim {
	return &bloomFilterShim{fam: fam, bits: make([]uint64, (fam.M()+63)/64), buf: make([]uint64, 0, fam.K())}
}

func (s *bloomFilterShim) add(x uint64) {
	s.buf = s.fam.Positions(x, s.buf[:0])
	for _, p := range s.buf {
		s.bits[p/64] |= 1 << (p % 64)
	}
}

// BenchmarkAblationHashInvert sweeps filter density for HashInvert
// reconstruction (sparse set-bit vs dense unset-bit variants).
func BenchmarkAblationHashInvert(b *testing.B) {
	small, _, _ := benchNamespaces()
	for _, n := range []int{100, 10000} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			plan, err := bloomsample.Plan(0.8, uint64(n), small, 3)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := bloomsample.NewTree(plan, bloomsample.Simple, 42)
			if err != nil {
				b.Fatal(err)
			}
			q := benchQuery(b, tree, small, n, false)
			hi := baseline.HashInvert{Namespace: small}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hi.Reconstruct(q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(q.FillRatio(), "fill")
		})
	}
}

func sortedContains(xs []uint64, x uint64) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == x
}

func itoa(n int) string { return strconv.Itoa(n) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'f', 1, 64) }

// BenchmarkAblationParallelBuild measures BuildTreeParallel scaling.
func BenchmarkAblationParallelBuild(b *testing.B) {
	_, _, large := benchNamespaces()
	plan, err := bloomsample.Plan(0.9, 1000, large, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := plan.TreeConfig(bloomsample.Murmur3, 42)
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildTreeParallel(cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDynamicInsert measures the §5.2 per-insert cost on a
// pruned tree (proportional to tree height).
func BenchmarkAblationDynamicInsert(b *testing.B) {
	_, _, large := benchNamespaces()
	plan, err := bloomsample.Plan(0.9, 1000, large, 3)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := bloomsample.NewPrunedTree(plan, bloomsample.Murmur3, 42, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(rng.Uint64() % large); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tree.Nodes()), "final-nodes")
}

// BenchmarkTreeSerialization measures tree save/load round trips.
func BenchmarkTreeSerialization(b *testing.B) {
	small, _, _ := benchNamespaces()
	tree := benchTree(b, 0.9, 1000, small, bloomsample.Murmur3)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if _, err := tree.WriteTo(&w); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(data))/(1<<20), "MB")
	})
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadTree(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUniformSampler measures the rejection-corrected sampler
// against the raw BSTSample (the uniformity/throughput tradeoff).
func BenchmarkUniformSampler(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	tree := benchTree(b, 0.9, n, small, bloomsample.Murmur3)
	q := benchQuery(b, tree, small, n, false)
	b.Run("raw", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := tree.Sample(q, rng, nil); err != nil && err != bloomsample.ErrNoSample {
				b.Fatal(err)
			}
		}
	})
	b.Run("corrected", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		s, err := tree.NewUniformSampler(q)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := s.Sample(rng, nil); err != nil {
				b.Fatal(err)
			}
		}
		st := s.Stats()
		b.ReportMetric(float64(st.Attempts)/float64(st.Accepted), "attempts/sample")
	})
}

// BenchmarkSetDBParallelSample quantifies the lock-free read path: every
// Sample on the old exclusive-lock DB serialized all callers, so RunParallel
// throughput could not exceed single-goroutine throughput. With immutable
// filter/tree reads and sharded read locks, samples/sec scales with
// GOMAXPROCS. Compare ns/op at -cpu=1 vs -cpu=8 (or set the "goroutines"
// metric in the concurrency experiment: `bstbench -exp concurrency`).
func BenchmarkSetDBParallelSample(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	opts, err := bloomsample.PlanSetDB(0.9, n, small, 3)
	if err != nil {
		b.Fatal(err)
	}
	db, err := bloomsample.OpenSetDB(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	set, err := workload.UniformSet(rng, small, n)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Add("bench", set...); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if _, err := db.Sample("bench", rng, nil); err != nil && err != bloomsample.ErrNoSample {
				b.Error(err) // Fatal must not be called off the benchmark goroutine
				return
			}
		}
	})
}

// BenchmarkSetDBSampleMany measures the batch API end to end (including
// worker startup) at several worker counts.
func BenchmarkSetDBSampleMany(b *testing.B) {
	small, _, _ := benchNamespaces()
	const n = 1000
	opts, err := bloomsample.PlanSetDB(0.9, n, small, 3)
	if err != nil {
		b.Fatal(err)
	}
	db, err := bloomsample.OpenSetDB(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	set, err := workload.UniformSet(rng, small, n)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Add("bench", set...); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.SampleManyWorkers("bench", 256, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
