// Command bstcli is an interactive shell around the bloomsample library:
// build a BloomSampleTree, store sets in Bloom filters, sample from them
// and reconstruct them. Useful for exploring the accuracy/runtime
// behaviour at arbitrary parameters.
//
// Usage:
//
//	bstcli -M 1000000 -acc 0.9 -n 1000
//
// Commands (type 'help' inside the shell):
//
//	add <id> <x1> <x2> ...   add elements to filter <id> (created on demand)
//	addrange <id> <lo> <hi>  add [lo,hi) to filter <id>
//	sample <id> [r]          draw r samples (default 1)
//	reconstruct <id> [exact] reconstruct; 'exact' uses AND-bit pruning
//	estimate <id> <id2>      estimate the intersection size of two filters
//	info [id]                tree parameters, or filter stats
//	quit
//
// Subcommands (non-interactive):
//
//	bstcli stats [-addr http://127.0.0.1:8080]
//	    fetch /v1/stats from a running bstserved and print it as a
//	    compact table: uptime, database, wire and durability state,
//	    plus per-endpoint latency percentiles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	bloomsample "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	var (
		M    = flag.Uint64("M", 1_000_000, "namespace size")
		acc  = flag.Float64("acc", 0.9, "desired sampling accuracy")
		n    = flag.Uint64("n", 1000, "design query-set size")
		k    = flag.Int("k", 3, "hash functions")
		seed = flag.Uint64("seed", 42, "hash seed")
		hash = flag.String("hash", "murmur3", "hash family")
	)
	flag.Parse()

	plan, err := bloomsample.Plan(*acc, *n, *M, *k)
	if err != nil {
		fatalf("plan: %v", err)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.HashKind(*hash), *seed)
	if err != nil {
		fatalf("build: %v", err)
	}
	fmt.Printf("BloomSampleTree ready: M=%d m=%d bits k=%d depth=%d leaf=%d memory=%.2f MB\n",
		*M, plan.Bits, *k, plan.Depth, plan.LeafRange,
		float64(tree.MemoryBytes())/(1<<20))

	filters := map[string]*bloomsample.Filter{}
	get := func(id string) *bloomsample.Filter {
		if f, ok := filters[id]; ok {
			return f
		}
		f := tree.NewQueryFilter()
		filters[id] = f
		return f
	}
	rng := rand.New(rand.NewSource(int64(*seed)))

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch cmd := fields[0]; cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("commands: add addrange sample reconstruct estimate info quit")
		case "add":
			if len(fields) < 3 {
				fmt.Println("usage: add <id> <x>...")
				break
			}
			f := get(fields[1])
			for _, s := range fields[2:] {
				x, err := strconv.ParseUint(s, 10, 64)
				if err != nil || x >= *M {
					fmt.Printf("bad element %q\n", s)
					continue
				}
				f.Add(x)
			}
			fmt.Printf("filter %s: %d insertions, fill %.4f\n", fields[1], f.Insertions(), f.FillRatio())
		case "addrange":
			if len(fields) != 4 {
				fmt.Println("usage: addrange <id> <lo> <hi>")
				break
			}
			lo, err1 := strconv.ParseUint(fields[2], 10, 64)
			hi, err2 := strconv.ParseUint(fields[3], 10, 64)
			if err1 != nil || err2 != nil || lo >= hi || hi > *M {
				fmt.Println("bad range")
				break
			}
			f := get(fields[1])
			for x := lo; x < hi; x++ {
				f.Add(x)
			}
			fmt.Printf("filter %s: %d insertions\n", fields[1], f.Insertions())
		case "sample":
			if len(fields) < 2 {
				fmt.Println("usage: sample <id> [r]")
				break
			}
			f, ok := filters[fields[1]]
			if !ok {
				fmt.Println("no such filter")
				break
			}
			r := 1
			if len(fields) > 2 {
				r, _ = strconv.Atoi(fields[2])
			}
			var ops bloomsample.Ops
			got, err := tree.SampleN(f, r, true, rng, &ops)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("samples: %v\nops: %s\n", got, ops.String())
		case "reconstruct":
			if len(fields) < 2 {
				fmt.Println("usage: reconstruct <id> [exact]")
				break
			}
			f, ok := filters[fields[1]]
			if !ok {
				fmt.Println("no such filter")
				break
			}
			rule := bloomsample.PruneByEstimate
			if len(fields) > 2 && fields[2] == "exact" {
				rule = bloomsample.PruneByAndBits
			}
			var ops bloomsample.Ops
			got, err := tree.Reconstruct(f, rule, &ops)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if len(got) > 50 {
				fmt.Printf("%d elements (first 50): %v...\n", len(got), got[:50])
			} else {
				fmt.Printf("%d elements: %v\n", len(got), got)
			}
			fmt.Println("ops:", ops.String())
		case "estimate":
			if len(fields) != 3 {
				fmt.Println("usage: estimate <id> <id2>")
				break
			}
			a, ok1 := filters[fields[1]]
			b, ok2 := filters[fields[2]]
			if !ok1 || !ok2 {
				fmt.Println("no such filter")
				break
			}
			fmt.Printf("estimated |A∩B| = %.2f\n", bloomsample.EstimateIntersection(a, b))
		case "info":
			if len(fields) > 1 {
				f, ok := filters[fields[1]]
				if !ok {
					fmt.Println("no such filter")
					break
				}
				fmt.Printf("insertions=%d set_bits=%d fill=%.4f est_cardinality=%.1f\n",
					f.Insertions(), f.SetBits(), f.FillRatio(), f.EstimateCardinality())
			} else {
				fmt.Printf("M=%d depth=%d leaf=%d nodes=%d memory=%.2fMB filters=%d\n",
					tree.Namespace(), tree.Depth(), tree.LeafRange(), tree.Nodes(),
					float64(tree.MemoryBytes())/(1<<20), len(filters))
			}
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
		fmt.Print("> ")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bstcli: "+format+"\n", args...)
	os.Exit(1)
}
