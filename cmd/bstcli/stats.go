package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/server"
)

// runStats implements `bstcli stats`: fetch GET /v1/stats from a
// running bstserved and render the document as aligned key/value
// sections plus a per-endpoint latency table — the human view of the
// same numbers /metrics exports for machines.
func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "bstserved base URL")
	_ = fs.Parse(args)

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(*addr + "/v1/stats")
	if err != nil {
		fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("stats: %s returned status %d", *addr, resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatalf("stats: decoding response: %v", err)
	}

	kv := func(rows ...[2]string) {
		width := 0
		for _, r := range rows {
			if len(r[0]) > width {
				width = len(r[0])
			}
		}
		for _, r := range rows {
			fmt.Printf("  %-*s  %s\n", width, r[0], r[1])
		}
	}
	num := func(v any) string { return fmt.Sprintf("%v", v) }

	fmt.Printf("server %s\n", *addr)
	kv(
		[2]string{"uptime", (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second).String()},
		[2]string{"namespace", num(st.Options.Namespace)},
		[2]string{"filter bits", num(st.Options.Bits)},
		[2]string{"hash", fmt.Sprintf("%s k=%d", st.Options.HashKind, st.Options.K)},
		[2]string{"tree depth", fmt.Sprintf("%d (pruned=%v)", st.Options.TreeDepth, st.Options.Pruned)},
	)

	fmt.Println("\ndatabase")
	kv(
		[2]string{"sets", fmt.Sprintf("%d (%d dynamic)", st.DB.Sets, st.DB.DynamicSets)},
		[2]string{"tree", fmt.Sprintf("%d nodes, %.1f MB", st.DB.TreeNodes, float64(st.DB.TreeMemoryBytes)/(1<<20))},
		[2]string{"writes", fmt.Sprintf("%d (%d publishes, %.0f B copied/write)", st.DB.StateWrites, st.DB.StatePublishes, st.DB.MeanBytesCopiedPerWrite)},
		[2]string{"generations", num(st.DB.Generations)},
		[2]string{"growth epoch", num(st.DB.GrowthEpoch)},
		[2]string{"backend", fmt.Sprintf("%s: %d entries, %.1f bits/entry", st.DB.Backend.Kind, st.DB.Backend.Entries, st.DB.Backend.BitsPerEntry)},
	)

	fmt.Println("\nwire")
	kv(
		[2]string{"connections", fmt.Sprintf("%d active / %d total", st.Wire.ConnsActive, st.Wire.ConnsTotal)},
		[2]string{"frames", fmt.Sprintf("%d in / %d out", st.Wire.FramesIn, st.Wire.FramesOut)},
		[2]string{"streams", fmt.Sprintf("%d active, %d credit stalls", st.Wire.StreamsActive, st.Wire.CreditStalls)},
		[2]string{"admission", fmt.Sprintf("%d/%d in flight, %d/%d writes, %d shed", st.Wire.InFlight, st.Wire.MaxInFlight, st.Wire.WritesInFlight, st.Wire.MaxWrites, st.Wire.Shed)},
		[2]string{"protocol errors", num(st.Wire.ProtocolErrors)},
	)

	if d := st.Durability; d != nil {
		fmt.Println("\ndurability")
		age := "never"
		if d.LastSnapshotUnix > 0 {
			age = time.Since(time.Unix(d.LastSnapshotUnix, 0)).Round(time.Second).String() + " ago"
		}
		kv(
			[2]string{"fsync policy", d.FsyncPolicy},
			[2]string{"log", fmt.Sprintf("%d segments, %.1f MB, seq %d", d.Segments, float64(d.WALBytes)/(1<<20), d.Seq)},
			[2]string{"appended", fmt.Sprintf("%d B, %d fsyncs (%d failed), %d rotations", d.AppendedBytes, d.Fsyncs, d.FsyncErrors, d.Rotations)},
			[2]string{"snapshots", fmt.Sprintf("%d (%d failed), last %s, covers seq %d", d.Snapshots, d.SnapshotErrors, age, d.LastSnapshotSeq)},
			[2]string{"since snapshot", fmt.Sprintf("%d records, %d B", d.RecordsSinceSnapshot, d.BytesSinceSnapshot)},
		)
	}

	if len(st.Endpoints) > 0 {
		fmt.Println("\nendpoints")
		names := make([]string, 0, len(st.Endpoints))
		width := len("endpoint")
		for name := range st.Endpoints {
			names = append(names, name)
			if len(name) > width {
				width = len(name)
			}
		}
		sort.Strings(names)
		fmt.Printf("  %-*s  %9s  %7s  %6s  %9s  %9s  %9s  %8s\n",
			width, "endpoint", "requests", "errors", "shed", "avg_us", "p50_us", "p99_us", "qps")
		for _, name := range names {
			e := st.Endpoints[name]
			fmt.Printf("  %-*s  %9d  %7d  %6d  %9.1f  %9.1f  %9.1f  %8.1f\n",
				width, name, e.Requests, e.Errors, e.Shed, e.AvgLatencyUS, e.P50LatencyUS, e.P99LatencyUS, e.QPS)
		}
	}

	if len(st.Samplers) > 0 {
		fmt.Println("\nsamplers")
		names := make([]string, 0, len(st.Samplers))
		for name := range st.Samplers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := st.Samplers[name]
			acc := 0.0
			if s.Attempts > 0 {
				acc = float64(s.Accepted) / float64(s.Attempts)
			}
			fmt.Printf("  %s: %d attempts, %.1f%% accepted, %d clamped, %d retargets\n",
				name, s.Attempts, 100*acc, s.Clamped, s.Retargets)
		}
	}
}
