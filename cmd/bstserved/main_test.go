package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/setdb"
	"repro/internal/wire"
)

// TestDrainBoundedWithStreamsMidFlight is the shutdown regression test:
// with an idle HTTP keep-alive connection open, an HTTP NDJSON stream
// and a binary stream both mid-flight, drain() must return within the
// deadline (force-closing the streams) instead of hanging until the
// slow clients go away — the bug this fixes left the process waiting on
// idle keep-alives and unbounded streams after SIGTERM.
func TestDrainBoundedWithStreamsMidFlight(t *testing.T) {
	opts, err := setdb.PlanOptions(0.9, 256, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pruned = true
	db, err := setdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 256)
	for i := range ids {
		ids[i] = uint64(i * 17 % 100_000)
	}
	if err := db.Add("demo", ids...); err != nil {
		t.Fatal(err)
	}
	api := server.New(db, server.Config{StreamChunk: 8})

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: api}
	go func() { _ = srv.Serve(httpLn) }()
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = api.ServeBinary(binLn) }()

	// 1. An idle HTTP keep-alive connection: complete one request, keep
	// the connection open and silent.
	idle, err := net.Dial("tcp", httpLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	fmt.Fprintf(idle, "GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n")
	idleR := bufio.NewReader(idle)
	if resp, err := http.ReadResponse(idleR, nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// 2. An HTTP NDJSON stream mid-flight: request a large streamed batch
	// and then stop reading, so the handler blocks on the window.
	slow, err := net.Dial("tcp", httpLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	body := `{"key":"demo","n":1000000,"stream":true}`
	fmt.Fprintf(slow, "POST /v1/sample HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)

	// 3. A binary stream parked on credit.
	bin, err := net.Dial("tcp", binLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	req := wire.SampleReq{Key: "demo", N: 100_000, Credit: 0}.Encode(nil, true)
	if err := wire.WriteFrame(bin, wire.OpSampleStream, 0, 1, req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let all three connections settle in

	start := time.Now()
	done := make(chan struct{})
	go func() {
		drain(obs.NopLogger(), srv, api, true, 300*time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain hung past its deadline with streams mid-flight")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v, want ≲300ms + teardown slack", elapsed)
	}

	// Every connection must now be dead: reads on all three fail fast
	// rather than timing out.
	for name, conn := range map[string]net.Conn{"idle-http": idle, "stream-http": slow, "binary": bin} {
		_ = conn.SetReadDeadline(time.Now().Add(1 * time.Second))
		buf := make([]byte, 4096)
		dead := false
		for i := 0; i < 1000; i++ {
			if _, err := conn.Read(buf); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break
				}
				dead = true
				break
			}
		}
		if !dead {
			t.Errorf("%s connection still alive after bounded drain", name)
		}
	}
}
