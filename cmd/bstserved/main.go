// Command bstserved serves a setdb database over HTTP/JSON — the
// network layer that lets many remote clients hit the lock-free sampling
// and copy-on-write write paths at once.
//
// Usage:
//
//	bstserved                               # empty in-memory db, defaults
//	bstserved -addr :9000 -demo 5000        # preload a "demo" set to curl against
//	bstserved -db sets.db                   # serve a db built by an ingest job
//	bstserved -db sets.db -ids occupied.txt # pruned db + its occupied ids
//
// Endpoints: POST /v1/sample, /v1/reconstruct, /v1/intersection, /v1/add,
// /v1/remove; GET /v1/stats. See the README's "Serving over HTTP" section
// for request/response schemas and example curl calls.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get -shutdown-timeout to finish before the listener is torn down.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/setdb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dbPath    = flag.String("db", "", "setdb file to serve (empty: start a fresh in-memory database)")
		idsPath   = flag.String("ids", "", "occupied-ids file (one decimal id per line) for loading a pruned database")
		noSpace   = flag.Uint64("namespace", 1_000_000, "namespace size for a fresh database")
		setSize   = flag.Uint64("setsize", 1000, "design set size for a fresh database")
		accuracy  = flag.Float64("accuracy", 0.9, "design sampling accuracy for a fresh database")
		k         = flag.Int("k", 3, "hash functions for a fresh database")
		pruned    = flag.Bool("pruned", true, "use a pruned tree for a fresh database (grows on demand)")
		demo      = flag.Int("demo", 0, "preload a plain set 'demo' with this many random ids (0: none)")
		maxBatch  = flag.Int("max-batch", server.DefaultMaxBatch, "largest buffered sample n / add-remove id batch / reconstruction accepted (0: default)")
		maxSets   = flag.Int("max-batch-sets", server.DefaultMaxBatchSets, "largest number of sets in one batch /v1/add request (0: default)")
		maxStream = flag.Int("max-stream-batch", server.DefaultMaxStreamBatch, "largest streaming (NDJSON) sample n accepted (0: default)")
		maxBody   = flag.Int64("max-body", server.DefaultMaxBodyBytes, "largest request body in bytes (0: default)")
		shutdown  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	db, err := openDB(*dbPath, *idsPath, *noSpace, *setSize, *accuracy, *k, *pruned)
	if err != nil {
		log.Fatalf("bstserved: %v", err)
	}
	if *demo > 0 {
		rng := rand.New(rand.NewSource(1))
		ids := make([]uint64, *demo)
		for i := range ids {
			ids[i] = rng.Uint64() % db.Options().Namespace
		}
		if err := db.Add("demo", ids...); err != nil {
			log.Fatalf("bstserved: preload demo set: %v", err)
		}
		log.Printf("preloaded plain set %q with %d ids", "demo", *demo)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(db, server.Config{MaxBatch: *maxBatch, MaxBatchSets: *maxSets, MaxStreamBatch: *maxStream, MaxBodyBytes: *maxBody}),
		// ReadTimeout bounds a trickled request body the way the
		// handler's per-chunk write deadlines bound a slow reader; no
		// WriteTimeout, which would kill legitimate long NDJSON streams.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d sets on %s", db.Len(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("bstserved: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining for up to %v", *shutdown)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdown)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("bstserved: shutdown: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("bstserved: %v", err)
		}
		log.Print("bye")
	}
}

// openDB loads the database file (plus occupied ids for pruned trees) or
// creates a fresh one from the planning flags.
func openDB(dbPath, idsPath string, namespace, setSize uint64, accuracy float64, k int, pruned bool) (*setdb.DB, error) {
	if dbPath == "" {
		opts, err := setdb.PlanOptions(accuracy, setSize, namespace, k)
		if err != nil {
			return nil, err
		}
		opts.Pruned = pruned
		return setdb.Open(opts)
	}
	var occupied []uint64
	if idsPath != "" {
		var err error
		occupied, err = readIDs(idsPath)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", idsPath, err)
		}
	}
	return setdb.Load(dbPath, occupied)
}

// readIDs parses one decimal id per line, skipping blanks.
func readIDs(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		ids = append(ids, id)
	}
	return ids, sc.Err()
}
