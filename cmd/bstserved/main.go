// Command bstserved serves a setdb database over HTTP/JSON — the
// network layer that lets many remote clients hit the lock-free sampling
// and copy-on-write write paths at once.
//
// Usage:
//
//	bstserved                               # empty in-memory db, defaults
//	bstserved -addr :9000 -demo 5000        # preload a "demo" set to curl against
//	bstserved -db sets.db                   # serve a db built by an ingest job
//	bstserved -db sets.db -ids occupied.txt # pruned db + its occupied ids
//
// Endpoints: POST /v1/sample, /v1/reconstruct, /v1/intersection, /v1/add,
// /v1/remove; GET /v1/stats; GET/POST /v1/snapshot and POST /v1/restore
// for backup/replication. See the README's "Serving over HTTP" section
// for request/response schemas and example curl calls.
//
// With -data-dir set, every mutation is written ahead to a checksummed,
// segmented log and acknowledged per the -fsync policy; the database
// survives kill -9 by replaying the newest snapshot plus the WAL tail
// at boot. See the README's "Durability and recovery" section.
//
// With -bin-addr set, the same database is additionally served on a
// second listener speaking the compact binary protocol (internal/wire):
// length-prefixed varint frames, pipelining, credit-based streaming and
// BUSY-shedding admission control. See the README's "Binary wire
// protocol" section.
//
// With -admin-addr set, a third listener serves the operational
// surface: /metrics (Prometheus text exposition), /healthz, /readyz and
// /debug/pprof — kept off the data-plane port on purpose. Logs are
// structured (-log-level, -log-format); requests slower than
// -slow-request are logged at warn with a per-stage breakdown.
//
// The process shuts down gracefully on SIGINT/SIGTERM: both listeners
// stop accepting, idle keep-alive connections are closed immediately,
// and in-flight requests (streams included) get -shutdown-timeout to
// finish before the remaining connections are force-closed. The drain is
// hard-bounded: a client holding a stream open cannot stall the exit
// past the deadline. /readyz flips to 503 the moment the signal lands,
// before the drain starts, so load balancers stop routing new work.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/setdb"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP/JSON listen address")
		binAddr   = flag.String("bin-addr", "", "binary-protocol listen address (empty: disabled)")
		dbPath    = flag.String("db", "", "setdb file to serve (empty: start a fresh in-memory database)")
		idsPath   = flag.String("ids", "", "occupied-ids file (one decimal id per line) for loading a pruned database")
		noSpace   = flag.Uint64("namespace", 1_000_000, "namespace size for a fresh database")
		setSize   = flag.Uint64("setsize", 1000, "design set size for a fresh database")
		accuracy  = flag.Float64("accuracy", 0.9, "design sampling accuracy for a fresh database")
		k         = flag.Int("k", 3, "hash functions for a fresh database")
		pruned    = flag.Bool("pruned", true, "use a pruned tree for a fresh database (grows on demand)")
		backend   = flag.String("backend", "", "dynamic-set membership backend for a fresh database: counting (default) or cuckoo")
		demo      = flag.Int("demo", 0, "preload a plain set 'demo' with this many random ids (0: none)")
		maxBatch  = flag.Int("max-batch", server.DefaultMaxBatch, "largest buffered sample n / add-remove id batch / reconstruction accepted (0: default)")
		maxSets   = flag.Int("max-batch-sets", server.DefaultMaxBatchSets, "largest number of sets in one batch /v1/add request (0: default)")
		maxStream = flag.Int("max-stream-batch", server.DefaultMaxStreamBatch, "largest streaming (NDJSON) sample n accepted (0: default)")
		maxBody   = flag.Int64("max-body", server.DefaultMaxBodyBytes, "largest request body in bytes (0: default)")
		inflight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "global in-flight request budget across both listeners; beyond it requests are shed (0: default)")
		maxWrites = flag.Int("max-writes", server.DefaultMaxWrites, "in-flight budget for write requests (add/remove) within the global budget (0: default)")
		connWin   = flag.Int("conn-window", server.DefaultConnWindow, "per-connection in-flight window on the binary listener (0: default)")
		shutdown  = flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		dataDir   = flag.String("data-dir", "", "durability directory (WAL + snapshots); writes are logged before they are acknowledged and the database survives restarts (exclusive with -db)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, never, or a duration (e.g. 100ms) for interval syncing")
		snapEvery = flag.Duration("snapshot-interval", 0, "background snapshot period with -data-dir (0: snapshot only via POST /v1/snapshot)")
		addrFile  = flag.String("addr-file", "", "write the bound listener addresses to this file once serving (http=..., bin=... and admin=... lines); for test harnesses using port 0")
		adminAddr = flag.String("admin-addr", "", "admin listen address serving /metrics, /healthz, /readyz and /debug/pprof (empty: disabled)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		slowReq   = flag.Duration("slow-request", time.Second, "log requests slower than this at warn with per-stage timings (0: disabled)")
		noTrace   = flag.Bool("no-trace", false, "disable request tracing (request IDs, per-stage timings)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bstserved: %v\n", err)
		os.Exit(1)
	}
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	var db *setdb.DB
	var store *wal.Store
	if *dataDir != "" {
		if *dbPath != "" {
			fatalf("-data-dir and -db are exclusive (restore a file into a data dir via POST /v1/restore)")
		}
		policy, interval, err := parseFsync(*fsync)
		if err != nil {
			fatalf("%v", err)
		}
		store, err = wal.Open(*dataDir, func() (*setdb.DB, error) {
			return openDB("", "", *noSpace, *setSize, *accuracy, *k, *pruned, *backend)
		}, wal.Options{
			Fsync:            policy,
			FsyncInterval:    interval,
			SnapshotInterval: *snapEvery,
			Logger:           logger,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer store.Close()
		db = store.DB()
		ws := store.Stats()
		logger.Info("durability open", "dir", *dataDir, "fsync", ws.FsyncPolicy,
			"replayed", ws.ReplayedAtBoot, "skipped", ws.SkippedAtBoot,
			"dropped_tail_bytes", ws.DroppedTailBytes)
	} else {
		var err error
		db, err = openDB(*dbPath, *idsPath, *noSpace, *setSize, *accuracy, *k, *pruned, *backend)
		if err != nil {
			fatalf("%v", err)
		}
	}
	bk := db.Stats().Backend
	logger.Info("membership backend", "kind", bk.Kind, "entries", bk.Entries, "bytes", bk.MemoryBytes)
	if *demo > 0 {
		rng := rand.New(rand.NewSource(1))
		ids := make([]uint64, *demo)
		for i := range ids {
			ids[i] = rng.Uint64() % db.Options().Namespace
		}
		if err := db.Add("demo", ids...); err != nil {
			fatalf("preload demo set: %v", err)
		}
		logger.Info("preloaded demo set", "key", "demo", "ids", *demo)
	}

	api := server.New(db, server.Config{
		MaxBatch: *maxBatch, MaxBatchSets: *maxSets, MaxStreamBatch: *maxStream, MaxBodyBytes: *maxBody,
		MaxInFlight: *inflight, MaxWrites: *maxWrites, ConnWindow: *connWin,
		Durability: store,
		Logger:     logger, SlowRequest: *slowReq, TraceDisabled: *noTrace,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// ReadTimeout bounds a trickled request body the way the
		// handler's per-chunk write deadlines bound a slow reader; no
		// WriteTimeout, which would kill legitimate long NDJSON streams.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen explicitly (rather than ListenAndServe) so the bound
	// addresses are known before serving starts — with -addr :0 the
	// kernel picks the port, and -addr-file is how a test harness learns
	// it.
	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	errc := make(chan error, 2)
	go func() {
		logger.Info("serving HTTP/JSON", "addr", httpLn.Addr().String(), "sets", db.Len())
		errc <- srv.Serve(httpLn)
	}()
	binServing := false
	addrs := fmt.Sprintf("http=%s\n", httpLn.Addr())
	if *binAddr != "" {
		ln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fatalf("binary listener: %v", err)
		}
		binServing = true
		addrs += fmt.Sprintf("bin=%s\n", ln.Addr())
		go func() {
			logger.Info("serving binary protocol", "addr", ln.Addr().String())
			errc <- api.ServeBinary(ln)
		}()
	}
	// The admin plane is deliberately not on errc: it must outlive the
	// data-plane drain (so /readyz reports not-ready and /metrics stays
	// scrapeable during shutdown) and is closed last.
	var adminSrv *http.Server
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatalf("admin listener: %v", err)
		}
		addrs += fmt.Sprintf("admin=%s\n", ln.Addr())
		adminSrv = &http.Server{Handler: api.AdminHandler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("serving admin", "addr", ln.Addr().String())
			if err := adminSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "error", err)
			}
		}()
	}
	if *addrFile != "" {
		// Temp-and-rename so a reader never sees a partial file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addrs), 0o644); err != nil {
			fatalf("writing -addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatalf("writing -addr-file: %v", err)
		}
	}
	// Ready only now: WAL replay (synchronous in wal.Open) is done and
	// every listener is accepting.
	api.SetReady(true)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
		stop()
		api.SetReady(false)
		logger.Info("signal received; draining", "timeout", (*shutdown).String())
		drain(logger, srv, api, binServing, *shutdown)
		// Collect the listener goroutines' exits; anything but the two
		// clean-close sentinels is a real failure.
		n := 1
		if binServing {
			n = 2
		}
		for i := 0; i < n; i++ {
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, server.ErrBinaryClosed) {
				fatalf("%v", err)
			}
		}
		if adminSrv != nil {
			adminSrv.Close()
		}
		logger.Info("bye")
	}
}

// drain shuts both listeners down within the deadline, force-closing
// whatever is still running when it expires. Closing idle keep-alive
// connections happens immediately (SetKeepAlivesEnabled + Shutdown do it
// for HTTP, ShutdownBinary for the binary side); a stream still mid-
// flight when the deadline hits is cut, deliberately — a slow client
// must not be able to hold the process alive past -shutdown-timeout.
func drain(logger *slog.Logger, srv *http.Server, api *server.Server, binServing bool, timeout time.Duration) {
	sctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	// Stop handing out new keep-alive sessions right away, so connections
	// finishing their current request close instead of going idle.
	srv.SetKeepAlivesEnabled(false)
	done := make(chan struct{}, 2)
	go func() {
		if err := srv.Shutdown(sctx); err != nil {
			// Deadline hit with requests still running: bound the drain by
			// force-closing instead of leaking the listener and hanging.
			logger.Warn("drain deadline exceeded, force-closing HTTP", "error", err)
			srv.Close()
		}
		done <- struct{}{}
	}()
	go func() {
		if binServing {
			if err := api.ShutdownBinary(sctx); err != nil {
				logger.Warn("drain deadline exceeded, force-closed binary connections", "error", err)
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

// parseFsync maps the -fsync flag onto a wal policy: the two named
// policies pass through, and a duration selects interval syncing with
// that period.
func parseFsync(s string) (wal.FsyncPolicy, time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return "", 0, fmt.Errorf("-fsync interval %v must be positive", d)
		}
		return wal.FsyncInterval, d, nil
	}
	p, err := wal.ParseFsyncPolicy(s)
	return p, 0, err
}

// openDB loads the database file (plus occupied ids for pruned trees) or
// creates a fresh one from the planning flags. The backend flag applies
// only to fresh databases — a loaded file carries its own backend kind.
func openDB(dbPath, idsPath string, namespace, setSize uint64, accuracy float64, k int, pruned bool, backend string) (*setdb.DB, error) {
	if dbPath == "" {
		opts, err := setdb.PlanOptions(accuracy, setSize, namespace, k)
		if err != nil {
			return nil, err
		}
		opts.Pruned = pruned
		kind, err := membership.ParseKind(backend)
		if err != nil {
			return nil, err
		}
		opts.Backend = kind
		return setdb.Open(opts)
	}
	var occupied []uint64
	if idsPath != "" {
		var err error
		occupied, err = readIDs(idsPath)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", idsPath, err)
		}
	}
	return setdb.Load(dbPath, occupied)
}

// readIDs parses one decimal id per line, skipping blanks.
func readIDs(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		ids = append(ids, id)
	}
	return ids, sc.Err()
}
