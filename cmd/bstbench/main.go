// Command bstbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bstbench -exp fig3              # one experiment at reduced scale
//	bstbench -exp all -full         # everything at paper scale (hours!)
//	bstbench -exp tab5 -csv out/    # also write CSV files
//	bstbench -exp concurrency       # sampled-per-second vs goroutine count
//	bstbench -list                  # show available experiment ids
//
// Experiment ids follow the paper: fig3..fig15 are Figures 3–15, tab2..
// tab6 are Tables 2–6, and abl-* are the DESIGN.md ablations. The extra
// "concurrency" experiment measures SetDB parallel-sampling throughput
// as the goroutine count grows — the scaling unlocked by the lock-free
// read path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/hashfam"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		full    = flag.Bool("full", false, "run at the paper's full scale (slow)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		csvDir  = flag.String("csv", "", "directory to also write per-table CSV files into")
		seed    = flag.Uint64("seed", 1, "experiment seed")
		rounds  = flag.Int("rounds", 0, "override sampling rounds per cell")
		hash    = flag.String("hash", "", "override hash family (simple|murmur3|md5|fnv)")
		twScale = flag.Int("twitter-scale", 0, "override Twitter-crawl scale divisor")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.SmallConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *hash != "" {
		cfg.HashKind = hashfam.Kind(*hash)
		if _, err := hashfam.New(cfg.HashKind, 1024, cfg.K, 0); err != nil {
			fatalf("bad -hash: %v", err)
		}
	}
	if *twScale > 0 {
		cfg.TwitterScale = *twScale
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.ExperimentIDs()
	}
	registry := experiments.Registry()
	for _, id := range ids {
		runner, ok := registry[id]
		if !ok {
			fatalf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		for _, tbl := range tables {
			if err := tbl.WriteText(os.Stdout); err != nil {
				fatalf("write: %v", err)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tbl); err != nil {
					fatalf("csv: %v", err)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func writeCSV(dir string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bstbench: "+format+"\n", args...)
	os.Exit(1)
}
