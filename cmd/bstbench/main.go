// Command bstbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bstbench -exp fig3              # one experiment at reduced scale
//	bstbench -exp all -full         # everything at paper scale (hours!)
//	bstbench -exp tab5 -csv out/    # also write CSV files
//	bstbench -exp concurrency       # sampled-per-second vs goroutine count
//	bstbench -exp serving -json BENCH_serving.json   # HTTP serving-layer load test
//	bstbench -exp obs -json BENCH_obs.json           # observability overhead: tracing+metrics on vs off
//	bstbench -exp hash -json BENCH_hash.json         # hash family × k × batch sweep
//	bstbench -list                  # show available experiment ids
//
// Experiment ids follow the paper: fig3..fig15 are Figures 3–15, tab2..
// tab6 are Tables 2–6, and abl-* are the DESIGN.md ablations. The extra
// "concurrency" experiment measures SetDB parallel-sampling throughput
// as the goroutine count grows — the scaling unlocked by the lock-free
// read path — and "serving" drives the bstserved HTTP layer in-process
// with a read/write client mix over real loopback connections.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/hashfam"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		full      = flag.Bool("full", false, "run at the paper's full scale (slow)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		csvDir    = flag.String("csv", "", "directory to also write per-table CSV files into")
		jsonPath  = flag.String("json", "", "file to write all results into as machine-readable JSON (e.g. BENCH_concurrency.json)")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		rounds    = flag.Int("rounds", 0, "override sampling rounds per cell")
		hash      = flag.String("hash", "", "override hash family (fast|simple|murmur3|md5|fnv)")
		twScale   = flag.Int("twitter-scale", 0, "override Twitter-crawl scale divisor")
		writeFrac = flag.Float64("writefrac", 0, "write fraction for the concurrency/serving experiments' read/write mix (0..1)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.SmallConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *hash != "" {
		cfg.HashKind = hashfam.Kind(*hash)
		if _, err := hashfam.New(cfg.HashKind, 1024, cfg.K, 0); err != nil {
			fatalf("bad -hash: %v", err)
		}
	}
	if *twScale > 0 {
		cfg.TwitterScale = *twScale
	}
	if *writeFrac < 0 || *writeFrac > 1 {
		fatalf("bad -writefrac %v: want 0..1", *writeFrac)
	}
	cfg.WriteFrac = *writeFrac

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experiments.ExperimentIDs()
	}
	registry := experiments.Registry()
	report := &jsonReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        cfg.Seed,
		Full:        *full,
		WriteFrac:   cfg.WriteFrac,
	}
	for _, id := range ids {
		runner, ok := registry[id]
		if !ok {
			fatalf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		je := jsonExperiment{ID: id}
		for _, tbl := range tables {
			if err := tbl.WriteText(os.Stdout); err != nil {
				fatalf("write: %v", err)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tbl); err != nil {
					fatalf("csv: %v", err)
				}
			}
			je.Tables = append(je.Tables, jsonTable{
				ID: tbl.ID, Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows,
			})
		}
		// One-line human summary where an experiment defines one (the
		// writeamp and hash sweeps), so the headline is checkable without
		// tooling.
		if line, ok := experiments.WriteAmpSummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		if line, ok := experiments.HashSummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		if line, ok := experiments.ServingSummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		if line, ok := experiments.ObsSummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		if line, ok := experiments.BackendSummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		if line, ok := experiments.RecoverySummary(tables); ok {
			fmt.Println(line)
			fmt.Println()
		}
		je.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		report.Experiments = append(report.Experiments, je)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// jsonReport is the machine-readable form of one bstbench run, written
// by -json so performance trajectories can be tracked across commits.
type jsonReport struct {
	GeneratedAt string           `json:"generated_at"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Seed        uint64           `json:"seed"`
	Full        bool             `json:"full"`
	WriteFrac   float64          `json:"writefrac"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID        string      `json:"id"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Tables    []jsonTable `json:"tables"`
}

type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func writeJSON(path string, report *jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	// Create missing parent directories (a trajectory path like
	// bench/out/BENCH_serving.json should just work), and make the
	// failure actionable when the path itself is unwritable.
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("creating parent directory for -json %s: %w", path, err)
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing -json output: %w", err)
	}
	return nil
}

func writeCSV(dir string, tbl *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bstbench: "+format+"\n", args...)
	os.Exit(1)
}
