// Command bstgen generates the paper's workloads as text files: uniform
// and clustered query sets (§7.1) and synthetic Twitter-style crawls over
// low-occupancy namespaces (§8.1). Output is one id per line, suitable for
// feeding into external tooling or diffing across runs.
//
// Usage:
//
//	bstgen -kind uniform -M 1000000 -n 1000 > set.txt
//	bstgen -kind clustered -M 1000000 -n 1000 -p 10 > clustered.txt
//	bstgen -kind namespace -M 2200000000 -fraction 0.2 -population 7200000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "uniform", "uniform | clustered | namespace")
		M         = flag.Uint64("M", 1_000_000, "namespace size")
		n         = flag.Int("n", 1000, "set size (uniform/clustered)")
		p         = flag.Float64("p", workload.DefaultClusterP, "clustering aggressiveness (clustered)")
		fraction  = flag.Float64("fraction", 0.2, "namespace fraction (namespace)")
		pop       = flag.Int("population", 10000, "occupied ids (namespace)")
		clustered = flag.Bool("clustered-leaves", false, "cluster the selected leaves (namespace)")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "uniform":
		set, err := workload.UniformSet(rng, *M, *n)
		if err != nil {
			fatalf("%v", err)
		}
		emit(w, set)
	case "clustered":
		set, err := workload.ClusteredSet(rng, *M, *n, *p)
		if err != nil {
			fatalf("%v", err)
		}
		emit(w, set)
	case "namespace":
		var idx []int
		var err error
		if *clustered {
			idx, err = workload.SelectLeavesClustered(rng, workload.NamespaceLeaves, *fraction, *p)
		} else {
			idx, err = workload.SelectLeavesUniform(rng, workload.NamespaceLeaves, *fraction)
		}
		if err != nil {
			fatalf("%v", err)
		}
		ns, err := workload.PopulateNamespace(rng, *M, workload.NamespaceLeaves, idx, *pop)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "selected %d/%d leaves, fraction %.3f, %d ids\n",
			len(idx), workload.NamespaceLeaves, ns.Fraction(), len(ns.IDs))
		emit(w, ns.IDs)
	default:
		fatalf("unknown kind %q", *kind)
	}
}

func emit(w *bufio.Writer, xs []uint64) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bstgen: "+format+"\n", args...)
	os.Exit(1)
}
