package bloomsample_test

import (
	"fmt"
	"math/rand"

	bloomsample "repro"
)

// The basic workflow: plan parameters for a desired accuracy, build the
// tree once, store a set in a compatible filter, then sample and
// reconstruct.
func Example() {
	plan, _ := bloomsample.Plan(0.9, 100, 100_000, 3)
	tree, _ := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)

	q := tree.NewQueryFilter()
	for _, x := range []uint64{11, 22, 33, 44, 55} {
		q.Add(x)
	}

	rng := rand.New(rand.NewSource(7))
	x, _ := tree.Sample(q, rng, nil)
	fmt.Println("sample is a positive:", q.Contains(x))

	set, _ := tree.Reconstruct(q, bloomsample.PruneByAndBits, nil)
	fmt.Println("reconstruction contains 33:", contains(set, 33))
	// Output:
	// sample is a positive: true
	// reconstruction contains 33: true
}

// Pruned trees cover only the occupied portion of a sparse namespace and
// grow as new identifiers appear.
func ExampleNewPrunedTree() {
	plan, _ := bloomsample.Plan(0.8, 100, 10_000_000, 3)
	occupied := []uint64{5, 1_000_000, 9_999_999}
	tree, _ := bloomsample.NewPrunedTree(plan, bloomsample.Murmur3, 1, occupied)

	full, _ := bloomsample.NewTree(plan, bloomsample.Murmur3, 1)
	fmt.Println("pruned smaller than full:", tree.MemoryBytes() < full.MemoryBytes())

	before := tree.Nodes()
	_ = tree.Insert(4_242_424)
	fmt.Println("grew on insert:", tree.Nodes() > before)
	// Output:
	// pruned smaller than full: true
	// grew on insert: true
}

// The SetDB stores many named sets against one shared tree — the paper's
// §3.2 database of Bloom-filter-encoded sets.
func ExampleOpenSetDB() {
	opts, _ := bloomsample.PlanSetDB(0.9, 1000, 1_000_000, 3)
	db, _ := bloomsample.OpenSetDB(opts)

	_ = db.Add("team-a", 1, 2, 3)
	_ = db.Add("team-b", 3, 4, 5)

	ok, _ := db.Contains("team-a", 2)
	fmt.Println("team-a has 2:", ok)

	est, _ := db.IntersectionEstimate("team-a", "team-b")
	fmt.Println("overlap estimate is small:", est < 3)
	// Output:
	// team-a has 2: true
	// overlap estimate is small: true
}

// The UniformSampler trades throughput for exact uniformity — use it when
// downstream statistics assume unbiased samples.
func ExampleUniformSampler() {
	plan, _ := bloomsample.Plan(0.9, 100, 100_000, 3)
	tree, _ := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)
	q := tree.NewQueryFilter()
	for x := uint64(0); x < 100; x++ {
		q.Add(x * 997)
	}

	sampler, _ := tree.NewUniformSampler(q)
	rng := rand.New(rand.NewSource(3))
	x, _ := sampler.Sample(rng, nil)
	fmt.Println("uniform sample is a positive:", q.Contains(x))
	// Output:
	// uniform sample is a positive: true
}

// DictionaryAttack is the O(M) baseline — exact but namespace-bound.
func ExampleDictionaryAttack() {
	f, _ := bloomsample.NewFilter(bloomsample.FNV, 10_000, 3, 1)
	f.Add(700)

	da := bloomsample.DictionaryAttack{Namespace: 1_000}
	var ops bloomsample.Ops
	got := da.Reconstruct(f, &ops)
	fmt.Println("found below 1000:", len(got), "memberships:", ops.Memberships)
	// Output:
	// found below 1000: 1 memberships: 1000
}

func contains(xs []uint64, x uint64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
