// Package bloomsample is a Go implementation of "Sampling and
// Reconstruction Using Bloom Filters" (Sengupta, Bagchi, Bedathur,
// Ramanath; ICDE 2017): it answers the two questions the paper poses —
// how to draw a near-uniform random sample from a set stored in a Bloom
// filter, and how to reconstruct that set — without inverting the hash
// functions and without scanning the whole namespace.
//
// The central structure is the BloomSampleTree: a complete binary tree
// over the namespace with a Bloom filter per node, built once and used for
// any number of query filters that share the same parameters. Sampling
// descends the tree guided by intersection-size estimates; reconstruction
// prunes subtrees with empty intersections. For sparse namespaces the
// Pruned variant allocates only occupied subtrees and can grow
// dynamically.
//
// # Concurrency
//
// The whole query side is wait-free and safe for unsynchronized
// concurrent use: Filter.Contains and the estimators are read-only (hash
// position buffers are pooled, not per-filter), and Tree.Sample /
// Tree.SampleN / Tree.Reconstruct only read immutable node filters — any
// number of goroutines may query one tree, even sharing a single query
// Filter, as long as each owns its rand source and Ops accumulator.
// Writes are copy-on-write: a pruned Tree grows (Insert/InsertBatch)
// by publishing fresh immutable filters and privately built subtrees
// through atomic pointers, with writers serialized per subtree — so
// queries never wait on growth. Mutating a raw Filter in place (Add)
// still requires external synchronization; prefer Filter.CloneAdd,
// which returns a new immutable version. SetDB composes all of this:
// its keyed sets live in atomically swapped immutable shard snapshots,
// every read is lock-free, writers briefly serialize per shard, and the
// batch helpers SetDB.SampleMany and SetDB.ReconstructAll fan work out
// across GOMAXPROCS goroutines. A UniformSampler self-calibrates through
// atomics and may be shared by any number of goroutines (each with its
// own rand source).
//
// Quick start:
//
//	plan, _ := bloomsample.Plan(0.9, 1000, 1_000_000, 3)        // accuracy, |set|, |namespace|, k
//	tree, _ := bloomsample.NewTreeWith(plan, bloomsample.WithSeed(42))
//	q := tree.NewQueryFilter()
//	q.Add(123); q.Add(456)                                       // store a set
//	x, _ := tree.Sample(q, rng, nil)                             // draw a sample
//	set, _ := tree.Reconstruct(q, bloomsample.PruneByEstimate, nil)
//
// Construction is options-based (see Option and the With* functions):
// databases open with Open(namespace, ...Option), which plans the
// filter profile from WithAccuracy and selects the deletable-set
// backend — counting Bloom or cuckoo filter — with WithBackend.
//
// The two baselines the paper compares against (DictionaryAttack and
// HashInvert) are exported for benchmarking and for the niches where they
// win (tiny namespaces; invertible hashes with very sparse or very dense
// filters).
package bloomsample

import (
	"repro/internal/baseline"
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/setdb"
)

// Filter is a Bloom filter over uint64 elements supporting membership,
// union, intersection and the cardinality estimators the sampler uses.
type Filter = bloom.Filter

// Tree is a BloomSampleTree (full or pruned).
type Tree = core.Tree

// TreeConfig configures a tree build; prefer deriving it via Plan +
// Plan.TreeConfig.
type TreeConfig = core.Config

// TreePlan is the outcome of accuracy-driven parameter planning (§5.4 of
// the paper): Bloom-filter size, false-positive rate, tree depth and leaf
// range.
type TreePlan = core.Plan

// Ops counts the Bloom-filter operations an algorithm performed.
type Ops = core.Ops

// PruneRule selects the reconstruction pruning strategy.
type PruneRule = core.PruneRule

// Reconstruction pruning strategies: PruneByEstimate is the paper's
// thresholding heuristic (fast, may trade recall); PruneByAndBits prunes
// only provably-empty branches (perfect recall, slower).
const (
	PruneByEstimate = core.PruneByEstimate
	PruneByAndBits  = core.PruneByAndBits
)

// HashKind identifies a hash-function family.
type HashKind = hashfam.Kind

// Available hash families. Fast — one 128-bit multiply-fold mix per key,
// split into k positions by double hashing — is the recommended default
// and what every layer defaults to; Simple is weakly invertible (required
// by HashInvert); Murmur3 is the previous default, kept byte-compatible;
// MD5 is slow and present for parity with the paper's evaluation; FNV is
// a cheap extra.
const (
	Fast    = hashfam.KindFast
	Simple  = hashfam.KindSimple
	Murmur3 = hashfam.KindMurmur3
	MD5     = hashfam.KindMD5
	FNV     = hashfam.KindFNV
)

// ErrNoSample is returned by Tree.Sample when no element of the namespace
// answers the query filter positively along any explored path.
var ErrNoSample = core.ErrNoSample

// Plan sizes a Bloom filter and a BloomSampleTree for the desired sampling
// accuracy (the fraction of sampling outcomes that are true set elements),
// a design query-set size n, a namespace of size M, and k hash functions.
// Accuracies above 0.99 are capped (an exact 1.0 needs an infinite
// filter). The cost ratio between intersections and membership queries is
// taken from the built-in model; use PlanWithCostRatio with a
// CalibrateCosts measurement for machine-specific planning.
func Plan(accuracy float64, n, M uint64, k int) (TreePlan, error) {
	return core.PlanTree(accuracy, n, M, k, 0)
}

// PlanWithCostRatio is Plan with an explicit intersection/membership cost
// ratio (see CalibrateCosts).
func PlanWithCostRatio(accuracy float64, n, M uint64, k int, costRatio float64) (TreePlan, error) {
	return core.PlanTree(accuracy, n, M, k, costRatio)
}

// CostEstimate holds measured per-operation costs.
type CostEstimate = core.CostEstimate

// CalibrateCosts measures membership and intersection costs for the given
// filter parameters on this machine; its Ratio feeds PlanWithCostRatio.
func CalibrateCosts(kind HashKind, m uint64, k int, iters int) (CostEstimate, error) {
	return core.CalibrateCosts(kind, m, k, iters)
}

// NewTree builds the full BloomSampleTree for the plan: every node stores
// its entire namespace range (Definition 5.1 of the paper). Build once,
// query with any number of filters created via Tree.NewQueryFilter.
//
// Deprecated: use NewTreeWith(plan, WithHash(kind), WithSeed(seed)).
func NewTree(plan TreePlan, kind HashKind, seed uint64) (*Tree, error) {
	return NewTreeWith(plan, WithHash(kind), WithSeed(seed))
}

// NewPrunedTree builds a Pruned-BloomSampleTree over only the occupied
// identifiers (§5.2): nodes whose ranges contain no occupied id are not
// allocated, and Tree.Insert grows the tree as occupancy grows.
//
// Deprecated: use NewPrunedTreeWith(plan, occupied, WithHash(kind),
// WithSeed(seed)).
func NewPrunedTree(plan TreePlan, kind HashKind, seed uint64, occupied []uint64) (*Tree, error) {
	return NewPrunedTreeWith(plan, occupied, WithHash(kind), WithSeed(seed))
}

// NewTreeFromConfig builds a full tree from an explicit configuration,
// bypassing planning.
func NewTreeFromConfig(cfg TreeConfig) (*Tree, error) { return core.BuildTree(cfg) }

// NewPrunedTreeFromConfig builds a pruned tree from an explicit
// configuration.
func NewPrunedTreeFromConfig(cfg TreeConfig, occupied []uint64) (*Tree, error) {
	return core.BuildPruned(cfg, occupied)
}

// NewFilter returns an empty Bloom filter with the given parameters. Use
// Tree.NewQueryFilter instead when the filter will be queried against a
// tree, which guarantees parameter compatibility.
//
// Deprecated: use NewFilterWith(m, k, WithHash(kind), WithSeed(seed)).
func NewFilter(kind HashKind, m uint64, k int, seed uint64) (*Filter, error) {
	return NewFilterWith(m, k, WithHash(kind), WithSeed(seed))
}

// DictionaryAttack is the brute-force baseline: O(M) membership queries
// per sample or reconstruction, but exactly uniform samples.
type DictionaryAttack = baseline.DictionaryAttack

// HashInvert is the invertible-hash baseline: it enumerates candidate
// preimages of filter bits. Requires the Simple hash family.
type HashInvert = baseline.HashInvert

// Estimators re-exported for downstream use.

// FalsePositiveRate returns (1−e^{−kn/m})^k.
func FalsePositiveRate(m uint64, k int, n uint64) float64 {
	return bloom.FalsePositiveRate(m, k, n)
}

// Accuracy returns n / (n + (M−n)·fp), the paper's sampling-accuracy
// measure.
func Accuracy(n, M uint64, fp float64) float64 { return bloom.Accuracy(n, M, fp) }

// EstimateIntersection returns the Papapetrou et al. estimate of the
// intersection size of the sets stored in two compatible filters.
func EstimateIntersection(a, b *Filter) float64 { return bloom.EstimateIntersectionOf(a, b) }

// FalseSetOverlapProb returns Eq. (1) of the paper: the probability that
// the AND of two filters storing disjoint sets of sizes n1 and n2 is
// non-empty.
func FalseSetOverlapProb(m uint64, k int, n1, n2 uint64) float64 {
	return bloom.FalseSetOverlapProb(m, k, n1, n2)
}

// UniformSampler draws exactly uniform samples from a query filter by
// rejection, correcting the estimator-noise bias of the plain tree
// descent. Create one per query filter with Tree.NewUniformSampler; a
// single instance may be shared across goroutines.
type UniformSampler = core.UniformSampler

// UniformStats reports a UniformSampler's rejection behaviour.
type UniformStats = core.UniformStats

// SetDB is a keyed database of sets stored only as Bloom filters over a
// shared namespace and BloomSampleTree — the paper's §3.2 framework. It
// supports per-key sampling and reconstruction and persists to a single
// file. SetDB is safe for concurrent use with a wait-free read path:
// queries load immutable shard snapshots through atomic pointers and
// take no locks at all, so concurrent Sample/Contains/Reconstruct calls
// — even on the same key, even racing writers — never serialize. The
// batch APIs SampleMany and ReconstructAll parallelize internally.
type SetDB = setdb.DB

// SetDBOptions configures a SetDB.
type SetDBOptions = setdb.Options

// SetDBSampler is the database-bound exactly-uniform sampler returned by
// SetDB.UniformSampler: draws are lock-free, shareable across
// goroutines, and follow the key across copy-on-write Adds by
// recalibrating against the newly published filter version.
type SetDBSampler = setdb.Sampler

// SetDBWrite is one pending mutation for SetDB's group-commit path
// (SetDB.AddMany/ApplyBatch): a whole batch of writes publishes one
// snapshot per touched shard instead of one per key, all-or-nothing.
type SetDBWrite = setdb.Write

// OpenSetDB creates an empty set database from explicit options.
//
// Deprecated: use Open(namespace, ...Option), which plans the filter
// profile and takes the backend, hash and tree knobs as options.
// OpenSetDB remains the escape hatch for fully hand-built Options.
func OpenSetDB(opts SetDBOptions) (*SetDB, error) { return setdb.Open(opts) }

// PlanSetDB derives SetDB options from a desired sampling accuracy.
func PlanSetDB(accuracy float64, designSetSize, namespace uint64, k int) (SetDBOptions, error) {
	return setdb.PlanOptions(accuracy, designSetSize, namespace, k)
}

// LoadSetDB reads a database written by (*SetDB).Save. Pruned databases
// need their occupied ids; pass nil otherwise.
func LoadSetDB(path string, occupied []uint64) (*SetDB, error) {
	return setdb.Load(path, occupied)
}

// UnmarshalFilter decodes a filter encoded by (*Filter).MarshalBinary,
// reconstructing its hash family from the embedded parameters.
func UnmarshalFilter(data []byte) (*Filter, error) { return bloom.UnmarshalFilter(data) }

// NewTreeParallel builds the full BloomSampleTree using multiple
// goroutines (workers <= 0 means GOMAXPROCS); the result is identical to
// NewTree. Useful at paper-scale namespaces, where construction is a
// pure hash pass.
//
// Deprecated: use NewTreeWith(plan, WithHash(kind), WithSeed(seed),
// WithWorkers(workers)).
func NewTreeParallel(plan TreePlan, kind HashKind, seed uint64, workers int) (*Tree, error) {
	if workers <= 0 {
		workers = -1 // force the parallel build path with GOMAXPROCS
	}
	return NewTreeWith(plan, WithHash(kind), WithSeed(seed), WithWorkers(workers))
}

// LoadTree reads a tree written by (*Tree).Save.
func LoadTree(path string) (*Tree, error) { return core.LoadTree(path) }

// TreeStats describes a tree's realized structure (per-level fill
// ratios, saturation depth); see (*Tree).ComputeStats.
type TreeStats = core.Stats

// CountingFilter is a counting Bloom filter supporting Remove, for the
// paper's dynamic-community setting; project it onto a tree-compatible
// plain Filter with Snapshot.
type CountingFilter = bloom.CountingFilter

// NewCountingFilter returns an empty counting filter with the given
// parameters.
//
// Deprecated: use NewCountingFilterWith(m, k, WithHash(kind),
// WithSeed(seed)), or NewDynamicMembership to pick the backend by
// option.
func NewCountingFilter(kind HashKind, m uint64, k int, seed uint64) (*CountingFilter, error) {
	return NewCountingFilterWith(m, k, WithHash(kind), WithSeed(seed))
}
