package bloomsample

import (
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/membership"
	"repro/internal/setdb"
)

// Functional-options construction API. The package started with
// positional constructors (NewFilter(kind, m, k, seed), NewTree(plan,
// kind, seed), OpenSetDB(opts)); as the parameter space grew — hash
// family, seed, membership backend, accuracy, tree shape — every new
// knob either broke those signatures or forced another NewXxxWithYyy
// variant. The With* options below compose instead: each constructor
// takes the values that define what is being built (a namespace, a
// plan, filter dimensions) positionally, and everything with a sensible
// default as options. The positional constructors remain as thin
// deprecated wrappers.
//
//	db, _ := bloomsample.Open(1_000_000,
//	        bloomsample.WithAccuracy(0.95),
//	        bloomsample.WithBackend(bloomsample.BackendCuckoo),
//	        bloomsample.WithPruned(true))
//	tree, _ := bloomsample.NewTreeWith(plan, bloomsample.WithSeed(42))
//	f, _ := bloomsample.NewFilterWith(1<<20, 3, bloomsample.WithHash(bloomsample.Murmur3))

// BackendKind selects a membership backend for dynamic (deletable)
// sets.
type BackendKind = membership.Kind

// Membership backends. BackendCounting (the default) stores 8-bit
// counters — 8× a plain filter's memory, constant-time removes.
// BackendCuckoo stores 16-bit fingerprints in 4-slot buckets — roughly
// 2.4 bytes per live entry at its design load factor plus a plain query
// view, native deletes, and a ~3·2⁻¹⁵ false-positive rate. BackendBloom
// is the plain filter: valid wherever nothing needs deleting, rejected
// for dynamic sets.
const (
	BackendBloom    = membership.KindBloom
	BackendCounting = membership.KindCounting
	BackendCuckoo   = membership.KindCuckoo
)

// Membership is the read surface every backend satisfies: membership
// probes, cardinality, a tree-compatible plain-filter query view, and
// the intersection estimators the sampler descends by.
type Membership = membership.Membership

// DynamicMembership adds copy-on-write insertion and removal; values
// are immutable, so published versions may be read without locks.
type DynamicMembership = membership.DynamicMembership

// options collects every construction knob the With* functions set.
type options struct {
	hash          HashKind
	seed          uint64
	backend       BackendKind
	accuracy      float64
	k             int
	bits          uint64
	treeDepth     int
	pruned        bool
	designSetSize uint64
	workers       int
}

// Option configures a constructor. Options apply in order; later
// options win.
type Option func(*options)

func buildOptions(opts []Option) options {
	o := options{
		hash:          Fast,
		accuracy:      0.9,
		k:             3,
		designSetSize: 1000,
	}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithHash selects the hash family (default Fast).
func WithHash(kind HashKind) Option { return func(o *options) { o.hash = kind } }

// WithSeed sets the hash seed (default 0). Filters only compose —
// union, intersection, tree queries — when built with the same family,
// dimensions and seed.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithBackend selects the membership backend for dynamic sets (default
// BackendCounting). Plain sets always use the Bloom filter — they never
// delete, so nothing beats it.
func WithBackend(kind BackendKind) Option { return func(o *options) { o.backend = kind } }

// WithAccuracy sets the target sampling accuracy the planner sizes for
// (default 0.9; values above 0.99 are capped).
func WithAccuracy(a float64) Option { return func(o *options) { o.accuracy = a } }

// WithK sets the number of hash functions used when planning (default 3).
func WithK(k int) Option { return func(o *options) { o.k = k } }

// WithBits overrides the planned filter size in bits. Zero (the
// default) lets WithAccuracy drive the size.
func WithBits(m uint64) Option { return func(o *options) { o.bits = m } }

// WithTreeDepth overrides the planned tree depth. Zero (the default)
// derives the depth from the cost model.
func WithTreeDepth(d int) Option { return func(o *options) { o.treeDepth = d } }

// WithPruned selects a Pruned-BloomSampleTree that allocates only
// occupied subtrees and grows on demand (recommended for sparse
// namespaces). Default false: the full tree is built eagerly.
func WithPruned(pruned bool) Option { return func(o *options) { o.pruned = pruned } }

// WithDesignSetSize sets the typical stored-set size the planner and
// backends size for (default 1000).
func WithDesignSetSize(n uint64) Option { return func(o *options) { o.designSetSize = n } }

// WithWorkers sets the goroutine count for parallel tree builds
// (default 0 = GOMAXPROCS). Ignored by constructors that build nothing
// parallel.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// Open creates an empty set database over the namespace [0, M),
// planning the filter profile from the accuracy options and selecting
// the dynamic-set backend from WithBackend. It replaces
// OpenSetDB(PlanSetDB(...)) pipelines:
//
//	db, err := bloomsample.Open(1_000_000,
//	        bloomsample.WithAccuracy(0.95),
//	        bloomsample.WithBackend(bloomsample.BackendCuckoo),
//	        bloomsample.WithPruned(true))
func Open(namespace uint64, opts ...Option) (*SetDB, error) {
	o := buildOptions(opts)
	dbo, err := setdb.PlanOptions(o.accuracy, o.designSetSize, namespace, o.k)
	if err != nil {
		return nil, err
	}
	dbo.HashKind = o.hash
	dbo.Seed = o.seed
	dbo.Backend = o.backend
	dbo.Pruned = o.pruned
	if o.bits != 0 {
		dbo.Bits = o.bits
	}
	if o.treeDepth != 0 {
		dbo.TreeDepth = o.treeDepth
	}
	return setdb.Open(dbo)
}

// NewFilterWith returns an empty Bloom filter with m bits and k hash
// functions; WithHash and WithSeed select the family. Prefer
// Tree.NewQueryFilter when the filter will be queried against a tree.
func NewFilterWith(m uint64, k int, opts ...Option) (*Filter, error) {
	o := buildOptions(opts)
	fam, err := hashfam.New(o.hash, m, k, o.seed)
	if err != nil {
		return nil, err
	}
	return bloom.New(fam), nil
}

// NewCountingFilterWith returns an empty counting Bloom filter with m
// counters and k hash functions; WithHash and WithSeed select the
// family.
func NewCountingFilterWith(m uint64, k int, opts ...Option) (*CountingFilter, error) {
	o := buildOptions(opts)
	fam, err := hashfam.New(o.hash, m, k, o.seed)
	if err != nil {
		return nil, err
	}
	return bloom.NewCounting(fam), nil
}

// NewDynamicMembership returns an empty deletable set on the backend
// selected by WithBackend (default BackendCounting), dimensioned m bits
// (counting: counters; cuckoo: query-view bits) by k hash functions.
// WithDesignSetSize hints the cuckoo backend's initial table capacity.
func NewDynamicMembership(m uint64, k int, opts ...Option) (DynamicMembership, error) {
	o := buildOptions(opts)
	fam, err := hashfam.New(o.hash, m, k, o.seed)
	if err != nil {
		return nil, err
	}
	kind := o.backend
	if kind == "" {
		kind = BackendCounting
	}
	return membership.NewDynamic(kind, fam, o.designSetSize)
}

// NewTreeWith builds the BloomSampleTree for the plan. WithHash and
// WithSeed select the hash family; WithPruned(true) with occupied ids
// is NewPrunedTreeWith's job (a pruned tree needs the ids);
// WithWorkers(n) parallelizes the full build.
func NewTreeWith(plan TreePlan, opts ...Option) (*Tree, error) {
	o := buildOptions(opts)
	cfg := plan.TreeConfig(o.hash, o.seed)
	if o.workers != 0 {
		return core.BuildTreeParallel(cfg, o.workers)
	}
	return core.BuildTree(cfg)
}

// NewPrunedTreeWith builds a Pruned-BloomSampleTree over only the
// occupied identifiers; Tree.Insert grows it as occupancy grows.
func NewPrunedTreeWith(plan TreePlan, occupied []uint64, opts ...Option) (*Tree, error) {
	o := buildOptions(opts)
	return core.BuildPruned(plan.TreeConfig(o.hash, o.seed), occupied)
}

// UnmarshalMembership decodes any membership value encoded by
// Membership.MarshalBinary — enveloped backends and bare legacy
// filter/counting encodings alike.
func UnmarshalMembership(data []byte) (Membership, error) {
	return membership.Unmarshal(data)
}
