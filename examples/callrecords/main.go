// Call records: the paper's crime-investigation scenario (§1, citing
// MacMillan et al.) — each cell-tower location keeps only a Bloom filter
// of the phone numbers seen there. When a site becomes relevant to an
// investigation, the analyst reconstructs the full number list from the
// filter, and cross-references two sites by reconstructing the
// intersection of their filters.
//
// HashInvert is also demonstrated: with the invertible Simple hash family
// it reconstructs without a tree at all, which wins when filters are very
// sparse or very dense.
//
// Run with:
//
//	go run ./examples/callrecords
package main

import (
	"fmt"
	"log"
	"math/rand"

	bloomsample "repro"
)

const (
	numberSpace = 10_000_000 // 7-digit-ish subscriber number space
	accuracy    = 0.95
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Three towers; tower A and B share the suspects' phones.
	suspects := []uint64{5_551_234, 5_559_876, 5_550_000}
	towerA := randomPhones(rng, 4_000)
	towerB := randomPhones(rng, 2_500)
	towerC := randomPhones(rng, 3_000)
	towerA = append(towerA, suspects...)
	towerB = append(towerB, suspects...)

	// Only Bloom filters are retained at the towers (the paper's
	// storage model). The Simple family keeps HashInvert applicable.
	plan, err := bloomsample.Plan(accuracy, 5_000, numberSpace, 3)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.Simple, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-tower filter: %d bits (%.1f KB) for ~4000 numbers; tree %.1f MB, built once\n",
		plan.Bits, float64(plan.Bits)/8/1024, float64(tree.MemoryBytes())/(1<<20))

	filters := map[string]*bloomsample.Filter{}
	for name, numbers := range map[string][]uint64{"A": towerA, "B": towerB, "C": towerC} {
		f := tree.NewQueryFilter()
		for _, p := range numbers {
			f.Add(p)
		}
		filters[name] = f
	}

	// Subpoena: all numbers seen at tower A, via the fast estimate-pruned
	// traversal; precision is governed by the planned accuracy and recall
	// is reported against the ground truth.
	var ops bloomsample.Ops
	recovered, err := tree.Reconstruct(filters["A"], bloomsample.PruneByEstimate, &ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tower A reconstruction: %d candidates for %d true numbers "+
		"(%.1f%% precision, %.1f%% recall), %d membership queries instead of %d\n",
		len(recovered), len(towerA), 100*float64(inCount(recovered, towerA))/float64(len(recovered)),
		100*float64(inCount(recovered, towerA))/float64(len(towerA)),
		ops.Memberships, numberSpace)

	// Cross-reference: numbers present at BOTH towers A and B. Evidence
	// must be complete, so use PruneByAndBits: it never drops a live
	// branch (at the price of scanning leaves whose filters merely look
	// overlapping).
	ab, err := filters["A"].Intersect(filters["B"])
	if err != nil {
		log.Fatal(err)
	}
	common, err := tree.Reconstruct(ab, bloomsample.PruneByAndBits, nil)
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, s := range suspects {
		for _, x := range common {
			if x == s {
				found++
				break
			}
		}
	}
	fmt.Printf("cross-reference A∩B: %d common numbers, %d/%d suspects present\n",
		len(common), found, len(suspects))

	// HashInvert alternative: no tree, just the invertible hashes.
	hi := bloomsample.HashInvert{Namespace: numberSpace}
	var hiOps bloomsample.Ops
	hiRecovered, err := hi.Reconstruct(filters["C"], &hiOps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tower C via HashInvert: %d candidates, %d membership queries, zero index memory\n",
		len(hiRecovered), hiOps.Memberships)
}

// inCount returns how many elements of truth occur in got.
func inCount(got, truth []uint64) int {
	in := make(map[uint64]bool, len(got))
	for _, x := range got {
		in[x] = true
	}
	n := 0
	for _, x := range truth {
		if in[x] {
			n++
		}
	}
	return n
}

func randomPhones(rng *rand.Rand, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		p := rng.Uint64() % numberSpace
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
