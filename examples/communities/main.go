// Communities: the paper's motivating social-network scenario (§1) —
// millions of dynamic online communities stored compactly as Bloom
// filters, from which an advertiser samples members to estimate audience
// composition without ever materializing the member lists.
//
// This example stores many overlapping "hashtag communities" over a
// sparse user-id namespace, builds one Pruned-BloomSampleTree for the
// occupied ids, and answers two advertiser questions:
//
//  1. "Give me a quick panel of members of #gadgets" — multi-sampling.
//  2. "How much does #gadgets overlap #photography?" — intersection
//     estimation plus sampling from the AND filter.
//
// Run with:
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"math/rand"

	bloomsample "repro"
	"repro/internal/workload"
)

func main() {
	const (
		namespace  = 50_000_000 // user-id space (sparse: ~1% occupied)
		population = 500_000    // actual users
		accuracy   = 0.9
	)
	rng := rand.New(rand.NewSource(99))

	// The user base occupies a fifth of the namespace's 256 leaf ranges,
	// as real id spaces do (allocation in blocks).
	leafIdx, err := workload.SelectLeavesUniform(rng, workload.NamespaceLeaves, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	ns, err := workload.PopulateNamespace(rng, namespace, workload.NamespaceLeaves, leafIdx, population)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user base: %d users in %.0f%% of a %d-id namespace\n",
		len(ns.IDs), ns.Fraction()*100, namespace)

	// Communities of heavy-tailed sizes, skewed toward active users.
	crawl, err := workload.SynthesizeCrawl(rng, ns, workload.CrawlConfig{
		M: namespace, Population: population, Hashtags: 500, MinTagSize: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One pruned tree serves every community filter.
	plan, err := bloomsample.Plan(accuracy, 5_000, namespace, 3)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := bloomsample.NewPrunedTree(plan, bloomsample.Murmur3, 1, ns.IDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned tree: %d nodes, %.1f MB (full tree would be %.1f MB)\n",
		tree.Nodes(), float64(tree.MemoryBytes())/(1<<20),
		float64((uint64(1)<<(plan.Depth+1)-1)*((plan.Bits+63)/64*8))/(1<<20))

	// Store every community as a Bloom filter — the only representation
	// we keep; the member lists are discarded.
	filters := make([]*bloomsample.Filter, len(crawl.Tags))
	for i, tag := range crawl.Tags {
		f := tree.NewQueryFilter()
		for _, u := range tag {
			f.Add(u)
		}
		filters[i] = f
	}
	gadgets, photo := 0, 1
	fmt.Printf("#gadgets: ~%.0f members (estimated from its filter alone; true %d)\n",
		filters[gadgets].EstimateCardinality(), len(crawl.Tags[gadgets]))

	// Question 1: a 20-user panel from #gadgets, no member list needed.
	panel, err := tree.SampleN(filters[gadgets], 20, false, rng, nil)
	if err != nil {
		log.Fatal(err)
	}
	inTag := 0
	for _, u := range panel {
		if containsSorted(crawl.Tags[gadgets], u) {
			inTag++
		}
	}
	fmt.Printf("panel of %d users drawn; %d verified true members (accuracy target %.2f)\n",
		len(panel), inTag, accuracy)

	// Question 2: overlap of two communities via filter intersection.
	est := bloomsample.EstimateIntersection(filters[gadgets], filters[photo])
	trueOverlap := overlap(crawl.Tags[gadgets], crawl.Tags[photo])
	fmt.Printf("overlap #gadgets ∩ #photography: estimated %.0f users, true %d\n", est, trueOverlap)

	both, err := filters[gadgets].Intersect(filters[photo])
	if err != nil {
		log.Fatal(err)
	}
	common, err := tree.SampleN(both, 5, false, rng, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d of 5 requested users from the intersection filter: %v\n", len(common), common)
}

func containsSorted(xs []uint64, x uint64) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(xs) && xs[lo] == x
}

func overlap(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
