// Graph adjacency: the paper's §3.2 framework example — a graph database
// stores each vertex's adjacency list as a Bloom filter. This example
// builds a scale-free graph, keeps only the filters, and runs two classic
// workloads on top of sampling/reconstruction:
//
//   - random-walk simulation (PageRank-style), where each step samples a
//     uniform neighbour from the current vertex's filter, and
//   - triangle spotting, where the common-neighbour set of an edge is
//     reconstructed from the intersection of two adjacency filters.
//
// Run with:
//
//	go run ./examples/graphadj
package main

import (
	"fmt"
	"log"
	"math/rand"

	bloomsample "repro"
)

const (
	vertices  = 200_000
	edgesPerV = 8
	accuracy  = 0.95
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// Preferential-attachment-style multigraph, deduplicated.
	adj := make([]map[uint64]bool, vertices)
	for v := range adj {
		adj[v] = map[uint64]bool{}
	}
	for v := 1; v < vertices; v++ {
		for e := 0; e < edgesPerV; e++ {
			// Mix uniform and preferential targets for a heavy tail.
			var u int
			if rng.Intn(2) == 0 {
				u = rng.Intn(v)
			} else {
				u = int(float64(v) * rng.Float64() * rng.Float64())
			}
			if u != v {
				adj[v][uint64(u)] = true
				adj[u][uint64(v)] = true
			}
		}
	}

	plan, err := bloomsample.Plan(accuracy, 2*edgesPerV, vertices, 3)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacency filters: %d bits each (%.0f B); tree %.1f MB shared by all %d vertices\n",
		plan.Bits, float64(plan.Bits)/8, float64(tree.MemoryBytes())/(1<<20), vertices)

	// Keep only the filters.
	filters := make([]*bloomsample.Filter, vertices)
	for v := range filters {
		f := tree.NewQueryFilter()
		for u := range adj[v] {
			f.Add(u)
		}
		filters[v] = f
	}

	// Random walk: 10,000 steps of neighbour sampling.
	v := uint64(0)
	visits := map[uint64]int{}
	steps, dead := 0, 0
	for i := 0; i < 10_000; i++ {
		next, err := tree.Sample(filters[v], rng, nil)
		if err != nil {
			dead++
			v = uint64(rng.Intn(vertices)) // teleport
			continue
		}
		steps++
		v = next % vertices
		visits[v]++
	}
	top, topN := uint64(0), 0
	for u, c := range visits {
		if c > topN {
			top, topN = u, c
		}
	}
	fmt.Printf("random walk: %d steps (%d teleports); most-visited vertex %d (%d visits, degree %d)\n",
		steps, dead, top, topN, len(adj[top]))

	// Triangle spotting around the densest vertices, where triangles
	// actually live in a heavy-tailed graph: common neighbours of (hub, b)
	// for edges incident to the highest-degree vertex.
	hub := uint64(0)
	for v := range adj {
		if len(adj[v]) > len(adj[hub]) {
			hub = uint64(v)
		}
	}
	neighbours := make([]uint64, 0, len(adj[hub]))
	for u := range adj[hub] {
		neighbours = append(neighbours, u)
	}
	for i := 0; i < 5 && i < len(neighbours); i++ {
		a := hub
		b := neighbours[rng.Intn(len(neighbours))]
		common, err := filters[a].Intersect(filters[b])
		if err != nil {
			log.Fatal(err)
		}
		candidates, err := tree.Reconstruct(common, bloomsample.PruneByEstimate, nil)
		if err != nil {
			log.Fatal(err)
		}
		verified := 0
		for _, c := range candidates {
			if adj[a][c] && adj[b][c] {
				verified++
			}
		}
		fmt.Printf("edge (%d,%d): %d common-neighbour candidates, %d verified triangles\n",
			a, b, len(candidates), verified)
	}
}
