// Quickstart: store a set in a Bloom filter, then sample from it and
// reconstruct it with a BloomSampleTree — the two operations the paper
// introduces. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	bloomsample "repro"
)

func main() {
	const (
		namespace = 1_000_000 // ids live in [0, 1M)
		setSize   = 1_000
		accuracy  = 0.9 // ≥90% of samples should be true set members
	)

	// 1. Plan Bloom-filter and tree parameters for the desired accuracy.
	plan, err := bloomsample.Plan(accuracy, setSize, namespace, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned: m=%d bits, fp=%.2e, tree depth=%d, leaf range=%d\n",
		plan.Bits, plan.FP, plan.Depth, plan.LeafRange)

	// 2. Build the BloomSampleTree once; it serves any number of query
	// filters with the same parameters.
	tree, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d nodes, %.2f MB\n", tree.Nodes(), float64(tree.MemoryBytes())/(1<<20))

	// 3. Store a set in a query Bloom filter.
	rng := rand.New(rand.NewSource(7))
	q := tree.NewQueryFilter()
	truth := make(map[uint64]bool, setSize)
	for len(truth) < setSize {
		x := rng.Uint64() % namespace
		if !truth[x] {
			truth[x] = true
			q.Add(x)
		}
	}

	// 4. Sample from the filter.
	var ops bloomsample.Ops
	hits := 0
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		x, err := tree.Sample(q, rng, &ops)
		if err != nil {
			log.Fatal(err)
		}
		if truth[x] {
			hits++
		}
	}
	fmt.Printf("sampling: %d/%d samples were true elements (designed accuracy %.2f)\n",
		hits, rounds, accuracy)
	fmt.Printf("avg cost/sample: %.1f intersections, %.1f membership queries (namespace scan would be %d)\n",
		float64(ops.Intersections)/rounds, float64(ops.Memberships)/rounds, namespace)

	// 5. Draw 10 distinct elements in a single pass.
	ten, err := tree.SampleN(q, 10, false, rng, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 distinct samples: %v\n", ten)

	// 6. Reconstruct the set (true elements plus the filter's false
	// positives; PruneByAndBits guarantees nothing is missed).
	recon, err := tree.Reconstruct(q, bloomsample.PruneByAndBits, nil)
	if err != nil {
		log.Fatal(err)
	}
	missed := 0
	for x := range truth {
		found := false
		for _, y := range recon {
			if y == x {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	fmt.Printf("reconstruction: %d elements (%d true + %d false positives), %d missed\n",
		len(recon), setSize, len(recon)-setSize+missed, missed)
}
