// Keyword index: the paper's §3.2 information-retrieval example — "the
// list of documents where a keyword occurs" stored per keyword as a Bloom
// filter. This example builds a persistent SetDB posting index, saves it
// to disk, reloads it in a fresh database (as a serving process would),
// and answers queries by sampling and reconstruction — including an
// exactly-uniform sample via the rejection-corrected UniformSampler.
//
// Run with:
//
//	go run ./examples/keywordindex
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	bloomsample "repro"
)

const (
	docSpace = 2_000_000 // document-id namespace
	accuracy = 0.95
)

func main() {
	rng := rand.New(rand.NewSource(77))

	// A synthetic corpus: keyword df (document frequency) follows a rough
	// power law; "rare" keywords hit hundreds of docs, "stopword-ish"
	// ones hit tens of thousands.
	keywords := map[string]int{
		"bloom": 400, "filter": 1200, "sampling": 800, "database": 5000,
		"index": 9000, "query": 20000, "the": 60000,
	}
	postings := map[string][]uint64{}
	for kw, df := range keywords {
		postings[kw] = randomDocs(rng, df)
	}
	// Make 'bloom' and 'filter' genuinely co-occur in 50 documents (as
	// they would in a real corpus), so the AND query below has answers.
	copy(postings["filter"][:50], postings["bloom"][:50])

	// Ingest: open a database planned for the typical posting size, add
	// every posting list, persist.
	opts, err := bloomsample.PlanSetDB(accuracy, 5000, docSpace, 3)
	if err != nil {
		log.Fatal(err)
	}
	db, err := bloomsample.OpenSetDB(opts)
	if err != nil {
		log.Fatal(err)
	}
	for kw, docs := range postings {
		if err := db.Add(kw, docs...); err != nil {
			log.Fatal(err)
		}
	}
	dir, err := os.MkdirTemp("", "keywordindex")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "postings.db")
	if err := db.Save(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("ingested %d keywords; index file %s (%.1f MB) — the corpus itself is discarded\n",
		db.Len(), filepath.Base(path), float64(info.Size())/(1<<20))

	// Serve: a fresh process loads the index.
	srv, err := bloomsample.LoadSetDB(path, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d keywords: %v\n", srv.Len(), srv.Keys())

	// Query 1: "show me a few documents mentioning 'sampling'".
	docs, err := srv.SampleN("sampling", 5, false, rng, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 docs for 'sampling': %v\n", docs)

	// Query 2: estimated result size of "bloom AND filter", then the
	// actual documents via reconstruction of the intersection filter.
	est, err := srv.IntersectionEstimate("bloom", "filter")
	if err != nil {
		log.Fatal(err)
	}
	both, err := srv.Filter("bloom").Intersect(srv.Filter("filter"))
	if err != nil {
		log.Fatal(err)
	}
	hits, err := srv.Tree().Reconstruct(both, bloomsample.PruneByAndBits, nil)
	if err != nil {
		log.Fatal(err)
	}
	trueBoth := intersectCount(postings["bloom"], postings["filter"])
	fmt.Printf("'bloom AND filter': estimated %.0f docs, reconstructed %d candidates, %d true co-occurrences\n",
		est, len(hits), trueBoth)

	// Query 3: an exactly-uniform document sample from a big posting list
	// (for unbiased corpus statistics), via the rejection-corrected
	// sampler.
	us, err := srv.UniformSampler("query")
	if err != nil {
		log.Fatal(err)
	}
	sample, err := us.SampleN(1000, rng, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := us.Stats()
	fmt.Printf("uniform sample of %d docs from 'query' (df %d): %.1f attempts/sample, %d clamped\n",
		len(sample), keywords["query"], float64(st.Attempts)/float64(st.Accepted), st.Clamped)

	// Query 4: full posting reconstruction for a rare keyword with the
	// fast estimate-pruned traversal; recall is measured against the
	// ground truth (use PruneByAndBits when completeness beats speed).
	var ops bloomsample.Ops
	recon, err := srv.Reconstruct("bloom", bloomsample.PruneByEstimate, &ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed 'bloom': %d candidates for df %d (recall %.0f%%), %d membership queries instead of %d\n",
		len(recon), keywords["bloom"],
		100*float64(intersectCount(recon, postings["bloom"]))/float64(keywords["bloom"]),
		ops.Memberships, docSpace)
}

func randomDocs(rng *rand.Rand, df int) []uint64 {
	seen := make(map[uint64]bool, df)
	out := make([]uint64, 0, df)
	for len(out) < df {
		d := rng.Uint64() % docSpace
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

func intersectCount(a, b []uint64) int {
	in := make(map[uint64]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	n := 0
	for _, x := range b {
		if in[x] {
			n++
		}
	}
	return n
}
