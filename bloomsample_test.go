package bloomsample_test

import (
	"math/rand"
	"testing"

	bloomsample "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	plan, err := bloomsample.Plan(0.9, 500, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bits == 0 || plan.Depth == 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	tree, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 42)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	q := tree.NewQueryFilter()
	set := map[uint64]bool{}
	for len(set) < 500 {
		x := rng.Uint64() % 100_000
		if !set[x] {
			set[x] = true
			q.Add(x)
		}
	}

	// Sampling.
	hits := 0
	for i := 0; i < 200; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Contains(x) {
			t.Fatalf("sample %d not a positive", x)
		}
		if set[x] {
			hits++
		}
	}
	if hits < 150 { // design accuracy 0.9, generous slack
		t.Fatalf("only %d/200 samples were true elements", hits)
	}

	// Multi-sampling.
	many, err := tree.SampleN(q, 50, false, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, x := range many {
		if seen[x] {
			t.Fatalf("duplicate %d without replacement", x)
		}
		seen[x] = true
	}

	// Reconstruction with perfect recall.
	recon, err := tree.Reconstruct(q, bloomsample.PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, x := range recon {
		got[x] = true
	}
	for x := range set {
		if !got[x] {
			t.Fatalf("reconstruction missed true element %d", x)
		}
	}
}

func TestPublicAPIPrunedTree(t *testing.T) {
	plan, err := bloomsample.Plan(0.8, 100, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	occupied := make([]uint64, 0, 1000)
	for i := 0; i < 1000; i++ {
		occupied = append(occupied, uint64(i)*13+5)
	}
	tree, err := bloomsample.NewPrunedTree(plan, bloomsample.Murmur3, 7, occupied)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Pruned() {
		t.Fatal("tree not pruned")
	}
	full, err := bloomsample.NewTree(plan, bloomsample.Murmur3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tree.MemoryBytes() >= full.MemoryBytes() {
		t.Fatalf("pruned tree (%d B) not smaller than full (%d B)",
			tree.MemoryBytes(), full.MemoryBytes())
	}

	// Dynamic growth.
	before := tree.Nodes()
	if err := tree.Insert(999_999); err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() <= before {
		t.Fatal("Insert did not grow the tree")
	}
	rng := rand.New(rand.NewSource(2))
	q := tree.NewQueryFilter()
	q.Add(999_999)
	x, err := tree.Sample(q, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Contains(x) {
		t.Fatal("sample not a positive")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	f, err := bloomsample.NewFilter(bloomsample.Simple, 5000, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{10, 20, 30} {
		f.Add(x)
	}
	rng := rand.New(rand.NewSource(3))
	da := bloomsample.DictionaryAttack{Namespace: 10_000}
	if x, ok := da.Sample(f, rng, nil); !ok || !f.Contains(x) {
		t.Fatal("DictionaryAttack sample failed")
	}
	hi := bloomsample.HashInvert{Namespace: 10_000}
	recon, err := hi.Reconstruct(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := da.Reconstruct(f, nil)
	if len(recon) != len(want) {
		t.Fatalf("HashInvert %d vs DictionaryAttack %d", len(recon), len(want))
	}
}

func TestPublicAPIEstimators(t *testing.T) {
	if fp := bloomsample.FalsePositiveRate(60870, 3, 1000); fp <= 0 || fp >= 1 {
		t.Fatalf("fp = %v", fp)
	}
	if acc := bloomsample.Accuracy(1000, 1_000_000, 0); acc != 1 {
		t.Fatalf("acc = %v", acc)
	}
	if p := bloomsample.FalseSetOverlapProb(1000, 3, 10, 10); p <= 0 || p >= 1 {
		t.Fatalf("fso = %v", p)
	}
	a, _ := bloomsample.NewFilter(bloomsample.FNV, 10_000, 3, 1)
	b, _ := bloomsample.NewFilter(bloomsample.FNV, 10_000, 3, 1)
	for x := uint64(0); x < 100; x++ {
		a.Add(x)
		b.Add(x + 50)
	}
	est := bloomsample.EstimateIntersection(a, b)
	if est < 20 || est > 90 {
		t.Fatalf("intersection estimate %v, want ~50", est)
	}
}

func TestPublicAPICalibration(t *testing.T) {
	c, err := bloomsample.CalibrateCosts(bloomsample.Murmur3, 30_000, 3, 500)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bloomsample.PlanWithCostRatio(0.9, 1000, 1_000_000, 3, c.Ratio())
	if err != nil {
		t.Fatal(err)
	}
	if plan.CostRatio != c.Ratio() {
		t.Fatal("cost ratio not threaded through")
	}
}
