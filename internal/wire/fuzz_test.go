package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the full decode surface:
// frame framing first, then — when a frame parses — the body decoder of
// whatever opcode the fuzzer forged. The properties under test are
// "never panic" and "never allocate proportionally to a forged count";
// both reads and decodes must fail cleanly on anything malformed.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: one valid frame per opcode family, plus classic
	// corruption shapes, so coverage starts inside the decoders instead
	// of dying at the header check.
	f.Add(AppendFrame(nil, OpSample, 0, 1, SampleReq{Key: "k", N: 10, Workers: 2}.Encode(nil, false)))
	f.Add(AppendFrame(nil, OpSampleStream, FlagUniform, 2, SampleReq{Key: "k", N: 10, Credit: 4}.Encode(nil, true)))
	f.Add(AppendFrame(nil, OpCredit, 0, 2, CreditGrant{N: 64}.Encode(nil)))
	f.Add(AppendFrame(nil, OpAdd, 0, 3, AddReq{Sets: []AddSet{{Key: "a", IDs: []uint64{1, 2, 3}}, {Key: "b", Dynamic: true}}}.Encode(nil)))
	f.Add(AppendFrame(nil, OpRemove, 0, 4, RemoveReq{Key: "d", IDs: []uint64{9}}.Encode(nil)))
	f.Add(AppendFrame(nil, OpReconstruct, FlagDynamic, 5, ReconstructReq{Key: "d"}.Encode(nil)))
	f.Add(AppendFrame(nil, OpIntersection, 0, 6, IntersectionReq{KeyA: "a", KeyB: "b"}.Encode(nil)))
	f.Add(AppendFrame(nil, OpStats, 0, 7, nil))
	f.Add(AppendFrame(nil, OpSampleResult, 0, 8, SampleResult{Requested: 3, IDs: []uint64{1, 2, 3}}.Encode(nil)))
	f.Add(AppendFrame(nil, OpSampleChunk, FlagFinal, 8, SampleChunk{IDs: []uint64{5}}.Encode(nil)))
	f.Add(AppendFrame(nil, OpError, 0, 9, ErrorResult{Code: ErrCodeNotFound, Msg: "x"}.Encode(nil)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1, 0, 0, 0, 0, 0, 0}) // huge declared length
	f.Add(make([]byte, HeaderSize))                               // all-zero header (version 0)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := ReadFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if int(h.Length) != len(body) {
			t.Fatalf("header length %d but %d body bytes", h.Length, len(body))
		}
		// Decode the body as whatever the opcode claims it is. Errors are
		// expected on fuzzed input — panics and runaway allocations are
		// the failures, and those the fuzzer catches natively.
		switch h.Opcode {
		case OpSample:
			_, _ = DecodeSampleReq(body, false)
		case OpSampleStream:
			_, _ = DecodeSampleReq(body, true)
		case OpCredit:
			_, _ = DecodeCreditGrant(body)
		case OpReconstruct:
			_, _ = DecodeReconstructReq(body)
		case OpIntersection:
			_, _ = DecodeIntersectionReq(body)
		case OpAdd:
			_, _ = DecodeAddReq(body)
		case OpRemove:
			_, _ = DecodeRemoveReq(body)
		case OpSampleResult:
			_, _ = DecodeSampleResult(body)
		case OpSampleChunk:
			_, _ = DecodeSampleChunk(body)
		case OpIDsResult:
			_, _ = DecodeIDsResult(body)
		case OpEstimateResult:
			_, _ = DecodeEstimateResult(body)
		case OpAckResult:
			_, _ = DecodeAckResult(body)
		case OpStatsResult:
			_, _ = DecodeStatsResult(body)
		case OpError:
			_, _ = DecodeErrorResult(body)
		}
	})
}
