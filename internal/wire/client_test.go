package wire

import (
	"errors"
	"net"
	"testing"
	"time"
)

// shedServer answers the first shed requests with OpBusy frames, then a
// StatsResult, echoing each request's id. It exercises exactly the
// shape admission control produces: the request did no work, the client
// may safely retry.
func shedServer(t *testing.T, conn net.Conn, sheds int) {
	t.Helper()
	go func() {
		defer conn.Close()
		for {
			h, _, err := ReadFrame(conn, 0)
			if err != nil {
				return // client closed
			}
			if sheds > 0 {
				sheds--
				_ = WriteFrame(conn, OpBusy, 0, h.RequestID, nil)
				continue
			}
			body := StatsResult{JSON: []byte(`{"ok":true}`)}.Encode(nil)
			_ = WriteFrame(conn, OpStatsResult, 0, h.RequestID, body)
		}
	}()
}

func TestClientRetriesBusy(t *testing.T) {
	cc, sc := net.Pipe()
	shedServer(t, sc, 2)
	c := NewClient(cc)
	defer c.Close()
	c.Retries = 3
	c.RetryBase = time.Millisecond
	data, err := c.StatsJSON()
	if err != nil {
		t.Fatalf("StatsJSON with retries: %v", err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("payload %q", data)
	}
}

func TestClientBusySurfacesWithoutRetries(t *testing.T) {
	cc, sc := net.Pipe()
	shedServer(t, sc, 1)
	c := NewClient(cc)
	defer c.Close()
	if _, err := c.StatsJSON(); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	// The same connection still works for the next (unshed) request.
	if _, err := c.StatsJSON(); err != nil {
		t.Fatalf("request after shed: %v", err)
	}
}

func TestClientRetriesExhaust(t *testing.T) {
	cc, sc := net.Pipe()
	shedServer(t, sc, 100)
	c := NewClient(cc)
	defer c.Close()
	c.Retries = 2
	c.RetryBase = time.Microsecond
	if _, err := c.StatsJSON(); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy after exhausting retries", err)
	}
}

func TestBackoffBoundedWithJitter(t *testing.T) {
	c := &Client{RetryBase: 10 * time.Millisecond}
	for attempt := 0; attempt < 12; attempt++ {
		want := 10 * time.Millisecond << attempt
		if want > 500*time.Millisecond {
			want = 500 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < want/2 || d >= want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}
