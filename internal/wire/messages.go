package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Body size sanity bounds. Decoders cap declared element counts by what
// the body could physically hold (one byte minimum per element), so a
// forged count can never drive a huge allocation from a tiny frame.
const (
	// MaxKeyLen bounds a set key on the wire; the HTTP surface has no
	// explicit key cap, but a multi-megabyte key is an attack, not a key.
	MaxKeyLen = 4096
)

// bodyReader walks a frame body. All take-methods fail with ErrMalformed
// (wrapped with field context) instead of panicking; after the first
// failure every subsequent take returns the zero value.
type bodyReader struct {
	b   []byte
	err error
}

func newBodyReader(b []byte) *bodyReader { return &bodyReader{b: b} }

func (r *bodyReader) fail(field string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: field %s", ErrMalformed, field)
	}
}

// uvarint takes one unsigned varint.
func (r *bodyReader) uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(field)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// str takes one length-prefixed string, bounded by max bytes.
func (r *bodyReader) str(field string, max int) string {
	n := r.uvarint(field)
	if r.err != nil {
		return ""
	}
	if n > uint64(max) || n > uint64(len(r.b)) {
		r.fail(field)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// ids takes a count-prefixed id list. The count is validated against the
// remaining body length (each id costs at least one byte) before any
// allocation.
func (r *bodyReader) ids(field string) []uint64 {
	n := r.uvarint(field + ".count")
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(field + ".count")
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.uvarint(field))
		if r.err != nil {
			return nil
		}
	}
	return out
}

// done checks that the body was consumed exactly — trailing bytes are a
// protocol error for the same reason trailing JSON is on the HTTP side.
func (r *bodyReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b))
	}
	return nil
}

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendIDs(dst []byte, ids []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, id)
	}
	return dst
}

// SampleReq is the body of OpSample and OpSampleStream. Dynamic/Uniform
// travel as header flags, not body fields. Credit is only meaningful for
// OpSampleStream: the number of samples the server may send before it
// must wait for an OpCredit grant (0 means "no initial credit" — the
// client grants separately).
type SampleReq struct {
	Key     string
	N       uint64
	Workers uint64
	Credit  uint64
}

// Encode appends the body to dst. The stream form always carries the
// credit field; the buffered form omits it.
func (m SampleReq) Encode(dst []byte, stream bool) []byte {
	dst = appendString(dst, m.Key)
	dst = appendUvarint(dst, m.N)
	dst = appendUvarint(dst, m.Workers)
	if stream {
		dst = appendUvarint(dst, m.Credit)
	}
	return dst
}

// DecodeSampleReq parses the body of OpSample/OpSampleStream.
func DecodeSampleReq(body []byte, stream bool) (SampleReq, error) {
	r := newBodyReader(body)
	m := SampleReq{
		Key:     r.str("key", MaxKeyLen),
		N:       r.uvarint("n"),
		Workers: r.uvarint("workers"),
	}
	if stream {
		m.Credit = r.uvarint("credit")
	}
	return m, r.done()
}

// CreditGrant is the body of OpCredit: N more samples for the stream
// identified by the frame's request id.
type CreditGrant struct{ N uint64 }

func (m CreditGrant) Encode(dst []byte) []byte { return appendUvarint(dst, m.N) }

func DecodeCreditGrant(body []byte) (CreditGrant, error) {
	r := newBodyReader(body)
	m := CreditGrant{N: r.uvarint("credit")}
	return m, r.done()
}

// ReconstructReq is the body of OpReconstruct (dynamic via FlagDynamic).
type ReconstructReq struct{ Key string }

func (m ReconstructReq) Encode(dst []byte) []byte { return appendString(dst, m.Key) }

func DecodeReconstructReq(body []byte) (ReconstructReq, error) {
	r := newBodyReader(body)
	m := ReconstructReq{Key: r.str("key", MaxKeyLen)}
	return m, r.done()
}

// IntersectionReq is the body of OpIntersection.
type IntersectionReq struct{ KeyA, KeyB string }

func (m IntersectionReq) Encode(dst []byte) []byte {
	dst = appendString(dst, m.KeyA)
	return appendString(dst, m.KeyB)
}

func DecodeIntersectionReq(body []byte) (IntersectionReq, error) {
	r := newBodyReader(body)
	m := IntersectionReq{KeyA: r.str("key_a", MaxKeyLen), KeyB: r.str("key_b", MaxKeyLen)}
	return m, r.done()
}

// AddSet is one key's pending writes within an AddReq.
type AddSet struct {
	Key     string
	Dynamic bool
	IDs     []uint64
}

// AddReq is the body of OpAdd: a set count, then per set key / dynamic
// byte / id list. A single-key add is simply a one-set batch — unlike
// the JSON API there is no separate single shape, because the encoding
// overhead a second shape would save is two bytes.
type AddReq struct{ Sets []AddSet }

func (m AddReq) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.Sets)))
	for _, set := range m.Sets {
		dst = appendString(dst, set.Key)
		d := byte(0)
		if set.Dynamic {
			d = 1
		}
		dst = append(dst, d)
		dst = appendIDs(dst, set.IDs)
	}
	return dst
}

func DecodeAddReq(body []byte) (AddReq, error) {
	r := newBodyReader(body)
	n := r.uvarint("sets.count")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("sets.count")
	}
	m := AddReq{}
	if r.err == nil {
		m.Sets = make([]AddSet, 0, n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		set := AddSet{Key: r.str("sets.key", MaxKeyLen)}
		if r.err == nil {
			if len(r.b) == 0 {
				r.fail("sets.dynamic")
			} else {
				set.Dynamic = r.b[0] != 0
				r.b = r.b[1:]
			}
		}
		set.IDs = r.ids("sets.ids")
		m.Sets = append(m.Sets, set)
	}
	return m, r.done()
}

// RemoveReq is the body of OpRemove (dynamic sets only, all-or-nothing).
type RemoveReq struct {
	Key string
	IDs []uint64
}

func (m RemoveReq) Encode(dst []byte) []byte {
	dst = appendString(dst, m.Key)
	return appendIDs(dst, m.IDs)
}

func DecodeRemoveReq(body []byte) (RemoveReq, error) {
	r := newBodyReader(body)
	m := RemoveReq{Key: r.str("key", MaxKeyLen), IDs: r.ids("ids")}
	return m, r.done()
}

// SampleResult is the body of OpSampleResult: the buffered response.
// Returned == len(IDs) on the wire but travels explicitly so a client
// can pre-validate before decoding the id list.
type SampleResult struct {
	Requested uint64
	IDs       []uint64
}

func (m SampleResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, m.Requested)
	return appendIDs(dst, m.IDs)
}

func DecodeSampleResult(body []byte) (SampleResult, error) {
	r := newBodyReader(body)
	m := SampleResult{Requested: r.uvarint("requested"), IDs: r.ids("ids")}
	return m, r.done()
}

// SampleChunk is the body of OpSampleChunk: one chunk of a streaming
// response. The final chunk carries FlagFinal (and may be empty).
type SampleChunk struct{ IDs []uint64 }

func (m SampleChunk) Encode(dst []byte) []byte { return appendIDs(dst, m.IDs) }

func DecodeSampleChunk(body []byte) (SampleChunk, error) {
	r := newBodyReader(body)
	m := SampleChunk{IDs: r.ids("ids")}
	return m, r.done()
}

// IDsResult is the body of OpIDsResult (reconstruction).
type IDsResult struct{ IDs []uint64 }

func (m IDsResult) Encode(dst []byte) []byte { return appendIDs(dst, m.IDs) }

func DecodeIDsResult(body []byte) (IDsResult, error) {
	r := newBodyReader(body)
	m := IDsResult{IDs: r.ids("ids")}
	return m, r.done()
}

// EstimateResult is the body of OpEstimateResult. The float64 crosses
// the wire as its IEEE-754 bits in a varint (small payloads for the
// common small estimates would need a fixed 8 bytes anyway; the varint
// keeps the body format uniform).
type EstimateResult struct{ Estimate float64 }

func (m EstimateResult) Encode(dst []byte) []byte {
	return appendUvarint(dst, math.Float64bits(m.Estimate))
}

func DecodeEstimateResult(body []byte) (EstimateResult, error) {
	r := newBodyReader(body)
	m := EstimateResult{Estimate: math.Float64frombits(r.uvarint("estimate"))}
	return m, r.done()
}

// AckResult is the body of OpAckResult: Count ids written/removed across
// Keys keys.
type AckResult struct {
	Count uint64
	Keys  uint64
}

func (m AckResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, m.Count)
	return appendUvarint(dst, m.Keys)
}

func DecodeAckResult(body []byte) (AckResult, error) {
	r := newBodyReader(body)
	m := AckResult{Count: r.uvarint("count"), Keys: r.uvarint("keys")}
	return m, r.done()
}

// StatsResult is the body of OpStatsResult: the /v1/stats JSON document,
// length-prefixed. Stats is an operator surface, not a hot path — reusing
// the JSON shape keeps one schema for both protocols, and the binary
// framing still saves the HTTP envelope.
type StatsResult struct{ JSON []byte }

func (m StatsResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.JSON)))
	return append(dst, m.JSON...)
}

func DecodeStatsResult(body []byte) (StatsResult, error) {
	r := newBodyReader(body)
	n := r.uvarint("json.len")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("json.len")
	}
	m := StatsResult{}
	if r.err == nil {
		m.JSON = append([]byte(nil), r.b[:n]...)
		r.b = r.b[n:]
	}
	return m, r.done()
}

// SnapshotInfoResult is the body of OpSnapshotResult: the snapshot
// descriptor as JSON (the same document POST /v1/snapshot returns),
// length-prefixed like StatsResult — snapshots are an operator surface.
type SnapshotInfoResult struct{ JSON []byte }

func (m SnapshotInfoResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.JSON)))
	return append(dst, m.JSON...)
}

func DecodeSnapshotInfoResult(body []byte) (SnapshotInfoResult, error) {
	r := newBodyReader(body)
	n := r.uvarint("json.len")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("json.len")
	}
	m := SnapshotInfoResult{}
	if r.err == nil {
		m.JSON = append([]byte(nil), r.b[:n]...)
		r.b = r.b[n:]
	}
	return m, r.done()
}

// RestoreReq is the body of OpRestore: a complete restore bundle
// (setdb.WriteBundleTo bytes), length-prefixed. The frame-body cap
// bounds it — bundles beyond the server's MaxBodyBytes must use the
// HTTP surface, which streams.
type RestoreReq struct{ Data []byte }

func (m RestoreReq) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(m.Data)))
	return append(dst, m.Data...)
}

func DecodeRestoreReq(body []byte) (RestoreReq, error) {
	r := newBodyReader(body)
	n := r.uvarint("data.len")
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("data.len")
	}
	m := RestoreReq{}
	if r.err == nil {
		m.Data = append([]byte(nil), r.b[:n]...)
		r.b = r.b[n:]
	}
	return m, r.done()
}

// ErrorResult is the body of OpError.
type ErrorResult struct {
	Code uint64
	Msg  string
}

func (m ErrorResult) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, m.Code)
	return appendString(dst, m.Msg)
}

func DecodeErrorResult(body []byte) (ErrorResult, error) {
	r := newBodyReader(body)
	m := ErrorResult{Code: r.uvarint("code"), Msg: r.str("msg", 64<<10)}
	return m, r.done()
}

// Error renders an ErrorResult as a client-side error value.
func (m ErrorResult) Error() string { return fmt.Sprintf("wire: server error %d: %s", m.Code, m.Msg) }
