package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrBusy is returned when the server sheds the request via admission
// control (OpBusy or an ErrCodeBusy error frame). The request did no
// work server-side; the caller may retry, ideally after backing off.
var ErrBusy = errors.New("wire: server busy, request shed")

// Client is a synchronous client for the binary protocol: one request
// outstanding at a time per Client. It is not safe for concurrent use —
// open one Client per goroutine (connections are cheap; the server's
// per-connection state is a few hundred bytes). The server side supports
// pipelining; this client simply doesn't need it for load generation and
// tests, and a synchronous client cannot deadlock itself on flow control.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	nextID  uint32
	maxBody int
	scratch []byte

	// Timeout bounds each request round-trip (and each chunk of a
	// stream). Zero means no deadline.
	Timeout time.Duration

	// Retries is how many times a request shed by admission control
	// (ErrBusy) is retried before the error surfaces. A shed request did
	// no server-side work, so retrying is always safe — including writes.
	// Zero keeps the old fail-fast behavior.
	Retries int
	// RetryBase is the first retry's backoff (default 5ms). Subsequent
	// attempts double it, capped at 500ms, each with random jitter so a
	// fleet of shed clients does not return in lockstep.
	RetryBase time.Duration

	rngState uint64
}

// Dial connects to a binary-protocol listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		maxBody: DefaultMaxBody,
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// send writes one frame and flushes.
func (c *Client) send(op, flags byte, reqID uint32, body []byte) error {
	c.scratch = AppendFrame(c.scratch[:0], op, flags, reqID, body)
	if _, err := c.bw.Write(c.scratch); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads the next frame for reqID, surfacing OpBusy/OpError as Go
// errors. Frames for other request ids are a protocol violation for this
// synchronous client (it never has two requests outstanding).
func (c *Client) recv(reqID uint32) (Header, []byte, error) {
	h, body, err := ReadFrame(c.br, c.maxBody)
	if err != nil {
		return h, nil, err
	}
	if h.RequestID != reqID {
		return h, nil, fmt.Errorf("%w: response for request %d, want %d", ErrMalformed, h.RequestID, reqID)
	}
	switch h.Opcode {
	case OpBusy:
		return h, nil, ErrBusy
	case OpError:
		er, derr := DecodeErrorResult(body)
		if derr != nil {
			return h, nil, derr
		}
		if er.Code == ErrCodeBusy {
			return h, nil, ErrBusy
		}
		return h, nil, er
	}
	return h, body, nil
}

// backoff returns the sleep before retry attempt (0-based): capped
// exponential growth with jitter drawn from the upper half.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	const maxBackoff = 500 * time.Millisecond
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	// xorshift64 jitter in [d/2, d): cheap, no locking, and good enough
	// to de-synchronize retrying clients.
	if c.rngState == 0 {
		c.rngState = uint64(time.Now().UnixNano()) | 1
	}
	c.rngState ^= c.rngState << 13
	c.rngState ^= c.rngState >> 7
	c.rngState ^= c.rngState << 17
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + c.rngState%half)
}

// roundTrip sends one request and returns the single response frame,
// retrying shed (ErrBusy) requests per the Retries policy.
func (c *Client) roundTrip(op, flags byte, body []byte, wantOp byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTripOnce(op, flags, body, wantOp)
		if err == nil || !errors.Is(err, ErrBusy) || attempt >= c.Retries {
			return resp, err
		}
		time.Sleep(c.backoff(attempt))
	}
}

// roundTripOnce sends one request and returns the single response frame,
// checking its opcode.
func (c *Client) roundTripOnce(op, flags byte, body []byte, wantOp byte) ([]byte, error) {
	if c.Timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, err
		}
	}
	c.nextID++
	id := c.nextID
	if err := c.send(op, flags, id, body); err != nil {
		return nil, err
	}
	h, resp, err := c.recv(id)
	if err != nil {
		return nil, err
	}
	if h.Opcode != wantOp {
		return nil, fmt.Errorf("%w: opcode %d, want %d", ErrMalformed, h.Opcode, wantOp)
	}
	return resp, nil
}

// SampleOpts selects the sampling mode of Sample/SampleStream.
type SampleOpts struct {
	Workers int
	Dynamic bool
	Uniform bool
}

func (o SampleOpts) flags() byte {
	var f byte
	if o.Dynamic {
		f |= FlagDynamic
	}
	if o.Uniform {
		f |= FlagUniform
	}
	return f
}

// Sample draws n samples in one buffered response.
func (c *Client) Sample(key string, n int, o SampleOpts) ([]uint64, error) {
	body := SampleReq{Key: key, N: uint64(n), Workers: uint64(o.Workers)}.Encode(nil, false)
	resp, err := c.roundTrip(OpSample, o.flags(), body, OpSampleResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeSampleResult(resp)
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// SampleStream draws n samples as a credit-controlled stream, calling
// emit for each chunk. window is the credit window in samples (0 uses a
// sensible default): the server never has more than window samples sent
// but unacknowledged, and the client grants credit back as emit returns —
// a slow consumer therefore stalls the server's drawing instead of
// buffering the whole batch in either process.
func (c *Client) SampleStream(key string, n int, o SampleOpts, window int, emit func(ids []uint64) error) error {
	for attempt := 0; ; attempt++ {
		emitted := false
		err := c.sampleStreamOnce(key, n, o, window, func(ids []uint64) error {
			emitted = true
			return emit(ids)
		})
		// Retry only a stream shed before its first chunk: once samples
		// have been emitted a retry would replay them to the consumer.
		if err == nil || emitted || !errors.Is(err, ErrBusy) || attempt >= c.Retries {
			return err
		}
		time.Sleep(c.backoff(attempt))
	}
}

func (c *Client) sampleStreamOnce(key string, n int, o SampleOpts, window int, emit func(ids []uint64) error) error {
	if window <= 0 {
		window = 8192
	}
	if window > n {
		window = n
	}
	c.nextID++
	id := c.nextID
	body := SampleReq{Key: key, N: uint64(n), Workers: uint64(o.Workers), Credit: uint64(window)}.Encode(nil, true)
	if c.Timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return err
		}
	}
	if err := c.send(OpSampleStream, o.flags(), id, body); err != nil {
		return err
	}
	for {
		if c.Timeout > 0 {
			if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
				return err
			}
		}
		h, resp, err := c.recv(id)
		if err != nil {
			return err
		}
		if h.Opcode != OpSampleChunk {
			return fmt.Errorf("%w: opcode %d mid-stream, want %d", ErrMalformed, h.Opcode, OpSampleChunk)
		}
		chunk, err := DecodeSampleChunk(resp)
		if err != nil {
			return err
		}
		if len(chunk.IDs) > 0 {
			if err := emit(chunk.IDs); err != nil {
				return err
			}
		}
		if h.Flags&FlagFinal != 0 {
			return nil
		}
		// Consumed: grant the credit back so the server draws the next
		// window. Granting after emit (not before) is what makes the
		// window a real consumption bound.
		if len(chunk.IDs) > 0 {
			if err := c.send(OpCredit, 0, id, CreditGrant{N: uint64(len(chunk.IDs))}.Encode(nil)); err != nil {
				return err
			}
		}
	}
}

// Add writes one or more sets through the group-commit path.
func (c *Client) Add(sets ...AddSet) (AckResult, error) {
	resp, err := c.roundTrip(OpAdd, 0, AddReq{Sets: sets}.Encode(nil), OpAckResult)
	if err != nil {
		return AckResult{}, err
	}
	return DecodeAckResult(resp)
}

// Remove removes ids from a dynamic set (all-or-nothing).
func (c *Client) Remove(key string, ids []uint64) (AckResult, error) {
	resp, err := c.roundTrip(OpRemove, 0, RemoveReq{Key: key, IDs: ids}.Encode(nil), OpAckResult)
	if err != nil {
		return AckResult{}, err
	}
	return DecodeAckResult(resp)
}

// Reconstruct returns the full contents of a stored set.
func (c *Client) Reconstruct(key string, dynamic bool) ([]uint64, error) {
	var flags byte
	if dynamic {
		flags = FlagDynamic
	}
	resp, err := c.roundTrip(OpReconstruct, flags, ReconstructReq{Key: key}.Encode(nil), OpIDsResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeIDsResult(resp)
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// Intersection estimates |A ∩ B| for two stored sets.
func (c *Client) Intersection(keyA, keyB string) (float64, error) {
	resp, err := c.roundTrip(OpIntersection, 0, IntersectionReq{KeyA: keyA, KeyB: keyB}.Encode(nil), OpEstimateResult)
	if err != nil {
		return 0, err
	}
	res, err := DecodeEstimateResult(resp)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Snapshot triggers a durability snapshot and returns its descriptor
// (same JSON schema as POST /v1/snapshot).
func (c *Client) Snapshot() ([]byte, error) {
	resp, err := c.roundTrip(OpSnapshot, 0, nil, OpSnapshotResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeSnapshotInfoResult(resp)
	if err != nil {
		return nil, err
	}
	return res.JSON, nil
}

// Restore replaces the server's database with the given restore bundle
// (setdb.WriteBundleTo bytes). Bundles larger than the server's frame
// body cap must use POST /v1/restore instead.
func (c *Client) Restore(bundle []byte) (AckResult, error) {
	resp, err := c.roundTrip(OpRestore, 0, RestoreReq{Data: bundle}.Encode(nil), OpAckResult)
	if err != nil {
		return AckResult{}, err
	}
	return DecodeAckResult(resp)
}

// StatsJSON returns the server's stats document (same JSON schema as
// GET /v1/stats).
func (c *Client) StatsJSON() ([]byte, error) {
	resp, err := c.roundTrip(OpStats, 0, nil, OpStatsResult)
	if err != nil {
		return nil, err
	}
	res, err := DecodeStatsResult(resp)
	if err != nil {
		return nil, err
	}
	return res.JSON, nil
}
