// Package wire is the compact binary protocol of the serving tier — the
// length-prefixed frame format spoken on bstserved's -bin-addr listener,
// next to (not instead of) the HTTP/JSON API.
//
// Every frame is a fixed 12-byte header followed by a varint-encoded
// body:
//
//	offset  size  field
//	0       4     body length (uint32, little-endian; header excluded)
//	4       1     protocol version (Version)
//	5       1     opcode
//	6       1     flags
//	7       1     reserved, must be zero
//	8       4     request id (uint32, little-endian)
//
// The request id correlates pipelined responses with their requests: a
// client may have many requests outstanding on one connection, and the
// server answers each with frames carrying the same id. Streaming sample
// responses reuse the id as the stream id — chunk frames, credit grants
// and the final chunk all carry it.
//
// Bodies are built from two primitives only: unsigned varints
// (encoding/binary's Uvarint) and length-prefixed byte strings. Field
// order is fixed per opcode; see messages.go. There is no framing inside
// a body — a body either decodes completely or the frame is a protocol
// error, and decoders never panic on hostile input (FuzzDecodeFrame
// pins that).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version carried by every frame. A server
// receiving any other version answers with an ErrCodeVersion error frame
// and closes the connection — there is no negotiation.
const Version = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 12

// DefaultMaxBody bounds a frame body when the reader does not say
// otherwise. It matches the HTTP API's default request-body cap.
const DefaultMaxBody = 1 << 20

// Opcodes. Requests flow client→server, responses server→client; the
// ranges do not overlap so a trace is unambiguous about direction.
const (
	// Requests.
	OpSample       byte = 1  // SampleReq → OpSampleResult (buffered)
	OpSampleStream byte = 2  // SampleReq → OpSampleChunk frames, last one FlagFinal
	OpCredit       byte = 3  // CreditGrant: replenish a stream's sample credit
	OpReconstruct  byte = 4  // ReconstructReq → OpIDsResult
	OpIntersection byte = 5  // IntersectionReq → OpEstimateResult
	OpAdd          byte = 6  // AddReq → OpAckResult
	OpRemove       byte = 7  // RemoveReq → OpAckResult
	OpStats        byte = 8  // empty body → OpStatsResult
	OpSnapshot     byte = 9  // empty body: trigger a durability snapshot → OpSnapshotResult
	OpRestore      byte = 10 // RestoreReq (a bundle) → OpAckResult

	// Responses.
	OpSampleResult   byte = 16 // SampleResult
	OpSampleChunk    byte = 17 // SampleChunk (stream; FlagFinal on the last)
	OpIDsResult      byte = 18 // IDsResult (reconstruction)
	OpEstimateResult byte = 19 // EstimateResult (intersection)
	OpAckResult      byte = 20 // AckResult (add/remove/restore)
	OpStatsResult    byte = 21 // StatsResult (JSON payload)
	OpSnapshotResult byte = 22 // SnapshotInfoResult (JSON payload)
	OpBusy           byte = 30 // empty body: admission control shed this request; retry later
	OpError          byte = 31 // ErrorResult
)

// Flags.
const (
	// FlagDynamic selects the counting-set (deletable) storage kind on
	// sample/reconstruct requests, mirroring the JSON "dynamic" field.
	FlagDynamic byte = 1 << 0
	// FlagUniform selects the rejection-corrected exactly-uniform sampler
	// on sample requests (plain sets only).
	FlagUniform byte = 1 << 1
	// FlagFinal marks the last chunk frame of a streaming response.
	FlagFinal byte = 1 << 2
)

// Error codes carried by OpError frames. They deliberately shadow the
// HTTP statuses the JSON API maps the same conditions onto, so one
// client-side error taxonomy covers both surfaces.
const (
	ErrCodeBadRequest uint64 = 400
	ErrCodeNotFound   uint64 = 404
	ErrCodeConflict   uint64 = 409
	ErrCodeTooLarge   uint64 = 413
	ErrCodeBusy       uint64 = 429 // also signaled headerlessly by OpBusy
	ErrCodeTimeout    uint64 = 408 // peer too slow (e.g. a stream starved of credit)
	ErrCodeInternal   uint64 = 500
	ErrCodeVersion    uint64 = 505
	ErrCodeShutdown   uint64 = 503 // server is draining; connection will close
)

// Protocol errors returned by the decoders. All hostile-input failures
// map onto one of these (possibly wrapped with detail), never a panic.
var (
	// ErrTruncated marks a frame or body that ended before its declared
	// length — an interrupted peer or a corrupt stream.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrFrameTooLarge marks a header declaring a body above the reader's
	// limit. The connection cannot be resynchronized past it (the next
	// header offset is unknown to a reader that refuses the body), so
	// callers close on it.
	ErrFrameTooLarge = errors.New("wire: frame body exceeds limit")
	// ErrVersion marks a frame from a different protocol version.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrMalformed marks a body whose varint structure does not decode.
	ErrMalformed = errors.New("wire: malformed frame body")
	// ErrReserved marks a header with a nonzero reserved byte.
	ErrReserved = errors.New("wire: reserved header byte is nonzero")
)

// Header is the decoded fixed prefix of one frame.
type Header struct {
	Length    uint32 // body bytes following the header
	Version   byte
	Opcode    byte
	Flags     byte
	RequestID uint32
}

// AppendFrame appends one complete frame (header + body) to dst and
// returns the extended slice. body may be nil for empty-body opcodes.
func AppendFrame(dst []byte, op, flags byte, requestID uint32, body []byte) []byte {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	hdr[4] = Version
	hdr[5] = op
	hdr[6] = flags
	hdr[7] = 0
	binary.LittleEndian.PutUint32(hdr[8:12], requestID)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// DecodeHeader decodes the fixed 12-byte prefix. It validates version
// and the reserved byte but not the length bound — the caller owns the
// body-size policy (ReadFrame applies one).
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrTruncated
	}
	h := Header{
		Length:    binary.LittleEndian.Uint32(b[0:4]),
		Version:   b[4],
		Opcode:    b[5],
		Flags:     b[6],
		RequestID: binary.LittleEndian.Uint32(b[8:12]),
	}
	if h.Version != Version {
		return h, fmt.Errorf("%w: got %d, want %d", ErrVersion, h.Version, Version)
	}
	if b[7] != 0 {
		return h, ErrReserved
	}
	return h, nil
}

// ReadFrame reads one frame from r, rejecting bodies above maxBody
// (maxBody <= 0 means DefaultMaxBody). On ErrFrameTooLarge the body has
// not been consumed and the stream is unrecoverable; close it.
func ReadFrame(r io.Reader, maxBody int) (Header, []byte, error) {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, nil, ErrTruncated
		}
		return Header{}, nil, err // clean EOF between frames stays io.EOF
	}
	h, err := DecodeHeader(hdr[:])
	if err != nil {
		return h, nil, err
	}
	if int64(h.Length) > int64(maxBody) {
		return h, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, h.Length, maxBody)
	}
	if h.Length == 0 {
		return h, nil, nil
	}
	body := make([]byte, h.Length)
	if _, err := io.ReadFull(r, body); err != nil {
		return h, nil, ErrTruncated
	}
	return h, body, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, op, flags byte, requestID uint32, body []byte) error {
	_, err := w.Write(AppendFrame(nil, op, flags, requestID, body))
	return err
}
