package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	body := SampleReq{Key: "plain", N: 100, Workers: 4, Credit: 8}.Encode(nil, true)
	frame := AppendFrame(nil, OpSampleStream, FlagDynamic, 7, body)
	h, got, err := ReadFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Opcode != OpSampleStream || h.Flags != FlagDynamic || h.RequestID != 7 || h.Version != Version {
		t.Fatalf("header mismatch: %+v", h)
	}
	if int(h.Length) != len(body) || !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: %d bytes, want %d", len(got), len(body))
	}
	m, err := DecodeSampleReq(got, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Key != "plain" || m.N != 100 || m.Workers != 4 || m.Credit != 8 {
		t.Fatalf("message mismatch: %+v", m)
	}
}

func TestEmptyBodyFrame(t *testing.T) {
	frame := AppendFrame(nil, OpStats, 0, 3, nil)
	h, body, err := ReadFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Opcode != OpStats || len(body) != 0 {
		t.Fatalf("got opcode %d, %d body bytes", h.Opcode, len(body))
	}
}

// TestReadFrameErrors is the table of hostile frame prefixes: every one
// must come back as a clean protocol error, never a panic or a hang.
func TestReadFrameErrors(t *testing.T) {
	valid := AppendFrame(nil, OpSample, 0, 1, []byte{1, 2, 3})
	oversized := AppendFrame(nil, OpSample, 0, 1, make([]byte, 100))
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[4] = Version + 1
	reserved := append([]byte(nil), valid...)
	reserved[7] = 0xFF
	cases := []struct {
		name    string
		data    []byte
		maxBody int
		want    error
	}{
		{"empty input", nil, 0, io.EOF},
		{"truncated header", valid[:5], 0, ErrTruncated},
		{"truncated body", valid[:HeaderSize+1], 0, ErrTruncated},
		{"oversized body", oversized, 10, ErrFrameTooLarge},
		{"version mismatch", wrongVersion, 0, ErrVersion},
		{"reserved byte set", reserved, 0, ErrReserved},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.data), tc.maxBody)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeBodyErrors is the table of hostile bodies per message type:
// truncated varints, forged counts larger than the body, oversized
// strings, and trailing garbage all fail with ErrMalformed.
func TestDecodeBodyErrors(t *testing.T) {
	goodSample := SampleReq{Key: "k", N: 5}.Encode(nil, false)
	cases := []struct {
		name   string
		decode func([]byte) error
		body   []byte
	}{
		{"sample: empty", func(b []byte) error { _, err := DecodeSampleReq(b, false); return err }, nil},
		{"sample: truncated", func(b []byte) error { _, err := DecodeSampleReq(b, false); return err }, goodSample[:2]},
		{"sample: trailing bytes", func(b []byte) error { _, err := DecodeSampleReq(b, false); return err }, append(append([]byte(nil), goodSample...), 0)},
		{"sample: key too long", func(b []byte) error { _, err := DecodeSampleReq(b, false); return err },
			SampleReq{Key: string(make([]byte, MaxKeyLen+1)), N: 1}.Encode(nil, false)},
		{"sample: missing credit", func(b []byte) error { _, err := DecodeSampleReq(b, true); return err }, goodSample},
		{"credit: empty", func(b []byte) error { _, err := DecodeCreditGrant(b); return err }, nil},
		{"add: forged set count", func(b []byte) error { _, err := DecodeAddReq(b); return err }, []byte{0xFF, 0xFF, 0x01}},
		{"add: missing dynamic byte", func(b []byte) error { _, err := DecodeAddReq(b); return err }, []byte{1, 1, 'k'}},
		{"remove: forged id count", func(b []byte) error { _, err := DecodeRemoveReq(b); return err }, []byte{1, 'k', 0xF0}},
		{"ids result: forged count", func(b []byte) error { _, err := DecodeIDsResult(b); return err }, []byte{0xFF, 0xFF, 0xFF, 0x7F}},
		{"stats: forged length", func(b []byte) error { _, err := DecodeStatsResult(b); return err }, []byte{0x80, 0x80, 0x04, 'x'}},
		{"error: oversized msg", func(b []byte) error { _, err := DecodeErrorResult(b); return err }, []byte{1, 0xFF, 0xFF, 0x7F}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.decode(tc.body)
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("got %v, want ErrMalformed", err)
			}
		})
	}
}

func TestMessageRoundTrips(t *testing.T) {
	ids := []uint64{0, 1, 7, 1 << 40, math.MaxUint64}
	t.Run("add", func(t *testing.T) {
		in := AddReq{Sets: []AddSet{
			{Key: "a", IDs: ids},
			{Key: "b", Dynamic: true, IDs: nil},
		}}
		out, err := DecodeAddReq(in.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Sets) != 2 || out.Sets[0].Key != "a" || !out.Sets[1].Dynamic {
			t.Fatalf("mismatch: %+v", out)
		}
		if !reflect.DeepEqual(out.Sets[0].IDs, ids) {
			t.Fatalf("ids mismatch: %v", out.Sets[0].IDs)
		}
	})
	t.Run("remove", func(t *testing.T) {
		out, err := DecodeRemoveReq(RemoveReq{Key: "k", IDs: ids}.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if out.Key != "k" || !reflect.DeepEqual(out.IDs, ids) {
			t.Fatalf("mismatch: %+v", out)
		}
	})
	t.Run("sample result", func(t *testing.T) {
		out, err := DecodeSampleResult(SampleResult{Requested: 9, IDs: ids}.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if out.Requested != 9 || !reflect.DeepEqual(out.IDs, ids) {
			t.Fatalf("mismatch: %+v", out)
		}
	})
	t.Run("estimate", func(t *testing.T) {
		for _, v := range []float64{0, 1.5, -3.25, math.Inf(1), 12345.678} {
			out, err := DecodeEstimateResult(EstimateResult{Estimate: v}.Encode(nil))
			if err != nil {
				t.Fatal(err)
			}
			if out.Estimate != v {
				t.Fatalf("got %v, want %v", out.Estimate, v)
			}
		}
	})
	t.Run("intersection", func(t *testing.T) {
		out, err := DecodeIntersectionReq(IntersectionReq{KeyA: "x", KeyB: "y"}.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if out.KeyA != "x" || out.KeyB != "y" {
			t.Fatalf("mismatch: %+v", out)
		}
	})
	t.Run("stats", func(t *testing.T) {
		doc := []byte(`{"ok":true}`)
		out, err := DecodeStatsResult(StatsResult{JSON: doc}.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.JSON, doc) {
			t.Fatalf("mismatch: %s", out.JSON)
		}
	})
	t.Run("error", func(t *testing.T) {
		out, err := DecodeErrorResult(ErrorResult{Code: ErrCodeNotFound, Msg: "no set"}.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if out.Code != ErrCodeNotFound || out.Msg != "no set" {
			t.Fatalf("mismatch: %+v", out)
		}
	})
}

// TestForgedCountNoHugeAlloc pins the allocation guard: a tiny frame
// declaring 2^60 ids must fail fast instead of attempting the make().
func TestForgedCountNoHugeAlloc(t *testing.T) {
	var body []byte
	body = appendUvarint(body, 1<<60)
	if _, err := DecodeSampleChunk(body); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}
