package workload

import (
	"fmt"
	"math/rand"
)

// UniformSet draws n distinct elements uniformly at random from [0, M)
// without replacement (§7.1 "Uniform sets").
func UniformSet(rng *rand.Rand, M uint64, n int) ([]uint64, error) {
	if uint64(n) > M {
		return nil, fmt.Errorf("workload: n = %d exceeds namespace %d", n, M)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative n = %d", n)
	}
	// Rejection with a set is O(n) expected while n << M; for dense draws
	// (n > M/2) invert the selection to keep the bound.
	if uint64(n)*2 > M {
		excluded, err := UniformSet(rng, M, int(M)-n)
		if err != nil {
			return nil, err
		}
		ex := make(map[uint64]bool, len(excluded))
		for _, x := range excluded {
			ex[x] = true
		}
		out := make([]uint64, 0, n)
		for x := uint64(0); x < M; x++ {
			if !ex[x] {
				out = append(out, x)
			}
		}
		return out, nil
	}
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		x := rng.Uint64() % M
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out, nil
}

// DefaultClusterP is the paper's degree-of-clustering parameter: "For our
// experiments, we have used p = 10" (§7.1).
const DefaultClusterP = 10

// ClusteredSet generates n distinct elements of [0, M) with the paper's
// pdf-splitting procedure (§7.1): the pdf starts uniform; after each draw
// s, pdf(s) is split equally between its nearest still-live neighbours x
// (below) and y (above) and pdf(s) is zeroed, so later draws cluster
// around earlier ones. With p > 0, p% of every element's probability is
// additionally subtracted and folded into x and y, clustering more
// aggressively.
//
// The procedure is implemented exactly, but the O(M) "subtract p% from
// every element" step is realized as an O(1) global rescale of a Fenwick
// tree plus two point updates, so the whole generation costs O(n·log M).
func ClusteredSet(rng *rand.Rand, M uint64, n int, p float64) ([]uint64, error) {
	if uint64(n) > M {
		return nil, fmt.Errorf("workload: n = %d exceeds namespace %d", n, M)
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative n = %d", n)
	}
	if p < 0 || p >= 100 {
		return nil, fmt.Errorf("workload: clustering p = %v out of [0,100)", p)
	}
	if M > 1<<31 {
		return nil, fmt.Errorf("workload: namespace %d too large for exact pdf (use cluster centers instead)", M)
	}
	m := int(M)
	pdf := NewFenwick(m, 1)
	// live tracks indices with pdf > 0 for neighbour queries: a Fenwick of
	// 0/1 indicators supports predecessor/successor by rank.
	live := NewFenwick(m, 1)
	out := make([]uint64, 0, n)

	for len(out) < n {
		total := pdf.Total()
		s := pdf.Select(rng.Float64() * total)
		ws := pdf.Weight(s)
		if ws <= 0 {
			// Floating-point edge: Select landed on a zeroed cell; retry.
			continue
		}
		out = append(out, uint64(s))

		// Neighbours: nearest live x < s and y > s.
		x, hasX := predecessorLive(live, s)
		y, hasY := successorLive(live, s)

		// Zero pdf(s) and mark dead.
		pdf.Add(s, -ws)
		live.Add(s, -1)

		// The mass to redistribute: pdf(s), plus p% of all remaining mass.
		redistribute := ws
		if p > 0 {
			remaining := pdf.Total()
			frac := p / 100
			pdf.ScaleAll(1 - frac)
			redistribute += remaining * frac
		}
		switch {
		case hasX && hasY:
			pdf.Add(x, redistribute/2)
			pdf.Add(y, redistribute/2)
		case hasX:
			pdf.Add(x, redistribute)
		case hasY:
			pdf.Add(y, redistribute)
			// If neither neighbour exists every element has been drawn;
			// the loop is about to end.
		}
	}
	return out, nil
}

// predecessorLive returns the largest live index < s.
func predecessorLive(live *Fenwick, s int) (int, bool) {
	rank := live.PrefixSum(s - 1) // number of live elements below s
	if rank < 0.5 {
		return 0, false
	}
	// The element with cumulative count == rank is the rank-th live index
	// (1-based): select with target rank-0.5 to dodge float error.
	return live.Select(rank - 0.5), true
}

// successorLive returns the smallest live index > s.
func successorLive(live *Fenwick, s int) (int, bool) {
	below := live.PrefixSum(s) // live elements <= s
	total := live.Total()
	if total-below < 0.5 {
		return 0, false
	}
	return live.Select(below + 0.5), true
}
