package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10, 1)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	if got := f.Total(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Total = %v, want 10", got)
	}
	if got := f.PrefixSum(4); math.Abs(got-5) > 1e-12 {
		t.Fatalf("PrefixSum(4) = %v, want 5", got)
	}
	f.Add(3, 2.5)
	if got := f.Weight(3); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("Weight(3) = %v, want 3.5", got)
	}
	if got := f.PrefixSum(2); math.Abs(got-3) > 1e-12 {
		t.Fatalf("PrefixSum(2) changed: %v", got)
	}
}

func TestFenwickZeroInit(t *testing.T) {
	f := NewFenwick(5, 0)
	if f.Total() != 0 {
		t.Fatalf("Total = %v", f.Total())
	}
	f.Add(0, 1)
	f.Add(4, 1)
	if got := f.PrefixSum(3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PrefixSum(3) = %v", got)
	}
}

func TestFenwickSelect(t *testing.T) {
	f := NewFenwick(4, 0)
	f.Add(0, 1) // cumulative 1
	f.Add(1, 2) // cumulative 3
	f.Add(3, 4) // cumulative 7 (index 2 has weight 0)
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {0.99, 0}, {1.0, 1}, {2.9, 1}, {3.0, 3}, {6.9, 3},
	}
	for _, c := range cases {
		if got := f.Select(c.target); got != c.want {
			t.Errorf("Select(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestFenwickScaleAll(t *testing.T) {
	f := NewFenwick(4, 2)
	f.ScaleAll(0.5)
	if got := f.Total(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Total after scale = %v, want 4", got)
	}
	f.Add(0, 1) // true units
	if got := f.Weight(0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Weight(0) = %v, want 2", got)
	}
	// Repeated down-scaling must not underflow (renormalization).
	for i := 0; i < 5000; i++ {
		f.ScaleAll(0.9)
	}
	if tot := f.Total(); tot < 0 || math.IsNaN(tot) || math.IsInf(tot, 0) {
		t.Fatalf("Total degenerate after many scales: %v", tot)
	}
	f.Add(1, 1)
	if w := f.Weight(1); math.IsNaN(w) || math.IsInf(w, 0) {
		t.Fatalf("Weight degenerate: %v", w)
	}
}

func TestFenwickPanics(t *testing.T) {
	f := NewFenwick(3, 1)
	for name, fn := range map[string]func(){
		"Add range": func() { f.Add(3, 1) },
		"Scale 0":   func() { f.ScaleAll(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: PrefixSum is consistent with Weight.
func TestQuickFenwickConsistency(t *testing.T) {
	f := func(adds []uint8) bool {
		fw := NewFenwick(16, 1)
		ref := make([]float64, 16)
		for i := range ref {
			ref[i] = 1
		}
		for _, a := range adds {
			i := int(a) % 16
			fw.Add(i, float64(a%7))
			ref[i] += float64(a % 7)
		}
		var sum float64
		for i := 0; i < 16; i++ {
			sum += ref[i]
			if math.Abs(fw.PrefixSum(i)-sum) > 1e-9 {
				return false
			}
			if math.Abs(fw.Weight(i)-ref[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Select inverts PrefixSum — Select of any target within
// element i's cumulative span returns i (for positive weights).
func TestQuickFenwickSelectInverse(t *testing.T) {
	f := func(weights []uint8, probe uint8) bool {
		if len(weights) == 0 {
			return true
		}
		fw := NewFenwick(len(weights), 0)
		for i, w := range weights {
			fw.Add(i, float64(w)+1) // strictly positive
		}
		i := int(probe) % len(weights)
		lo := fw.PrefixSum(i - 1)
		hi := fw.PrefixSum(i)
		mid := (lo + hi) / 2
		return fw.Select(mid) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set, err := UniformSet(rng, 10000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 500 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[uint64]bool{}
	for _, x := range set {
		if x >= 10000 {
			t.Fatalf("element %d out of range", x)
		}
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
}

func TestUniformSetDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set, err := UniformSet(rng, 100, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 95 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[uint64]bool{}
	for _, x := range set {
		if seen[x] || x >= 100 {
			t.Fatalf("bad element %d", x)
		}
		seen[x] = true
	}
	// Full draw.
	all, err := UniformSet(rng, 50, 50)
	if err != nil || len(all) != 50 {
		t.Fatalf("full draw: %v len=%d", err, len(all))
	}
}

func TestUniformSetErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := UniformSet(rng, 10, 11); err == nil {
		t.Fatal("n > M accepted")
	}
	if _, err := UniformSet(rng, 10, -1); err == nil {
		t.Fatal("negative n accepted")
	}
	empty, err := UniformSet(rng, 10, 0)
	if err != nil || len(empty) != 0 {
		t.Fatalf("n=0: %v len=%d", err, len(empty))
	}
}

func TestClusteredSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	set, err := ClusteredSet(rng, 10000, 300, DefaultClusterP)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 300 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[uint64]bool{}
	for _, x := range set {
		if x >= 10000 {
			t.Fatalf("element %d out of range", x)
		}
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
}

// Clustered sets should have smaller average nearest-neighbour gaps than
// uniform sets of the same size — that is their defining property.
func TestClusteredSetIsMoreClusteredThanUniform(t *testing.T) {
	const M, n = 100000, 500
	meanGap := func(set []uint64) float64 {
		s := append([]uint64(nil), set...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		var sum float64
		for i := 1; i < len(s); i++ {
			sum += float64(s[i] - s[i-1])
		}
		return sum / float64(len(s)-1)
	}
	var clusteredGap, uniformGap float64
	const trials = 5
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		cs, err := ClusteredSet(rng, M, n, DefaultClusterP)
		if err != nil {
			t.Fatal(err)
		}
		us, err := UniformSet(rng, M, n)
		if err != nil {
			t.Fatal(err)
		}
		clusteredGap += meanGap(cs)
		uniformGap += meanGap(us)
	}
	// The median gap is the sharper statistic, but mean suffices for a
	// 5-trial average with p=10 clustering.
	if clusteredGap >= uniformGap {
		t.Fatalf("clustered mean gap %.1f >= uniform %.1f", clusteredGap/trials, uniformGap/trials)
	}
}

func TestClusteredSetErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := ClusteredSet(rng, 10, 11, 10); err == nil {
		t.Fatal("n > M accepted")
	}
	if _, err := ClusteredSet(rng, 10, -1, 10); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := ClusteredSet(rng, 10, 5, -1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := ClusteredSet(rng, 10, 5, 100); err == nil {
		t.Fatal("p=100 accepted")
	}
	if _, err := ClusteredSet(rng, 1<<40, 5, 10); err == nil {
		t.Fatal("huge namespace accepted")
	}
}

func TestClusteredSetFullDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set, err := ClusteredSet(rng, 64, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 64 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[uint64]bool{}
	for _, x := range set {
		seen[x] = true
	}
	if len(seen) != 64 {
		t.Fatal("full draw not a permutation")
	}
}

func TestLeafRanges(t *testing.T) {
	rs := LeafRanges(1000, 16)
	if len(rs) != 16 {
		t.Fatalf("count = %d", len(rs))
	}
	var covered uint64
	pos := uint64(0)
	for _, r := range rs {
		if r.Lo != pos {
			t.Fatalf("gap at %d", pos)
		}
		covered += r.Len()
		pos = r.Hi
	}
	if pos != 1000 || covered != 1000 {
		t.Fatalf("coverage %d ends %d", covered, pos)
	}
	if !rs[0].Contains(0) || rs[0].Contains(rs[0].Hi) {
		t.Fatal("Contains wrong")
	}
}

func TestSelectLeavesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, err := SelectLeavesUniform(rng, 256, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := 52 // ceil(0.2 * 256)
	if len(idx) != want {
		t.Fatalf("selected %d leaves, want %d", len(idx), want)
	}
	if !sort.IntsAreSorted(idx) {
		t.Fatal("not sorted")
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 256 || seen[i] {
			t.Fatalf("bad leaf %d", i)
		}
		seen[i] = true
	}
}

func TestSelectLeavesClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	idx, err := SelectLeavesClustered(rng, 256, 0.2, DefaultClusterP)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 52 {
		t.Fatalf("selected %d leaves, want 52", len(idx))
	}
	if !sort.IntsAreSorted(idx) {
		t.Fatal("not sorted")
	}
}

func TestSelectLeavesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := SelectLeavesUniform(rng, 0, 0.5); err == nil {
		t.Fatal("count=0 accepted")
	}
	if _, err := SelectLeavesUniform(rng, 256, 0); err == nil {
		t.Fatal("fraction=0 accepted")
	}
	if _, err := SelectLeavesUniform(rng, 256, 1.5); err == nil {
		t.Fatal("fraction>1 accepted")
	}
	// fraction=1 selects everything.
	all, err := SelectLeavesUniform(rng, 8, 1)
	if err != nil || len(all) != 8 {
		t.Fatalf("fraction=1: %v len=%d", err, len(all))
	}
}

func TestPopulateNamespace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	idx, err := SelectLeavesUniform(rng, 16, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := PopulateNamespace(rng, 160000, 16, idx, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.IDs) != 2000 {
		t.Fatalf("population = %d", len(ns.IDs))
	}
	if !sort.SliceIsSorted(ns.IDs, func(i, j int) bool { return ns.IDs[i] < ns.IDs[j] }) {
		t.Fatal("ids not sorted")
	}
	// Every id must lie in a selected leaf.
	inLeaves := func(x uint64) bool {
		for _, r := range ns.Leaves {
			if r.Contains(x) {
				return true
			}
		}
		return false
	}
	for _, id := range ns.IDs {
		if !inLeaves(id) {
			t.Fatalf("id %d outside selected leaves", id)
		}
	}
	if f := ns.Fraction(); math.Abs(f-0.25) > 0.01 {
		t.Fatalf("fraction = %v, want ~0.25", f)
	}
}

func TestPopulateNamespaceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if _, err := PopulateNamespace(rng, 1000, 16, nil, 10); err == nil {
		t.Fatal("no leaves accepted")
	}
	if _, err := PopulateNamespace(rng, 1000, 16, []int{99}, 10); err == nil {
		t.Fatal("bad leaf index accepted")
	}
	if _, err := PopulateNamespace(rng, 1000, 16, []int{0}, 100000); err == nil {
		t.Fatal("overpopulation accepted")
	}
}

func TestSynthesizeCrawl(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	idx, err := SelectLeavesUniform(rng, 256, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := PopulateNamespace(rng, 2_200_000, 256, idx, 7200)
	if err != nil {
		t.Fatal(err)
	}
	crawl, err := SynthesizeCrawl(rng, ns, CrawlConfig{
		M: 2_200_000, Population: 7200, Hashtags: 50, MinTagSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(crawl.Tags) != 50 {
		t.Fatalf("tags = %d", len(crawl.Tags))
	}
	pop := map[uint64]bool{}
	for _, id := range ns.IDs {
		pop[id] = true
	}
	for ti, tag := range crawl.Tags {
		if len(tag) < 100 {
			t.Fatalf("tag %d has %d users, want >= 100", ti, len(tag))
		}
		seen := map[uint64]bool{}
		for _, u := range tag {
			if !pop[u] {
				t.Fatalf("tag %d contains non-population user %d", ti, u)
			}
			if seen[u] {
				t.Fatalf("tag %d has duplicate user %d", ti, u)
			}
			seen[u] = true
		}
	}
}

func TestSynthesizeCrawlErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	empty := &OccupiedNamespace{M: 100}
	if _, err := SynthesizeCrawl(rng, empty, CrawlConfig{}); err == nil {
		t.Fatal("empty population accepted")
	}
	ns := &OccupiedNamespace{M: 100, IDs: []uint64{1, 2, 3}, Leaves: []Range{{0, 100}}}
	if _, err := SynthesizeCrawl(rng, ns, CrawlConfig{M: 100, Population: 3, Hashtags: 1, MinTagSize: 10}); err == nil {
		t.Fatal("min tag size > population accepted")
	}
}

func TestZipfSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 1000; i++ {
		s := zipfSize(rng, 100, 5000, 1.5)
		if s < 100 || s > 5000 {
			t.Fatalf("size %d out of bounds", s)
		}
	}
	if zipfSize(rng, 10, 10, 1.5) != 10 {
		t.Fatal("degenerate interval wrong")
	}
	// Heavy tail: small sizes dominate.
	small := 0
	for i := 0; i < 1000; i++ {
		if zipfSize(rng, 100, 5000, 1.5) < 500 {
			small++
		}
	}
	if small < 600 {
		t.Fatalf("only %d/1000 small sizes; distribution not heavy-tailed", small)
	}
}
