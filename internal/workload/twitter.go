package workload

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Paper-scale constants of the §8.1 Twitter crawl the synthetic substitute
// mirrors: 7.2 million user ids spread over a namespace of about 2.2
// billion, with 24,000 hashtags of at least 1,000 occurrences each.
const (
	TwitterNamespace  uint64 = 2_200_000_000
	TwitterPopulation        = 7_200_000
	TwitterHashtags          = 24_000
	TwitterMinTagSize        = 1_000
)

// CrawlConfig parametrizes the synthetic Twitter-crawl substitute. The
// zero values of the size fields select the paper-scale constants; tests
// and benchmarks scale them down proportionally.
type CrawlConfig struct {
	// M is the namespace (user-id domain) size.
	M uint64
	// Population is the number of distinct user ids in the crawl.
	Population int
	// Hashtags is the number of query sets to synthesize.
	Hashtags int
	// MinTagSize is the smallest hashtag audience (the paper keeps tags
	// with >= 1000 occurrences).
	MinTagSize int
	// ZipfS is the Zipf exponent for hashtag audience sizes (> 1).
	ZipfS float64
	// MaxTagFraction caps a hashtag audience at this fraction of the
	// population (default 0.05).
	MaxTagFraction float64
}

func (c CrawlConfig) withDefaults() CrawlConfig {
	if c.M == 0 {
		c.M = TwitterNamespace
	}
	if c.Population == 0 {
		c.Population = TwitterPopulation
	}
	if c.Hashtags == 0 {
		c.Hashtags = TwitterHashtags
	}
	if c.MinTagSize == 0 {
		c.MinTagSize = TwitterMinTagSize
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.5
	}
	if c.MaxTagFraction == 0 {
		c.MaxTagFraction = 0.05
	}
	return c
}

// Crawl is a synthetic stand-in for the paper's Twitter dataset: a
// population of user ids occupying part of a large namespace, and hashtag
// audiences (the query sets) drawn from that population with popularity
// skew. See DESIGN.md for why this preserves the behaviour the §8
// experiments measure.
type Crawl struct {
	// Namespace is the occupied namespace the crawl lives in.
	Namespace *OccupiedNamespace
	// Tags holds one audience (sorted, distinct user ids) per hashtag.
	Tags [][]uint64
}

// SynthesizeCrawl builds a synthetic crawl over the given occupied
// namespace. Audience sizes follow a truncated Zipf law over
// [MinTagSize, MaxTagFraction·population]; audience membership favours
// low-rank ("more active") users via an exponential tilt, mimicking the
// heavy-tailed user-activity distribution of real crawls.
func SynthesizeCrawl(rng *rand.Rand, ns *OccupiedNamespace, cfg CrawlConfig) (*Crawl, error) {
	cfg = cfg.withDefaults()
	pop := ns.IDs
	if len(pop) == 0 {
		return nil, fmt.Errorf("workload: empty population")
	}
	if cfg.MinTagSize > len(pop) {
		return nil, fmt.Errorf("workload: min tag size %d exceeds population %d", cfg.MinTagSize, len(pop))
	}
	maxSize := int(cfg.MaxTagFraction * float64(len(pop)))
	if maxSize < cfg.MinTagSize {
		maxSize = cfg.MinTagSize
	}
	c := &Crawl{Namespace: ns, Tags: make([][]uint64, cfg.Hashtags)}
	for i := range c.Tags {
		size := zipfSize(rng, cfg.MinTagSize, maxSize, cfg.ZipfS)
		c.Tags[i] = sampleAudience(rng, pop, size)
	}
	return c, nil
}

// zipfSize draws an audience size in [min, max] with P(size) ∝ size^−s.
func zipfSize(rng *rand.Rand, min, max int, s float64) int {
	if min >= max {
		return min
	}
	// Inverse-CDF sampling of the continuous truncated power law.
	a, b := float64(min), float64(max)
	u := rng.Float64()
	oneMinusS := 1 - s
	x := math.Pow(u*(math.Pow(b, oneMinusS)-math.Pow(a, oneMinusS))+math.Pow(a, oneMinusS), 1/oneMinusS)
	size := int(x)
	if size < min {
		size = min
	}
	if size > max {
		size = max
	}
	return size
}

// sampleAudience picks size distinct ids from pop, favouring low indices
// (rank-tilted): user j is proposed with density ∝ exp(−3·j/len(pop)).
func sampleAudience(rng *rand.Rand, pop []uint64, size int) []uint64 {
	if size >= len(pop) {
		out := append([]uint64(nil), pop...)
		return out
	}
	seen := make(map[int]bool, size)
	out := make([]uint64, 0, size)
	for len(out) < size {
		// Exponential tilt via inverse CDF, clipped to the population.
		u := rng.Float64()
		j := int(-math.Log(1-u*(1-math.Exp(-3))) / 3 * float64(len(pop)))
		if j >= len(pop) {
			j = len(pop) - 1
		}
		if !seen[j] {
			seen[j] = true
			out = append(out, pop[j])
		}
	}
	slices.Sort(out)
	return out
}
