// Package workload generates the query sets and namespaces the paper's
// evaluation uses (§7.1, §8.1): uniform query sets, clustered query sets
// produced by the paper's pdf-splitting procedure (implemented exactly,
// with a Fenwick tree and a global scale factor so the aggressive p%
// variant costs O(log M) per draw instead of O(M)), low-occupancy
// namespaces assembled from 256 leaf ranges, and a synthetic substitute
// for the paper's Twitter crawl.
package workload

import "fmt"

// Fenwick is a binary indexed tree over float64 weights supporting point
// updates, prefix sums, and weighted selection in O(log n). A global scale
// factor lets "multiply every weight by c" run in O(1), which the
// clustered generator's p% redistribution step relies on.
type Fenwick struct {
	tree  []float64 // 1-based BIT of scaled weights
	n     int
	scale float64 // true weight = stored weight * scale
}

// NewFenwick returns a tree of n weights, all initialized to w.
func NewFenwick(n int, w float64) *Fenwick {
	f := &Fenwick{tree: make([]float64, n+1), n: n, scale: 1}
	if w != 0 {
		// O(n) bulk init: set raw values then fold children into parents.
		for i := 1; i <= n; i++ {
			f.tree[i] += w
			if j := i + (i & -i); j <= n {
				f.tree[j] += f.tree[i]
			}
		}
	}
	return f
}

// Len returns the number of weights.
func (f *Fenwick) Len() int { return f.n }

// Add adds delta to weight i (0-based), in true (unscaled) units.
func (f *Fenwick) Add(i int, delta float64) {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("workload: fenwick index %d out of range [0,%d)", i, f.n))
	}
	d := delta / f.scale
	for j := i + 1; j <= f.n; j += j & -j {
		f.tree[j] += d
	}
}

// PrefixSum returns the sum of true weights of indices [0, i].
func (f *Fenwick) PrefixSum(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= f.n {
		i = f.n - 1
	}
	var s float64
	for j := i + 1; j > 0; j -= j & -j {
		s += f.tree[j]
	}
	return s * f.scale
}

// Total returns the sum of all true weights.
func (f *Fenwick) Total() float64 { return f.PrefixSum(f.n - 1) }

// Weight returns the true weight at index i.
func (f *Fenwick) Weight(i int) float64 { return f.PrefixSum(i) - f.PrefixSum(i-1) }

// ScaleAll multiplies every weight by c in O(1) (c must be positive).
// When the accumulated scale approaches the floating-point underflow
// boundary the tree is renormalized in O(n), so arbitrarily long sequences
// of down-scalings stay exact.
func (f *Fenwick) ScaleAll(c float64) {
	if c <= 0 {
		panic("workload: non-positive scale")
	}
	f.scale *= c
	if f.scale < 1e-120 || f.scale > 1e120 {
		for i := range f.tree {
			f.tree[i] *= f.scale
		}
		f.scale = 1
	}
}

// Select returns the smallest index i with PrefixSum(i) > target, i.e. the
// index a weighted draw with cumulative value target lands on. target must
// lie in [0, Total()); results are undefined outside.
func (f *Fenwick) Select(target float64) int {
	t := target / f.scale
	idx := 0
	// Highest power of two <= n.
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= t {
			idx = next
			t -= f.tree[next]
		}
	}
	if idx >= f.n {
		idx = f.n - 1
	}
	return idx
}
