package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// NamespaceLeaves is the number of equal ranges the §8.1 construction
// divides the full namespace into ("suppose we built a BloomSampleTree
// with 256 leaves").
const NamespaceLeaves = 256

// Range is a half-open interval [Lo, Hi) of the namespace.
type Range struct {
	Lo, Hi uint64
}

// Len returns the number of elements the range covers.
func (r Range) Len() uint64 { return r.Hi - r.Lo }

// Contains reports whether x lies in the range.
func (r Range) Contains(x uint64) bool { return x >= r.Lo && x < r.Hi }

// LeafRanges partitions [0, M) into count equal (±1) ranges.
func LeafRanges(M uint64, count int) []Range {
	out := make([]Range, count)
	for i := range out {
		out[i] = Range{
			Lo: M * uint64(i) / uint64(count),
			Hi: M * uint64(i+1) / uint64(count),
		}
	}
	return out
}

// SelectLeavesUniform picks ceil(fraction·count) distinct leaf indices
// uniformly at random (§8.1 "Uniform Namespace").
func SelectLeavesUniform(rng *rand.Rand, count int, fraction float64) ([]int, error) {
	k, err := leavesForFraction(count, fraction)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(count)
	idx := append([]int(nil), perm[:k]...)
	sort.Ints(idx)
	return idx, nil
}

// SelectLeavesClustered picks ceil(fraction·count) distinct leaf indices
// with the same pdf-splitting technique used for clustered query sets
// (§8.1 "Clustered Namespace": "We use the same technique as explained in
// Section 7").
func SelectLeavesClustered(rng *rand.Rand, count int, fraction float64, p float64) ([]int, error) {
	k, err := leavesForFraction(count, fraction)
	if err != nil {
		return nil, err
	}
	picked, err := ClusteredSet(rng, uint64(count), k, p)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(picked))
	for i, x := range picked {
		idx[i] = int(x)
	}
	sort.Ints(idx)
	return idx, nil
}

func leavesForFraction(count int, fraction float64) (int, error) {
	if count < 1 {
		return 0, fmt.Errorf("workload: leaf count %d", count)
	}
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("workload: namespace fraction %v out of (0,1]", fraction)
	}
	k := int(fraction*float64(count) + 0.999999)
	if k > count {
		k = count
	}
	if k < 1 {
		k = 1
	}
	return k, nil
}

// OccupiedNamespace describes a low-occupancy namespace: a large domain of
// which only the selected leaf ranges contain identifiers (§8).
type OccupiedNamespace struct {
	// M is the size of the full domain.
	M uint64
	// Leaves are the selected (occupied) ranges, ascending.
	Leaves []Range
	// IDs are the occupied identifiers, ascending and distinct.
	IDs []uint64
}

// Fraction returns the fraction of the domain the occupied leaves cover.
func (o *OccupiedNamespace) Fraction() float64 {
	var covered uint64
	for _, r := range o.Leaves {
		covered += r.Len()
	}
	return float64(covered) / float64(o.M)
}

// PopulateNamespace places population distinct identifiers uniformly into
// the selected leaf ranges of a domain of size M divided into leafCount
// equal leaves.
func PopulateNamespace(rng *rand.Rand, M uint64, leafCount int, leafIdx []int, population int) (*OccupiedNamespace, error) {
	if len(leafIdx) == 0 {
		return nil, fmt.Errorf("workload: no leaves selected")
	}
	all := LeafRanges(M, leafCount)
	leaves := make([]Range, len(leafIdx))
	var covered uint64
	for i, li := range leafIdx {
		if li < 0 || li >= leafCount {
			return nil, fmt.Errorf("workload: leaf index %d out of range [0,%d)", li, leafCount)
		}
		leaves[i] = all[li]
		covered += all[li].Len()
	}
	if uint64(population) > covered {
		return nil, fmt.Errorf("workload: population %d exceeds covered namespace %d", population, covered)
	}
	// Draw uniform offsets into the covered space, then map through the
	// leaf ranges; distinctness via a set (population << covered in all
	// experiment settings).
	seen := make(map[uint64]bool, population)
	ids := make([]uint64, 0, population)
	for len(ids) < population {
		off := rng.Uint64() % covered
		id := mapOffset(leaves, off)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &OccupiedNamespace{M: M, Leaves: leaves, IDs: ids}, nil
}

// mapOffset converts an offset into the concatenated covered space into a
// namespace identifier.
func mapOffset(leaves []Range, off uint64) uint64 {
	for _, r := range leaves {
		if off < r.Len() {
			return r.Lo + off
		}
		off -= r.Len()
	}
	// Unreachable for off < covered.
	last := leaves[len(leaves)-1]
	return last.Hi - 1
}
