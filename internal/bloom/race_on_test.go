//go:build race

package bloom

// raceEnabled reports whether the race detector is instrumenting this
// test binary (sync.Pool deliberately drops puts under it, which breaks
// allocation-count pinning of pooled paths).
const raceEnabled = true
