package bloom

import (
	"fmt"

	"repro/internal/hashfam"
)

// CountingFilter is a counting Bloom filter: each position holds an 8-bit
// saturating counter instead of one bit, so elements can be removed. The
// paper's motivating applications store *dynamic* communities (§1); a
// plain Bloom filter cannot forget a member, while a counting filter can,
// at 8× the memory. Snapshot() projects the current state onto a plain
// Filter compatible with a BloomSampleTree, so dynamic sets can still be
// sampled and reconstructed.
//
// Counters saturate at 255 rather than wrap; a saturated counter is never
// decremented (standard counting-filter practice: correctness degrades to
// "may yield false positives", never false negatives for present
// elements, as long as Remove is only called for previously Added
// elements).
type CountingFilter struct {
	counts []uint8
	fam    hashfam.Family
	n      uint64 // live insertions (Add minus Remove)
}

// NewCounting returns an empty counting filter for the family.
func NewCounting(fam hashfam.Family) *CountingFilter {
	return &CountingFilter{
		counts: make([]uint8, fam.M()),
		fam:    fam,
	}
}

// M returns the filter length in positions.
func (c *CountingFilter) M() uint64 { return uint64(len(c.counts)) }

// K returns the number of hash functions.
func (c *CountingFilter) K() int { return c.fam.K() }

// Live returns the net number of insertions (Add calls minus successful
// Remove calls).
func (c *CountingFilter) Live() uint64 { return c.n }

// Add inserts x. Add mutates the filter; callers must serialize it against
// concurrent readers and writers.
func (c *CountingFilter) Add(x uint64) {
	bp, pos := getPositions(c.fam, x)
	for _, p := range pos {
		if c.counts[p] != 255 {
			c.counts[p]++
		}
	}
	putPositions(bp, pos)
	c.n++
}

// Remove deletes one previous insertion of x. It returns an error if x is
// not currently a positive (removing a never-added element would corrupt
// other elements' counters).
func (c *CountingFilter) Remove(x uint64) error {
	bp, pos := getPositions(c.fam, x)
	defer putPositions(bp, pos)
	for _, p := range pos {
		if c.counts[p] == 0 {
			return fmt.Errorf("bloom: remove of non-member %d", x)
		}
	}
	for _, p := range pos {
		if c.counts[p] != 255 { // saturated counters are pinned
			c.counts[p]--
		}
	}
	if c.n > 0 {
		c.n--
	}
	return nil
}

// Contains reports whether x is a (possibly false) positive. Contains is
// read-only and safe for unsynchronized concurrent callers.
func (c *CountingFilter) Contains(x uint64) bool {
	bp, pos := getPositions(c.fam, x)
	ok := true
	for _, p := range pos {
		if c.counts[p] == 0 {
			ok = false
			break
		}
	}
	putPositions(bp, pos)
	return ok
}

// Snapshot projects the counting filter onto a plain Filter (counter > 0
// → bit set) sharing the same family, ready for use against a
// BloomSampleTree built with the same parameters.
func (c *CountingFilter) Snapshot() *Filter {
	f := New(c.fam)
	for p, cnt := range c.counts {
		if cnt > 0 {
			f.bits.Set(uint64(p))
		}
	}
	f.n = c.n
	return f
}

// SizeBytes returns the in-memory size of the counter array.
func (c *CountingFilter) SizeBytes() uint64 { return uint64(len(c.counts)) }

// Reset clears the filter.
func (c *CountingFilter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
}
