package bloom

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/hashfam"
)

// ErrNotMember is wrapped by Remove/CloneRemove when the element to
// remove is not currently a positive; match it with errors.Is. Callers
// (e.g. a serving layer) use it to distinguish a client mistake from an
// internal failure.
var ErrNotMember = errors.New("bloom: remove of non-member")

// CountingFilter is a counting Bloom filter: each position holds an 8-bit
// saturating counter instead of one bit, so elements can be removed. The
// paper's motivating applications store *dynamic* communities (§1); a
// plain Bloom filter cannot forget a member, while a counting filter can,
// at 8× the memory. Snapshot() projects the current state onto a plain
// Filter compatible with a BloomSampleTree, so dynamic sets can still be
// sampled and reconstructed.
//
// Counters saturate at 255 rather than wrap; a saturated counter is never
// decremented (standard counting-filter practice: correctness degrades to
// "may yield false positives", never false negatives for present
// elements, as long as Remove is only called for previously Added
// elements).
//
// Like Filter, the query side (Contains, Snapshot) is read-only and safe
// for unsynchronized concurrent callers on a filter that is no longer
// being mutated (e.g. one published immutably, as setdb does). The
// mutating operations (Add, Remove, Reset) require external
// synchronization against both mutators and readers: a Snapshot racing a
// mutation may memoize the pre-mutation projection over the mutation's
// cache invalidation, making the stale projection sticky until the next
// mutation. The copy-on-write forms (CloneAdd, CloneRemove) never mutate
// the receiver, so a publisher holding filters behind an atomic pointer
// can apply them against the current version and swap in the result
// without stalling readers.
type CountingFilter struct {
	counts []uint8
	fam    hashfam.Family
	n      uint64 // live insertions (Add minus Remove)

	// snap caches the plain-filter projection of the current counts; any
	// mutation invalidates it. Published (immutable) filters compute it at
	// most once, so read-heavy dynamic workloads stop paying the O(m)
	// projection per query.
	snap atomic.Pointer[Filter]
}

// NewCounting returns an empty counting filter for the family.
func NewCounting(fam hashfam.Family) *CountingFilter {
	return &CountingFilter{
		counts: make([]uint8, fam.M()),
		fam:    fam,
	}
}

// M returns the filter length in positions.
func (c *CountingFilter) M() uint64 { return uint64(len(c.counts)) }

// K returns the number of hash functions.
func (c *CountingFilter) K() int { return c.fam.K() }

// Live returns the net number of insertions (Add calls minus successful
// Remove calls).
func (c *CountingFilter) Live() uint64 { return c.n }

// Add inserts x. Add mutates the filter; callers must serialize it against
// concurrent readers and writers.
func (c *CountingFilter) Add(x uint64) {
	bp, pos := getPositions(c.fam, x)
	for _, p := range pos {
		if c.counts[p] != 255 {
			c.counts[p]++
		}
	}
	putPositions(bp, pos)
	c.n++
	c.snap.Store(nil)
}

// Remove deletes one previous insertion of x. It returns an error if x is
// not currently a positive (removing a never-added element would corrupt
// other elements' counters).
func (c *CountingFilter) Remove(x uint64) error {
	bp, pos := getPositions(c.fam, x)
	defer putPositions(bp, pos)
	for _, p := range pos {
		if c.counts[p] == 0 {
			return fmt.Errorf("%w %d", ErrNotMember, x)
		}
	}
	for _, p := range pos {
		if c.counts[p] != 255 { // saturated counters are pinned
			c.counts[p]--
		}
	}
	if c.n > 0 {
		c.n--
	}
	c.snap.Store(nil)
	return nil
}

// Contains reports whether x is a (possibly false) positive. Contains is
// read-only and safe for unsynchronized concurrent callers. When the
// plain-filter projection is already memoized (any published filter that
// has served one Snapshot call), the probe runs through its word-sliced
// bit vector instead of k scattered counter loads; the projection is
// invalidated on every mutation, so the two paths always agree.
func (c *CountingFilter) Contains(x uint64) bool {
	if f := c.snap.Load(); f != nil {
		return f.Contains(x)
	}
	bp, pos := getPositions(c.fam, x)
	ok := true
	for _, p := range pos {
		if c.counts[p] == 0 {
			ok = false
			break
		}
	}
	putPositions(bp, pos)
	return ok
}

// Clone returns a deep copy of the counting filter (sharing the immutable
// family). The snapshot cache is not carried over.
func (c *CountingFilter) Clone() *CountingFilter {
	counts := make([]uint8, len(c.counts))
	copy(counts, c.counts)
	return &CountingFilter{counts: counts, fam: c.fam, n: c.n}
}

// CloneAdd is the copy-on-write form of Add: it returns a new counting
// filter equal to c with ids inserted, leaving c untouched.
func (c *CountingFilter) CloneAdd(ids ...uint64) *CountingFilter {
	next := c.Clone()
	for _, x := range ids {
		next.Add(x)
	}
	return next
}

// CloneRemove is the copy-on-write form of Remove with all-or-nothing
// batch semantics: it returns a new counting filter equal to c with one
// insertion of each id removed, leaving c untouched. If any id is not a
// member at its turn, an error is returned and no new filter is produced —
// unlike repeated Remove calls, a failed batch leaves no partial state for
// a publisher to expose.
func (c *CountingFilter) CloneRemove(ids ...uint64) (*CountingFilter, error) {
	next := c.Clone()
	for _, x := range ids {
		if err := next.Remove(x); err != nil {
			return nil, err
		}
	}
	return next, nil
}

// Snapshot projects the counting filter onto a plain Filter (counter > 0
// → bit set) sharing the same family, ready for use against a
// BloomSampleTree built with the same parameters. The projection is
// assembled word-level and memoized until the next mutation, so repeated
// snapshots of an unchanged (e.g. published copy-on-write) filter are
// O(1). The returned filter is shared: treat it as immutable.
func (c *CountingFilter) Snapshot() *Filter {
	if f := c.snap.Load(); f != nil {
		return f
	}
	m := uint64(len(c.counts))
	words := make([]uint64, (m+63)/64)
	for p, cnt := range c.counts {
		if cnt > 0 {
			words[p/64] |= 1 << (uint(p) % 64)
		}
	}
	f := &Filter{bits: bitset.FromWords(m, words), fam: c.fam, n: c.n}
	c.snap.Store(f)
	return f
}

// SizeBytes returns the in-memory size of the counter array.
func (c *CountingFilter) SizeBytes() uint64 { return uint64(len(c.counts)) }

// Reset clears the filter.
func (c *CountingFilter) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.n = 0
	c.snap.Store(nil)
}
