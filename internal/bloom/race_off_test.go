//go:build !race

package bloom

const raceEnabled = false
