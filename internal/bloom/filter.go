// Package bloom implements the Bloom filter substrate of the paper (§3.1):
// insertion, membership, union and intersection (bitwise OR/AND), together
// with the estimators the BloomSampleTree relies on — single-filter
// cardinality estimation, the Papapetrou et al. intersection-size estimate
// Ŝ⁻¹(t1,t2,t∧) used in §5.3, the false-set-overlap probability of
// Eq. (1), the classic false-positive rate, and the accuracy-driven
// parameter planning of §5.4.
package bloom

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/hashfam"
)

// Filter is a Bloom filter over a namespace of uint64 elements. All filters
// that are unioned, intersected, or served by a common BloomSampleTree must
// share the same length m and hash family H (§3.1, §5.1); Compatible checks
// this.
//
// Query-side operations (Contains, SetBits, IntersectionSetBits,
// EstimateCardinality, EstimateIntersectionOf, …) are read-only on the
// filter and safe for unsynchronized concurrent callers; position buffers
// are drawn from a shared pool rather than stored per instance. Mutating
// operations (Add, UnionWith, Reset) require external synchronization
// against both writers and readers.
type Filter struct {
	bits *bitset.Set
	fam  hashfam.Family
	n    uint64 // number of Add calls (insertions, not distinct elements)
}

// posBuf pools hash-position buffers so that hashing an element allocates
// nothing per call without the filter owning mutable scratch state. Buffers
// grow to the largest K seen and are reused across all filters and
// goroutines.
var posBuf = sync.Pool{New: func() any { s := make([]uint64, 0, 16); return &s }}

// getPositions hashes x with fam into a pooled buffer. The caller must
// return the buffer with putPositions and not retain the slice afterwards.
func getPositions(fam hashfam.Family, x uint64) (*[]uint64, []uint64) {
	bp := posBuf.Get().(*[]uint64)
	pos := fam.Positions(x, (*bp)[:0])
	return bp, pos
}

// maxPooledPositions caps the capacity of buffers returned to posBuf.
// The pool's buffers live for the life of the process, so one probe
// against a pathological high-k family (or a batched hash burst) must
// not pin an arbitrarily large buffer in steady-state memory: oversized
// buffers are dropped for the GC instead of recycled.
const maxPooledPositions = 256

// poolablePositions reports whether a buffer of the given capacity may
// be returned to the pool.
func poolablePositions(c int) bool { return c <= maxPooledPositions }

// putPositions recycles a buffer obtained from getPositions, keeping any
// growth append may have performed; buffers grown past
// maxPooledPositions are dropped rather than pinned.
func putPositions(bp *[]uint64, pos []uint64) {
	if !poolablePositions(cap(pos)) {
		return
	}
	*bp = pos[:0]
	posBuf.Put(bp)
}

// New returns an empty filter using the given family; the filter length is
// the family's range M().
func New(fam hashfam.Family) *Filter {
	return &Filter{
		bits: bitset.New(fam.M()),
		fam:  fam,
	}
}

// NewFromElements builds a filter containing every element of xs, using
// the family's batched hash path.
func NewFromElements(fam hashfam.Family, xs []uint64) *Filter {
	f := New(fam)
	f.AddMany(xs)
	return f
}

// M returns the filter length in bits.
func (f *Filter) M() uint64 { return f.bits.Len() }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.fam.K() }

// Family returns the filter's hash family.
func (f *Filter) Family() hashfam.Family { return f.fam }

// Insertions returns the number of Add calls made on this filter (not the
// number of distinct elements; re-adding counts). Filters produced by
// Union/Intersect report the sum/zero respectively, since exact counts are
// unknowable — use EstimateCardinality for those.
func (f *Filter) Insertions() uint64 { return f.n }

// Add inserts x into the filter. Add mutates the filter; callers must
// serialize it against concurrent readers and writers.
func (f *Filter) Add(x uint64) {
	bp, pos := getPositions(f.fam, x)
	for _, p := range pos {
		f.bits.Set(p)
	}
	putPositions(bp, pos)
	f.n++
}

// AddScratch is Add with a caller-owned scratch buffer: hash positions
// are appended into buf (reusing its capacity) and the possibly grown
// buffer is returned, so bulk-insert loops (tree construction, database
// ingest) skip the pool round trip per element. Like Add it mutates the
// filter and requires external synchronization.
func (f *Filter) AddScratch(x uint64, buf []uint64) []uint64 {
	buf = f.fam.Positions(x, buf[:0])
	for _, p := range buf {
		f.bits.Set(p)
	}
	f.n++
	return buf
}

// Contains reports whether x is a (possibly false) positive of the filter.
// A Bloom filter never yields false negatives. Contains is read-only and
// safe for unsynchronized concurrent callers. The k probes run through
// the bit vector's word-sliced TestAll, which merges same-word probes
// and short-circuits on the first missing word.
func (f *Filter) Contains(x uint64) bool {
	bp, pos := getPositions(f.fam, x)
	ok := f.bits.TestAll(pos)
	putPositions(bp, pos)
	return ok
}

// ContainsScratch is Contains with a caller-owned scratch buffer: hash
// positions are appended into buf (reusing its capacity) and the possibly
// grown buffer is returned alongside the verdict. Hot loops that probe
// many elements against one filter (tree leaf scans, the dictionary-
// attack baseline) use it to amortize a single buffer across the whole
// scan instead of paying a pool round trip per element. Safe for
// concurrent callers as long as each owns its buf.
func (f *Filter) ContainsScratch(x uint64, buf []uint64) (bool, []uint64) {
	buf = f.fam.Positions(x, buf[:0])
	return f.bits.TestAll(buf), buf
}

// ContainsBatch probes every element of xs against the filter, writing
// the verdict for xs[i] into out[i] (out must be at least len(xs) long).
// All keys are hashed in one batched PositionsMany call into scratch and
// each k-group is then checked with the word-sliced TestAll, so the
// per-key cost is one inlined hash plus the short-circuiting probe — no
// interface dispatch, no pool round trips. The possibly grown scratch is
// returned for the next call; a loop that threads it back in allocates
// nothing. Safe for concurrent callers as long as each owns out and
// scratch.
func (f *Filter) ContainsBatch(xs []uint64, out []bool, scratch []uint64) []uint64 {
	k := f.fam.K()
	scratch = hashfam.PositionsMany(f.fam, xs, scratch[:0])
	for i := range xs {
		out[i] = f.bits.TestAll(scratch[i*k : (i+1)*k])
	}
	return scratch
}

// AddMany inserts every element of xs, hashing the whole batch through
// the family's batched path in bounded blocks (one scratch allocation
// sized to the first block, however long xs is). Like Add it mutates the
// filter and requires external synchronization.
func (f *Filter) AddMany(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	k := f.fam.K()
	scratch := make([]uint64, 0, min(len(xs), addBlock)*k)
	for len(xs) > 0 {
		n := min(len(xs), addBlock)
		scratch = hashfam.PositionsMany(f.fam, xs[:n], scratch[:0])
		for _, p := range scratch {
			f.bits.Set(p)
		}
		f.n += uint64(n)
		xs = xs[n:]
	}
}

// addBlock bounds the number of keys AddMany hashes per block, so the
// batched scratch stays a few KB however large the batch is.
const addBlock = 64

// SetBits returns the number of 1 bits (t in the paper's estimators).
func (f *Filter) SetBits() uint64 { return f.bits.Count() }

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 { return float64(f.bits.Count()) / float64(f.bits.Len()) }

// Empty reports whether no bit is set (the canonical empty-set encoding).
func (f *Filter) Empty() bool { return f.bits.None() }

// Reset clears the filter to the empty set.
func (f *Filter) Reset() {
	f.bits.Reset()
	f.n = 0
}

// Clone returns a deep copy of the filter (sharing the immutable family).
func (f *Filter) Clone() *Filter {
	return &Filter{bits: f.bits.Clone(), fam: f.fam, n: f.n}
}

// CloneAdd is the copy-on-write form of Add: it returns a new filter equal
// to f with ids inserted, leaving f untouched, so callers that publish
// filters through atomic pointers can mutate without ever blocking readers
// of the previous version. The bit vector is copied word-level once and
// all ids are inserted into the copy; when every id is already a positive
// (no bit would change — common for saturated tree nodes and duplicate
// inserts) the copy is skipped entirely and the new filter shares f's bit
// vector, which is safe as long as both values are treated as immutable,
// the contract of every filter reachable from a published snapshot.
func (f *Filter) CloneAdd(ids ...uint64) *Filter {
	bp := posBuf.Get().(*[]uint64)
	pos := (*bp)[:0]
	var bits *bitset.Set
	n := f.n
	for _, x := range ids {
		pos = f.fam.Positions(x, pos[:0])
		if bits == nil && !f.bits.TestAll(pos) {
			bits = f.bits.Clone()
		}
		if bits != nil {
			for _, p := range pos {
				bits.Set(p)
			}
		}
		n++
	}
	*bp = pos[:0]
	posBuf.Put(bp)
	if bits == nil {
		bits = f.bits // no bit changed: share the vector (immutable by contract)
	}
	return &Filter{bits: bits, fam: f.fam, n: n}
}

// Equal reports whether two filters have identical bit vectors and
// compatible parameters.
func (f *Filter) Equal(g *Filter) bool {
	return f.Compatible(g) == nil && f.bits.Equal(g.bits)
}

// ErrIncompatible is returned when two filters cannot be combined.
var ErrIncompatible = errors.New("bloom: incompatible filters")

// Compatible returns nil if g uses the same m, k, family kind and seed as
// f, and a descriptive error otherwise.
func (f *Filter) Compatible(g *Filter) error { return f.MatchesFamily(g.fam) }

// MatchesFamily returns nil if the filter was built with parameters equal
// to fam's (m, k, kind, seed), and a descriptive error otherwise. It is the
// allocation-free form of Compatible for callers that hold a family rather
// than a second filter (the BloomSampleTree query check).
func (f *Filter) MatchesFamily(fam hashfam.Family) error {
	if f.M() != fam.M() || f.K() != fam.K() ||
		f.fam.Kind() != fam.Kind() || f.fam.Seed() != fam.Seed() {
		return fmt.Errorf("%w: (m=%d,k=%d,%s,seed=%d) vs (m=%d,k=%d,%s,seed=%d)",
			ErrIncompatible, f.M(), f.K(), f.fam.Kind(), f.fam.Seed(),
			fam.M(), fam.K(), fam.Kind(), fam.Seed())
	}
	return nil
}

// Union returns a new filter representing the set union: B(A∪B) =
// B(A) OR B(B) (§3.1). It returns an error if the filters are incompatible.
func (f *Filter) Union(g *Filter) (*Filter, error) {
	if err := f.Compatible(g); err != nil {
		return nil, err
	}
	return &Filter{bits: f.bits.Or(g.bits), fam: f.fam, n: f.n + g.n}, nil
}

// Intersect returns a new filter that is the bitwise AND of f and g, the
// paper's approximation of B(A∩B) (§3.1). It returns an error if the
// filters are incompatible.
func (f *Filter) Intersect(g *Filter) (*Filter, error) {
	if err := f.Compatible(g); err != nil {
		return nil, err
	}
	return &Filter{bits: f.bits.And(g.bits), fam: f.fam}, nil
}

// UnionWith ORs g into f in place. It returns an error if incompatible.
func (f *Filter) UnionWith(g *Filter) error {
	if err := f.Compatible(g); err != nil {
		return err
	}
	f.bits.OrWith(g.bits)
	f.n += g.n
	return nil
}

// IntersectionSetBits returns popcount(f AND g) — t∧ in the intersection
// estimator — without materializing the intersection. It is read-only and
// safe for unsynchronized concurrent callers.
func (f *Filter) IntersectionSetBits(g *Filter) uint64 { return f.bits.AndCount(g.bits) }

// IntersectsAny reports whether f AND g has any set bit.
func (f *Filter) IntersectsAny(g *Filter) bool { return f.bits.AndAny(g.bits) }

// ForEachSetBit iterates over the positions of set bits in ascending order;
// fn returning false stops iteration. Used by HashInvert.
func (f *Filter) ForEachSetBit(fn func(pos uint64) bool) { f.bits.ForEachSet(fn) }

// ForEachClearBit iterates over the positions of clear bits in ascending
// order; fn returning false stops iteration. Used by HashInvert's dense
// variant.
func (f *Filter) ForEachClearBit(fn func(pos uint64) bool) { f.bits.ForEachClear(fn) }

// SizeBytes returns the in-memory size of the bit vector in bytes (the
// quantity the paper's memory tables report, §7.2).
func (f *Filter) SizeBytes() uint64 { return f.bits.SizeBytes() }

// Bits exposes the underlying bit vector for read-only use by tightly
// coupled packages (the tree builder unions children in place).
func (f *Filter) Bits() *bitset.Set { return f.bits }

// NewFromBits wraps an existing bit vector (taking ownership of it) in a
// filter using the given family; the vector length must equal the
// family's range. Used when deserializing structures that store raw bit
// vectors.
func NewFromBits(fam hashfam.Family, bits *bitset.Set) *Filter {
	if bits.Len() != fam.M() {
		panic(fmt.Sprintf("bloom: bit vector has %d bits, family expects %d", bits.Len(), fam.M()))
	}
	return &Filter{bits: bits, fam: fam}
}
