// Package bloom implements the Bloom filter substrate of the paper (§3.1):
// insertion, membership, union and intersection (bitwise OR/AND), together
// with the estimators the BloomSampleTree relies on — single-filter
// cardinality estimation, the Papapetrou et al. intersection-size estimate
// Ŝ⁻¹(t1,t2,t∧) used in §5.3, the false-set-overlap probability of
// Eq. (1), the classic false-positive rate, and the accuracy-driven
// parameter planning of §5.4.
package bloom

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/hashfam"
)

// Filter is a Bloom filter over a namespace of uint64 elements. All filters
// that are unioned, intersected, or served by a common BloomSampleTree must
// share the same length m and hash family H (§3.1, §5.1); Compatible checks
// this.
type Filter struct {
	bits    *bitset.Set
	fam     hashfam.Family
	n       uint64 // number of Add calls (insertions, not distinct elements)
	scratch []uint64
}

// New returns an empty filter using the given family; the filter length is
// the family's range M().
func New(fam hashfam.Family) *Filter {
	return &Filter{
		bits:    bitset.New(fam.M()),
		fam:     fam,
		scratch: make([]uint64, 0, fam.K()),
	}
}

// NewFromElements builds a filter containing every element of xs.
func NewFromElements(fam hashfam.Family, xs []uint64) *Filter {
	f := New(fam)
	for _, x := range xs {
		f.Add(x)
	}
	return f
}

// M returns the filter length in bits.
func (f *Filter) M() uint64 { return f.bits.Len() }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.fam.K() }

// Family returns the filter's hash family.
func (f *Filter) Family() hashfam.Family { return f.fam }

// Insertions returns the number of Add calls made on this filter (not the
// number of distinct elements; re-adding counts). Filters produced by
// Union/Intersect report the sum/zero respectively, since exact counts are
// unknowable — use EstimateCardinality for those.
func (f *Filter) Insertions() uint64 { return f.n }

// Add inserts x into the filter.
func (f *Filter) Add(x uint64) {
	f.scratch = f.fam.Positions(x, f.scratch[:0])
	for _, p := range f.scratch {
		f.bits.Set(p)
	}
	f.n++
}

// Contains reports whether x is a (possibly false) positive of the filter.
// A Bloom filter never yields false negatives.
func (f *Filter) Contains(x uint64) bool {
	f.scratch = f.fam.Positions(x, f.scratch[:0])
	for _, p := range f.scratch {
		if !f.bits.Test(p) {
			return false
		}
	}
	return true
}

// SetBits returns the number of 1 bits (t in the paper's estimators).
func (f *Filter) SetBits() uint64 { return f.bits.Count() }

// FillRatio returns the fraction of bits set.
func (f *Filter) FillRatio() float64 { return float64(f.bits.Count()) / float64(f.bits.Len()) }

// Empty reports whether no bit is set (the canonical empty-set encoding).
func (f *Filter) Empty() bool { return f.bits.None() }

// Reset clears the filter to the empty set.
func (f *Filter) Reset() {
	f.bits.Reset()
	f.n = 0
}

// Clone returns a deep copy of the filter (sharing the immutable family).
func (f *Filter) Clone() *Filter {
	return &Filter{bits: f.bits.Clone(), fam: f.fam, n: f.n, scratch: make([]uint64, 0, f.fam.K())}
}

// Equal reports whether two filters have identical bit vectors and
// compatible parameters.
func (f *Filter) Equal(g *Filter) bool {
	return f.Compatible(g) == nil && f.bits.Equal(g.bits)
}

// ErrIncompatible is returned when two filters cannot be combined.
var ErrIncompatible = errors.New("bloom: incompatible filters")

// Compatible returns nil if g uses the same m, k, family kind and seed as
// f, and a descriptive error otherwise.
func (f *Filter) Compatible(g *Filter) error {
	if f.M() != g.M() || f.K() != g.K() ||
		f.fam.Kind() != g.fam.Kind() || f.fam.Seed() != g.fam.Seed() {
		return fmt.Errorf("%w: (m=%d,k=%d,%s,seed=%d) vs (m=%d,k=%d,%s,seed=%d)",
			ErrIncompatible, f.M(), f.K(), f.fam.Kind(), f.fam.Seed(),
			g.M(), g.K(), g.fam.Kind(), g.fam.Seed())
	}
	return nil
}

// Union returns a new filter representing the set union: B(A∪B) =
// B(A) OR B(B) (§3.1). It returns an error if the filters are incompatible.
func (f *Filter) Union(g *Filter) (*Filter, error) {
	if err := f.Compatible(g); err != nil {
		return nil, err
	}
	return &Filter{bits: f.bits.Or(g.bits), fam: f.fam, n: f.n + g.n,
		scratch: make([]uint64, 0, f.fam.K())}, nil
}

// Intersect returns a new filter that is the bitwise AND of f and g, the
// paper's approximation of B(A∩B) (§3.1). It returns an error if the
// filters are incompatible.
func (f *Filter) Intersect(g *Filter) (*Filter, error) {
	if err := f.Compatible(g); err != nil {
		return nil, err
	}
	return &Filter{bits: f.bits.And(g.bits), fam: f.fam,
		scratch: make([]uint64, 0, f.fam.K())}, nil
}

// UnionWith ORs g into f in place. It returns an error if incompatible.
func (f *Filter) UnionWith(g *Filter) error {
	if err := f.Compatible(g); err != nil {
		return err
	}
	f.bits.OrWith(g.bits)
	f.n += g.n
	return nil
}

// IntersectionSetBits returns popcount(f AND g) — t∧ in the intersection
// estimator — without materializing the intersection.
func (f *Filter) IntersectionSetBits(g *Filter) uint64 { return f.bits.AndCount(g.bits) }

// IntersectsAny reports whether f AND g has any set bit.
func (f *Filter) IntersectsAny(g *Filter) bool { return f.bits.AndAny(g.bits) }

// ForEachSetBit iterates over the positions of set bits in ascending order;
// fn returning false stops iteration. Used by HashInvert.
func (f *Filter) ForEachSetBit(fn func(pos uint64) bool) { f.bits.ForEachSet(fn) }

// ForEachClearBit iterates over the positions of clear bits in ascending
// order; fn returning false stops iteration. Used by HashInvert's dense
// variant.
func (f *Filter) ForEachClearBit(fn func(pos uint64) bool) { f.bits.ForEachClear(fn) }

// SizeBytes returns the in-memory size of the bit vector in bytes (the
// quantity the paper's memory tables report, §7.2).
func (f *Filter) SizeBytes() uint64 { return f.bits.SizeBytes() }

// Bits exposes the underlying bit vector for read-only use by tightly
// coupled packages (the tree builder unions children in place).
func (f *Filter) Bits() *bitset.Set { return f.bits }

// NewFromBits wraps an existing bit vector (taking ownership of it) in a
// filter using the given family; the vector length must equal the
// family's range. Used when deserializing structures that store raw bit
// vectors.
func NewFromBits(fam hashfam.Family, bits *bitset.Set) *Filter {
	if bits.Len() != fam.M() {
		panic(fmt.Sprintf("bloom: bit vector has %d bits, family expects %d", bits.Len(), fam.M()))
	}
	return &Filter{bits: bits, fam: fam, scratch: make([]uint64, 0, fam.K())}
}
