package bloom

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/hashfam"
)

func fam(t testing.TB, m uint64) hashfam.Family {
	t.Helper()
	return hashfam.MustNew(hashfam.KindMurmur3, m, 3, 1)
}

func TestAddContains(t *testing.T) {
	f := New(fam(t, 10000))
	xs := []uint64{0, 1, 42, 999999, 1 << 40}
	for _, x := range xs {
		if f.Contains(x) && f.Empty() {
			t.Fatalf("empty filter contains %d", x)
		}
	}
	for _, x := range xs {
		f.Add(x)
	}
	for _, x := range xs {
		if !f.Contains(x) {
			t.Fatalf("no false negatives allowed: missing %d", x)
		}
	}
	if f.Insertions() != uint64(len(xs)) {
		t.Fatalf("Insertions = %d, want %d", f.Insertions(), len(xs))
	}
}

func TestEmptyReset(t *testing.T) {
	f := New(fam(t, 1000))
	if !f.Empty() {
		t.Fatal("new filter not empty")
	}
	f.Add(7)
	if f.Empty() {
		t.Fatal("filter empty after Add")
	}
	f.Reset()
	if !f.Empty() || f.Insertions() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	fn := func(xs []uint64) bool {
		f := New(hashfam.MustNew(hashfam.KindFNV, 4096, 3, 9))
		for _, x := range xs {
			f.Add(x)
		}
		for _, x := range xs {
			if !f.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateEmpirical(t *testing.T) {
	// m chosen for ~1% FP at n=1000, k=3. Empirical rate should be within
	// 3x of theory.
	n := uint64(1000)
	p, err := PlanParams(0.9, n, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := New(fam(t, p.Bits))
	for x := uint64(0); x < n; x++ {
		f.Add(x)
	}
	trials := 200000
	fp := 0
	for i := 0; i < trials; i++ {
		if f.Contains(n + uint64(i)) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	want := FalsePositiveRate(p.Bits, 3, n)
	if got > want*3+1e-9 || (want > 1e-4 && got < want/3) {
		t.Fatalf("empirical FP %.6f vs theoretical %.6f", got, want)
	}
}

func TestUnionSemantics(t *testing.T) {
	fm := fam(t, 50000)
	a := NewFromElements(fm, []uint64{1, 2, 3})
	b := NewFromElements(fm, []uint64{100, 200})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	// B(A∪B) must equal B(A) OR B(B) exactly (§3.1): compare to filter
	// built from the union set.
	direct := NewFromElements(fm, []uint64{1, 2, 3, 100, 200})
	if !u.Equal(direct) {
		t.Fatal("union filter differs from filter of union set")
	}
	if u.Insertions() != 5 {
		t.Fatalf("union Insertions = %d", u.Insertions())
	}
}

func TestUnionWith(t *testing.T) {
	fm := fam(t, 50000)
	a := NewFromElements(fm, []uint64{1, 2})
	b := NewFromElements(fm, []uint64{3})
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(NewFromElements(fm, []uint64{1, 2, 3})) {
		t.Fatal("UnionWith wrong")
	}
}

func TestIntersectContainsSharedElements(t *testing.T) {
	fm := fam(t, 100000)
	a := NewFromElements(fm, []uint64{1, 2, 3, 50})
	b := NewFromElements(fm, []uint64{50, 60, 70})
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	// The AND filter contains every element of the true intersection
	// (it may contain more).
	if !i.Contains(50) {
		t.Fatal("intersection lost shared element 50")
	}
}

func TestIncompatibleCombinations(t *testing.T) {
	a := New(hashfam.MustNew(hashfam.KindMurmur3, 1000, 3, 1))
	cases := []*Filter{
		New(hashfam.MustNew(hashfam.KindMurmur3, 2000, 3, 1)), // different m
		New(hashfam.MustNew(hashfam.KindMurmur3, 1000, 4, 1)), // different k
		New(hashfam.MustNew(hashfam.KindMurmur3, 1000, 3, 2)), // different seed
		New(hashfam.MustNew(hashfam.KindFNV, 1000, 3, 1)),     // different kind
	}
	for i, b := range cases {
		if _, err := a.Union(b); err == nil {
			t.Fatalf("case %d: Union accepted incompatible filters", i)
		}
		if _, err := a.Intersect(b); err == nil {
			t.Fatalf("case %d: Intersect accepted incompatible filters", i)
		}
		if err := a.UnionWith(b); err == nil {
			t.Fatalf("case %d: UnionWith accepted incompatible filters", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	f := New(fam(t, 1000))
	f.Add(1)
	c := f.Clone()
	c.Add(2)
	if !c.Contains(2) {
		t.Fatal("clone missing added element")
	}
	if f.Equal(c) {
		t.Fatal("clone mutation affected original equality")
	}
}

func TestIntersectionSetBitsMatchesIntersect(t *testing.T) {
	fm := fam(t, 20000)
	rng := rand.New(rand.NewSource(3))
	a, b := New(fm), New(fm)
	for i := 0; i < 500; i++ {
		a.Add(rng.Uint64() % 100000)
		b.Add(rng.Uint64() % 100000)
	}
	i, _ := a.Intersect(b)
	if a.IntersectionSetBits(b) != i.SetBits() {
		t.Fatal("IntersectionSetBits disagrees with Intersect().SetBits()")
	}
	if a.IntersectsAny(b) != (i.SetBits() > 0) {
		t.Fatal("IntersectsAny disagrees")
	}
}

func TestEstimateCardinalityAccurate(t *testing.T) {
	for _, n := range []uint64{100, 1000, 5000} {
		p, err := PlanParams(0.9, n, 1_000_000, 3)
		if err != nil {
			t.Fatal(err)
		}
		f := New(fam(t, p.Bits))
		for x := uint64(0); x < n; x++ {
			f.Add(x * 7919)
		}
		est := f.EstimateCardinality()
		if math.Abs(est-float64(n)) > 0.1*float64(n) {
			t.Fatalf("n=%d: estimate %.1f off by more than 10%%", n, est)
		}
	}
}

func TestEstimateCardinalityEdges(t *testing.T) {
	if got := EstimateCardinalityFromCounts(100, 3, 100); got != 0 {
		t.Fatalf("empty filter estimate = %v, want 0", got)
	}
	if got := EstimateCardinalityFromCounts(100, 3, 0); !math.IsInf(got, 1) {
		t.Fatalf("saturated filter estimate = %v, want +Inf", got)
	}
}

func TestEstimateIntersectionDisjointNearZero(t *testing.T) {
	n := uint64(1000)
	p, _ := PlanParams(0.9, n, 1_000_000, 3)
	fm := fam(t, p.Bits)
	a, b := New(fm), New(fm)
	for x := uint64(0); x < n; x++ {
		a.Add(x)
		b.Add(1_000_000 + x)
	}
	est := EstimateIntersectionOf(a, b)
	if est > float64(n)/10 {
		t.Fatalf("disjoint sets: intersection estimate %.1f too large", est)
	}
}

func TestEstimateIntersectionOverlapping(t *testing.T) {
	n := uint64(2000)
	overlap := uint64(500)
	p, _ := PlanParams(0.9, n, 1_000_000, 3)
	fm := fam(t, p.Bits)
	a, b := New(fm), New(fm)
	for x := uint64(0); x < n; x++ {
		a.Add(x)
		b.Add(x + n - overlap) // shares [n-overlap, n)
	}
	est := EstimateIntersectionOf(a, b)
	if math.Abs(est-float64(overlap)) > 0.35*float64(overlap) {
		t.Fatalf("overlap estimate %.1f, want ~%d", est, overlap)
	}
}

func TestEstimateIntersectionEdges(t *testing.T) {
	if got := EstimateIntersection(1000, 3, 10, 10, 0); got != 0 {
		t.Fatalf("empty AND estimate = %v, want 0", got)
	}
	// Saturated filters fall back to AND-based cardinality.
	if got := EstimateIntersection(1000, 3, 1000, 1000, 1000); !math.IsInf(got, 1) {
		t.Fatalf("saturated estimate = %v, want +Inf", got)
	}
	// Never negative.
	if got := EstimateIntersection(1000, 3, 1, 1, 1); got < 0 {
		t.Fatalf("estimate negative: %v", got)
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	// Known anchor: m=60870, k=3, n=1000 → FP ≈ 1.11e-4 (back-solved from
	// the paper's Table 2, accuracy 0.9).
	got := FalsePositiveRate(60870, 3, 1000)
	if got < 0.9e-4 || got > 1.3e-4 {
		t.Fatalf("FP = %v, want ~1.11e-4", got)
	}
	if FalsePositiveRate(0, 3, 10) != 1 {
		t.Fatal("m=0 should give FP=1")
	}
	if FalsePositiveRate(1000, 3, 0) != 0 {
		t.Fatal("n=0 should give FP=0")
	}
}

func TestFalseSetOverlapProbMonotone(t *testing.T) {
	// FSO probability grows with set sizes and shrinks with m.
	p1 := FalseSetOverlapProb(10000, 3, 10, 10)
	p2 := FalseSetOverlapProb(10000, 3, 100, 100)
	p3 := FalseSetOverlapProb(100000, 3, 100, 100)
	if !(p1 < p2) {
		t.Fatalf("FSO not increasing in n: %v vs %v", p1, p2)
	}
	if !(p3 < p2) {
		t.Fatalf("FSO not decreasing in m: %v vs %v", p3, p2)
	}
	if p := FalseSetOverlapProb(10000, 3, 0, 10); p != 0 {
		t.Fatalf("FSO with empty set = %v, want 0", p)
	}
}

func TestFalseSetOverlapEmpirical(t *testing.T) {
	// Empirically measure FSO frequency and compare with Eq. (1).
	const m, k = 2000, 3
	const n1, n2 = 10, 10
	trials := 3000
	hits := 0
	for i := 0; i < trials; i++ {
		fm := hashfam.MustNew(hashfam.KindFNV, m, k, uint64(i))
		a, b := New(fm), New(fm)
		for x := uint64(0); x < n1; x++ {
			a.Add(x)
			b.Add(1000 + x)
		}
		if a.IntersectsAny(b) {
			hits++
		}
	}
	got := float64(hits) / float64(trials)
	want := FalseSetOverlapProb(m, k, n1, n2)
	if math.Abs(got-want) > 0.12 {
		t.Fatalf("empirical FSO %.3f vs Eq.(1) %.3f", got, want)
	}
}

func TestAccuracyModel(t *testing.T) {
	// acc = n/(n+(M−n)FP); FP=0 → acc=1; n=0 → 0.
	if Accuracy(1000, 1_000_000, 0) != 1 {
		t.Fatal("zero-FP accuracy != 1")
	}
	if Accuracy(0, 100, 0.5) != 0 {
		t.Fatal("empty-set accuracy != 0")
	}
	got := Accuracy(1000, 1_000_000, 1.112e-4)
	if math.Abs(got-0.9) > 0.01 {
		t.Fatalf("accuracy = %v, want ~0.9", got)
	}
}

// PlanParams must reproduce the paper's Table 2 and Table 3 m values
// within ~1% (they were derived with the same formulas).
func TestPlanParamsMatchesPaperTables(t *testing.T) {
	cases := []struct {
		acc   float64
		M     uint64
		wantM uint64
	}{
		{0.5, 1_000_000, 28465},
		{0.6, 1_000_000, 32808},
		{0.7, 1_000_000, 38259},
		{0.8, 1_000_000, 46000},
		{0.9, 1_000_000, 60870},
		{1.0, 1_000_000, 137230},
		{0.5, 10_000_000, 63120},
		{0.6, 10_000_000, 72475},
		{0.7, 10_000_000, 84215},
		{0.8, 10_000_000, 101090},
		{0.9, 10_000_000, 132933},
		{1.0, 10_000_000, 297485},
	}
	for _, c := range cases {
		p, err := PlanParams(c.acc, 1000, c.M, 3)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(p.Bits)-float64(c.wantM)) / float64(c.wantM)
		if rel > 0.015 {
			t.Errorf("acc=%.1f M=%d: m=%d, paper %d (%.2f%% off)",
				c.acc, c.M, p.Bits, c.wantM, rel*100)
		}
	}
}

func TestPlanParamsErrors(t *testing.T) {
	if _, err := PlanParams(0.9, 0, 100, 3); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := PlanParams(0.9, 100, 100, 3); err == nil {
		t.Fatal("M<=n accepted")
	}
	if _, err := PlanParams(0, 10, 100, 3); err == nil {
		t.Fatal("accuracy 0 accepted")
	}
	if _, err := PlanParams(1.5, 10, 100, 3); err == nil {
		t.Fatal("accuracy >1 accepted")
	}
	if _, err := PlanParams(0.9, 10, 100, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBitsForFPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BitsForFP(0) did not panic")
		}
	}()
	BitsForFP(0, 10, 3)
}

// Property: planned parameters achieve (analytically) at least the
// requested accuracy.
func TestQuickPlannedAccuracyAchieved(t *testing.T) {
	f := func(accSeed uint16, nSeed uint16) bool {
		acc := 0.5 + float64(accSeed%50)/100.0 // 0.5..0.99
		n := uint64(nSeed%5000) + 10
		M := n * 1000
		p, err := PlanParams(acc, n, M, 3)
		if err != nil {
			return false
		}
		realized := Accuracy(n, M, FalsePositiveRate(p.Bits, 3, n))
		return realized >= acc-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSetClearBit(t *testing.T) {
	fm := fam(t, 500)
	f := NewFromElements(fm, []uint64{1, 2, 3})
	var set, clear int
	f.ForEachSetBit(func(uint64) bool { set++; return true })
	f.ForEachClearBit(func(uint64) bool { clear++; return true })
	if uint64(set) != f.SetBits() {
		t.Fatalf("set-bit iteration count %d != SetBits %d", set, f.SetBits())
	}
	if uint64(set+clear) != f.M() {
		t.Fatalf("set+clear = %d, want %d", set+clear, f.M())
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(hashfam.MustNew(hashfam.KindMurmur3, 60870, 3, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(hashfam.MustNew(hashfam.KindMurmur3, 60870, 3, 1))
	for i := 0; i < 1000; i++ {
		f.Add(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Contains(uint64(i))
	}
}

func BenchmarkEstimateIntersectionOf(b *testing.B) {
	fm := hashfam.MustNew(hashfam.KindMurmur3, 60870, 3, 1)
	x := New(fm)
	y := New(fm)
	for i := 0; i < 1000; i++ {
		x.Add(uint64(i))
		y.Add(uint64(i + 500))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EstimateIntersectionOf(x, y)
	}
}

// TestContainsConcurrent is the data-race regression test for the
// scratch-buffer removal: a single Filter must serve unsynchronized
// concurrent Contains / estimator calls (run under -race).
func TestContainsConcurrent(t *testing.T) {
	fm := fam(t, 60870)
	f := New(fm)
	g := New(fm)
	for i := 0; i < 2000; i++ {
		f.Add(uint64(i))
		g.Add(uint64(i + 1000))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				x := uint64((w*5000 + i) % 4000)
				got := f.Contains(x)
				if x < 2000 && !got {
					t.Errorf("false negative for %d", x)
					return
				}
				if i%100 == 0 {
					EstimateIntersectionOf(f, g)
					f.IntersectionSetBits(g)
					f.EstimateCardinality()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCountingContainsConcurrent covers the counting filter's shared
// read path the same way.
func TestCountingContainsConcurrent(t *testing.T) {
	c := NewCounting(fam(t, 60870))
	for i := 0; i < 1000; i++ {
		c.Add(uint64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				x := uint64((w*3000 + i) % 2000)
				if x < 1000 && !c.Contains(x) {
					t.Errorf("false negative for %d", x)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEstimateIntersectionOfMatchesSlowPath pins the AndNotCount fast
// path to the definitional three-count computation.
func TestEstimateIntersectionOfMatchesSlowPath(t *testing.T) {
	fm := fam(t, 60870)
	a := New(fm)
	b := New(fm)
	for i := 0; i < 800; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 400))
	}
	want := EstimateIntersection(a.M(), a.K(), a.SetBits(), b.SetBits(), a.IntersectionSetBits(b))
	got := EstimateIntersectionOf(a, b)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fast path %v != slow path %v", got, want)
	}
	empty := New(fm)
	if est := EstimateIntersectionOf(a, empty); est != 0 {
		t.Fatalf("estimate vs empty filter = %v, want 0", est)
	}
}
