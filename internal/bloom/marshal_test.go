package bloom

import (
	"testing"

	"repro/internal/hashfam"
)

func TestFilterMarshalRoundTrip(t *testing.T) {
	for _, kind := range hashfam.Kinds() {
		fam := hashfam.MustNew(kind, 12345, 3, 77)
		f := NewFromElements(fam, []uint64{1, 99, 5000, 1 << 30})
		data, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		g, err := UnmarshalFilter(data)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(g) {
			t.Fatalf("%s: round trip not equal", kind)
		}
		if g.Insertions() != 4 {
			t.Fatalf("%s: insertions = %d", kind, g.Insertions())
		}
		// The decoded filter must answer queries identically.
		for x := uint64(0); x < 2000; x++ {
			if f.Contains(x) != g.Contains(x) {
				t.Fatalf("%s: membership differs at %d", kind, x)
			}
		}
		// And must be compatible with the original (same family params).
		if err := f.Compatible(g); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestUnmarshalFilterErrors(t *testing.T) {
	if _, err := UnmarshalFilter(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := UnmarshalFilter([]byte("XXXX....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	fam := hashfam.MustNew(hashfam.KindFNV, 1000, 3, 1)
	good, err := NewFromElements(fam, []uint64{1}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalFilter(good[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := UnmarshalFilter(good[:len(good)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Corrupt family kind.
	bad := append([]byte(nil), good...)
	copy(bad[5:], "zzz")
	if _, err := UnmarshalFilter(bad); err == nil {
		t.Fatal("unknown family accepted")
	}
}
