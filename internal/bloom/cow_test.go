package bloom

import (
	"testing"

	"repro/internal/hashfam"
)

func cowFam(t *testing.T) hashfam.Family {
	t.Helper()
	fam, err := hashfam.New(hashfam.KindMurmur3, 4096, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

// TestCloneAddLeavesOriginalUntouched pins the copy-on-write contract:
// the receiver is bit-for-bit unchanged and the returned filter holds the
// union of old and new elements.
func TestCloneAddLeavesOriginalUntouched(t *testing.T) {
	fam := cowFam(t)
	base := NewFromElements(fam, []uint64{1, 2, 3})
	before := base.Clone()

	next := base.CloneAdd(100, 200, 300)
	if !base.Equal(before) {
		t.Fatal("CloneAdd mutated the receiver")
	}
	for _, x := range []uint64{1, 2, 3, 100, 200, 300} {
		if !next.Contains(x) {
			t.Fatalf("clone missing %d", x)
		}
	}
	if next.Insertions() != 6 {
		t.Fatalf("clone insertions = %d, want 6", next.Insertions())
	}
	if base.Insertions() != 3 {
		t.Fatalf("receiver insertions = %d, want 3", base.Insertions())
	}
}

// TestCloneAddSharesBitsWhenUnchanged pins the shared-page trick: when no
// bit changes (duplicate inserts), the bit vector is shared rather than
// copied, and the insertion count still advances on the new header.
func TestCloneAddSharesBitsWhenUnchanged(t *testing.T) {
	fam := cowFam(t)
	base := NewFromElements(fam, []uint64{7, 8, 9})
	dup := base.CloneAdd(7, 9)
	if dup.Bits() != base.Bits() {
		t.Fatal("duplicate-only CloneAdd should share the bit vector")
	}
	if dup.Insertions() != 5 {
		t.Fatalf("insertions = %d, want 5", dup.Insertions())
	}
	grown := base.CloneAdd(7, 1234)
	if grown.Bits() == base.Bits() {
		t.Fatal("CloneAdd with a new element must copy the bit vector")
	}
	if !grown.Contains(1234) || !grown.Contains(7) {
		t.Fatal("grown clone missing elements")
	}
}

// TestCloneAddMatchesAdd: CloneAdd and sequential Add produce identical
// filters.
func TestCloneAddMatchesAdd(t *testing.T) {
	fam := cowFam(t)
	a := NewFromElements(fam, []uint64{10, 20})
	b := a.CloneAdd(30, 40, 50)
	c := a.Clone()
	for _, x := range []uint64{30, 40, 50} {
		c.Add(x)
	}
	if !b.Equal(c) {
		t.Fatal("CloneAdd result differs from sequential Add")
	}
}

// TestCountingCloneRemoveAtomic pins the all-or-nothing batch contract of
// CloneRemove: a batch containing a non-member fails without producing a
// new filter, and the receiver never changes.
func TestCountingCloneRemoveAtomic(t *testing.T) {
	fam := cowFam(t)
	c := NewCounting(fam)
	for _, x := range []uint64{1, 2, 3} {
		c.Add(x)
	}
	if _, err := c.CloneRemove(1, 999); err == nil {
		t.Fatal("batch with non-member accepted")
	}
	for _, x := range []uint64{1, 2, 3} {
		if !c.Contains(x) {
			t.Fatalf("receiver lost %d after failed CloneRemove", x)
		}
	}
	next, err := c.CloneRemove(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if next.Contains(1) && next.Contains(3) && next.Contains(2) == false {
		t.Fatal("CloneRemove did not remove the batch")
	}
	if !next.Contains(2) {
		t.Fatal("CloneRemove removed a surviving member")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("CloneRemove mutated the receiver")
	}
	if next.Live() != 1 {
		t.Fatalf("Live = %d, want 1", next.Live())
	}
}

// TestCountingSnapshotCache pins that Snapshot memoizes until the next
// mutation and that the cached projection stays correct across the
// mutate/invalidate cycle.
func TestCountingSnapshotCache(t *testing.T) {
	fam := cowFam(t)
	c := NewCounting(fam)
	c.Add(5)
	s1 := c.Snapshot()
	if s2 := c.Snapshot(); s1 != s2 {
		t.Fatal("unchanged filter should return the cached snapshot")
	}
	c.Add(6)
	s3 := c.Snapshot()
	if s3 == s1 {
		t.Fatal("mutation must invalidate the snapshot cache")
	}
	if !s3.Contains(5) || !s3.Contains(6) {
		t.Fatal("fresh snapshot missing elements")
	}
	if s1.Contains(6) && !s1.Contains(5) {
		t.Fatal("old snapshot changed retroactively")
	}
	if err := c.Remove(6); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Contains(6) {
		t.Fatal("snapshot after Remove still contains removed element")
	}
}
