package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashfam"
)

func countingFam(t testing.TB) hashfam.Family {
	t.Helper()
	return hashfam.MustNew(hashfam.KindMurmur3, 10000, 3, 5)
}

func TestCountingAddRemoveContains(t *testing.T) {
	c := NewCounting(countingFam(t))
	if c.Contains(42) {
		t.Fatal("empty filter contains 42")
	}
	c.Add(42)
	if !c.Contains(42) {
		t.Fatal("added element missing")
	}
	if c.Live() != 1 {
		t.Fatalf("Live = %d", c.Live())
	}
	if err := c.Remove(42); err != nil {
		t.Fatal(err)
	}
	if c.Contains(42) {
		t.Fatal("removed element still present")
	}
	if c.Live() != 0 {
		t.Fatalf("Live = %d after remove", c.Live())
	}
}

func TestCountingRemoveNonMember(t *testing.T) {
	c := NewCounting(countingFam(t))
	c.Add(1)
	if err := c.Remove(999999); err == nil {
		t.Fatal("remove of non-member accepted")
	}
	// The failed remove must not damage the stored element.
	if !c.Contains(1) {
		t.Fatal("failed remove corrupted member")
	}
}

func TestCountingSharedBitsSurviveRemoval(t *testing.T) {
	// Two elements may share counter positions; removing one must keep
	// the other present.
	c := NewCounting(countingFam(t))
	for x := uint64(0); x < 500; x++ {
		c.Add(x)
	}
	for x := uint64(0); x < 250; x++ {
		if err := c.Remove(x); err != nil {
			t.Fatal(err)
		}
	}
	for x := uint64(250); x < 500; x++ {
		if !c.Contains(x) {
			t.Fatalf("element %d lost after removing others", x)
		}
	}
}

func TestCountingSnapshotMatchesPlainFilter(t *testing.T) {
	fam := countingFam(t)
	c := NewCounting(fam)
	plain := New(fam)
	rng := rand.New(rand.NewSource(1))
	live := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		x := rng.Uint64() % 100000
		c.Add(x)
		live[x] = true
	}
	// Remove half, then compare the snapshot with a plain filter built
	// from the survivors.
	removed := 0
	for x := range live {
		if removed >= len(live)/2 {
			break
		}
		if err := c.Remove(x); err != nil {
			t.Fatal(err)
		}
		delete(live, x)
		removed++
	}
	for x := range live {
		plain.Add(x)
	}
	snap := c.Snapshot()
	// Counter-based state after add+remove equals direct construction
	// from the survivors (no counter saturated in this test).
	if !snap.Equal(plain) {
		t.Fatal("snapshot differs from directly built filter")
	}
	if snap.Insertions() != uint64(len(live)) {
		t.Fatalf("snapshot insertions = %d, want %d", snap.Insertions(), len(live))
	}
}

func TestCountingSaturation(t *testing.T) {
	// Force a counter to 255 by re-adding one element; saturated counters
	// pin and never decrement, so the element stays present no matter how
	// many removes follow.
	c := NewCounting(countingFam(t))
	for i := 0; i < 300; i++ {
		c.Add(7)
	}
	for i := 0; i < 300; i++ {
		if err := c.Remove(7); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Contains(7) {
		t.Fatal("saturated element lost (counter wrapped?)")
	}
}

func TestCountingReset(t *testing.T) {
	c := NewCounting(countingFam(t))
	c.Add(1)
	c.Reset()
	if c.Contains(1) || c.Live() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCountingSizeBytes(t *testing.T) {
	c := NewCounting(countingFam(t))
	if c.SizeBytes() != 10000 {
		t.Fatalf("SizeBytes = %d", c.SizeBytes())
	}
	// ~8x a plain filter of the same m (one byte per position vs one bit,
	// modulo the plain filter's word alignment).
	plain := New(countingFam(t))
	if c.SizeBytes() < plain.SizeBytes()*7 || c.SizeBytes() > plain.SizeBytes()*8 {
		t.Fatalf("counting %d vs plain %d bytes", c.SizeBytes(), plain.SizeBytes())
	}
}

// Property: after any sequence of adds and (valid) removes, every element
// with a positive net count is present — no false negatives, ever.
func TestQuickCountingNoFalseNegatives(t *testing.T) {
	fam := hashfam.MustNew(hashfam.KindFNV, 4096, 3, 9)
	f := func(ops []uint16) bool {
		c := NewCounting(fam)
		net := map[uint64]int{}
		for _, o := range ops {
			x := uint64(o % 512)
			if o&0x8000 != 0 && net[x] > 0 {
				if err := c.Remove(x); err != nil {
					return false // x had net>0 so it must be removable
				}
				net[x]--
			} else {
				c.Add(x)
				net[x]++
			}
		}
		for x, n := range net {
			if n > 0 && !c.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot agrees with Contains on every queried element.
func TestQuickCountingSnapshotConsistent(t *testing.T) {
	fam := hashfam.MustNew(hashfam.KindFNV, 4096, 3, 11)
	f := func(xs []uint16, probes []uint16) bool {
		c := NewCounting(fam)
		for _, x := range xs {
			c.Add(uint64(x))
		}
		snap := c.Snapshot()
		for _, p := range probes {
			if snap.Contains(uint64(p)) != c.Contains(uint64(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
