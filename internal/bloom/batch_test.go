package bloom

import (
	"testing"

	"repro/internal/hashfam"
)

// ContainsBatch must agree with Contains for every family, and AddMany
// with element-wise Add.
func TestBatchMatchesSingle(t *testing.T) {
	for _, kind := range hashfam.Kinds() {
		fam := hashfam.MustNew(kind, 2048, 4, 9)
		xs := make([]uint64, 150)
		for i := range xs {
			xs[i] = uint64(i * 37)
		}
		batched := NewFromElements(fam, xs[:100])
		single := New(fam)
		for _, x := range xs[:100] {
			single.Add(x)
		}
		if !batched.Equal(single) {
			t.Fatalf("%s: AddMany filter differs from Add filter", kind)
		}
		if batched.Insertions() != 100 {
			t.Fatalf("%s: Insertions = %d, want 100", kind, batched.Insertions())
		}

		out := make([]bool, len(xs))
		scratch := batched.ContainsBatch(xs, out, nil)
		if len(scratch) != len(xs)*4 {
			t.Fatalf("%s: scratch has %d positions, want %d", kind, len(scratch), len(xs)*4)
		}
		for i, x := range xs {
			if out[i] != batched.Contains(x) {
				t.Fatalf("%s: ContainsBatch[%d] = %v, Contains(%d) = %v", kind, i, out[i], x, batched.Contains(x))
			}
		}
		for _, x := range xs[:100] {
			if !batched.Contains(x) {
				t.Fatalf("%s: false negative for %d", kind, x)
			}
		}
	}
}

// TestContainsBatchSteadyStateZeroAllocs pins the batched probe path —
// one PositionsMany call plus word-sliced TestAll per key — at zero heap
// allocations once the caller threads the scratch buffer back in. This
// is the inner loop of every leaf scan, so a regression taxes all
// sampling and reconstruction.
func TestContainsBatchSteadyStateZeroAllocs(t *testing.T) {
	fam := hashfam.MustNew(hashfam.DefaultKind, 4096, 5, 3)
	f := New(fam)
	xs := make([]uint64, 64)
	for i := range xs {
		xs[i] = uint64(i * 13)
		f.Add(xs[i])
	}
	out := make([]bool, len(xs))
	scratch := make([]uint64, 0, len(xs)*5)
	scratch = f.ContainsBatch(xs, out, scratch) // warm up
	allocs := testing.AllocsPerRun(500, func() {
		scratch = f.ContainsBatch(xs, out, scratch)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ContainsBatch allocates %v per call, want 0", allocs)
	}
}

// The single-probe pooled path must also stay allocation-free with the
// word-sliced TestAll underneath.
func TestContainsSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector; the pooled path cannot be alloc-pinned")
	}
	fam := hashfam.MustNew(hashfam.DefaultKind, 4096, 5, 3)
	f := New(fam)
	for i := uint64(0); i < 64; i++ {
		f.Add(i * 13)
	}
	f.Contains(9) // warm the pool
	allocs := testing.AllocsPerRun(500, func() {
		f.Contains(9)
		f.Contains(13 * 7)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Contains allocates %v per call, want 0", allocs)
	}
}

// Oversized position buffers must not be recycled: a one-off probe with a
// pathological k must not pin a huge buffer in the shared pool.
func TestPositionPoolDropsOversized(t *testing.T) {
	if poolablePositions(maxPooledPositions) != true {
		t.Fatal("cap == maxPooledPositions should be poolable")
	}
	if poolablePositions(maxPooledPositions + 1) {
		t.Fatal("cap > maxPooledPositions should be dropped")
	}
	// End-to-end: a probe with k > maxPooledPositions must work and must
	// not panic the pool plumbing.
	fam := hashfam.MustNew(hashfam.KindFast, 1<<20, maxPooledPositions+8, 1)
	f := New(fam)
	f.Add(77)
	if !f.Contains(77) {
		t.Fatal("false negative after oversized-k add")
	}
}
