package bloom

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/hashfam"
)

// Binary encoding of a Filter: a fixed header carrying the hash-family
// parameters (so a decoded filter is immediately usable and provably
// compatible with its peers) followed by the packed bit vector.
//
//	magic   [4]byte  "BSF1"
//	kind    uint8    length of the family-kind string
//	        []byte   family kind
//	m       uint64   filter length in bits
//	k       uint32   hash functions
//	seed    uint64   family seed
//	n       uint64   insertion count
//	bits    []byte   bitset.Set encoding
const filterMagic = "BSF1"

// MarshalBinary encodes the filter, including its hash-family parameters.
func (f *Filter) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(filterMagic)
	kind := string(f.fam.Kind())
	if len(kind) > 255 {
		return nil, fmt.Errorf("bloom: family kind %q too long", kind)
	}
	buf.WriteByte(byte(len(kind)))
	buf.WriteString(kind)
	var hdr [28]byte
	binary.LittleEndian.PutUint64(hdr[0:], f.M())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.K()))
	binary.LittleEndian.PutUint64(hdr[12:], f.fam.Seed())
	binary.LittleEndian.PutUint64(hdr[20:], f.n)
	buf.Write(hdr[:])
	bits, err := f.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf.Write(bits)
	return buf.Bytes(), nil
}

// Binary encoding of a CountingFilter: the same family header as a plain
// filter (magic "BSC1") followed by the raw counter array.
//
//	magic   [4]byte  "BSC1"
//	kind    uint8    length of the family-kind string
//	        []byte   family kind
//	m       uint64   counter array length
//	k       uint32   hash functions
//	seed    uint64   family seed
//	n       uint64   live insertion count
//	counts  []byte   m 8-bit counters
const countingMagic = "BSC1"

// MarshalBinary encodes the counting filter, including its hash-family
// parameters.
func (c *CountingFilter) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(countingMagic)
	kind := string(c.fam.Kind())
	if len(kind) > 255 {
		return nil, fmt.Errorf("bloom: family kind %q too long", kind)
	}
	buf.WriteByte(byte(len(kind)))
	buf.WriteString(kind)
	var hdr [28]byte
	binary.LittleEndian.PutUint64(hdr[0:], c.M())
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.K()))
	binary.LittleEndian.PutUint64(hdr[12:], c.fam.Seed())
	binary.LittleEndian.PutUint64(hdr[20:], c.n)
	buf.Write(hdr[:])
	buf.Write(c.counts)
	return buf.Bytes(), nil
}

// UnmarshalCounting decodes a counting filter produced by its
// MarshalBinary, reconstructing the hash family from the embedded
// parameters.
func UnmarshalCounting(data []byte) (*CountingFilter, error) {
	if len(data) < len(countingMagic)+1 || string(data[:4]) != countingMagic {
		return nil, fmt.Errorf("bloom: bad counting magic")
	}
	data = data[4:]
	kl := int(data[0])
	if len(data) < 1+kl+28 {
		return nil, fmt.Errorf("bloom: truncated counting header")
	}
	kind := hashfam.Kind(data[1 : 1+kl])
	data = data[1+kl:]
	m := binary.LittleEndian.Uint64(data[0:])
	k := binary.LittleEndian.Uint32(data[8:])
	seed := binary.LittleEndian.Uint64(data[12:])
	n := binary.LittleEndian.Uint64(data[20:])
	data = data[28:]
	if uint64(len(data)) != m {
		return nil, fmt.Errorf("bloom: header m=%d but payload has %d counters", m, len(data))
	}
	fam, err := hashfam.New(kind, m, int(k), seed)
	if err != nil {
		return nil, fmt.Errorf("bloom: decoding family: %w", err)
	}
	c := NewCounting(fam)
	copy(c.counts, data)
	c.n = n
	return c, nil
}

// UnmarshalFilter decodes a filter produced by MarshalBinary,
// reconstructing its hash family from the embedded parameters.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < len(filterMagic)+1 || string(data[:4]) != filterMagic {
		return nil, fmt.Errorf("bloom: bad magic")
	}
	data = data[4:]
	kl := int(data[0])
	if len(data) < 1+kl+28 {
		return nil, fmt.Errorf("bloom: truncated header")
	}
	kind := hashfam.Kind(data[1 : 1+kl])
	data = data[1+kl:]
	m := binary.LittleEndian.Uint64(data[0:])
	k := binary.LittleEndian.Uint32(data[8:])
	seed := binary.LittleEndian.Uint64(data[12:])
	n := binary.LittleEndian.Uint64(data[20:])
	data = data[28:]
	fam, err := hashfam.New(kind, m, int(k), seed)
	if err != nil {
		return nil, fmt.Errorf("bloom: decoding family: %w", err)
	}
	f := New(fam)
	if err := f.bits.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	if f.bits.Len() != m {
		return nil, fmt.Errorf("bloom: header m=%d but payload has %d bits", m, f.bits.Len())
	}
	f.n = n
	return f, nil
}
