package bloom

import (
	"fmt"
	"math"
)

// MaxPlannedAccuracy is the cap applied to requested sampling accuracy. A
// literal accuracy of 1.0 requires a zero false-positive rate and hence an
// infinite filter; back-solving the paper's own Table 2/3 rows labelled
// "1.0" (m = 137230 for M = 10⁶ and m = 297485 for M = 10⁷ at n = 10³,
// k = 3) yields a realized accuracy of 0.990 in both cases, so the paper
// effectively used 0.99 and we do the same.
const MaxPlannedAccuracy = 0.99

// Params carries the planned Bloom-filter parameters for a desired
// sampling accuracy (§5.4).
type Params struct {
	M        uint64  // namespace size
	N        uint64  // design query-set size
	K        int     // number of hash functions
	Accuracy float64 // requested accuracy (after capping)
	FP       float64 // false-positive rate implied by Accuracy
	Bits     uint64  // filter size m in bits
}

// FPForAccuracy inverts the accuracy model acc = n/(n + (M−n)·FP), giving
// the false-positive rate required to achieve accuracy acc for query sets
// of size n in a namespace of size M.
func FPForAccuracy(acc float64, n, M uint64) float64 {
	if M <= n {
		return 0
	}
	return float64(n) * (1 - acc) / (acc * float64(M-n))
}

// BitsForFP returns the filter size m achieving false-positive rate fp for
// n elements with k hash functions: m = −k·n / ln(1 − fp^{1/k}).
func BitsForFP(fp float64, n uint64, k int) uint64 {
	if fp <= 0 || fp >= 1 {
		panic(fmt.Sprintf("bloom: fp = %v out of (0,1)", fp))
	}
	root := math.Pow(fp, 1/float64(k))
	m := -float64(k) * float64(n) / math.Log(1-root)
	return uint64(math.Ceil(m))
}

// PlanParams picks the Bloom-filter size for a desired sampling accuracy,
// design query-set size n, namespace size M and hash-function count k,
// following §5.4. Accuracies above MaxPlannedAccuracy are capped (see that
// constant for why). It returns an error for nonsensical inputs.
func PlanParams(accuracy float64, n, M uint64, k int) (Params, error) {
	if n == 0 || M <= n {
		return Params{}, fmt.Errorf("bloom: need 0 < n < M, got n=%d M=%d", n, M)
	}
	if k < 1 {
		return Params{}, fmt.Errorf("bloom: k = %d, need k >= 1", k)
	}
	if accuracy <= 0 || accuracy > 1 {
		return Params{}, fmt.Errorf("bloom: accuracy = %v out of (0,1]", accuracy)
	}
	if accuracy > MaxPlannedAccuracy {
		accuracy = MaxPlannedAccuracy
	}
	fp := FPForAccuracy(accuracy, n, M)
	bits := BitsForFP(fp, n, k)
	return Params{M: M, N: n, K: k, Accuracy: accuracy, FP: fp, Bits: bits}, nil
}
