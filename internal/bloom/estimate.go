package bloom

import "math"

// FalsePositiveRate returns the standard Bloom-filter false-positive
// probability (1 − e^{−kn/m})^k for a filter of m bits, k hash functions
// and n stored elements (§3.1).
func FalsePositiveRate(m uint64, k int, n uint64) float64 {
	if m == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// FalseSetOverlapProb returns the probability of Eq. (1): for two disjoint
// sets of sizes n1 and n2 stored in filters of m bits with k hash
// functions, the probability that the bitwise AND of the filters is
// non-empty even though the sets are disjoint:
//
//	P[FSO∩] = 1 − (1 − 1/m)^{k²·n1·n2}
func FalseSetOverlapProb(m uint64, k int, n1, n2 uint64) float64 {
	if m == 0 {
		return 1
	}
	exponent := float64(k) * float64(k) * float64(n1) * float64(n2)
	// (1−1/m)^e = exp(e·log1p(−1/m)); log1p keeps precision for large m.
	return 1 - math.Exp(exponent*math.Log1p(-1/float64(m)))
}

// EstimateCardinalityFromCounts returns the paper's population estimate
// n̂ = ln(ẑ/m) / (k·ln(1−1/m)) given the number of zero bits ẑ
// (Prop. 5.2 proof). zero == 0 (a saturated filter) yields +Inf.
func EstimateCardinalityFromCounts(m uint64, k int, zero uint64) float64 {
	if zero == 0 {
		return math.Inf(1)
	}
	if zero >= m {
		return 0
	}
	return math.Log(float64(zero)/float64(m)) / (float64(k) * math.Log1p(-1/float64(m)))
}

// EstimateCardinality returns the estimated number of distinct elements
// stored in f.
func (f *Filter) EstimateCardinality() float64 {
	return EstimateCardinalityFromCounts(f.M(), f.K(), f.M()-f.SetBits())
}

// EstimateIntersection returns the Papapetrou et al. estimate of the size
// of the intersection of the sets stored in two filters (§5.3):
//
//	Ŝ⁻¹(t1,t2,t∧) = [ln(m − (t∧·m − t1·t2)/(m − t1 − t2 + t∧)) − ln m]
//	                 / (k·ln(1 − 1/m))
//
// where t1 and t2 are the set-bit counts of the two filters and t∧ the
// set-bit count of their bitwise AND. Degenerate inputs (saturated
// filters, t∧ ≥ min(t1,t2) rounding artifacts) are clamped to sensible
// non-negative values; an all-zero AND yields 0.
func EstimateIntersection(m uint64, k int, t1, t2, tand uint64) float64 {
	if tand == 0 {
		return 0
	}
	mf := float64(m)
	// Saturation guard: when either filter has nearly all bits set, the
	// estimator's signal (shared bits beyond the t1·t2/m chance level)
	// vanishes and the formula returns noise — including spurious zeros
	// that would prune live branches of the BloomSampleTree. A saturated
	// filter carries no information, so fall back to the smaller of the
	// two single-filter cardinalities (an upper bound on the intersection
	// and the best remaining estimate).
	const saturation = 0.9
	if float64(t1) >= saturation*mf || float64(t2) >= saturation*mf {
		return math.Min(
			EstimateCardinalityFromCounts(m, k, m-t1),
			EstimateCardinalityFromCounts(m, k, m-t2))
	}
	denomInner := mf - float64(t1) - float64(t2) + float64(tand)
	if denomInner <= 0 {
		// Unreachable for unsaturated filters (t∧ ≤ min(t1,t2) keeps the
		// denominator positive when t1+t2 < m·(1+sat)); kept as a safety
		// net for adversarial counts.
		return EstimateCardinalityFromCounts(m, k, m-tand)
	}
	inner := mf - (float64(tand)*mf-float64(t1)*float64(t2))/denomInner
	if inner <= 0 {
		return math.Inf(1) // AND explains more than the whole filter: huge set
	}
	if inner >= mf {
		return 0 // estimated zero count >= m: empty intersection
	}
	est := (math.Log(inner) - math.Log(mf)) / (float64(k) * math.Log1p(-1/mf))
	if est < 0 {
		return 0
	}
	return est
}

// EstimateIntersectionOf computes EstimateIntersection directly from two
// filters, without materializing their AND. It is read-only on both
// filters and safe for unsynchronized concurrent callers.
//
// Fast path: the AND popcount is computed first, and a zero AND — the
// common case at the sparse lower levels of a BloomSampleTree descent —
// returns 0 after a single pass over the words. Otherwise the individual
// set-bit counts are recovered from the AND count plus one AndNotCount
// pass per side (t = t∧ + |s AND NOT t|), never touching the bit vectors
// more than three times in total.
func EstimateIntersectionOf(a, b *Filter) float64 {
	tand := a.bits.AndCount(b.bits)
	if tand == 0 {
		return 0
	}
	t1 := tand + a.bits.AndNotCount(b.bits)
	t2 := tand + b.bits.AndNotCount(a.bits)
	return EstimateIntersection(a.M(), a.K(), t1, t2, tand)
}

// Accuracy returns the paper's accuracy measure (§5.4)
//
//	acc = n / (n + (M−n)·FP)
//
// for a query set of size n in a namespace of size M with false-positive
// rate FP: the ratio of true elements to all elements that answer a
// membership query positively.
func Accuracy(n, M uint64, fp float64) float64 {
	if n == 0 {
		return 0
	}
	return float64(n) / (float64(n) + float64(M-n)*fp)
}
