package baseline

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// HashInvert samples from and reconstructs Bloom filters whose hash
// functions are weakly invertible (§4): given a set bit position s, the
// candidate preimages {y : h_i(y) = s} can be enumerated in O(M/m) time
// per hash function and pruned with membership queries.
type HashInvert struct {
	// Namespace is the size M of the namespace.
	Namespace uint64
}

// invertible extracts the Invertible interface from a filter's family, or
// reports an error for non-invertible families (Murmur3, MD5, FNV).
func invertible(q *bloom.Filter) (hashfam.Invertible, error) {
	inv, ok := q.Family().(hashfam.Invertible)
	if !ok {
		return nil, fmt.Errorf("baseline: hash family %q is not weakly invertible", q.Family().Kind())
	}
	return inv, nil
}

// Sample draws an element from the set stored in q: a uniformly random SET
// bit s is inverted under each of the k hash functions into candidate sets
// P_1(s)..P_k(s), the candidates are pruned by membership queries, and a
// uniform choice among the survivors is returned. As the paper notes, no
// uniformity guarantee holds for the overall sample (elements reachable
// from popular bits are favoured). ok is false if the filter is empty or
// the chosen bit's candidates all fail the membership test (possible when
// s was set by hash functions other than those inverted — retry in that
// case).
func (h HashInvert) Sample(q *bloom.Filter, rng *rand.Rand, ops *core.Ops) (uint64, bool, error) {
	inv, err := invertible(q)
	if err != nil {
		return 0, false, err
	}
	set := q.SetBits()
	if set == 0 {
		return 0, false, nil
	}
	// Pick the j-th set bit uniformly; locating it costs O(m) (§4:
	// "sampling a set bit takes O(m) time").
	j := rng.Int63n(int64(set))
	var s uint64
	q.ForEachSetBit(func(pos uint64) bool {
		if j == 0 {
			s = pos
			return false
		}
		j--
		return true
	})

	// Invert s under every hash function and prune with membership
	// queries, reservoir-sampling the survivors so no candidate set is
	// materialized (the paper's no-extra-space observation). Candidates
	// may repeat across hash functions; de-duplicate by skipping y whose
	// earlier-inverting function index already produced it.
	var chosen uint64
	count := 0
	var buf []uint64
	for i := 0; i < q.K(); i++ {
		buf = inv.Preimages(i, s, 0, h.Namespace, buf[:0])
		for _, y := range buf {
			if dup := firstHitIndex(inv, y, s); dup < i {
				continue
			}
			if ops != nil {
				ops.Memberships++
			}
			if q.Contains(y) {
				count++
				if rng.Intn(count) == 0 {
					chosen = y
				}
			}
		}
	}
	return chosen, count > 0, nil
}

// firstHitIndex returns the smallest hash-function index mapping y to s.
func firstHitIndex(inv hashfam.Invertible, y, s uint64) int {
	pos := inv.Positions(y, nil)
	for i, p := range pos {
		if p == s {
			return i
		}
	}
	return len(pos)
}

// Reconstruct returns the set stored in q (true elements plus false
// positives) in ascending order. It inverts the first hash function over
// either the SET bits or, for dense filters, the UNSET bits (the §4
// "simple trick": elements whose h_1 position is unset are certainly
// absent, so the survivors of the complement are membership-tested). The
// variant is chosen automatically by fill ratio; both cost O(t·M/m)
// inversions plus the membership tests.
func (h HashInvert) Reconstruct(q *bloom.Filter, ops *core.Ops) ([]uint64, error) {
	inv, err := invertible(q)
	if err != nil {
		return nil, err
	}
	if q.FillRatio() <= 0.5 {
		return h.reconstructFromSetBits(q, inv, ops), nil
	}
	return h.reconstructFromUnsetBits(q, inv, ops), nil
}

// reconstructFromSetBits enumerates, for every set bit s, the h_1
// preimages of s, and membership-tests each. Because the h_1 preimage sets
// partition the namespace, every positive element is found exactly once
// (its h_1 bit is necessarily set) and no deduplication is needed.
func (h HashInvert) reconstructFromSetBits(q *bloom.Filter, inv hashfam.Invertible, ops *core.Ops) []uint64 {
	var out []uint64
	var buf []uint64
	q.ForEachSetBit(func(s uint64) bool {
		buf = inv.Preimages(0, s, 0, h.Namespace, buf[:0])
		for _, y := range buf {
			if ops != nil {
				ops.Memberships++
			}
			if q.Contains(y) {
				out = append(out, y)
			}
		}
		return true
	})
	slices.Sort(out)
	return out
}

// reconstructFromUnsetBits marks the h_1 preimages of every UNSET bit as
// certainly-absent and membership-tests only the unmarked elements.
func (h HashInvert) reconstructFromUnsetBits(q *bloom.Filter, inv hashfam.Invertible, ops *core.Ops) []uint64 {
	excluded := make([]bool, h.Namespace)
	var buf []uint64
	q.ForEachClearBit(func(s uint64) bool {
		buf = inv.Preimages(0, s, 0, h.Namespace, buf[:0])
		for _, y := range buf {
			excluded[y] = true
		}
		return true
	})
	var out []uint64
	for y := uint64(0); y < h.Namespace; y++ {
		if excluded[y] {
			continue
		}
		if ops != nil {
			ops.Memberships++
		}
		if q.Contains(y) {
			out = append(out, y)
		}
	}
	return out
}
