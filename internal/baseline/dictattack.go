// Package baseline implements the paper's two baseline methods (§4):
// DictionaryAttack, which fires a membership query for every element of
// the namespace, and HashInvert, which exploits weakly invertible hash
// functions to enumerate candidate preimages of set bits.
package baseline

import (
	"math/rand"

	"repro/internal/bloom"
	"repro/internal/core"
)

// DictionaryAttack samples from and reconstructs Bloom filters by brute
// force over a namespace [0, M): O(M) membership queries per operation.
type DictionaryAttack struct {
	// Namespace is the size M of the namespace.
	Namespace uint64
}

// Sample returns a uniformly random element of the set stored in q
// (including false positives) using reservoir sampling (Vitter's
// Algorithm R, [19]): the i-th positive replaces the current sample with
// probability 1/i, which yields an exactly uniform choice in one pass.
// ok is false when the filter answers negatively for the whole namespace.
func (d DictionaryAttack) Sample(q *bloom.Filter, rng *rand.Rand, ops *core.Ops) (x uint64, ok bool) {
	count := 0
	if ops != nil {
		ops.Memberships += d.Namespace
	}
	var scratch []uint64
	for y := uint64(0); y < d.Namespace; y++ {
		var hit bool
		hit, scratch = q.ContainsScratch(y, scratch)
		if hit {
			count++
			if rng.Intn(count) == 0 {
				x = y
			}
		}
	}
	return x, count > 0
}

// SampleN returns r elements sampled uniformly without replacement via
// reservoir sampling with a reservoir of size r. Fewer than r positives
// yields all of them.
func (d DictionaryAttack) SampleN(q *bloom.Filter, r int, rng *rand.Rand, ops *core.Ops) []uint64 {
	if r <= 0 {
		return nil
	}
	if ops != nil {
		ops.Memberships += d.Namespace
	}
	reservoir := make([]uint64, 0, r)
	count := 0
	var scratch []uint64
	for y := uint64(0); y < d.Namespace; y++ {
		var hit bool
		hit, scratch = q.ContainsScratch(y, scratch)
		if !hit {
			continue
		}
		count++
		if len(reservoir) < r {
			reservoir = append(reservoir, y)
		} else if j := rng.Intn(count); j < r {
			reservoir[j] = y
		}
	}
	return reservoir
}

// Reconstruct returns every element of [0, M) answering positively, in
// ascending order — the paper's definition of reconstructing S ∪ S(B).
func (d DictionaryAttack) Reconstruct(q *bloom.Filter, ops *core.Ops) []uint64 {
	if ops != nil {
		ops.Memberships += d.Namespace
	}
	var out []uint64
	var scratch []uint64
	for y := uint64(0); y < d.Namespace; y++ {
		var hit bool
		hit, scratch = q.ContainsScratch(y, scratch)
		if hit {
			out = append(out, y)
		}
	}
	return out
}
