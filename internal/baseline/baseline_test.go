package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
)

func simpleFam(t testing.TB, m uint64) hashfam.Family {
	t.Helper()
	return hashfam.MustNew(hashfam.KindSimple, m, 3, 17)
}

func TestDictionaryAttackSampleUniform(t *testing.T) {
	// Exactly uniform by construction (reservoir); verify empirically over
	// a small positive set.
	const M = 5000
	fam := simpleFam(t, 3000)
	set := []uint64{10, 500, 999, 1500, 4999}
	q := bloom.NewFromElements(fam, set)
	// Ground truth positives (set plus any false positives).
	var truth []uint64
	for y := uint64(0); y < M; y++ {
		if q.Contains(y) {
			truth = append(truth, y)
		}
	}
	da := DictionaryAttack{Namespace: M}
	rng := rand.New(rand.NewSource(1))
	counts := map[uint64]int{}
	const rounds = 6000
	for i := 0; i < rounds; i++ {
		x, ok := da.Sample(q, rng, nil)
		if !ok {
			t.Fatal("sample failed")
		}
		if !q.Contains(x) {
			t.Fatalf("sampled non-positive %d", x)
		}
		counts[x]++
	}
	want := float64(rounds) / float64(len(truth))
	for _, y := range truth {
		if c := float64(counts[y]); math.Abs(c-want) > 5*math.Sqrt(want) {
			t.Fatalf("element %d sampled %v times, want ~%.0f", y, c, want)
		}
	}
}

func TestDictionaryAttackEmptyFilter(t *testing.T) {
	fam := simpleFam(t, 3000)
	q := bloom.New(fam)
	da := DictionaryAttack{Namespace: 1000}
	rng := rand.New(rand.NewSource(2))
	if _, ok := da.Sample(q, rng, nil); ok {
		t.Fatal("sample from empty filter succeeded")
	}
	if got := da.Reconstruct(q, nil); len(got) != 0 {
		t.Fatalf("reconstructed %d elements from empty filter", len(got))
	}
}

func TestDictionaryAttackOpsLinearInM(t *testing.T) {
	fam := simpleFam(t, 3000)
	q := bloom.NewFromElements(fam, []uint64{1})
	da := DictionaryAttack{Namespace: 12345}
	rng := rand.New(rand.NewSource(3))
	var ops core.Ops
	da.Sample(q, rng, &ops)
	if ops.Memberships != 12345 {
		t.Fatalf("memberships = %d, want 12345", ops.Memberships)
	}
}

func TestDictionaryAttackReconstructMatchesGroundTruth(t *testing.T) {
	const M = 20000
	fam := simpleFam(t, 5000)
	rng := rand.New(rand.NewSource(4))
	q := bloom.New(fam)
	for i := 0; i < 200; i++ {
		q.Add(rng.Uint64() % M)
	}
	da := DictionaryAttack{Namespace: M}
	got := da.Reconstruct(q, nil)
	idx := 0
	for y := uint64(0); y < M; y++ {
		if q.Contains(y) {
			if idx >= len(got) || got[idx] != y {
				t.Fatalf("reconstruction mismatch at %d", y)
			}
			idx++
		}
	}
	if idx != len(got) {
		t.Fatalf("reconstruction has %d extra elements", len(got)-idx)
	}
}

func TestDictionaryAttackSampleN(t *testing.T) {
	const M = 5000
	fam := simpleFam(t, 3000)
	set := []uint64{10, 500, 999, 1500, 4999}
	q := bloom.NewFromElements(fam, set)
	da := DictionaryAttack{Namespace: M}
	rng := rand.New(rand.NewSource(5))
	got := da.SampleN(q, 3, rng, nil)
	if len(got) != 3 {
		t.Fatalf("got %d samples, want 3", len(got))
	}
	seen := map[uint64]bool{}
	for _, x := range got {
		if !q.Contains(x) {
			t.Fatalf("non-positive %d", x)
		}
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
	// Requesting more than available returns all positives.
	all := da.SampleN(q, 100000, rng, nil)
	truth := da.Reconstruct(q, nil)
	if len(all) != len(truth) {
		t.Fatalf("SampleN(all) = %d, want %d", len(all), len(truth))
	}
	if da.SampleN(q, 0, rng, nil) != nil {
		t.Fatal("r=0 returned samples")
	}
}

func TestHashInvertRequiresInvertibleFamily(t *testing.T) {
	fam := hashfam.MustNew(hashfam.KindMurmur3, 3000, 3, 1)
	q := bloom.NewFromElements(fam, []uint64{1, 2, 3})
	hi := HashInvert{Namespace: 10000}
	rng := rand.New(rand.NewSource(6))
	if _, _, err := hi.Sample(q, rng, nil); err == nil {
		t.Fatal("non-invertible family accepted by Sample")
	}
	if _, err := hi.Reconstruct(q, nil); err == nil {
		t.Fatal("non-invertible family accepted by Reconstruct")
	}
}

func TestHashInvertSampleReturnsPositives(t *testing.T) {
	const M = 50000
	fam := simpleFam(t, 9000)
	rng := rand.New(rand.NewSource(7))
	q := bloom.New(fam)
	for i := 0; i < 300; i++ {
		q.Add(rng.Uint64() % M)
	}
	hi := HashInvert{Namespace: M}
	found := 0
	for i := 0; i < 100; i++ {
		x, ok, err := hi.Sample(q, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
			if !q.Contains(x) {
				t.Fatalf("sampled non-positive %d", x)
			}
		}
	}
	// Every set bit of a non-empty filter has at least one true preimage
	// that contains it, but pruning can fail only... set bits always come
	// from inserted elements whose full signature passes, so nearly all
	// rounds should succeed.
	if found < 90 {
		t.Fatalf("only %d/100 sampling rounds succeeded", found)
	}
}

func TestHashInvertSampleEmptyFilter(t *testing.T) {
	fam := simpleFam(t, 3000)
	q := bloom.New(fam)
	hi := HashInvert{Namespace: 1000}
	rng := rand.New(rand.NewSource(8))
	if _, ok, err := hi.Sample(q, rng, nil); err != nil || ok {
		t.Fatalf("empty filter: ok=%v err=%v", ok, err)
	}
}

func TestHashInvertReconstructMatchesDictionaryAttack(t *testing.T) {
	// Sparse filter: set-bit variant.
	const M = 30000
	fam := simpleFam(t, 9000)
	rng := rand.New(rand.NewSource(9))
	q := bloom.New(fam)
	for i := 0; i < 100; i++ {
		q.Add(rng.Uint64() % M)
	}
	if q.FillRatio() > 0.5 {
		t.Fatalf("test setup: filter too dense (%.2f)", q.FillRatio())
	}
	hi := HashInvert{Namespace: M}
	da := DictionaryAttack{Namespace: M}
	got, err := hi.Reconstruct(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := da.Reconstruct(q, nil)
	if len(got) != len(want) {
		t.Fatalf("HashInvert %d elements, DictionaryAttack %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at index %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestHashInvertReconstructDenseVariant(t *testing.T) {
	// Dense filter (small m, many elements): unset-bit variant.
	const M = 20000
	fam := simpleFam(t, 1500)
	rng := rand.New(rand.NewSource(10))
	q := bloom.New(fam)
	for i := 0; i < 400; i++ {
		q.Add(rng.Uint64() % M)
	}
	if q.FillRatio() <= 0.5 {
		t.Fatalf("test setup: filter not dense (%.2f)", q.FillRatio())
	}
	hi := HashInvert{Namespace: M}
	da := DictionaryAttack{Namespace: M}
	got, err := hi.Reconstruct(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := da.Reconstruct(q, nil)
	if len(got) != len(want) {
		t.Fatalf("HashInvert %d elements, DictionaryAttack %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at index %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestHashInvertFewerMembershipsThanDictionaryAttackSparse(t *testing.T) {
	// The point of HashInvert: membership queries ~ t·M/m < M for sparse
	// filters.
	const M = 100000
	fam := simpleFam(t, 30000)
	rng := rand.New(rand.NewSource(11))
	q := bloom.New(fam)
	for i := 0; i < 500; i++ {
		q.Add(rng.Uint64() % M)
	}
	hi := HashInvert{Namespace: M}
	var ops core.Ops
	if _, err := hi.Reconstruct(q, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Memberships >= M {
		t.Fatalf("HashInvert used %d memberships (>= M=%d)", ops.Memberships, M)
	}
}

func TestHashInvertSampleOpsCounted(t *testing.T) {
	const M = 50000
	fam := simpleFam(t, 9000)
	q := bloom.NewFromElements(fam, []uint64{5, 10, 20})
	hi := HashInvert{Namespace: M}
	rng := rand.New(rand.NewSource(12))
	var ops core.Ops
	if _, _, err := hi.Sample(q, rng, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Memberships == 0 {
		t.Fatal("memberships not counted")
	}
	// Sampling inverts one bit under k functions: ~k·M/m candidates.
	bound := uint64(3*(M/9000+1)) * 4
	if ops.Memberships > bound {
		t.Fatalf("memberships %d exceed expected ~k·M/m bound %d", ops.Memberships, bound)
	}
}
