package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bloom"
	"repro/internal/setdb"
)

// RunConcurrency measures the wait-free read path under a configurable
// read/write mix: sampled-per-second from one SetDB key as the number of
// goroutines grows, with Config.WriteFrac of the operations being Adds to
// that same key (the worst case: every write publishes a copy-on-write
// swap of exactly the filter being sampled).
//
// Each cell is run twice:
//
//   - mode "cow" drives the database directly — readers load atomic shard
//     snapshots and never block; writers pay the real copy-on-write cost
//     (filter clone + shard map copy) but briefly, off the readers' path.
//   - mode "locked" emulates the pre-copy-on-write design faithfully: a
//     shared mutable filter guarded by a sync.RWMutex, writers doing the
//     old cheap in-place Filter.Add under the exclusive lock (stalling
//     every reader of the shard for the mutation), readers sampling the
//     same tree under RLock.
//
// The vs_locked column is the cow/locked throughput ratio at equal
// goroutine count; under any non-zero write fraction it grows with the
// goroutine count (given cores to grow into) because the locked readers
// serialize behind writers while the cow readers never wait. Note the
// ratio is bounded by the host's parallelism: on a single-core machine a
// blocked reader wastes no CPU (the writer it waits for is making
// progress), so only the RWMutex's handoff/futex overhead shows up
// (≈1.2–1.3× when GOMAXPROCS exceeds 1, ≈1× when GOMAXPROCS=1); the
// multi-fold gap appears as soon as there are cores for the wait-free
// readers to run on.
func RunConcurrency(c Config) ([]*Table, error) {
	db, pool, M, n, err := benchDB(c)
	if err != nil {
		return nil, err
	}

	const runFor = 120 * time.Millisecond

	type cell struct {
		samples, writes uint64
		elapsed         time.Duration
	}
	runMixed := func(workers int, locked bool, salt uint64) cell {
		// The locked reference operates on its own mutable clone of the
		// stored filter — the old architecture: one shared filter mutated
		// in place (cheap O(k) Add) under an RWMutex, queries descending
		// the same shared tree under RLock.
		var refMu sync.RWMutex
		var refFilter *bloom.Filter
		if locked {
			refFilter = db.Filter("bench").Clone()
		}
		var samples, writes atomic.Uint64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := c.rng(salt + uint64(w))
				var localS, localW uint64
				for time.Since(start) < runFor {
					if rng.Float64() < c.WriteFrac {
						id := pool[rng.Intn(len(pool))]
						if locked {
							refMu.Lock()
							refFilter.Add(id)
							refMu.Unlock()
							localW++
						} else if err := db.Add("bench", id); err == nil {
							localW++
						}
					} else {
						var err error
						if locked {
							refMu.RLock()
							_, err = db.Tree().Sample(refFilter, rng, nil)
							refMu.RUnlock()
						} else {
							_, err = db.Sample("bench", rng, nil)
						}
						if err == nil {
							localS++
						}
					}
				}
				samples.Add(localS)
				writes.Add(localW)
			}(w)
		}
		wg.Wait()
		return cell{samples: samples.Load(), writes: writes.Load(), elapsed: time.Since(start)}
	}

	tbl := &Table{
		ID: "concurrency",
		Title: fmt.Sprintf("SetDB mixed read/write throughput (M=%d, n=%d, writefrac=%.2f, GOMAXPROCS=%d)",
			M, n, c.WriteFrac, runtime.GOMAXPROCS(0)),
		Columns: []string{
			"mode", "goroutines", "writefrac", "samples", "writes", "elapsed_ms", "samples_per_sec", "vs_locked",
		},
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		lockedCell := runMixed(workers, true, 1000*uint64(workers))
		cowCell := runMixed(workers, false, 2000*uint64(workers))
		lockedPerSec := float64(lockedCell.samples) / lockedCell.elapsed.Seconds()
		cowPerSec := float64(cowCell.samples) / cowCell.elapsed.Seconds()
		ratio := "n/a" // a pure-write mix (writefrac 1) records no samples
		if lockedPerSec > 0 {
			ratio = fmt.Sprintf("%.2fx", cowPerSec/lockedPerSec)
		}
		for _, row := range []struct {
			mode   string
			c      cell
			perSec float64
			ratio  string
		}{
			{"locked", lockedCell, lockedPerSec, "1.00x"},
			{"cow", cowCell, cowPerSec, ratio},
		} {
			tbl.Add(
				row.mode,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.2f", c.WriteFrac),
				fmt.Sprintf("%d", row.c.samples),
				fmt.Sprintf("%d", row.c.writes),
				fmt.Sprintf("%.1f", float64(row.c.elapsed.Microseconds())/1000),
				fmt.Sprintf("%.0f", row.perSec),
				row.ratio,
			)
		}
	}
	return []*Table{tbl}, nil
}

// benchDB builds the mixed-workload fixture shared by the concurrency
// and serving experiments: a database planned at 0.9 accuracy holding
// one "bench" set of the largest configured size (returned as M and n),
// plus the bounded id pool writers draw from — the stored set plus n/2
// fresh ids, so the filter converges to ~1.5n elements instead of
// saturating over a long run, and the sampling cost stays
// representative. Sharing one fixture keeps both experiments measuring
// the same worst case: every write hits exactly the key being sampled.
func benchDB(c Config) (db *setdb.DB, pool []uint64, M uint64, n int, err error) {
	M = smallestNamespace(c)
	n = c.SetSizes[len(c.SetSizes)-1]
	opts, err := setdb.PlanOptions(0.9, uint64(n), M, c.K)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	opts.HashKind = c.HashKind
	opts.Seed = c.Seed
	db, err = setdb.Open(opts)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	set, err := c.querySet(c.rng(101), M, n, false)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if err := db.Add("bench", set...); err != nil {
		return nil, nil, 0, 0, err
	}
	pool = make([]uint64, 0, n+n/2)
	pool = append(pool, set...)
	poolRng := c.rng(202)
	for i := 0; i < n/2; i++ {
		pool = append(pool, poolRng.Uint64()%M)
	}
	return db, pool, M, n, nil
}
