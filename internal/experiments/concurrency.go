package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/setdb"
)

// RunConcurrency measures the lock-free read path: sampled-per-second
// from one SetDB key as the number of sampling goroutines grows. Before
// the refactor every Sample took the database's exclusive lock, so the
// curve was flat (or worse, due to contention); with immutable filter
// reads and sharded read locks the throughput should scale with cores
// until the memory bus saturates. The speedup column is relative to one
// goroutine.
func RunConcurrency(c Config) ([]*Table, error) {
	M := smallestNamespace(c)
	n := c.SetSizes[len(c.SetSizes)-1]
	opts, err := setdb.PlanOptions(0.9, uint64(n), M, c.K)
	if err != nil {
		return nil, err
	}
	opts.HashKind = c.HashKind
	opts.Seed = c.Seed
	db, err := setdb.Open(opts)
	if err != nil {
		return nil, err
	}
	set, err := c.querySet(c.rng(101), M, n, false)
	if err != nil {
		return nil, err
	}
	if err := db.Add("bench", set...); err != nil {
		return nil, err
	}

	samples := c.Rounds * 10
	tbl := &Table{
		ID:    "concurrency",
		Title: fmt.Sprintf("SetDB parallel sampling throughput (M=%d, n=%d, GOMAXPROCS=%d)", M, n, runtime.GOMAXPROCS(0)),
		Columns: []string{
			"goroutines", "samples", "elapsed_ms", "samples_per_sec", "speedup",
		},
	}
	var base float64
	for _, workers := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		got, err := db.SampleManyWorkers("bench", samples, workers, nil)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		perSec := float64(len(got)) / elapsed.Seconds()
		if workers == 1 {
			base = perSec
		}
		tbl.Add(
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%d", len(got)),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.0f", perSec),
			fmt.Sprintf("%.2fx", perSec/base),
		)
	}
	return []*Table{tbl}, nil
}
