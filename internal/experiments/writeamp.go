package experiments

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/setdb"
)

// RunWriteAmp measures copy-on-write write amplification — the bytes of
// bookkeeping state copied to publish one write — across a keys-per-shard
// × write-batch-size sweep, comparing the chunked persistent shard
// states against the pre-chunking flat-map baseline (one whole-shard map
// clone per write).
//
// Every cell drives one shard only: all keys are generated to hash to
// shard 0, so keys_per_shard is exactly the occupancy the write path
// sees. The "flat" rows are the old design's cost — its bytes-per-write
// is computed with the database's own per-entry accounting formula
// (setdb.EntryCopyBytes) over the same key population, and its
// micros-per-write is measured from real whole-map clones — while the
// "chunked" rows measure the live database: batch=1 is the plain Add
// path (one chunk clone per write), larger batches go through the
// group-commit path (ApplyBatch), which also amortizes the chunk-table
// clone across the batch. vs_flat is the flat/chunked bytes ratio: how
// many times less state the chunked design copies per write.
func RunWriteAmp(c Config) ([]*Table, error) {
	const (
		M          = 4096 // namespace: write payloads are irrelevant here
		measured   = 256  // measured writes per cell
		flatClones = 8    // real map clones timed for the flat baseline
	)
	keysSweep := []int{1_000, 10_000, 100_000}
	batches := []int{1, 16, 128}

	tbl := &Table{
		ID: "writeamp",
		Title: fmt.Sprintf("bytes of shard state copied per write: chunked vs flat-map baseline (single shard, %d writes/cell)",
			measured),
		Columns: []string{
			"mode", "keys_per_shard", "batch", "writes", "bytes_per_write", "micros_per_write", "vs_flat",
		},
	}

	for _, nKeys := range keysSweep {
		keys := shardLocalKeys(0, nKeys)

		// Flat baseline: every write clones the whole shard map. The byte
		// cost is deterministic at fixed occupancy; the wall-clock cost is
		// measured from real clones of an equally sized map.
		var flatBytes uint64
		for _, k := range keys {
			flatBytes += setdb.EntryCopyBytes(len(k))
		}
		flat := make(map[string]uint64, nKeys)
		for i, k := range keys {
			flat[k] = uint64(i)
		}
		start := time.Now()
		for i := 0; i < flatClones; i++ {
			clone := make(map[string]uint64, len(flat))
			for k, v := range flat {
				clone[k] = v
			}
			writeAmpSink += len(clone)
		}
		flatMicros := float64(time.Since(start).Microseconds()) / flatClones
		tbl.Add("flat", strconv.Itoa(nKeys), "1", strconv.Itoa(measured),
			fmt.Sprintf("%d", flatBytes), fmt.Sprintf("%.1f", flatMicros), "1.0x")

		// Chunked: one populated database per occupancy, measured at each
		// batch size. Measured writes only update existing keys, so the
		// occupancy (and with it the per-write cost) stays fixed.
		db, err := setdb.Open(setdb.Options{
			Namespace: M, Bits: 256, K: c.K,
			HashKind: c.HashKind, Seed: c.Seed, TreeDepth: 6,
		})
		if err != nil {
			return nil, err
		}
		rng := c.rng(uint64(nKeys))
		populate := make([]setdb.Write, 0, 4096)
		for lo := 0; lo < len(keys); lo += cap(populate) {
			hi := min(lo+cap(populate), len(keys))
			populate = populate[:0]
			for _, k := range keys[lo:hi] {
				populate = append(populate, setdb.Write{Key: k, IDs: []uint64{rng.Uint64() % M}})
			}
			if err := db.ApplyBatch(populate); err != nil {
				return nil, err
			}
		}

		for _, batch := range batches {
			before := db.Stats()
			start := time.Now()
			done := 0
			for done < measured {
				n := min(batch, measured-done)
				writes := make([]setdb.Write, n)
				for j := 0; j < n; j++ {
					// Stride-97 walk over the key population: spread across
					// chunks, no duplicates within a batch.
					k := keys[(done+j)*97%len(keys)]
					writes[j] = setdb.Write{Key: k, IDs: []uint64{rng.Uint64() % M}}
				}
				if batch == 1 {
					err = db.Add(writes[0].Key, writes[0].IDs...)
				} else {
					err = db.ApplyBatch(writes)
				}
				if err != nil {
					return nil, err
				}
				done += n
			}
			elapsed := time.Since(start)
			after := db.Stats()
			bytesPerWrite := float64(after.StateBytesCopied-before.StateBytesCopied) / measured
			tbl.Add("chunked", strconv.Itoa(nKeys), strconv.Itoa(batch), strconv.Itoa(measured),
				fmt.Sprintf("%.0f", bytesPerWrite),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/measured),
				fmt.Sprintf("%.1fx", float64(flatBytes)/bytesPerWrite))
		}
	}
	return []*Table{tbl}, nil
}

// writeAmpSink keeps the flat baseline's map clones from being optimized
// away.
var writeAmpSink int

// shardLocalKeys returns n distinct keys that all hash to the given
// shard, so a sweep can set one shard's occupancy exactly.
func shardLocalKeys(shard, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := "k" + strconv.Itoa(i)
		if setdb.ShardOf(k) == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

// WriteAmpSummary condenses a writeamp run into one human-checkable
// line: the mean bytes copied per write under the old flat-map design vs
// the chunked design (batch=1, the directly comparable per-write path),
// plus the best coalesced figure the group-commit path reached. The
// second return is false when the tables are not a writeamp run.
func WriteAmpSummary(tables []*Table) (string, bool) {
	for _, t := range tables {
		if t.ID != "writeamp" {
			continue
		}
		col := map[string]int{}
		for i, c := range t.Columns {
			col[c] = i
		}
		var flatSum, flatN, chunkSum, chunkN, best float64
		for _, row := range t.Rows {
			bpw, err := strconv.ParseFloat(row[col["bytes_per_write"]], 64)
			if err != nil {
				continue
			}
			switch row[col["mode"]] {
			case "flat":
				flatSum += bpw
				flatN++
			case "chunked":
				if row[col["batch"]] == "1" {
					chunkSum += bpw
					chunkN++
				}
				if best == 0 || bpw < best {
					best = bpw
				}
			}
		}
		if flatN == 0 || chunkN == 0 {
			return "", false
		}
		flatMean, chunkMean := flatSum/flatN, chunkSum/chunkN
		return fmt.Sprintf(
			"writeamp: mean bytes copied per write: flat %s vs chunked %s (%.1fx lower); best coalesced %s/write",
			humanBytes(flatMean), humanBytes(chunkMean), flatMean/chunkMean, humanBytes(best)), true
	}
	return "", false
}

// humanBytes renders a byte count at human scale.
func humanBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
