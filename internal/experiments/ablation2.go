package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// RunAblationParallelBuild measures BuildTreeParallel speedup over the
// serial construction at increasing worker counts.
func RunAblationParallelBuild(cfg Config) ([]*Table, error) {
	M := largestNamespace(cfg)
	n := closestSetSize(cfg, 1000)
	plan, err := core.PlanTree(0.9, uint64(n), M, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	treeCfg := plan.TreeConfig(cfg.HashKind, cfg.Seed)
	tbl := &Table{
		ID:      "abl-parallel",
		Title:   fmt.Sprintf("Parallel tree construction (M=%d, m=%d, depth=%d, GOMAXPROCS=%d)", M, plan.Bits, plan.Depth, runtime.GOMAXPROCS(0)),
		Columns: []string{"workers", "build_ms", "speedup"},
	}
	start := time.Now()
	if _, err := core.BuildTree(treeCfg); err != nil {
		return nil, err
	}
	serialMS := float64(time.Since(start).Microseconds()) / 1000
	tbl.Add("serial", fmt.Sprintf("%.2f", serialMS), "1.00x")
	for _, w := range []int{1, 2, 4, 8} {
		start = time.Now()
		if _, err := core.BuildTreeParallel(treeCfg, w); err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		tbl.Add(fmt.Sprint(w), fmt.Sprintf("%.2f", ms), fmt.Sprintf("%.2fx", serialMS/ms))
	}
	return []*Table{tbl}, nil
}

// RunAblationDynamicInsert measures the §5.2 claim that updating a
// Pruned-BloomSampleTree costs time proportional to the tree height: it
// inserts ids into pruned trees of increasing depth and reports the
// per-insert cost and tree growth.
func RunAblationDynamicInsert(cfg Config) ([]*Table, error) {
	M := largestNamespace(cfg)
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "abl-dynamic",
		Title:   fmt.Sprintf("Dynamic insert cost vs tree depth (M=%d)", M),
		Columns: []string{"depth", "inserts", "ns_per_insert", "nodes_before", "nodes_after"},
	}
	rng := cfg.rng(0xD1A)
	seedIDs, err := workload.UniformSet(rng, M, n)
	if err != nil {
		return nil, err
	}
	newIDs, err := workload.UniformSet(rng, M, 5000)
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanTree(0.9, uint64(n), M, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	for _, depth := range []int{plan.Depth / 2, plan.Depth, plan.Depth + 2} {
		treeCfg := plan.TreeConfig(cfg.HashKind, cfg.Seed)
		treeCfg.Depth = depth
		tree, err := core.BuildPruned(treeCfg, seedIDs)
		if err != nil {
			return nil, err
		}
		before := tree.Nodes()
		start := time.Now()
		for _, id := range newIDs {
			if err := tree.Insert(id); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		tbl.Add(fmt.Sprint(depth), fmt.Sprint(len(newIDs)),
			fmt.Sprint(elapsed.Nanoseconds()/int64(len(newIDs))),
			fmt.Sprint(before), fmt.Sprint(tree.Nodes()))
	}
	return []*Table{tbl}, nil
}
