// Package experiments reproduces every table and figure of the paper's
// evaluation (§7 static namespaces, §8 low-occupancy namespaces). Each
// experiment is a function from a Config to one or more Tables whose rows
// mirror the series the paper plots; the bstbench command and the
// repository's benchmark suite drive them.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/workload"
)

// Config carries the knobs shared by all experiments. The zero value is
// not usable; start from SmallConfig or PaperConfig.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed uint64
	// HashKind is the hash family (the paper's default is the simple
	// family for most experiments; the package default is the fast
	// multiply-fold family, which behaves equivalently and hashes
	// cheapest — the fig7/hash sweeps compare all of them).
	HashKind hashfam.Kind
	// K is the number of hash functions (paper: 3).
	K int
	// Rounds is the number of sampling rounds per cell for
	// BloomSampleTree measurements (paper: 10,000).
	Rounds int
	// BaselineRounds is the number of rounds for the O(M)-per-sample
	// baselines, which would otherwise dominate wall-clock time.
	BaselineRounds int
	// Accuracies is the sweep of sampling accuracies (paper: 0.5–1.0).
	Accuracies []float64
	// SetSizes is the sweep of query-set cardinalities (paper: 100, 1K,
	// 10K, 50K).
	SetSizes []int
	// Namespaces is the sweep of namespace sizes (paper: 10⁵–10⁷).
	Namespaces []uint64
	// ClusterP is the clustered-generator parameter (paper: 10).
	ClusterP float64
	// Fractions is the namespace-fraction sweep for the §8 experiments.
	Fractions []float64
	// TwitterScale divides the paper's Twitter-crawl dimensions (1 =
	// paper scale: 2.2B namespace, 7.2M ids; 100 = 22M namespace, 72K
	// ids). Structure (256 leaves, fractions) is preserved.
	TwitterScale int
	// WriteFrac is the fraction of operations that are writes in the
	// concurrency experiment's read/write mix (0 = read-only sampling,
	// 0.5 = every other operation is an Add to the sampled key).
	WriteFrac float64
	// ChiSqRoundsFactor is T/n for the uniformity test (paper: 130).
	ChiSqRoundsFactor int
}

// SmallConfig returns a reduced-scale configuration that keeps every
// experiment under a few seconds, for tests and `go test -bench`.
func SmallConfig() Config {
	return Config{
		Seed:              1,
		HashKind:          hashfam.DefaultKind,
		K:                 3,
		Rounds:            300,
		BaselineRounds:    3,
		Accuracies:        []float64{0.5, 0.7, 0.9},
		SetSizes:          []int{100, 1000},
		Namespaces:        []uint64{100_000},
		ClusterP:          workload.DefaultClusterP,
		Fractions:         []float64{0.1, 0.3, 0.5, 0.9},
		TwitterScale:      1000,
		ChiSqRoundsFactor: 130,
	}
}

// PaperConfig returns the paper's full experiment scale. Running all
// experiments at this scale takes hours (the dictionary attack alone needs
// ~100 s per sample on the 2.2B namespace, §8.2).
func PaperConfig() Config {
	return Config{
		Seed:              1,
		HashKind:          hashfam.DefaultKind,
		K:                 3,
		Rounds:            10_000,
		BaselineRounds:    10,
		Accuracies:        []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		SetSizes:          []int{100, 1_000, 10_000, 50_000},
		Namespaces:        []uint64{100_000, 1_000_000, 10_000_000},
		ClusterP:          workload.DefaultClusterP,
		Fractions:         []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		TwitterScale:      1,
		ChiSqRoundsFactor: 130,
	}
}

func (c Config) rng(salt uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(c.Seed*2654435761 + salt)))
}

// querySet generates a uniform or clustered query set.
func (c Config) querySet(rng *rand.Rand, M uint64, n int, clustered bool) ([]uint64, error) {
	if clustered {
		return workload.ClusteredSet(rng, M, n, c.ClusterP)
	}
	return workload.UniformSet(rng, M, n)
}

// Table is one reproduced table or figure: a titled grid of cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a row; the cell count must match Columns.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: table %s: %d cells for %d columns", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (cells contain no commas or quotes by
// construction, so no escaping is needed).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Runner is one experiment: a function producing the tables of a paper
// figure or table at the given configuration.
type Runner func(Config) ([]*Table, error)

// Registry maps experiment ids (fig3..fig15, tab2..tab6, abl*) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3":            func(c Config) ([]*Table, error) { return RunSamplingOps(c, false) },
		"fig4":            func(c Config) ([]*Table, error) { return RunSamplingOps(c, true) },
		"fig5":            func(c Config) ([]*Table, error) { return RunSamplingTime(c, largestNamespace(c)) },
		"fig6":            func(c Config) ([]*Table, error) { return RunSamplingTime(c, smallestNamespace(c)) },
		"fig7":            RunHashFamilies,
		"tab2":            func(c Config) ([]*Table, error) { return RunPlanTable(c, smallestNamespace(c)) },
		"tab3":            func(c Config) ([]*Table, error) { return RunPlanTable(c, largestNamespace(c)) },
		"tab4":            RunCreationTime,
		"tab5":            RunChiSquared,
		"tab6":            RunMeasuredAccuracy,
		"fig8":            func(c Config) ([]*Table, error) { return RunReconstructionOps(c, smallestNamespace(c)) },
		"fig9":            func(c Config) ([]*Table, error) { return RunReconstructionOps(c, middleNamespace(c)) },
		"fig10":           func(c Config) ([]*Table, error) { return RunReconstructionOps(c, largestNamespace(c)) },
		"fig11":           func(c Config) ([]*Table, error) { return RunReconstructionTime(c, smallestNamespace(c)) },
		"fig12":           func(c Config) ([]*Table, error) { return RunReconstructionTime(c, largestNamespace(c)) },
		"fig13":           func(c Config) ([]*Table, error) { return RunLowOccupancy(c, "time") },
		"fig14":           func(c Config) ([]*Table, error) { return RunLowOccupancy(c, "memory") },
		"fig15":           func(c Config) ([]*Table, error) { return RunLowOccupancy(c, "accuracy") },
		"abl-threshold":   RunAblationThreshold,
		"abl-parallel":    RunAblationParallelBuild,
		"abl-dynamic":     RunAblationDynamicInsert,
		"abl-multisample": RunAblationMultiSample,
		"abl-build":       RunAblationBuild,
		"abl-hashinvert":  RunAblationHashInvert,
		"concurrency":     RunConcurrency,
		"serving":         RunServing,
		"obs":             RunObs,
		"writeamp":        RunWriteAmp,
		"recovery":        RunRecovery,
		"hash":            RunHash,
		"backend":         RunBackend,
	}
}

// ExperimentIDs returns the registry keys in presentation order.
func ExperimentIDs() []string {
	return []string{
		"fig3", "fig4", "fig5", "fig6", "fig7",
		"tab2", "tab3", "tab4", "tab5", "tab6",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15",
		"abl-threshold", "abl-multisample", "abl-build", "abl-hashinvert",
		"abl-parallel", "abl-dynamic",
		"concurrency", "serving", "obs", "writeamp", "recovery", "hash", "backend",
	}
}

func smallestNamespace(c Config) uint64 {
	min := c.Namespaces[0]
	for _, m := range c.Namespaces {
		if m < min {
			min = m
		}
	}
	return min
}

func largestNamespace(c Config) uint64 {
	max := c.Namespaces[0]
	for _, m := range c.Namespaces {
		if m > max {
			max = m
		}
	}
	return max
}

func middleNamespace(c Config) uint64 {
	lo, hi := smallestNamespace(c), largestNamespace(c)
	for _, m := range c.Namespaces {
		if m != lo && m != hi {
			return m
		}
	}
	return hi
}

// buildTreeFor plans and builds a full BloomSampleTree for one (accuracy,
// n, M) cell.
func (c Config) buildTreeFor(acc float64, n int, M uint64) (*core.Tree, core.Plan, error) {
	plan, err := core.PlanTree(acc, uint64(n), M, c.K, 0)
	if err != nil {
		return nil, core.Plan{}, err
	}
	tree, err := core.BuildTree(plan.TreeConfig(c.HashKind, c.Seed))
	if err != nil {
		return nil, core.Plan{}, err
	}
	return tree, plan, nil
}

// queryFilterOf builds the query Bloom filter for a set with the tree's
// parameters.
func queryFilterOf(tree *core.Tree, set []uint64) *bloom.Filter {
	q := tree.NewQueryFilter()
	for _, x := range set {
		q.Add(x)
	}
	return q
}
