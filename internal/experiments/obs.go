package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// RunObs quantifies the cost of the observability layer: two bstserved
// handlers over the same database — one with request tracing on and a
// live /metrics scraper attached (the instrumented production setup),
// one with TraceDisabled and no admin plane — driven by the same
// paired fixed-work sample load. The measurement protocol mirrors the
// serving_wire sweep: fixed request counts in chunks that alternate
// mode (order flipping each chunk), so both modes sample the same
// ambient noise and the req/s delta is the instrumentation itself.
//
// Tables:
//
//   - obs_overhead: per-mode throughput and latency for each
//     clients × batch cell.
//   - obs_ratio: instrumented/baseline req/s per cell — the number the
//     benchmark trajectory gates on (instrumented must stay ≥ 0.95×).
//   - obs_scrape: what the concurrent scraper saw — scrape count,
//     bytes per scrape, time per scrape.
func RunObs(c Config) ([]*Table, error) {
	db, _, M, n, err := benchDB(c)
	if err != nil {
		return nil, err
	}

	newServed := func(traceDisabled bool) (*http.Server, string, *server.Server, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, err
		}
		api := server.New(db, server.Config{Seed: c.Seed + 1, TraceDisabled: traceDisabled})
		hs := &http.Server{Handler: api}
		go func() { _ = hs.Serve(ln) }()
		return hs, "http://" + ln.Addr().String(), api, nil
	}
	instrSrv, instrURL, instrAPI, err := newServed(false)
	if err != nil {
		return nil, err
	}
	defer instrSrv.Close()
	baseSrv, baseURL, _, err := newServed(true)
	if err != nil {
		return nil, err
	}
	defer baseSrv.Close()

	// Admin plane for the instrumented server only: the baseline mode
	// models running with observability fully off.
	admLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	admSrv := &http.Server{Handler: instrAPI.AdminHandler()}
	go func() { _ = admSrv.Serve(admLn) }()
	defer admSrv.Close()
	metricsURL := "http://" + admLn.Addr().String() + "/metrics"

	const maxClients = 8
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * maxClients,
		MaxIdleConnsPerHost: 4 * maxClients,
		IdleConnTimeout:     90 * time.Second,
	}}
	defer client.CloseIdleConnections()

	// Continuous scraper: hits /metrics for the whole run at a 25ms
	// cadence — two orders of magnitude tighter than a real Prometheus
	// scrape interval, so the collection cost is well represented
	// without the scraper itself monopolizing a core. Its cost is
	// ambient load both modes see plus collection work only the
	// instrumented server pays — the production asymmetry being
	// measured.
	var scrapes, scrapeBytes, scrapeNS atomic.Uint64
	scrapeStop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			t0 := time.Now()
			resp, err := client.Get(metricsURL)
			if err == nil {
				nb, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapeBytes.Add(uint64(nb))
			}
			scrapeNS.Add(uint64(time.Since(t0).Nanoseconds()))
			scrapes.Add(1)
			time.Sleep(25 * time.Millisecond)
		}
	}()

	overheadTbl := &Table{
		ID: "obs_overhead",
		Title: fmt.Sprintf("Observability overhead: tracing+metrics+scrape vs plain, sample workload (M=%d, n=%d, GOMAXPROCS=%d)",
			M, n, runtime.GOMAXPROCS(0)),
		Columns: []string{"mode", "clients", "batch", "requests", "errors", "elapsed_ms", "req_per_sec", "avg_latency_us"},
	}
	ratioTbl := &Table{
		ID:      "obs_ratio",
		Title:   "Instrumented/baseline req/s ratio per cell; the 'all' row aggregates every cell (gate: ≥ 0.95)",
		Columns: []string{"clients", "batch", "baseline_rps", "instrumented_rps", "ratio"},
	}
	urls := map[string]string{"baseline": baseURL, "instrumented": instrURL}
	var totalElapsed [2]time.Duration
	var totalReqs [2]uint64
	for _, clients := range []int{1, maxClients} {
		for _, batch := range []int{1, 64} {
			cnts, err := runObsPair(client, urls, clients, batch)
			if err != nil {
				return nil, fmt.Errorf("obs cell (clients=%d, batch=%d): %w", clients, batch, err)
			}
			var rps [2]float64
			for i, mode := range []string{"baseline", "instrumented"} {
				cnt := cnts[mode]
				reqs := cnt.requests.Load()
				avgUS := 0.0
				if reqs > 0 {
					avgUS = float64(cnt.latencyNS.Load()) / float64(reqs) / 1e3
				}
				rps[i] = float64(reqs) / cnt.elapsed.Seconds()
				totalElapsed[i] += cnt.elapsed
				totalReqs[i] += reqs
				overheadTbl.Add(
					mode,
					fmt.Sprintf("%d", clients),
					fmt.Sprintf("%d", batch),
					fmt.Sprintf("%d", reqs),
					fmt.Sprintf("%d", cnt.errors.Load()),
					fmt.Sprintf("%.1f", float64(cnt.elapsed.Microseconds())/1000),
					fmt.Sprintf("%.0f", rps[i]),
					fmt.Sprintf("%.1f", avgUS),
				)
			}
			ratio := 0.0
			if rps[0] > 0 {
				ratio = rps[1] / rps[0]
			}
			ratioTbl.Add(
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%d", batch),
				fmt.Sprintf("%.0f", rps[0]),
				fmt.Sprintf("%.0f", rps[1]),
				fmt.Sprintf("%.3f", ratio),
			)
		}
	}
	// The aggregate row: both modes ran identical fixed work, so the
	// whole-sweep throughput ratio is just the elapsed-time ratio. Single
	// cells are short enough to catch a scheduler hiccup; the aggregate
	// averages over 8x the data and is what the benchmark gate reads.
	var allRPS [2]float64
	for i := range allRPS {
		allRPS[i] = float64(totalReqs[i]) / totalElapsed[i].Seconds()
	}
	allRatio := 0.0
	if allRPS[0] > 0 {
		allRatio = allRPS[1] / allRPS[0]
	}
	ratioTbl.Add("all", "all",
		fmt.Sprintf("%.0f", allRPS[0]),
		fmt.Sprintf("%.0f", allRPS[1]),
		fmt.Sprintf("%.3f", allRatio),
	)

	close(scrapeStop)
	scrapeWG.Wait()
	scrapeTbl := &Table{
		ID:      "obs_scrape",
		Title:   "Concurrent /metrics scraper during the sweep",
		Columns: []string{"scrapes", "bytes_per_scrape", "avg_scrape_us"},
	}
	nScrapes := scrapes.Load()
	bytesPer, usPer := 0.0, 0.0
	if nScrapes > 0 {
		bytesPer = float64(scrapeBytes.Load()) / float64(nScrapes)
		usPer = float64(scrapeNS.Load()) / float64(nScrapes) / 1e3
	}
	scrapeTbl.Add(
		fmt.Sprintf("%d", nScrapes),
		fmt.Sprintf("%.0f", bytesPer),
		fmt.Sprintf("%.0f", usPer),
	)
	return []*Table{overheadTbl, ratioTbl, scrapeTbl}, nil
}

// runObsPair runs one clients × batch cell as paired fixed-work chunks
// alternating baseline/instrumented, warm-up excluded, exactly like
// runWirePair does for the protocol comparison.
func runObsPair(client *http.Client, urls map[string]string, clients, batch int) (map[string]*wireCounters, error) {
	body := fmt.Sprintf(`{"key":"bench","n":%d}`, batch)
	perChunk := 1024 / batch
	if perChunk < clients {
		perChunk = clients
	}
	perClient := perChunk / clients
	chunks := 10
	counters := map[string]*wireCounters{"baseline": {}, "instrumented": {}}

	runChunk := func(mode string, timed bool) error {
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		cnt := counters[mode]
		url := urls[mode] + "/v1/sample"
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					ok := doPost(client, url, body)
					if !timed {
						continue
					}
					cnt.latencyNS.Add(uint64(time.Since(t0).Nanoseconds()))
					cnt.requests.Add(1)
					if !ok {
						cnt.errors.Add(1)
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("%s request failed", mode)
						}
						errMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if timed {
			cnt.elapsed += time.Since(start)
		}
		return firstErr
	}

	for _, mode := range []string{"baseline", "instrumented"} {
		if err := runChunk(mode, false); err != nil {
			return nil, err
		}
	}
	for chunk := 0; chunk < chunks; chunk++ {
		order := []string{"baseline", "instrumented"}
		if chunk%2 == 1 {
			order = []string{"instrumented", "baseline"}
		}
		for _, mode := range order {
			if err := runChunk(mode, true); err != nil {
				return nil, err
			}
		}
	}
	return counters, nil
}

// ObsSummary extracts the observability-overhead headline: the
// aggregate instrumented/baseline throughput ratio, the worst single
// cell, and what the concurrent scraper cost.
func ObsSummary(tables []*Table) (string, bool) {
	var overall float64 = -1
	var worst float64 = -1
	var worstClients, worstBatch string
	var scrapeLine string
	for _, t := range tables {
		switch t.ID {
		case "obs_ratio":
			col := map[string]int{}
			for i, name := range t.Columns {
				col[name] = i
			}
			for _, row := range t.Rows {
				r, err := strconv.ParseFloat(row[col["ratio"]], 64)
				if err != nil {
					continue
				}
				if row[col["clients"]] == "all" {
					overall = r
					continue
				}
				if worst < 0 || r < worst {
					worst = r
					worstClients = row[col["clients"]]
					worstBatch = row[col["batch"]]
				}
			}
		case "obs_scrape":
			if len(t.Rows) == 1 {
				scrapeLine = fmt.Sprintf("%s scrapes at %sB / %sµs each",
					t.Rows[0][0], t.Rows[0][1], t.Rows[0][2])
			}
		}
	}
	if overall < 0 {
		return "", false
	}
	line := fmt.Sprintf("observability: instrumented serves %.2fx baseline req/s overall (worst cell %.2fx at clients=%s, batch=%s)",
		overall, worst, worstClients, worstBatch)
	if scrapeLine != "" {
		line += "; " + scrapeLine
	}
	return line, true
}
