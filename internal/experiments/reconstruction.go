package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// RunReconstructionOps reproduces Figures 8–10: the number of
// intersections and membership queries to reconstruct uniform and
// clustered query sets at each accuracy ("precision" in the figures), for
// BST, HashInvert and DictionaryAttack, at one namespace size per figure.
// HashInvert requires the invertible Simple family, so this experiment
// uses it for all methods, as the paper does when comparing against HI.
func RunReconstructionOps(cfg Config, M uint64) ([]*Table, error) {
	cfg.HashKind = hashfam.KindSimple
	var tables []*Table
	for _, clustered := range []bool{false, true} {
		kind := "uniform"
		if clustered {
			kind = "clustered"
		}
		tbl := &Table{
			ID:      fmt.Sprintf("recon-ops-M%d-%s", M, kind),
			Title:   fmt.Sprintf("Reconstruction ops, %s query sets, M=%d", kind, M),
			Columns: []string{"method", "n", "accuracy", "intersections", "memberships", "recall"},
		}
		hi := baseline.HashInvert{Namespace: M}
		for _, n := range cfg.SetSizes {
			if uint64(n) >= M {
				continue
			}
			rng := cfg.rng(uint64(n) ^ M ^ 0x8EC)
			set, err := cfg.querySet(rng, M, n, clustered)
			if err != nil {
				return nil, err
			}
			for _, acc := range cfg.Accuracies {
				tree, _, err := cfg.buildTreeFor(acc, n, M)
				if err != nil {
					return nil, err
				}
				q := queryFilterOf(tree, set)

				var bstOps core.Ops
				got, err := tree.Reconstruct(q, core.PruneByEstimate, &bstOps)
				if err != nil {
					return nil, err
				}
				tbl.Add("BST", fmt.Sprint(n), fmt.Sprintf("%.1f", acc),
					fmt.Sprint(bstOps.Intersections), fmt.Sprint(bstOps.Memberships),
					fmt.Sprintf("%.3f", recallOf(got, set)))

				var hiOps core.Ops
				hiGot, err := hi.Reconstruct(q, &hiOps)
				if err != nil {
					return nil, err
				}
				tbl.Add("HI", fmt.Sprint(n), fmt.Sprintf("%.1f", acc),
					"0", fmt.Sprint(hiOps.Memberships),
					fmt.Sprintf("%.3f", recallOf(hiGot, set)))
			}
		}
		tbl.Add("DA", "-", "-", "0", fmt.Sprint(M), "1.000")
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunReconstructionTime reproduces Figures 11–12: wall-clock time to
// reconstruct query sets of the smallest and a larger configured size, for
// BST, HashInvert and DictionaryAttack, over uniform and clustered query
// sets.
func RunReconstructionTime(cfg Config, M uint64) ([]*Table, error) {
	cfg.HashKind = hashfam.KindSimple
	sizes := []int{cfg.SetSizes[0]}
	if len(cfg.SetSizes) > 1 {
		sizes = append(sizes, cfg.SetSizes[len(cfg.SetSizes)-1])
	}
	var tables []*Table
	for _, clustered := range []bool{false, true} {
		kind := "uniform"
		if clustered {
			kind = "clustered"
		}
		tbl := &Table{
			ID:      fmt.Sprintf("recon-time-M%d-%s", M, kind),
			Title:   fmt.Sprintf("Reconstruction time, %s query sets, M=%d", kind, M),
			Columns: []string{"method", "n", "accuracy", "time_ms"},
		}
		hi := baseline.HashInvert{Namespace: M}
		da := baseline.DictionaryAttack{Namespace: M}
		for _, n := range sizes {
			if uint64(n) >= M {
				continue
			}
			rng := cfg.rng(uint64(n) ^ M ^ 0x8EC7)
			set, err := cfg.querySet(rng, M, n, clustered)
			if err != nil {
				return nil, err
			}
			for _, acc := range cfg.Accuracies {
				tree, _, err := cfg.buildTreeFor(acc, n, M)
				if err != nil {
					return nil, err
				}
				q := queryFilterOf(tree, set)

				start := time.Now()
				if _, err := tree.Reconstruct(q, core.PruneByEstimate, nil); err != nil {
					return nil, err
				}
				tbl.Add("BST", fmt.Sprint(n), fmt.Sprintf("%.1f", acc), msSince(start))

				start = time.Now()
				if _, err := hi.Reconstruct(q, nil); err != nil {
					return nil, err
				}
				tbl.Add("HI", fmt.Sprint(n), fmt.Sprintf("%.1f", acc), msSince(start))

				if acc == cfg.Accuracies[0] {
					start = time.Now()
					da.Reconstruct(q, nil)
					tbl.Add("DA", fmt.Sprint(n), "-", msSince(start))
				}
			}
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

func msSince(start time.Time) string {
	return fmt.Sprintf("%.3f", float64(time.Since(start).Microseconds())/1000)
}

// recallOf returns the fraction of the true set present in the
// reconstruction (the reconstruction may also contain false positives;
// those are measured by the accuracy experiments).
func recallOf(got, truth []uint64) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[uint64]bool, len(got))
	for _, x := range got {
		in[x] = true
	}
	hits := 0
	for _, x := range truth {
		if in[x] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}
