package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// RunServing measures the network serving layer end-to-end: it starts
// the bstserved handler in-process on real loopback listeners — one
// HTTP/JSON, one binary-protocol — and drives them with configurable
// client mixes over actual connections: connection handling, codec and
// all. Three tables come out:
//
//   - serving: HTTP read/write client mix as the client count grows
//     (Config.WriteFrac of operations are POST /v1/add).
//   - serving_batch: buffered JSON vs streaming NDJSON for one client,
//     as the per-request batch grows.
//   - serving_wire: the JSON-vs-binary sweep — protocol × clients ×
//     batch — quantifying what the binary frame codec saves over HTTP
//     per request (encode/decode and connection machinery) and per
//     sample (varints vs JSON numbers).
func RunServing(c Config) ([]*Table, error) {
	db, pool, M, n, err := benchDB(c)
	if err != nil {
		return nil, err
	}

	// Host the handler on real loopback listeners (plain net/http, not
	// the httptest harness, which doesn't belong in a shipped binary).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(db, server.Config{Seed: c.Seed + 1})
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.ServeBinary(binLn) }()
	binAddr := binLn.Addr().String()
	defer binLn.Close()

	const maxClients = 16
	// The HTTP transport is tuned so the JSON baseline is not penalized
	// by connection churn: keep-alives explicitly on with a generous
	// idle window, and an idle pool at least as deep as the client
	// count, so every benchmark client reuses its own warm connection
	// exactly as the binary protocol's persistent connections do. The
	// JSON-vs-binary comparison is then codec + protocol machinery, not
	// TCP handshakes.
	client := &http.Client{Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		DisableKeepAlives:   false,
		MaxIdleConns:        4 * maxClients,
		MaxIdleConnsPerHost: 4 * maxClients,
		IdleConnTimeout:     90 * time.Second,
	}}
	defer client.CloseIdleConnections()

	const runFor = 100 * time.Millisecond
	clientCounts := []int{1, 2, 4, 8, 16}

	mixTbl := &Table{
		ID: "serving",
		Title: fmt.Sprintf("HTTP serving throughput, read/write client mix (M=%d, n=%d, writefrac=%.2f, GOMAXPROCS=%d)",
			M, n, c.WriteFrac, runtime.GOMAXPROCS(0)),
		Columns: []string{
			"clients", "writefrac", "requests", "writes", "errors", "elapsed_ms", "req_per_sec", "avg_latency_us",
		},
	}
	for _, clients := range clientCounts {
		var requests, writes, errorsN, latencyNS atomic.Uint64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := c.rng(3000*uint64(clients) + uint64(w))
				for time.Since(start) < runFor {
					var path, body string
					write := rng.Float64() < c.WriteFrac
					if write {
						path = "/v1/add"
						body = fmt.Sprintf(`{"key":"bench","ids":[%d]}`, pool[rng.Intn(len(pool))])
					} else {
						path = "/v1/sample"
						body = `{"key":"bench","n":1}`
					}
					t0 := time.Now()
					ok := doPost(client, baseURL+path, body)
					latencyNS.Add(uint64(time.Since(t0).Nanoseconds()))
					requests.Add(1)
					if !ok {
						errorsN.Add(1)
					} else if write {
						writes.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		reqs := requests.Load()
		avgUS := 0.0
		if reqs > 0 {
			avgUS = float64(latencyNS.Load()) / float64(reqs) / 1e3
		}
		mixTbl.Add(
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.2f", c.WriteFrac),
			fmt.Sprintf("%d", reqs),
			fmt.Sprintf("%d", writes.Load()),
			fmt.Sprintf("%d", errorsN.Load()),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.0f", float64(reqs)/elapsed.Seconds()),
			fmt.Sprintf("%.1f", avgUS),
		)
	}

	batchTbl := &Table{
		ID:      "serving_batch",
		Title:   "HTTP sample batching: buffered JSON vs streaming NDJSON (single client)",
		Columns: []string{"mode", "batch", "requests", "samples", "elapsed_ms", "samples_per_sec"},
	}
	for _, batch := range []int{1, 64, 512} {
		for _, stream := range []bool{false, true} {
			mode := "json"
			if stream {
				mode = "ndjson"
			}
			body := fmt.Sprintf(`{"key":"bench","n":%d,"stream":%v}`, batch, stream)
			var reqs, samples uint64
			start := time.Now()
			for time.Since(start) < runFor {
				got, err := postCountSamples(client, baseURL+"/v1/sample", body, stream)
				if err != nil {
					return nil, fmt.Errorf("serving batch cell (%s, n=%d): %w", mode, batch, err)
				}
				reqs++
				samples += uint64(got)
			}
			elapsed := time.Since(start)
			batchTbl.Add(
				mode,
				fmt.Sprintf("%d", batch),
				fmt.Sprintf("%d", reqs),
				fmt.Sprintf("%d", samples),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
				fmt.Sprintf("%.0f", float64(samples)/elapsed.Seconds()),
			)
		}
	}

	wireTbl, err := runWireSweep(client, baseURL, binAddr, clientCounts)
	if err != nil {
		return nil, err
	}
	return []*Table{mixTbl, batchTbl, wireTbl}, nil
}

// runWireSweep is the JSON-vs-binary protocol comparison: the same
// sample workload (same key, same batch size, same client count) over
// POST /v1/sample and over the binary frame protocol, cell by cell.
//
// The measurement is PAIRED fixed-work, not fixed-time: each cell runs
// a fixed number of requests per protocol, split into chunks that
// alternate json/binary (order flipping each chunk). Both protocols
// therefore sample the same ambient noise — GC, scheduler hiccups,
// neighboring load — and the req/s delta reflects protocol cost rather
// than which protocol drew the quieter window; fixed work also removes
// the req/s quantization a short timed window has at large batches.
func runWireSweep(httpClient *http.Client, baseURL, binAddr string, clientCounts []int) (*Table, error) {
	tbl := &Table{
		ID: "serving_wire",
		Title: fmt.Sprintf("JSON vs binary wire protocol, sample workload (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Columns: []string{
			"protocol", "clients", "batch", "requests", "samples", "errors",
			"elapsed_ms", "req_per_sec", "samples_per_sec", "avg_latency_us",
		},
	}
	// Batch sizes stop at 64: beyond that the server is purely
	// sampling-compute-bound (~28µs per drawn sample against ~0.1µs per
	// id of codec work), so a protocol comparison measures only noise —
	// the serving_batch table covers large-batch amortization.
	for _, clients := range clientCounts {
		for _, batch := range []int{1, 8, 64} {
			jsonRow, binRow, err := runWirePair(clients, batch, httpClient, baseURL, binAddr)
			if err != nil {
				return nil, fmt.Errorf("serving wire cell (clients=%d, batch=%d): %w", clients, batch, err)
			}
			tbl.Rows = append(tbl.Rows, jsonRow, binRow)
		}
	}
	return tbl, nil
}

// wireCounters accumulates one protocol's side of a paired cell.
type wireCounters struct {
	requests, samples, errors, latencyNS atomic.Uint64
	elapsed                              time.Duration
}

func (c *wireCounters) row(proto string, clients, batch int) []string {
	reqs := c.requests.Load()
	avgUS := 0.0
	if reqs > 0 {
		avgUS = float64(c.latencyNS.Load()) / float64(reqs) / 1e3
	}
	return []string{
		proto,
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", batch),
		fmt.Sprintf("%d", reqs),
		fmt.Sprintf("%d", c.samples.Load()),
		fmt.Sprintf("%d", c.errors.Load()),
		fmt.Sprintf("%.1f", float64(c.elapsed.Microseconds())/1000),
		fmt.Sprintf("%.0f", float64(reqs)/c.elapsed.Seconds()),
		fmt.Sprintf("%.0f", float64(c.samples.Load())/c.elapsed.Seconds()),
		fmt.Sprintf("%.1f", avgUS),
	}
}

func runWirePair(clients, batch int, httpClient *http.Client, baseURL, binAddr string) (jsonRow, binRow []string, err error) {
	// Binary clients dial up front, one persistent connection each —
	// the analogue of the warmed HTTP keep-alive pool.
	binClients := make([]*wire.Client, clients)
	for i := range binClients {
		bc, derr := wire.Dial(binAddr)
		if derr != nil {
			return nil, nil, derr
		}
		bc.Timeout = 10 * time.Second
		bc.Retries = shedRetries // shed requests cost the server nothing; retry instead of counting errors
		defer bc.Close()
		binClients[i] = bc
	}
	body := fmt.Sprintf(`{"key":"bench","n":%d}`, batch)
	oneReq := func(proto string, w int) (int, error) {
		if proto == "binary" {
			ids, err := binClients[w].Sample("bench", batch, wire.SampleOpts{})
			return len(ids), err
		}
		return postCountSamples(httpClient, baseURL+"/v1/sample", body, false)
	}
	// Per-chunk request budget across all clients, sized so a chunk is
	// tens of milliseconds — long enough to amortize the start barrier,
	// short enough that alternation tracks ambient noise.
	perChunk := 1024 / batch
	if perChunk < clients {
		perChunk = clients
	}
	perClient := perChunk / clients
	chunks := 6
	if batch >= 64 {
		chunks = 10 // smallest protocol edge → tightest pairing
	}
	counters := map[string]*wireCounters{"json": {}, "binary": {}}

	// runChunk drives all clients through perClient requests of one
	// protocol and adds the chunk's wall time to that protocol's total.
	runChunk := func(proto string, timed bool) error {
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		cnt := counters[proto]
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					got, err := oneReq(proto, w)
					if !timed {
						continue
					}
					cnt.latencyNS.Add(uint64(time.Since(t0).Nanoseconds()))
					cnt.requests.Add(1)
					if err != nil {
						cnt.errors.Add(1)
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					} else {
						cnt.samples.Add(uint64(got))
					}
				}
			}(w)
		}
		wg.Wait()
		if timed {
			cnt.elapsed += time.Since(start)
		}
		return firstErr
	}

	// One untimed warm-up chunk per protocol absorbs connection setup
	// and first-touch costs; then the timed chunks alternate, flipping
	// order so neither protocol always runs first after a quiet gap.
	for _, proto := range []string{"json", "binary"} {
		if err := runChunk(proto, false); err != nil {
			return nil, nil, err
		}
	}
	for chunk := 0; chunk < chunks; chunk++ {
		order := []string{"json", "binary"}
		if chunk%2 == 1 {
			order = []string{"binary", "json"}
		}
		for _, proto := range order {
			if err := runChunk(proto, true); err != nil {
				return nil, nil, err
			}
		}
	}
	return counters["json"].row("json", clients, batch),
		counters["binary"].row("binary", clients, batch), nil
}

// ServingSummary extracts the one-line JSON-vs-binary headline from a
// serving run's tables: the req/s ratio at the largest client count and
// smallest batch (protocol overhead dominates there) and the latency
// ratio at the largest batch (codec cost dominates there).
func ServingSummary(tables []*Table) (string, bool) {
	for _, t := range tables {
		if t.ID != "serving_wire" {
			continue
		}
		col := map[string]int{}
		for i, name := range t.Columns {
			col[name] = i
		}
		type cell struct{ reqPerSec, avgUS float64 }
		cells := map[string]cell{} // "proto/clients/batch"
		maxClients, maxBatch := 0, 0
		for _, row := range t.Rows {
			clients, _ := strconv.Atoi(row[col["clients"]])
			batch, _ := strconv.Atoi(row[col["batch"]])
			rps, _ := strconv.ParseFloat(row[col["req_per_sec"]], 64)
			avg, _ := strconv.ParseFloat(row[col["avg_latency_us"]], 64)
			if clients > maxClients {
				maxClients = clients
			}
			if batch > maxBatch {
				maxBatch = batch
			}
			key := fmt.Sprintf("%s/%d/%d", row[col["protocol"]], clients, batch)
			cells[key] = cell{reqPerSec: rps, avgUS: avg}
		}
		j1 := cells[fmt.Sprintf("json/%d/%d", maxClients, 1)]
		b1 := cells[fmt.Sprintf("binary/%d/%d", maxClients, 1)]
		jb := cells[fmt.Sprintf("json/%d/%d", maxClients, maxBatch)]
		bb := cells[fmt.Sprintf("binary/%d/%d", maxClients, maxBatch)]
		if j1.reqPerSec <= 0 || b1.reqPerSec <= 0 || bb.avgUS <= 0 {
			return "", false
		}
		var parts []string
		parts = append(parts, fmt.Sprintf("binary wire: %.2fx JSON req/s at %d clients batch=1",
			b1.reqPerSec/j1.reqPerSec, maxClients))
		if jb.avgUS > 0 {
			parts = append(parts, fmt.Sprintf("%.2fx lower avg latency at batch=%d", jb.avgUS/bb.avgUS, maxBatch))
		}
		return strings.Join(parts, ", "), true
	}
	return "", false
}

// Shed-retry policy for the HTTP bench clients: a 503 from admission
// control is retried a bounded number of times, honoring the server's
// Retry-After header up to a cap (the header says seconds; waiting a
// full second inside a benchmark window would measure the sleep, not
// the server).
const (
	shedRetries = 3
	maxShedWait = 250 * time.Millisecond
)

// shedWait returns how long to back off after one 503, honoring
// Retry-After under the cap.
func shedWait(resp *http.Response) time.Duration {
	wait := maxShedWait
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
		if d := time.Duration(s) * time.Second; d < wait {
			wait = d
		}
	}
	return wait
}

// doPost fires one JSON POST and reports whether it returned 200,
// retrying shed (503) responses — the HTTP analogue of the binary
// client's ErrBusy retry. The body is drained so the connection is
// reused.
func doPost(client *http.Client, url, body string) bool {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return false
		}
		_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reused
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= shedRetries {
			return resp.StatusCode == http.StatusOK
		}
		time.Sleep(shedWait(resp))
	}
}

// postCountSamples fires one sample request and counts the ids in the
// response, decoding whichever wire format the request selected.
func postCountSamples(client *http.Client, url, body string, stream bool) (int, error) {
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		var err error
		resp, err = client.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= shedRetries {
			break
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		time.Sleep(shedWait(resp))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if !stream {
		var sr server.SampleResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return 0, err
		}
		return sr.Returned, nil
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line server.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return n, err
		}
		if line.Error != "" {
			return n, fmt.Errorf("in-band error: %s", line.Error)
		}
		if !line.Done {
			n++
		}
	}
	return n, sc.Err()
}
