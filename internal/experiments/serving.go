package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// RunServing measures the network serving layer end-to-end: it starts
// the bstserved handler in-process on a real loopback listener and
// drives it with a configurable read/write client mix over actual HTTP —
// connection handling, JSON codec and all — as the client count grows.
// Config.WriteFrac of the operations are POST /v1/add to the sampled key
// (the same worst case as the concurrency experiment, now with the
// serving stack on top); the rest are POST /v1/sample.
//
// A second table sweeps the batch size of a single client, comparing the
// buffered-JSON and streaming-NDJSON response modes — the knob a client
// turns when one logical request wants thousands of samples.
func RunServing(c Config) ([]*Table, error) {
	db, pool, M, n, err := benchDB(c)
	if err != nil {
		return nil, err
	}

	// Host the handler on a real loopback listener (plain net/http, not
	// the httptest harness, which doesn't belong in a shipped binary).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: server.New(db, server.Config{Seed: c.Seed + 1})}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	defer client.CloseIdleConnections()

	const runFor = 100 * time.Millisecond

	mixTbl := &Table{
		ID: "serving",
		Title: fmt.Sprintf("HTTP serving throughput, read/write client mix (M=%d, n=%d, writefrac=%.2f, GOMAXPROCS=%d)",
			M, n, c.WriteFrac, runtime.GOMAXPROCS(0)),
		Columns: []string{
			"clients", "writefrac", "requests", "writes", "errors", "elapsed_ms", "req_per_sec", "avg_latency_us",
		},
	}
	for _, clients := range []int{1, 2, 4, 8, 16} {
		var requests, writes, errorsN, latencyNS atomic.Uint64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := c.rng(3000*uint64(clients) + uint64(w))
				for time.Since(start) < runFor {
					var path, body string
					write := rng.Float64() < c.WriteFrac
					if write {
						path = "/v1/add"
						body = fmt.Sprintf(`{"key":"bench","ids":[%d]}`, pool[rng.Intn(len(pool))])
					} else {
						path = "/v1/sample"
						body = `{"key":"bench","n":1}`
					}
					t0 := time.Now()
					ok := doPost(client, baseURL+path, body)
					latencyNS.Add(uint64(time.Since(t0).Nanoseconds()))
					requests.Add(1)
					if !ok {
						errorsN.Add(1)
					} else if write {
						writes.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		reqs := requests.Load()
		avgUS := 0.0
		if reqs > 0 {
			avgUS = float64(latencyNS.Load()) / float64(reqs) / 1e3
		}
		mixTbl.Add(
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.2f", c.WriteFrac),
			fmt.Sprintf("%d", reqs),
			fmt.Sprintf("%d", writes.Load()),
			fmt.Sprintf("%d", errorsN.Load()),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.0f", float64(reqs)/elapsed.Seconds()),
			fmt.Sprintf("%.1f", avgUS),
		)
	}

	batchTbl := &Table{
		ID:      "serving_batch",
		Title:   "HTTP sample batching: buffered JSON vs streaming NDJSON (single client)",
		Columns: []string{"mode", "batch", "requests", "samples", "elapsed_ms", "samples_per_sec"},
	}
	for _, batch := range []int{1, 64, 512} {
		for _, stream := range []bool{false, true} {
			mode := "json"
			if stream {
				mode = "ndjson"
			}
			body := fmt.Sprintf(`{"key":"bench","n":%d,"stream":%v}`, batch, stream)
			var reqs, samples uint64
			start := time.Now()
			for time.Since(start) < runFor {
				got, err := postCountSamples(client, baseURL+"/v1/sample", body, stream)
				if err != nil {
					return nil, fmt.Errorf("serving batch cell (%s, n=%d): %w", mode, batch, err)
				}
				reqs++
				samples += uint64(got)
			}
			elapsed := time.Since(start)
			batchTbl.Add(
				mode,
				fmt.Sprintf("%d", batch),
				fmt.Sprintf("%d", reqs),
				fmt.Sprintf("%d", samples),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
				fmt.Sprintf("%.0f", float64(samples)/elapsed.Seconds()),
			)
		}
	}
	return []*Table{mixTbl, batchTbl}, nil
}

// doPost fires one JSON POST and reports whether it returned 200. The
// body is drained so the connection is reused.
func doPost(client *http.Client, url, body string) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reused
	return resp.StatusCode == http.StatusOK
}

// postCountSamples fires one sample request and counts the ids in the
// response, decoding whichever wire format the request selected.
func postCountSamples(client *http.Client, url, body string, stream bool) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if !stream {
		var sr server.SampleResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return 0, err
		}
		return sr.Returned, nil
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line server.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return n, err
		}
		if line.Error != "" {
			return n, fmt.Errorf("in-band error: %s", line.Error)
		}
		if !line.Done {
			n++
		}
	}
	return n, sc.Err()
}
