package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/setdb"
	"repro/internal/wal"
)

// RunRecovery measures what the durability layer costs on the write
// path and what it buys at boot, across the fsync-policy sweep:
//
//   - ingest_ms vs base_ms: the same group-commit batches applied
//     through the WAL (apply + log + fsync per policy) vs straight into
//     an in-memory database. overhead_x is their ratio — the price of
//     durability per policy.
//   - recover_ms vs rebuild_ms: reopening the data directory (load the
//     snapshot taken at 80% of ingest, replay the WAL tail) vs
//     rebuilding the same state by re-applying every write from
//     scratch. speedup_x is rebuild/recover — the payoff of
//     checkpointing over replaying history.
//
// Every recovery is verified: the reopened database must serialize to
// exactly the bytes the ingested one did, or the cell fails.
func RunRecovery(c Config) ([]*Table, error) {
	const (
		batch       = 16  // group-commit batch size per Apply
		idsPerWrite = 8   // ids per write
		snapAt      = 0.8 // fraction of ingest completed before the snapshot
		M           = 100_000
	)
	keysSweep := []int{500, 2000}
	policies := []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever}

	tbl := &Table{
		ID: "recovery",
		Title: fmt.Sprintf("WAL ingest overhead and snapshot+replay recovery vs full rebuild (batch=%d, snapshot at %.0f%%)",
			batch, snapAt*100),
		Columns: []string{
			"fsync", "keys", "writes", "base_ms", "ingest_ms", "overhead_x",
			"rebuild_ms", "recover_ms", "replayed", "speedup_x",
		},
	}

	opts, err := setdb.PlanOptions(0.9, idsPerWrite, M, c.K)
	if err != nil {
		return nil, err
	}
	opts.Pruned = true
	opts.Seed = c.Seed
	opts.HashKind = c.HashKind
	fresh := func() (*setdb.DB, error) { return setdb.Open(opts) }

	for _, nKeys := range keysSweep {
		rng := c.rng(uint64(nKeys))
		writes := make([]setdb.Write, nKeys)
		for i := range writes {
			ids := make([]uint64, idsPerWrite)
			for j := range ids {
				ids[j] = rng.Uint64() % M
			}
			writes[i] = setdb.Write{Key: "k" + strconv.Itoa(i), IDs: ids}
		}

		// Baseline: the same batches with no durability layer. This also
		// serves as the rebuild time — recovering with no snapshot and no
		// WAL is exactly re-running ingest.
		base, err := fresh()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := applyBatched(base, writes, batch); err != nil {
			return nil, err
		}
		baseMS := msElapsed(start)

		for _, policy := range policies {
			row, err := recoveryCell(fresh, writes, batch, snapAt, policy)
			if err != nil {
				return nil, fmt.Errorf("recovery %s/%d keys: %w", policy, nKeys, err)
			}
			tbl.Add(string(policy), strconv.Itoa(nKeys), strconv.Itoa(len(writes)),
				fmt.Sprintf("%.2f", baseMS),
				fmt.Sprintf("%.2f", row.ingestMS),
				fmt.Sprintf("%.2f", row.ingestMS/baseMS),
				fmt.Sprintf("%.2f", baseMS),
				fmt.Sprintf("%.2f", row.recoverMS),
				strconv.FormatUint(row.replayed, 10),
				fmt.Sprintf("%.2f", baseMS/row.recoverMS))
		}
	}
	return []*Table{tbl}, nil
}

type recoveryRow struct {
	ingestMS  float64
	recoverMS float64
	replayed  uint64
}

// recoveryCell runs one (policy, workload) cell: ingest through a WAL
// store with a snapshot at snapAt, close, reopen, verify byte equality.
func recoveryCell(fresh func() (*setdb.DB, error), writes []setdb.Write, batch int, snapAt float64, policy wal.FsyncPolicy) (recoveryRow, error) {
	dir, err := os.MkdirTemp("", "bst-recovery-")
	if err != nil {
		return recoveryRow{}, err
	}
	defer os.RemoveAll(dir)

	wopts := wal.Options{Fsync: policy}
	store, err := wal.Open(dir, fresh, wopts)
	if err != nil {
		return recoveryRow{}, err
	}
	snapAfter := int(float64(len(writes)) * snapAt)
	start := time.Now()
	for lo := 0; lo < len(writes); lo += batch {
		hi := min(lo+batch, len(writes))
		if err := store.Apply(writes[lo:hi]); err != nil {
			store.Close()
			return recoveryRow{}, err
		}
		if lo < snapAfter && hi >= snapAfter {
			if _, err := store.Snapshot(); err != nil {
				store.Close()
				return recoveryRow{}, err
			}
		}
	}
	row := recoveryRow{ingestMS: msElapsed(start)}

	var want bytes.Buffer
	if _, err := store.DB().SnapshotView().WriteBundleTo(&want); err != nil {
		store.Close()
		return recoveryRow{}, err
	}
	if err := store.Close(); err != nil {
		return recoveryRow{}, err
	}

	start = time.Now()
	reopened, err := wal.Open(dir, fresh, wopts)
	if err != nil {
		return recoveryRow{}, err
	}
	row.recoverMS = msElapsed(start)
	defer reopened.Close()
	row.replayed = reopened.Stats().ReplayedAtBoot

	var got bytes.Buffer
	if _, err := reopened.DB().SnapshotView().WriteBundleTo(&got); err != nil {
		return recoveryRow{}, err
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		return recoveryRow{}, fmt.Errorf("recovered database differs from ingested one (%d vs %d bytes)", got.Len(), want.Len())
	}
	return row, nil
}

// applyBatched applies writes in fixed-size group-commit batches.
func applyBatched(db *setdb.DB, writes []setdb.Write, batch int) error {
	for lo := 0; lo < len(writes); lo += batch {
		hi := min(lo+batch, len(writes))
		if err := db.ApplyBatch(writes[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

func msElapsed(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// RecoverySummary condenses a recovery run into one line: the geometric
// span of the recovery speedups and the ingest overhead of the safest
// policy. The second return is false when the tables are not a
// recovery run.
func RecoverySummary(tables []*Table) (string, bool) {
	for _, t := range tables {
		if t.ID != "recovery" {
			continue
		}
		col := map[string]int{}
		for i, c := range t.Columns {
			col[c] = i
		}
		var minSp, maxSp, worstOv float64
		for _, row := range t.Rows {
			sp, err := strconv.ParseFloat(row[col["speedup_x"]], 64)
			if err != nil {
				continue
			}
			if minSp == 0 || sp < minSp {
				minSp = sp
			}
			if sp > maxSp {
				maxSp = sp
			}
			if row[col["fsync"]] == string(wal.FsyncAlways) {
				if ov, err := strconv.ParseFloat(row[col["overhead_x"]], 64); err == nil && ov > worstOv {
					worstOv = ov
				}
			}
		}
		if minSp == 0 {
			return "", false
		}
		return fmt.Sprintf(
			"recovery: snapshot+WAL boot %.1f-%.1fx faster than rebuild; fsync=always ingest overhead up to %.1fx",
			minSp, maxSp, worstOv), true
	}
	return "", false
}
