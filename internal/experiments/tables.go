package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// RunPlanTable reproduces Tables 2 (M = 10⁶) and 3 (M = 10⁷): the planned
// Bloom-filter size m, tree depth, leaf range M⊥ and total memory for each
// desired accuracy at n = 10³ (or the closest configured set size).
func RunPlanTable(cfg Config, M uint64) ([]*Table, error) {
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      fmt.Sprintf("plan-M%d", M),
		Title:   fmt.Sprintf("BloomSampleTree parameters for n=%d, M=%d", n, M),
		Columns: []string{"accuracy", "m_bits", "depth", "leaf_range", "memory_MB", "nodes"},
	}
	for _, acc := range cfg.Accuracies {
		tree, plan, err := cfg.buildTreeFor(acc, n, M)
		if err != nil {
			return nil, err
		}
		tbl.Add(
			fmt.Sprintf("%.1f", acc),
			fmt.Sprint(plan.Bits),
			fmt.Sprint(plan.Depth),
			fmt.Sprint(plan.LeafRange),
			fmt.Sprintf("%.3f", float64(tree.MemoryBytes())/(1<<20)),
			fmt.Sprint(tree.Nodes()),
		)
	}
	return []*Table{tbl}, nil
}

// RunCreationTime reproduces Table 4: wall-clock time to create the
// BloomSampleTree for each namespace size and desired accuracy.
func RunCreationTime(cfg Config) ([]*Table, error) {
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "creation-time",
		Title:   fmt.Sprintf("BloomSampleTree creation time (n=%d)", n),
		Columns: []string{"M", "accuracy", "m_bits", "depth", "create_ms"},
	}
	for _, M := range cfg.Namespaces {
		for _, acc := range cfg.Accuracies {
			plan, err := core.PlanTree(acc, uint64(n), M, cfg.K, 0)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := core.BuildTree(plan.TreeConfig(cfg.HashKind, cfg.Seed)); err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			tbl.Add(fmt.Sprint(M), fmt.Sprintf("%.1f", acc),
				fmt.Sprint(plan.Bits), fmt.Sprint(plan.Depth), fmt.Sprintf("%.2f", ms))
		}
	}
	return []*Table{tbl}, nil
}

// RunChiSquared reproduces Table 5: Pearson chi-squared p-values for the
// uniformity of BST samples, for each accuracy and query-set size, with
// T = ChiSqRoundsFactor·n sampling rounds (§7.2; the paper's significance
// level is 0.08).
func RunChiSquared(cfg Config) ([]*Table, error) {
	M := middleNamespace(cfg)
	tbl := &Table{
		ID:      fmt.Sprintf("chisq-M%d", M),
		Title:   fmt.Sprintf("Sample-uniformity p-values, M=%d, T=%d*n", M, cfg.ChiSqRoundsFactor),
		Columns: []string{"accuracy", "n", "p_corrected", "p_raw", "true_sample_frac"},
	}
	for _, acc := range cfg.Accuracies {
		for _, n := range cfg.SetSizes {
			if uint64(n) >= M {
				continue
			}
			rng := cfg.rng(uint64(n)*31 + M)
			set, err := cfg.querySet(rng, M, n, false)
			if err != nil {
				return nil, err
			}
			tree, _, err := cfg.buildTreeFor(acc, n, M)
			if err != nil {
				return nil, err
			}
			q := queryFilterOf(tree, set)
			index := make(map[uint64]int, n)
			for i, x := range set {
				index[x] = i
			}
			rounds := cfg.ChiSqRoundsFactor * n

			// Corrected sampler: the rejection-corrected UniformSampler,
			// whose accepted samples are exactly uniform (see
			// core.UniformSampler); this is the headline p-value.
			sampler, err := tree.NewUniformSampler(q)
			if err != nil {
				return nil, err
			}
			counts := make([]int, n)
			inSet := 0
			for i := 0; i < rounds; i++ {
				x, err := sampler.Sample(rng, nil)
				if err == core.ErrNoSample {
					break
				}
				if err != nil {
					return nil, err
				}
				if j, ok := index[x]; ok {
					counts[j]++
					inSet++
				}
			}
			corrected, err := stats.ChiSquaredUniform(counts)
			if err != nil {
				return nil, err
			}

			// Raw BSTSample (batched through SampleN, which preserves the
			// per-path distribution, §5.3) for comparison: at the paper's
			// filter sizes the estimator noise makes it visibly
			// non-uniform (see EXPERIMENTS.md).
			rawCounts := make([]int, n)
			for done := 0; done < rounds; {
				want := rounds - done
				if want > 128 {
					want = 128
				}
				got, err := tree.SampleN(q, want, true, rng, nil)
				if err != nil {
					return nil, err
				}
				if len(got) == 0 {
					break
				}
				for _, x := range got {
					if j, ok := index[x]; ok {
						rawCounts[j]++
					}
				}
				done += len(got)
			}
			raw, err := stats.ChiSquaredUniform(rawCounts)
			if err != nil {
				return nil, err
			}
			tbl.Add(fmt.Sprintf("%.1f", acc), fmt.Sprint(n),
				fmt.Sprintf("%.4f", corrected.PValue),
				fmt.Sprintf("%.4f", raw.PValue),
				fmt.Sprintf("%.3f", float64(inSet)/float64(rounds)))
		}
	}
	return []*Table{tbl}, nil
}

// RunMeasuredAccuracy reproduces Table 6: measured sampling accuracy (the
// fraction of samples that are true elements of the query set) against the
// designed accuracy, for each namespace size at n = 10³.
func RunMeasuredAccuracy(cfg Config) ([]*Table, error) {
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "measured-accuracy",
		Title:   fmt.Sprintf("Measured sampling accuracy (n=%d, uniform query sets)", n),
		Columns: []string{"accuracy", "M", "measured"},
	}
	for _, acc := range cfg.Accuracies {
		for _, M := range cfg.Namespaces {
			if uint64(n) >= M {
				continue
			}
			measured, err := MeasureAccuracy(cfg, acc, n, M)
			if err != nil {
				return nil, err
			}
			tbl.Add(fmt.Sprintf("%.1f", acc), fmt.Sprint(M), fmt.Sprintf("%.3f", measured))
		}
	}
	return []*Table{tbl}, nil
}

// MeasureAccuracy runs cfg.Rounds BST sampling rounds on a fresh uniform
// query set and returns the fraction of samples that belong to the true
// set — the paper's measured accuracy (§5.4, Table 6).
func MeasureAccuracy(cfg Config, acc float64, n int, M uint64) (float64, error) {
	rng := cfg.rng(uint64(n) ^ M ^ 0xACC)
	set, err := cfg.querySet(rng, M, n, false)
	if err != nil {
		return 0, err
	}
	tree, _, err := cfg.buildTreeFor(acc, n, M)
	if err != nil {
		return 0, err
	}
	q := queryFilterOf(tree, set)
	inSet := make(map[uint64]bool, n)
	for _, x := range set {
		inSet[x] = true
	}
	hits, total := 0, 0
	for i := 0; i < cfg.Rounds; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err == core.ErrNoSample {
			continue
		}
		if err != nil {
			return 0, err
		}
		total++
		if inSet[x] {
			hits++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: no successful samples")
	}
	return float64(hits) / float64(total), nil
}

func closestSetSize(cfg Config, want int) int {
	best := cfg.SetSizes[0]
	for _, n := range cfg.SetSizes {
		d1, d2 := n-want, best-want
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d1 < d2 {
			best = n
		}
	}
	return best
}
