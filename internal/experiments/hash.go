package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/hashfam"
	"repro/internal/setdb"
)

// RunHash measures the two halves of the hash-path overhaul.
//
// The first table ("hash-cost") sweeps family × k × batch: the
// nanoseconds to derive one key's k bit positions through the
// single-key Positions path (batch=1) and the batched PositionsMany
// path, for every supported family. vs_murmur3 is the speedup over the
// previous default family at the same (k, batch) cell, so the headline
// claim — the fast multiply-fold family cuts per-probe hash cost by
// 2x+ — is a direct column read.
//
// The second table ("hash-chunks") measures what the adaptive chunk
// layout buys lightly loaded shards: the bytes of shard state copied
// per write at a fixed shard occupancy, against the analytic cost of
// the previous fixed-256-chunk layout (a 256-entry table clone per
// write plus the expected one-chunk entry copies) computed with the
// database's own EntryCopyBytes formula over the same key population.
// At high occupancy the two converge — growth exists to stop small
// shards from paying the saturated layout's table clone.
func RunHash(c Config) ([]*Table, error) {
	const (
		m        = 60870 // position range; non-power-of-two like real filters
		keyBlock = 2048  // keys hashed per timing pass
	)
	batches := []int{1, 16, 64}
	ks := []int{c.K}
	if c.K != 8 {
		ks = append(ks, 8)
	}
	// Each cell is timed as the best of reps repetitions of passes full
	// key blocks: minimums discard scheduler noise, which would otherwise
	// dominate sub-millisecond timing windows on shared CI machines.
	passes := max(16, c.Rounds/8)
	const reps = 5

	xs := make([]uint64, keyBlock)
	for i := range xs {
		xs[i] = uint64(i)*0x9e3779b97f4a7c15 + 11
	}
	type cell struct {
		kind  hashfam.Kind
		k     int
		batch int
	}
	ns := map[cell]float64{}
	for _, k := range ks {
		for _, kind := range hashfam.Kinds() {
			f := hashfam.MustNew(kind, m, k, c.Seed|1)
			out := make([]uint64, 0, 64*k)
			for _, batch := range batches {
				best := 0.0
				for r := 0; r < reps; r++ {
					start := time.Now()
					for p := 0; p < passes; p++ {
						if batch == 1 {
							for _, x := range xs {
								out = f.Positions(x, out[:0])
							}
						} else {
							for lo := 0; lo < len(xs); lo += batch {
								out = hashfam.PositionsMany(f, xs[lo:lo+batch], out[:0])
							}
						}
					}
					t := float64(time.Since(start).Nanoseconds()) / float64(passes*keyBlock)
					if r == 0 || t < best {
						best = t
					}
					hashSink += len(out)
				}
				ns[cell{kind, k, batch}] = best
			}
		}
	}

	cost := &Table{
		ID: "hash-cost",
		Title: fmt.Sprintf("per-key hash cost: family × k × batch (%d keys/pass, %d passes)",
			keyBlock, passes),
		Columns: []string{"family", "k", "batch", "ns_per_key", "vs_murmur3"},
	}
	for _, k := range ks {
		for _, batch := range batches {
			base := ns[cell{hashfam.KindMurmur3, k, batch}]
			for _, kind := range hashfam.Kinds() {
				t := ns[cell{kind, k, batch}]
				cost.Add(string(kind), strconv.Itoa(k), strconv.Itoa(batch),
					fmt.Sprintf("%.1f", t), fmt.Sprintf("%.2fx", base/t))
			}
		}
	}

	chunks := &Table{
		ID:      "hash-chunks",
		Title:   "bytes of shard state copied per write: adaptive chunk table vs fixed-256 baseline (single shard)",
		Columns: []string{"keys_per_shard", "writes", "adaptive_bytes_per_write", "fixed256_bytes_per_write", "vs_fixed"},
	}
	const measured = 64
	for _, occ := range []int{8, 50, 1000} {
		keys := shardLocalKeys(0, occ)
		db, err := setdb.Open(setdb.Options{
			Namespace: 4096, Bits: 256, K: c.K,
			HashKind: c.HashKind, Seed: c.Seed, TreeDepth: 6,
		})
		if err != nil {
			return nil, err
		}
		rng := c.rng(uint64(occ) ^ 0x4A5)
		populate := make([]setdb.Write, 0, len(keys))
		for _, k := range keys {
			populate = append(populate, setdb.Write{Key: k, IDs: []uint64{rng.Uint64() % 4096}})
		}
		if err := db.ApplyBatch(populate); err != nil {
			return nil, err
		}
		// Measured writes only update existing keys, so occupancy — and with
		// it the per-write copy cost — stays fixed at occ.
		before := db.Stats()
		for i := 0; i < measured; i++ {
			if err := db.Add(keys[i*97%len(keys)], rng.Uint64()%4096); err != nil {
				return nil, err
			}
		}
		after := db.Stats()
		adaptive := float64(after.StateBytesCopied-before.StateBytesCopied) / measured

		// Fixed-256 analytic baseline: every write clones the 256-pointer
		// chunk table plus, in expectation, one chunk's worth of entries.
		var entryBytes float64
		for _, k := range keys {
			entryBytes += float64(setdb.EntryCopyBytes(len(k)))
		}
		fixed := 256*8 + entryBytes/256

		chunks.Add(strconv.Itoa(occ), strconv.Itoa(measured),
			fmt.Sprintf("%.0f", adaptive), fmt.Sprintf("%.0f", fixed),
			fmt.Sprintf("%.1fx", fixed/adaptive))
	}

	return []*Table{cost, chunks}, nil
}

// hashSink keeps the timed hashing loops from being optimized away.
var hashSink int

// HashSummary condenses a hash run into one human-checkable line: the
// fast family's best cell against murmur3 at the same (k, batch), plus
// what the adaptive layout saves the smallest measured shard. The second
// return is false when the tables are not a hash run.
func HashSummary(tables []*Table) (string, bool) {
	var costLine, chunkLine string
	for _, t := range tables {
		col := map[string]int{}
		for i, c := range t.Columns {
			col[c] = i
		}
		switch t.ID {
		case "hash-cost":
			var bestNS, bestSpeed float64
			var bestK, bestBatch string
			for _, row := range t.Rows {
				if row[col["family"]] != string(hashfam.KindFast) {
					continue
				}
				nsv, err1 := strconv.ParseFloat(row[col["ns_per_key"]], 64)
				speed, err2 := strconv.ParseFloat(strings.TrimSuffix(row[col["vs_murmur3"]], "x"), 64)
				if err1 != nil || err2 != nil {
					continue
				}
				if speed > bestSpeed {
					bestNS, bestSpeed = nsv, speed
					bestK, bestBatch = row[col["k"]], row[col["batch"]]
				}
			}
			if bestSpeed > 0 {
				costLine = fmt.Sprintf("fast hashes a key in %.1f ns at k=%s batch=%s, %.1fx faster than murmur3",
					bestNS, bestK, bestBatch, bestSpeed)
			}
		case "hash-chunks":
			if len(t.Rows) > 0 {
				row := t.Rows[0]
				chunkLine = fmt.Sprintf("adaptive chunks copy %s B/write at %s keys/shard vs fixed-256's %s B (%s lower)",
					row[col["adaptive_bytes_per_write"]], row[col["keys_per_shard"]],
					row[col["fixed256_bytes_per_write"]], row[col["vs_fixed"]])
			}
		}
	}
	if costLine == "" {
		return "", false
	}
	line := "hash: " + costLine
	if chunkLine != "" {
		line += "; " + chunkLine
	}
	return line, true
}
