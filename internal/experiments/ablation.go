package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// RunAblationThreshold sweeps the §5.6 empty-intersection threshold and
// reports its effect on sampling cost, reachability (fraction of rounds
// producing a sample) and reconstruction recall — the tradeoff DESIGN.md
// calls out.
func RunAblationThreshold(cfg Config) ([]*Table, error) {
	M := smallestNamespace(cfg)
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "abl-threshold",
		Title:   fmt.Sprintf("Empty-threshold ablation (M=%d, n=%d, acc=0.9)", M, n),
		Columns: []string{"threshold", "memberships/sample", "intersections/sample", "sample_success", "recon_recall"},
	}
	rng := cfg.rng(0xAB1)
	set, err := cfg.querySet(rng, M, n, false)
	if err != nil {
		return nil, err
	}
	plan, err := core.PlanTree(0.9, uint64(n), M, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	for _, thr := range []float64{0.1, 0.5, 1, 2, 5} {
		treeCfg := plan.TreeConfig(cfg.HashKind, cfg.Seed)
		treeCfg.EmptyThreshold = thr
		tree, err := core.BuildTree(treeCfg)
		if err != nil {
			return nil, err
		}
		q := queryFilterOf(tree, set)
		var ops core.Ops
		success := 0
		for i := 0; i < cfg.Rounds; i++ {
			if _, err := tree.Sample(q, rng, &ops); err == nil {
				success++
			} else if err != core.ErrNoSample {
				return nil, err
			}
		}
		got, err := tree.Reconstruct(q, core.PruneByEstimate, nil)
		if err != nil {
			return nil, err
		}
		r := float64(cfg.Rounds)
		tbl.Add(fmt.Sprintf("%.1f", thr),
			fmt.Sprintf("%.1f", float64(ops.Memberships)/r),
			fmt.Sprintf("%.1f", float64(ops.Intersections)/r),
			fmt.Sprintf("%.3f", float64(success)/r),
			fmt.Sprintf("%.3f", recallOf(got, set)))
	}
	return []*Table{tbl}, nil
}

// RunAblationMultiSample compares r repeated BSTSample calls against one
// r-path SampleN pass (§5.3's claimed benefit).
func RunAblationMultiSample(cfg Config) ([]*Table, error) {
	M := smallestNamespace(cfg)
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "abl-multisample",
		Title:   fmt.Sprintf("Multi-sample single pass vs repeated sampling (M=%d, n=%d, acc=0.9)", M, n),
		Columns: []string{"r", "repeated_intersections", "single_pass_intersections", "repeated_ms", "single_pass_ms"},
	}
	rng := cfg.rng(0xAB2)
	set, err := cfg.querySet(rng, M, n, false)
	if err != nil {
		return nil, err
	}
	tree, _, err := cfg.buildTreeFor(0.9, n, M)
	if err != nil {
		return nil, err
	}
	q := queryFilterOf(tree, set)
	for _, r := range []int{1, 10, 100, 1000} {
		var repOps core.Ops
		start := time.Now()
		for i := 0; i < r; i++ {
			if _, err := tree.Sample(q, rng, &repOps); err != nil && err != core.ErrNoSample {
				return nil, err
			}
		}
		repMS := msSince(start)

		var oneOps core.Ops
		start = time.Now()
		if _, err := tree.SampleN(q, r, true, rng, &oneOps); err != nil {
			return nil, err
		}
		oneMS := msSince(start)

		tbl.Add(fmt.Sprint(r), fmt.Sprint(repOps.Intersections),
			fmt.Sprint(oneOps.Intersections), repMS, oneMS)
	}
	return []*Table{tbl}, nil
}

// RunAblationBuild compares the leaf-up union construction used by
// BuildTree against the naive construction that re-inserts every element
// at every level, validating the DESIGN.md choice.
func RunAblationBuild(cfg Config) ([]*Table, error) {
	M := smallestNamespace(cfg)
	n := closestSetSize(cfg, 1000)
	tbl := &Table{
		ID:      "abl-build",
		Title:   fmt.Sprintf("Tree construction: leaf-up unions vs per-level insertion (M=%d)", M),
		Columns: []string{"accuracy", "union_ms", "naive_ms", "speedup"},
	}
	for _, acc := range cfg.Accuracies {
		plan, err := core.PlanTree(acc, uint64(n), M, cfg.K, 0)
		if err != nil {
			return nil, err
		}
		treeCfg := plan.TreeConfig(cfg.HashKind, cfg.Seed)

		start := time.Now()
		if _, err := core.BuildTree(treeCfg); err != nil {
			return nil, err
		}
		unionMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		naiveBuild(treeCfg)
		naiveMS := float64(time.Since(start).Microseconds()) / 1000

		tbl.Add(fmt.Sprintf("%.1f", acc), fmt.Sprintf("%.2f", unionMS),
			fmt.Sprintf("%.2f", naiveMS), fmt.Sprintf("%.2fx", naiveMS/unionMS))
	}
	return []*Table{tbl}, nil
}

// naiveBuild constructs the per-level filters by inserting every namespace
// element at every level — the strawman BuildTree avoids. It builds the
// same multiset of filters without the tree wiring (enough for a fair
// timing comparison of the hashing work).
func naiveBuild(cfg core.Config) {
	fam := hashfam.MustNew(cfg.HashKind, cfg.Bits, cfg.K, cfg.Seed)
	// Level l has 2^l filters; element x goes to filter x >> (log2(M)-l).
	for level := 0; level <= cfg.Depth; level++ {
		nodes := 1 << level
		filters := make([]*bloom.Filter, nodes)
		for i := range filters {
			filters[i] = bloom.New(fam)
		}
		per := (cfg.Namespace + uint64(nodes) - 1) / uint64(nodes)
		for x := uint64(0); x < cfg.Namespace; x++ {
			filters[x/per].Add(x)
		}
	}
}

// RunAblationHashInvert sweeps the query-set size (and hence filter
// density) to show where HashInvert's set-bit and unset-bit reconstruction
// variants win, and where the method loses to both BST and DA (the §7.3
// "HI-10K" effect).
func RunAblationHashInvert(cfg Config) ([]*Table, error) {
	M := smallestNamespace(cfg)
	tbl := &Table{
		ID:      "abl-hashinvert",
		Title:   fmt.Sprintf("HashInvert density sweep (M=%d, acc=0.8, simple hashes)", M),
		Columns: []string{"n", "fill_ratio", "variant", "memberships", "time_ms"},
	}
	cfg.HashKind = hashfam.KindSimple
	hi := baseline.HashInvert{Namespace: M}
	for _, n := range cfg.SetSizes {
		if uint64(n) >= M {
			continue
		}
		rng := cfg.rng(uint64(n) ^ 0xAB4)
		set, err := cfg.querySet(rng, M, n, false)
		if err != nil {
			return nil, err
		}
		tree, _, err := cfg.buildTreeFor(0.8, n, M)
		if err != nil {
			return nil, err
		}
		q := queryFilterOf(tree, set)
		variant := "set-bits"
		if q.FillRatio() > 0.5 {
			variant = "unset-bits"
		}
		var ops core.Ops
		start := time.Now()
		if _, err := hi.Reconstruct(q, &ops); err != nil {
			return nil, err
		}
		tbl.Add(fmt.Sprint(n), fmt.Sprintf("%.3f", q.FillRatio()), variant,
			fmt.Sprint(ops.Memberships), msSince(start))
	}
	return []*Table{tbl}, nil
}
