package experiments

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/setdb"
)

// RunBackend measures the membership backends against each other across
// a backend × set-size × read/write-mix sweep: resident memory per live
// entry, realized false-positive rate, and sampling throughput. All
// three backends are planned from the same accuracy target, so their
// query views share one Bloom profile and the memory comparison is at a
// matched false-positive design point — the headline question is what a
// deletable set costs over the plain filter (counting pays 8× the
// filter bits in counters; cuckoo pays ~2.4 bytes per live entry in
// fingerprints plus the view), and what the write mix does to sampling
// throughput on each.
//
// The bloom rows are the non-deletable baseline (plain sets, Add only);
// their write ops are Adds. Dynamic rows alternate an insert and a
// remove per write op, holding occupancy — and with it the
// false-positive rate — fixed while exercising each backend's
// copy-on-write mutation path.
func RunBackend(c Config) ([]*Table, error) {
	M := smallestNamespace(c)
	backends := []membership.Kind{membership.KindBloom, membership.KindCounting, membership.KindCuckoo}
	mixes := []float64{0, 0.2}
	fpProbes := 20_000

	tbl := &Table{
		ID: "backend",
		Title: fmt.Sprintf("membership backends: memory, false positives and sampling throughput (M=%d, %d fp probes, %d rounds/cell)",
			M, fpProbes, c.Rounds),
		Columns: []string{
			"backend", "n", "writefrac", "bytes_per_entry", "bits_per_entry",
			"load_factor", "fp_rate", "samples_per_sec", "ops_per_sec",
		},
	}

	for _, n := range c.SetSizes {
		for _, kind := range backends {
			opts, err := setdb.PlanOptions(0.9, uint64(n), M, c.K)
			if err != nil {
				return nil, err
			}
			opts.HashKind, opts.Seed = c.HashKind, c.Seed
			dynamic := kind != membership.KindBloom
			if dynamic {
				opts.Backend = kind
			}
			db, err := setdb.Open(opts)
			if err != nil {
				return nil, err
			}

			// Members are even ids, so every odd id is a guaranteed
			// non-member for the false-positive probe.
			rng := c.rng(uint64(n)*31 + uint64(len(kind)))
			seen := make(map[uint64]bool, n)
			members := make([]uint64, 0, n)
			for len(members) < n {
				id := (rng.Uint64() % (M / 2)) * 2
				if !seen[id] {
					seen[id] = true
					members = append(members, id)
				}
			}
			const key = "s"
			if dynamic {
				err = db.AddDynamic(key, members...)
			} else {
				err = db.Add(key, members...)
			}
			if err != nil {
				return nil, err
			}

			var stored membership.Membership
			if dynamic {
				stored = db.MembershipDynamic(key)
			} else {
				stored = db.Membership(key)
			}
			bytesPerEntry := float64(stored.SizeBytes()) / float64(n)
			loadFactor := 0.0
			if lf, ok := stored.(membership.LoadFactorer); ok {
				loadFactor = lf.LoadFactor()
			}

			// Realized false-positive rate through each backend's native
			// probe (the delete-aware path for cuckoo, not the monotone
			// query view).
			falsePos := 0
			for i := 0; i < fpProbes; i++ {
				id := (rng.Uint64()%(M/2))*2 + 1
				var hit bool
				if dynamic {
					hit, err = db.ContainsDynamic(key, id)
				} else {
					hit, err = db.Contains(key, id)
				}
				if err != nil {
					return nil, err
				}
				if hit {
					falsePos++
				}
			}
			fpRate := float64(falsePos) / float64(fpProbes)

			for _, wf := range mixes {
				opRng := c.rng(uint64(n)*131 + uint64(len(kind))*17 + uint64(wf*100))
				// Best of three repetitions: wall-clock throughput on a
				// shared machine is noisy, and transient slowdowns only
				// ever subtract — the max is the robust estimator.
				var bestSamples, bestOps float64
				nextSwap := 0
				for rep := 0; rep < 3; rep++ {
					samples, writes := 0, 0
					start := time.Now()
					for op := 0; op < c.Rounds; op++ {
						if wf > 0 && opRng.Float64() < wf {
							if dynamic {
								// Swap one member for a fresh id (insert
								// then remove the displaced member),
								// keeping occupancy and the fp design
								// point fixed.
								id := (opRng.Uint64() % (M / 2)) * 2
								if seen[id] {
									continue
								}
								if err := db.AddDynamic(key, id); err != nil {
									return nil, err
								}
								out := members[nextSwap%len(members)]
								if err := db.RemoveDynamic(key, out); err != nil {
									return nil, err
								}
								seen[id] = true
								members[nextSwap%len(members)] = id
								nextSwap++
							} else {
								if err := db.Add(key, (opRng.Uint64()%(M/2))*2); err != nil {
									return nil, err
								}
							}
							writes++
							continue
						}
						var serr error
						if dynamic {
							_, serr = db.SampleDynamic(key, opRng, nil)
						} else {
							_, serr = db.Sample(key, opRng, nil)
						}
						if serr != nil && !errors.Is(serr, core.ErrNoSample) {
							return nil, serr
						}
						samples++
					}
					elapsed := time.Since(start).Seconds()
					if elapsed <= 0 {
						elapsed = 1e-9
					}
					if s := float64(samples) / elapsed; s > bestSamples {
						bestSamples = s
					}
					if o := float64(samples+writes) / elapsed; o > bestOps {
						bestOps = o
					}
				}
				tbl.Add(string(kind), strconv.Itoa(n), fmt.Sprintf("%.1f", wf),
					fmt.Sprintf("%.2f", bytesPerEntry),
					fmt.Sprintf("%.2f", bytesPerEntry*8),
					fmt.Sprintf("%.2f", loadFactor),
					fmt.Sprintf("%.5f", fpRate),
					fmt.Sprintf("%.0f", bestSamples),
					fmt.Sprintf("%.0f", bestOps))
			}
		}
	}
	return []*Table{tbl}, nil
}

// BackendSummary condenses a backend run into the two acceptance
// figures: cuckoo-vs-counting bytes per entry (both at the same planned
// false-positive point) and cuckoo-vs-bloom read-only sampling
// throughput. The second return is false when the tables are not a
// backend run.
func BackendSummary(tables []*Table) (string, bool) {
	for _, t := range tables {
		if t.ID != "backend" {
			continue
		}
		col := map[string]int{}
		for i, c := range t.Columns {
			col[c] = i
		}
		means := map[string]struct {
			bytes, tput float64
			n           int
		}{}
		for _, row := range t.Rows {
			if row[col["writefrac"]] != "0.0" {
				continue
			}
			b, err1 := strconv.ParseFloat(row[col["bytes_per_entry"]], 64)
			s, err2 := strconv.ParseFloat(row[col["samples_per_sec"]], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			m := means[row[col["backend"]]]
			m.bytes += b
			m.tput += s
			m.n++
			means[row[col["backend"]]] = m
		}
		bl, ct, ck := means["bloom"], means["counting"], means["cuckoo"]
		if bl.n == 0 || ct.n == 0 || ck.n == 0 {
			return "", false
		}
		return fmt.Sprintf(
			"backend: mean bytes/entry: bloom %.1f, counting %.1f, cuckoo %.1f (%.1fx below counting); read-only sampling: cuckoo at %.0f%% of bloom throughput",
			bl.bytes/float64(bl.n), ct.bytes/float64(ct.n), ck.bytes/float64(ck.n),
			(ct.bytes/float64(ct.n))/(ck.bytes/float64(ck.n)),
			100*(ck.tput/float64(ck.n))/(bl.tput/float64(bl.n))), true
	}
	return "", false
}
