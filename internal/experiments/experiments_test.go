package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps every experiment fast enough for the unit-test suite.
func tinyConfig() Config {
	c := SmallConfig()
	c.Rounds = 50
	c.BaselineRounds = 1
	c.Accuracies = []float64{0.7, 0.9}
	c.SetSizes = []int{100, 500}
	c.Namespaces = []uint64{20_000}
	c.Fractions = []float64{0.2, 0.6}
	c.TwitterScale = 4000
	c.ChiSqRoundsFactor = 20
	return c
}

func TestTableAddAndRender(t *testing.T) {
	tbl := &Table{ID: "t", Title: "demo", Columns: []string{"a", "b"}}
	tbl.Add("1", "2")
	tbl.Add("333", "4")
	var text, csv bytes.Buffer
	if err := tbl.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "333") {
		t.Fatalf("text output wrong:\n%s", text.String())
	}
	if got := csv.String(); got != "a,b\n1,2\n333,4\n" {
		t.Fatalf("csv output wrong: %q", got)
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tbl := &Table{ID: "t", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong arity")
		}
	}()
	tbl.Add("only-one")
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	reg := Registry()
	for _, id := range ExperimentIDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %s listed but not registered", id)
		}
	}
	// Every evaluation figure (3–15) and table (2–6) must be present.
	for fig := 3; fig <= 15; fig++ {
		if _, ok := reg["fig"+strconv.Itoa(fig)]; !ok {
			t.Errorf("missing runner for figure %d", fig)
		}
	}
	for tab := 2; tab <= 6; tab++ {
		if _, ok := reg["tab"+strconv.Itoa(tab)]; !ok {
			t.Errorf("missing runner for table %d", tab)
		}
	}
}

// Every registered experiment must run to completion at tiny scale and
// produce at least one non-empty table.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Registry()[id](cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %s has no rows", id, tbl.ID)
				}
				if len(tbl.Columns) == 0 {
					t.Errorf("%s: table %s has no columns", id, tbl.ID)
				}
				var buf bytes.Buffer
				if err := tbl.WriteText(&buf); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestSamplingOpsShape(t *testing.T) {
	// The defining shape of Figures 3–4: BST memberships far below DA's M.
	cfg := tinyConfig()
	tables, err := RunSamplingOps(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	M := float64(cfg.Namespaces[0])
	var bstRows int
	for _, row := range tbl.Rows {
		if row[0] != "BST" {
			continue
		}
		bstRows++
		mem, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if mem >= M/2 {
			t.Errorf("BST memberships %v not far below M=%v (row %v)", mem, M, row)
		}
	}
	if bstRows == 0 {
		t.Fatal("no BST rows")
	}
}

func TestMeasuredAccuracyTracksDesign(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rounds = 400
	for _, acc := range []float64{0.7, 0.9} {
		got, err := MeasureAccuracy(cfg, acc, 500, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		// Generous tolerance at tiny scale; the sign of the effect (higher
		// design accuracy → higher measured) is checked below.
		if got < acc-0.25 {
			t.Errorf("acc %.1f: measured %.3f too low", acc, got)
		}
	}
	lo, err := MeasureAccuracy(cfg, 0.55, 500, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MeasureAccuracy(cfg, 0.95, 500, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo-0.05 {
		t.Errorf("measured accuracy not increasing: %.3f (0.55) vs %.3f (0.95)", lo, hi)
	}
}

func TestLowOccupancyMemoryShrinksWithFraction(t *testing.T) {
	cfg := tinyConfig()
	cfg.Fractions = []float64{0.1, 0.9}
	tables, err := RunLowOccupancy(cfg, "memory")
	if err != nil {
		t.Fatal(err)
	}
	var mem01, mem09 float64
	for _, row := range tables[0].Rows {
		if row[1] != "uniform" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[0] {
		case "0.10":
			mem01 = v
		case "0.90":
			mem09 = v
		}
	}
	if mem01 <= 0 || mem09 <= 0 {
		t.Fatalf("missing rows: %v", tables[0].Rows)
	}
	if mem01 >= mem09 {
		t.Errorf("memory at fraction 0.1 (%.3f MB) not below fraction 0.9 (%.3f MB)", mem01, mem09)
	}
}

func TestLowOccupancyUnknownMetric(t *testing.T) {
	if _, err := RunLowOccupancy(tinyConfig(), "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestPaperConfigDimensions(t *testing.T) {
	c := PaperConfig()
	if c.Rounds != 10000 || c.ChiSqRoundsFactor != 130 || c.TwitterScale != 1 {
		t.Fatalf("paper config drifted: %+v", c)
	}
	if len(c.Accuracies) != 6 || len(c.SetSizes) != 4 || len(c.Namespaces) != 3 {
		t.Fatalf("paper sweeps drifted: %+v", c)
	}
}

func TestNamespaceSelectors(t *testing.T) {
	c := Config{Namespaces: []uint64{5, 1, 9}}
	if smallestNamespace(c) != 1 || largestNamespace(c) != 9 || middleNamespace(c) != 5 {
		t.Fatal("selectors wrong")
	}
	single := Config{Namespaces: []uint64{7}}
	if smallestNamespace(single) != 7 || largestNamespace(single) != 7 || middleNamespace(single) != 7 {
		t.Fatal("single-namespace selectors wrong")
	}
}
