package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// RunSamplingOps reproduces Figures 3 (uniform query sets) and 4
// (clustered): the average number of Bloom-filter intersections and set
// membership queries per sampling round, for the BloomSampleTree at each
// accuracy and query-set size, against the DictionaryAttack's constant M
// memberships. One table per namespace size, as in the paper's subfigures.
func RunSamplingOps(cfg Config, clustered bool) ([]*Table, error) {
	kind := "uniform"
	fig := "fig3"
	if clustered {
		kind, fig = "clustered", "fig4"
	}
	var tables []*Table
	for _, M := range cfg.Namespaces {
		tbl := &Table{
			ID:      fmt.Sprintf("%s-M%d", fig, M),
			Title:   fmt.Sprintf("Sampling ops, %s query sets, M=%d", kind, M),
			Columns: []string{"method", "n", "accuracy", "intersections/sample", "memberships/sample"},
		}
		for _, n := range cfg.SetSizes {
			if uint64(n) >= M {
				continue
			}
			rng := cfg.rng(uint64(n) ^ M)
			set, err := cfg.querySet(rng, M, n, clustered)
			if err != nil {
				return nil, err
			}
			for _, acc := range cfg.Accuracies {
				tree, _, err := cfg.buildTreeFor(acc, n, M)
				if err != nil {
					return nil, err
				}
				q := queryFilterOf(tree, set)
				var ops core.Ops
				for i := 0; i < cfg.Rounds; i++ {
					if _, err := tree.Sample(q, rng, &ops); err != nil && err != core.ErrNoSample {
						return nil, err
					}
				}
				r := float64(cfg.Rounds)
				tbl.Add("BST", fmt.Sprint(n), fmt.Sprintf("%.1f", acc),
					fmt.Sprintf("%.1f", float64(ops.Intersections)/r),
					fmt.Sprintf("%.1f", float64(ops.Memberships)/r))
			}
		}
		// DictionaryAttack: always exactly M membership queries, no
		// intersections, independent of accuracy and n.
		tbl.Add("DA", "-", "-", "0", fmt.Sprint(M))
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunSamplingTime reproduces Figures 5 (M = 10⁷) and 6 (M = 10⁶): average
// wall-clock time per sample for BST and DictionaryAttack over uniform and
// clustered query sets.
func RunSamplingTime(cfg Config, M uint64) ([]*Table, error) {
	var tables []*Table
	for _, clustered := range []bool{false, true} {
		kind := "uniform"
		if clustered {
			kind = "clustered"
		}
		tbl := &Table{
			ID:      fmt.Sprintf("sampling-time-M%d-%s", M, kind),
			Title:   fmt.Sprintf("Avg. sampling time, %s query sets, M=%d", kind, M),
			Columns: []string{"method", "n", "accuracy", "time_ms/sample"},
		}
		da := baseline.DictionaryAttack{Namespace: M}
		for _, n := range cfg.SetSizes {
			if uint64(n) >= M {
				continue
			}
			rng := cfg.rng(uint64(n) ^ M ^ 0xF15)
			set, err := cfg.querySet(rng, M, n, clustered)
			if err != nil {
				return nil, err
			}
			for _, acc := range cfg.Accuracies {
				tree, _, err := cfg.buildTreeFor(acc, n, M)
				if err != nil {
					return nil, err
				}
				q := queryFilterOf(tree, set)

				start := time.Now()
				for i := 0; i < cfg.Rounds; i++ {
					if _, err := tree.Sample(q, rng, nil); err != nil && err != core.ErrNoSample {
						return nil, err
					}
				}
				bstMS := float64(time.Since(start).Microseconds()) / 1000 / float64(cfg.Rounds)
				tbl.Add("BST", fmt.Sprint(n), fmt.Sprintf("%.1f", acc), fmt.Sprintf("%.4f", bstMS))

				if acc == cfg.Accuracies[0] && cfg.BaselineRounds > 0 {
					// DA cost does not depend on accuracy; measure once
					// per n.
					start = time.Now()
					for i := 0; i < cfg.BaselineRounds; i++ {
						da.Sample(q, rng, nil)
					}
					daMS := float64(time.Since(start).Microseconds()) / 1000 / float64(cfg.BaselineRounds)
					tbl.Add("DA", fmt.Sprint(n), "-", fmt.Sprintf("%.4f", daMS))
				}
			}
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// RunHashFamilies reproduces Figure 7: the effect of the hash-function
// family (Simple, Murmur3, MD5, plus this repository's fast default) on
// BST and DictionaryAttack sampling time, on the smallest configured
// namespace with uniform query sets.
func RunHashFamilies(cfg Config) ([]*Table, error) {
	M := smallestNamespace(cfg)
	n := cfg.SetSizes[0]
	for _, s := range cfg.SetSizes {
		if s == 1000 { // the paper's default query-set size
			n = s
		}
	}
	tbl := &Table{
		ID:      fmt.Sprintf("fig7-M%d", M),
		Title:   fmt.Sprintf("Hash-family effect on sampling time, M=%d, n=%d", M, n),
		Columns: []string{"family", "method", "accuracy", "time_ms/sample"},
	}
	families := []hashfam.Kind{hashfam.KindFast, hashfam.KindSimple, hashfam.KindMurmur3, hashfam.KindMD5}
	for _, fam := range families {
		famCfg := cfg
		famCfg.HashKind = fam
		rng := cfg.rng(uint64(len(fam)) ^ M)
		set, err := cfg.querySet(rng, M, n, false)
		if err != nil {
			return nil, err
		}
		da := baseline.DictionaryAttack{Namespace: M}
		for _, acc := range cfg.Accuracies {
			tree, _, err := famCfg.buildTreeFor(acc, n, M)
			if err != nil {
				return nil, err
			}
			q := queryFilterOf(tree, set)

			start := time.Now()
			for i := 0; i < cfg.Rounds; i++ {
				if _, err := tree.Sample(q, rng, nil); err != nil && err != core.ErrNoSample {
					return nil, err
				}
			}
			bstMS := float64(time.Since(start).Microseconds()) / 1000 / float64(cfg.Rounds)
			tbl.Add(string(fam), "BST", fmt.Sprintf("%.1f", acc), fmt.Sprintf("%.4f", bstMS))

			if acc == cfg.Accuracies[0] && cfg.BaselineRounds > 0 {
				start = time.Now()
				for i := 0; i < cfg.BaselineRounds; i++ {
					da.Sample(q, rng, nil)
				}
				daMS := float64(time.Since(start).Microseconds()) / 1000 / float64(cfg.BaselineRounds)
				tbl.Add(string(fam), "DA", "-", fmt.Sprintf("%.4f", daMS))
			}
		}
	}
	return []*Table{tbl}, nil
}
