package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// RunLowOccupancy reproduces the §8 experiments over the synthetic Twitter
// crawl: Figure 13 (metric "time": average sampling time vs namespace
// fraction), Figure 14 ("memory": Pruned-BloomSampleTree size vs
// fraction) and Figure 15 ("accuracy": measured sampling accuracy vs
// fraction), each with uniformly and clusteredly selected leaf ranges. The
// crawl dimensions are the paper's divided by cfg.TwitterScale; the
// 256-leaf structure and the desired accuracy of 0.8 are preserved.
func RunLowOccupancy(cfg Config, metric string) ([]*Table, error) {
	switch metric {
	case "time", "memory", "accuracy":
	default:
		return nil, fmt.Errorf("experiments: unknown low-occupancy metric %q", metric)
	}
	scale := cfg.TwitterScale
	if scale < 1 {
		scale = 1
	}
	M := workload.TwitterNamespace / uint64(scale)
	population := workload.TwitterPopulation / scale
	hashtags := 200
	minTag := population / 7200
	if minTag < 10 {
		minTag = 10
	}

	var columns []string
	switch metric {
	case "time":
		columns = []string{"fraction", "namespace_kind", "time_ms/sample"}
	case "memory":
		columns = []string{"fraction", "namespace_kind", "memory_MB", "nodes", "full_tree_MB"}
	case "accuracy":
		columns = []string{"fraction", "namespace_kind", "measured_accuracy"}
	}
	tbl := &Table{
		ID:      fmt.Sprintf("lowocc-%s", metric),
		Title:   fmt.Sprintf("Low-occupancy namespace: %s vs fraction (M=%d, pop=%d, acc=0.8)", metric, M, population),
		Columns: columns,
	}

	const designAccuracy = 0.8
	for _, fraction := range cfg.Fractions {
		for _, clusteredNS := range []bool{false, true} {
			kind := "uniform"
			if clusteredNS {
				kind = "clustered"
			}
			rng := cfg.rng(uint64(fraction*1000) ^ uint64(len(kind)))

			var leafIdx []int
			var err error
			if clusteredNS {
				leafIdx, err = workload.SelectLeavesClustered(rng, workload.NamespaceLeaves, fraction, cfg.ClusterP)
			} else {
				leafIdx, err = workload.SelectLeavesUniform(rng, workload.NamespaceLeaves, fraction)
			}
			if err != nil {
				return nil, err
			}
			ns, err := workload.PopulateNamespace(rng, M, workload.NamespaceLeaves, leafIdx, population)
			if err != nil {
				return nil, err
			}
			crawl, err := workload.SynthesizeCrawl(rng, ns, workload.CrawlConfig{
				M: M, Population: population, Hashtags: hashtags,
				MinTagSize: minTag,
			})
			if err != nil {
				return nil, err
			}

			// Plan for the design accuracy against a typical audience size
			// and build the Pruned-BloomSampleTree over the occupied ids.
			designN := uint64(minTag * 10)
			plan, err := core.PlanTree(designAccuracy, designN, M, cfg.K, 0)
			if err != nil {
				return nil, err
			}
			tree, err := core.BuildPruned(plan.TreeConfig(cfg.HashKind, cfg.Seed), ns.IDs)
			if err != nil {
				return nil, err
			}

			switch metric {
			case "memory":
				fullNodes := uint64(1)<<(plan.Depth+1) - 1
				perNode := (plan.Bits + 63) / 64 * 8
				tbl.Add(fmt.Sprintf("%.2f", fraction), kind,
					fmt.Sprintf("%.3f", float64(tree.MemoryBytes())/(1<<20)),
					fmt.Sprint(tree.Nodes()),
					fmt.Sprintf("%.3f", float64(fullNodes*perNode)/(1<<20)))
			case "time":
				rounds := cfg.Rounds
				if rounds > 1000 {
					rounds = 1000 // the paper uses 1000 rounds here (§8.1)
				}
				start := time.Now()
				for i := 0; i < rounds; i++ {
					tag := crawl.Tags[rng.Intn(len(crawl.Tags))]
					q := queryFilterOf(tree, tag)
					if _, err := tree.Sample(q, rng, nil); err != nil && err != core.ErrNoSample {
						return nil, err
					}
				}
				// Query-filter construction is shared setup in the paper's
				// measurement; report pure sampling by subtracting a
				// fill-only pass.
				elapsed := time.Since(start)
				start = time.Now()
				for i := 0; i < rounds; i++ {
					tag := crawl.Tags[rng.Intn(len(crawl.Tags))]
					_ = queryFilterOf(tree, tag)
				}
				fill := time.Since(start)
				net := elapsed - fill
				if net < 0 {
					net = 0
				}
				tbl.Add(fmt.Sprintf("%.2f", fraction), kind,
					fmt.Sprintf("%.4f", float64(net.Microseconds())/1000/float64(rounds)))
			case "accuracy":
				hits, total := 0, 0
				rounds := cfg.Rounds
				if rounds > 500 {
					rounds = 500
				}
				for i := 0; i < rounds; i++ {
					tag := crawl.Tags[rng.Intn(len(crawl.Tags))]
					q := queryFilterOf(tree, tag)
					x, err := tree.Sample(q, rng, nil)
					if err == core.ErrNoSample {
						continue
					}
					if err != nil {
						return nil, err
					}
					total++
					if containsSorted(tag, x) {
						hits++
					}
				}
				measured := 0.0
				if total > 0 {
					measured = float64(hits) / float64(total)
				}
				tbl.Add(fmt.Sprintf("%.2f", fraction), kind, fmt.Sprintf("%.3f", measured))
			}
		}
	}
	return []*Table{tbl}, nil
}

// containsSorted reports whether x occurs in the ascending slice xs.
func containsSorted(xs []uint64, x uint64) bool {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case xs[mid] < x:
			lo = mid + 1
		case xs[mid] > x:
			hi = mid
		default:
			return true
		}
	}
	return false
}
