// Package bitset provides a fixed-size, word-packed bit vector used as the
// storage substrate for Bloom filters. It supports the operations the paper
// relies on: setting/testing bits, popcount, bitwise AND/OR (both allocating
// and in-place), iteration over set and unset bits, and binary
// serialization.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length bit vector of n bits. The zero value is not usable;
// construct with New.
type Set struct {
	n     uint64
	words []uint64
}

// New returns a bit vector with n bits, all zero.
func New(n uint64) *Set {
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords wraps a caller-built packed word slice (bit i lives at word
// i/64, bit i%64) in a vector of n bits, taking ownership of the slice.
// The slice length must be exactly (n+63)/64; bits beyond n are masked
// off. It lets bulk producers (the counting-filter snapshot projection)
// assemble a vector word-at-a-time instead of bit-at-a-time.
func FromWords(n uint64, words []uint64) *Set {
	if uint64(len(words)) != (n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("bitset: %d words for %d bits, want %d", len(words), n, (n+wordBits-1)/wordBits))
	}
	s := &Set{n: n, words: words}
	s.maskTail()
	return s
}

// Len returns the number of bits in the vector.
func (s *Set) Len() uint64 { return s.n }

// Words returns the number of 64-bit words backing the vector.
func (s *Set) Words() int { return len(s.words) }

// Set sets bit i to 1. It panics if i is out of range.
func (s *Set) Set(i uint64) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (s *Set) Clear(i uint64) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Test reports whether bit i is 1. It panics if i is out of range.
func (s *Set) Test(i uint64) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

func (s *Set) check(i uint64) {
	if i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// TestAll reports whether every position in positions is set. It is the
// word-sliced form of k scattered Test calls: runs of positions that land
// in the same word (the slice is probed in order, so callers producing
// sorted or arithmetic-progression positions benefit most) are merged
// into one mask and checked with a single load, and the probe
// short-circuits on the first word that misses. An empty slice reports
// true. It panics if any examined position is out of range.
func (s *Set) TestAll(positions []uint64) bool {
	for i := 0; i < len(positions); {
		p := positions[i]
		s.check(p)
		wi := p / wordBits
		mask := uint64(1) << (p % wordBits)
		for i++; i < len(positions) && positions[i]/wordBits == wi; i++ {
			s.check(positions[i])
			mask |= 1 << (positions[i] % wordBits)
		}
		if s.words[wi]&mask != mask {
			return false
		}
	}
	return true
}

// Count returns the number of bits set to 1.
func (s *Set) Count() uint64 {
	var c uint64
	for _, w := range s.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits to 1.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
}

// maskTail zeroes the unused bits of the last word so that Count and
// equality remain exact.
func (s *Set) maskTail() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t have the same length and identical bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// And returns a new vector that is the bitwise AND of s and t; the result
// is allocated at the exact word count (New allocates (n+63)/64 words).
// It panics if the lengths differ.
func (s *Set) And(t *Set) *Set {
	s.checkSameLen(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Or returns a new vector that is the bitwise OR of s and t; the result
// is allocated at the exact word count (New allocates (n+63)/64 words).
// It panics if the lengths differ.
func (s *Set) Or(t *Set) *Set {
	s.checkSameLen(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] | t.words[i]
	}
	return r
}

// AndWith replaces s with s AND t. It panics if the lengths differ.
func (s *Set) AndWith(t *Set) {
	s.checkSameLen(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// OrWith replaces s with s OR t. It panics if the lengths differ.
func (s *Set) OrWith(t *Set) {
	s.checkSameLen(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndCount returns popcount(s AND t) without allocating the intersection.
// It panics if the lengths differ.
func (s *Set) AndCount(t *Set) uint64 {
	s.checkSameLen(t)
	var c uint64
	for i := range s.words {
		c += uint64(bits.OnesCount64(s.words[i] & t.words[i]))
	}
	return c
}

// AndNotCount returns popcount(s AND NOT t) — the number of bits set in s
// but not in t — without allocating the difference. Together with AndCount
// it recovers both individual popcounts from two vectors in one pass each:
// count(s) = AndCount + AndNotCount(s, t). It panics if the lengths differ.
func (s *Set) AndNotCount(t *Set) uint64 {
	s.checkSameLen(t)
	var c uint64
	for i := range s.words {
		c += uint64(bits.OnesCount64(s.words[i] &^ t.words[i]))
	}
	return c
}

// AndAny reports whether s AND t has at least one set bit, short-circuiting
// on the first non-zero word. It panics if the lengths differ.
func (s *Set) AndAny(t *Set) bool {
	s.checkSameLen(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsSubsetOf reports whether every set bit of s is also set in t.
// It panics if the lengths differ.
func (s *Set) IsSubsetOf(t *Set) bool {
	s.checkSameLen(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

func (s *Set) checkSameLen(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.n, t.n))
	}
}

// NextSet returns the index of the first set bit at or after i, and whether
// one exists.
func (s *Set) NextSet(i uint64) (uint64, bool) {
	if i >= s.n {
		return 0, false
	}
	wi := i / wordBits
	w := s.words[wi] >> (i % wordBits)
	if w != 0 {
		r := i + uint64(bits.TrailingZeros64(w))
		return r, r < s.n
	}
	for wi++; wi < uint64(len(s.words)); wi++ {
		if s.words[wi] != 0 {
			r := wi*wordBits + uint64(bits.TrailingZeros64(s.words[wi]))
			return r, r < s.n
		}
	}
	return 0, false
}

// NextClear returns the index of the first clear bit at or after i, and
// whether one exists.
func (s *Set) NextClear(i uint64) (uint64, bool) {
	if i >= s.n {
		return 0, false
	}
	wi := i / wordBits
	w := ^s.words[wi] >> (i % wordBits)
	if w != 0 {
		r := i + uint64(bits.TrailingZeros64(w))
		if r < s.n {
			return r, true
		}
		return 0, false
	}
	for wi++; wi < uint64(len(s.words)); wi++ {
		if ^s.words[wi] != 0 {
			r := wi*wordBits + uint64(bits.TrailingZeros64(^s.words[wi]))
			if r < s.n {
				return r, true
			}
			return 0, false
		}
	}
	return 0, false
}

// ForEachSet calls fn for every set bit in ascending order. If fn returns
// false, iteration stops early.
func (s *Set) ForEachSet(fn func(i uint64) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			if !fn(uint64(wi)*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachClear calls fn for every clear bit in ascending order. If fn
// returns false, iteration stops early.
func (s *Set) ForEachClear(fn func(i uint64) bool) {
	for wi := range s.words {
		w := ^s.words[wi]
		for w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			i := uint64(wi)*wordBits + b
			if i >= s.n {
				return
			}
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// SizeBytes returns the in-memory size of the backing array in bytes.
func (s *Set) SizeBytes() uint64 { return uint64(len(s.words)) * 8 }

// MarshalBinary encodes the bit vector as an 8-byte little-endian length
// followed by the packed words.
func (s *Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+len(s.words)*8)
	binary.LittleEndian.PutUint64(buf, s.n)
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(buf[8+i*8:], w)
	}
	return buf, nil
}

// ErrCorrupt is returned by UnmarshalBinary when the encoding is malformed.
var ErrCorrupt = errors.New("bitset: corrupt encoding")

// UnmarshalBinary decodes a vector produced by MarshalBinary.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(data)
	nw := int((n + wordBits - 1) / wordBits)
	if len(data) != 8+nw*8 {
		return ErrCorrupt
	}
	s.n = n
	s.words = make([]uint64, nw)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	s.maskTail()
	return nil
}

// String renders the vector as a left-to-right bit string (bit 0 first),
// truncated with an ellipsis beyond 128 bits. Intended for debugging.
func (s *Set) String() string {
	n := s.n
	trunc := false
	if n > 128 {
		n, trunc = 128, true
	}
	b := make([]byte, 0, n+3)
	for i := uint64(0); i < n; i++ {
		if s.Test(i) {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	if trunc {
		b = append(b, '.', '.', '.')
	}
	return string(b)
}
