package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Any() {
		t.Fatal("Any = true on empty set")
	}
	if !s.None() {
		t.Fatal("None = false on empty set")
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []uint64{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestSetIdempotent(t *testing.T) {
	s := New(10)
	s.Set(3)
	s.Set(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set":   func() { s.Set(10) },
		"Test":  func() { s.Test(10) },
		"Clear": func() { s.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFillAndReset(t *testing.T) {
	for _, n := range []uint64{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Count after Fill = %d", n, s.Count())
		}
		s.Reset()
		if s.Count() != 0 {
			t.Fatalf("n=%d: Count after Reset = %d", n, s.Count())
		}
	}
}

func TestAndOr(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Set(1)
	a.Set(100)
	a.Set(199)
	b.Set(100)
	b.Set(150)

	and := a.And(b)
	if and.Count() != 1 || !and.Test(100) {
		t.Fatalf("And wrong: %v", and)
	}
	or := a.Or(b)
	if or.Count() != 4 {
		t.Fatalf("Or count = %d, want 4", or.Count())
	}
	for _, i := range []uint64{1, 100, 150, 199} {
		if !or.Test(i) {
			t.Fatalf("Or missing bit %d", i)
		}
	}
	// Originals untouched.
	if a.Count() != 3 || b.Count() != 2 {
		t.Fatal("And/Or mutated operands")
	}
}

func TestAndWithOrWith(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(5)
	a.Set(69)
	b.Set(5)
	b.Set(6)
	c := a.Clone()
	c.AndWith(b)
	if c.Count() != 1 || !c.Test(5) {
		t.Fatal("AndWith wrong")
	}
	d := a.Clone()
	d.OrWith(b)
	if d.Count() != 3 {
		t.Fatal("OrWith wrong")
	}
}

func TestAndCountAndAny(t *testing.T) {
	a := New(500)
	b := New(500)
	if a.AndAny(b) {
		t.Fatal("AndAny on empty sets")
	}
	a.Set(400)
	b.Set(400)
	a.Set(3)
	if got := a.AndCount(b); got != 1 {
		t.Fatalf("AndCount = %d, want 1", got)
	}
	if !a.AndAny(b) {
		t.Fatal("AndAny = false with shared bit")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a := New(10)
	b := New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched length did not panic")
		}
	}()
	a.And(b)
}

func TestIsSubsetOf(t *testing.T) {
	a := New(100)
	b := New(100)
	if !a.IsSubsetOf(b) {
		t.Fatal("empty not subset of empty")
	}
	b.Set(10)
	b.Set(20)
	a.Set(10)
	if !a.IsSubsetOf(b) {
		t.Fatal("{10} not subset of {10,20}")
	}
	a.Set(30)
	if a.IsSubsetOf(b) {
		t.Fatal("{10,30} subset of {10,20}")
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	for _, i := range []uint64{5, 64, 128, 299} {
		s.Set(i)
	}
	var got []uint64
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []uint64{5, 64, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, ok := s.NextSet(300); ok {
		t.Fatal("NextSet beyond length returned ok")
	}
}

func TestNextClear(t *testing.T) {
	s := New(66)
	s.Fill()
	s.Clear(0)
	s.Clear(65)
	if i, ok := s.NextClear(0); !ok || i != 0 {
		t.Fatalf("NextClear(0) = %d,%v", i, ok)
	}
	if i, ok := s.NextClear(1); !ok || i != 65 {
		t.Fatalf("NextClear(1) = %d,%v", i, ok)
	}
	if _, ok := s.NextClear(66); ok {
		t.Fatal("NextClear beyond length returned ok")
	}
	full := New(64)
	full.Fill()
	if _, ok := full.NextClear(0); ok {
		t.Fatal("NextClear on full set returned ok")
	}
}

func TestForEachSet(t *testing.T) {
	s := New(130)
	want := []uint64{0, 63, 64, 129}
	for _, i := range want {
		s.Set(i)
	}
	var got []uint64
	s.ForEachSet(func(i uint64) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEachSet(func(uint64) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestForEachClear(t *testing.T) {
	s := New(67)
	s.Fill()
	s.Clear(1)
	s.Clear(66)
	var got []uint64
	s.ForEachClear(func(i uint64) bool {
		got = append(got, i)
		return true
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 66 {
		t.Fatalf("ForEachClear got %v", got)
	}
}

func TestForEachClearDoesNotExceedLen(t *testing.T) {
	// n not a multiple of 64: tail bits of the last word must not be
	// reported as clear.
	s := New(65)
	var got []uint64
	s.ForEachClear(func(i uint64) bool {
		got = append(got, i)
		return true
	})
	if len(got) != 65 {
		t.Fatalf("ForEachClear visited %d bits, want 65", len(got))
	}
	if got[len(got)-1] != 64 {
		t.Fatalf("last clear bit = %d, want 64", got[len(got)-1])
	}
}

func TestCloneEqual(t *testing.T) {
	s := New(100)
	s.Set(42)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(43)
	if s.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if s.Test(43) {
		t.Fatal("mutating clone mutated original")
	}
	if s.Equal(New(101)) {
		t.Fatal("Equal across different lengths")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 64, 65, 1000} {
		s := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := uint64(0); i < n/3+1; i++ {
			s.Set(uint64(rng.Int63n(int64(n))))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var d Set
		if err := d.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(&d) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	var s Set
	if err := s.UnmarshalBinary([]byte{1, 2, 3}); err != ErrCorrupt {
		t.Fatalf("short input: err = %v, want ErrCorrupt", err)
	}
	good, _ := New(100).MarshalBinary()
	if err := s.UnmarshalBinary(good[:len(good)-1]); err != ErrCorrupt {
		t.Fatalf("truncated input: err = %v, want ErrCorrupt", err)
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Set(1)
	s.Set(3)
	if got := s.String(); got != "0101" {
		t.Fatalf("String = %q, want 0101", got)
	}
	long := New(200)
	if got := long.String(); len(got) != 131 {
		t.Fatalf("long String len = %d, want 131", len(got))
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(64).SizeBytes(); got != 8 {
		t.Fatalf("SizeBytes(64) = %d, want 8", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Fatalf("SizeBytes(65) = %d, want 16", got)
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idx {
			s.Set(uint64(i))
			seen[i] = true
		}
		return s.Count() == uint64(len(seen))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish — popcount(a AND b) + popcount(a OR b) ==
// popcount(a) + popcount(b).
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(ai, bi []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, i := range ai {
			a.Set(uint64(i))
		}
		for _, i := range bi {
			b.Set(uint64(i))
		}
		return a.And(b).Count()+a.Or(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AndCount agrees with And().Count() and AndAny with Count>0.
func TestQuickAndCountConsistent(t *testing.T) {
	f := func(ai, bi []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, i := range ai {
			a.Set(uint64(i))
		}
		for _, i := range bi {
			b.Set(uint64(i))
		}
		cnt := a.And(b).Count()
		return a.AndCount(b) == cnt && a.AndAny(b) == (cnt > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(idx []uint16, extra uint8) bool {
		n := uint64(1<<16) + uint64(extra) // exercise non-word-aligned tails
		s := New(n)
		for _, i := range idx {
			s.Set(uint64(i))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		var d Set
		if err := d.UnmarshalBinary(data); err != nil {
			return false
		}
		return s.Equal(&d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount(b *testing.B) {
	a := New(1 << 17)
	c := New(1 << 17)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a.Set(uint64(rng.Int63n(1 << 17)))
		c.Set(uint64(rng.Int63n(1 << 17)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.AndCount(c)
	}
}

func TestAndNotCount(t *testing.T) {
	s := New(200)
	u := New(200)
	for i := uint64(0); i < 200; i += 2 {
		s.Set(i) // evens
	}
	for i := uint64(0); i < 200; i += 6 {
		u.Set(i) // multiples of 6
	}
	// Evens that are not multiples of 6: 100 - 34 = 66.
	if got := s.AndNotCount(u); got != s.Count()-s.AndCount(u) {
		t.Fatalf("AndNotCount = %d, want %d", got, s.Count()-s.AndCount(u))
	}
	if got := u.AndNotCount(s); got != 0 {
		t.Fatalf("AndNotCount(subset) = %d, want 0", got)
	}
	// Count recovery identity used by the estimator fast path.
	if s.Count() != s.AndCount(u)+s.AndNotCount(u) {
		t.Fatal("count != AndCount + AndNotCount")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	s.AndNotCount(New(100))
}

func TestAndOrExactAllocation(t *testing.T) {
	s := New(130) // 3 words, 2 tail bits
	u := New(130)
	s.Set(0)
	s.Set(129)
	u.Set(129)
	and := s.And(u)
	or := s.Or(u)
	if and.Len() != 130 || or.Len() != 130 {
		t.Fatalf("result lengths %d/%d, want 130", and.Len(), or.Len())
	}
	if and.Words() != s.Words() || or.Words() != s.Words() {
		t.Fatalf("result words %d/%d, want %d", and.Words(), or.Words(), s.Words())
	}
	if and.Count() != 1 || !and.Test(129) {
		t.Fatalf("AND wrong: %v", and)
	}
	if or.Count() != 2 || !or.Test(0) || !or.Test(129) {
		t.Fatalf("OR wrong: %v", or)
	}
}

func TestTestAll(t *testing.T) {
	s := New(256)
	for _, i := range []uint64{0, 1, 63, 64, 65, 200, 255} {
		s.Set(i)
	}
	cases := []struct {
		positions []uint64
		want      bool
	}{
		{nil, true},
		{[]uint64{0}, true},
		{[]uint64{0, 1, 63}, true},      // one word, merged mask
		{[]uint64{63, 64, 65}, true},    // word boundary crossing
		{[]uint64{0, 200, 255}, true},   // scattered words
		{[]uint64{0, 0, 1, 1}, true},    // duplicates
		{[]uint64{2}, false},            // single miss
		{[]uint64{0, 1, 2}, false},      // miss merged into a hit word
		{[]uint64{0, 66, 200}, false},   // miss in a later word
		{[]uint64{255, 254}, false},     // hit then miss, same word
		{[]uint64{200, 0, 64, 1}, true}, // unsorted hits
	}
	for _, c := range cases {
		if got := s.TestAll(c.positions); got != c.want {
			t.Fatalf("TestAll(%v) = %v, want %v", c.positions, got, c.want)
		}
	}
}

// TestAll must agree with k individual Test calls on random inputs.
func TestTestAllMatchesTest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(1000)
	for i := 0; i < 300; i++ {
		s.Set(rng.Uint64() % 1000)
	}
	pos := make([]uint64, 5)
	for trial := 0; trial < 2000; trial++ {
		for i := range pos {
			pos[i] = rng.Uint64() % 1000
		}
		want := true
		for _, p := range pos {
			if !s.Test(p) {
				want = false
				break
			}
		}
		if got := s.TestAll(pos); got != want {
			t.Fatalf("TestAll(%v) = %v, Test-loop = %v", pos, got, want)
		}
	}
}

func TestTestAllOutOfRangePanics(t *testing.T) {
	s := New(100)
	s.Set(5)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range position not detected")
		}
	}()
	s.TestAll([]uint64{5, 100})
}
