package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/hashfam"
	"repro/internal/membership"
	"repro/internal/setdb"
)

// testOptions returns a small, fast database profile.
func testOptions(t *testing.T, backend membership.Kind) setdb.Options {
	t.Helper()
	opts, err := setdb.PlanOptions(0.9, 100, 10_000, 3)
	if err != nil {
		t.Fatalf("PlanOptions: %v", err)
	}
	opts.Pruned = true
	opts.Backend = backend
	return opts
}

func freshFunc(t *testing.T, opts setdb.Options) func() (*setdb.DB, error) {
	t.Helper()
	return func() (*setdb.DB, error) { return setdb.Open(opts) }
}

// bundleBytes serializes a database as a restore bundle for byte-exact
// comparison.
func bundleBytes(t *testing.T, db *setdb.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.SnapshotView().WriteBundleTo(&buf); err != nil {
		t.Fatalf("WriteBundleTo: %v", err)
	}
	return buf.Bytes()
}

// testBatches is a mixed workload: plain sets, dynamic adds, dynamic
// removes — one group-commit batch per entry.
func testBatches() [][]setdb.Write {
	var batches [][]setdb.Write
	for i := 0; i < 20; i++ {
		batches = append(batches, []setdb.Write{
			{Key: fmt.Sprintf("plain-%d", i%5), IDs: []uint64{uint64(i), uint64(i + 100)}},
			{Key: fmt.Sprintf("dyn-%d", i%3), IDs: []uint64{uint64(i + 200)}, Dynamic: true},
		})
	}
	// Remove some of the dynamic ids that are certainly present.
	batches = append(batches, []setdb.Write{
		{Key: "dyn-0", IDs: []uint64{200, 203}, Dynamic: true, Remove: true},
	})
	return batches
}

func TestRecordRoundTrip(t *testing.T) {
	writes := []setdb.Write{
		{Key: "plain", IDs: []uint64{1, 2, 1 << 40}},
		{Key: "dyn", IDs: []uint64{7}, Dynamic: true},
		{Key: "gone", IDs: []uint64{9}, Dynamic: true, Remove: true},
		{Key: "empty-ids", IDs: nil},
	}
	frame := appendRecord(nil, 42, writes)
	seq, got, consumed, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	if seq != 42 || consumed != len(frame) {
		t.Fatalf("decodeFrame: seq=%d consumed=%d, want 42, %d", seq, consumed, len(frame))
	}
	if !reflect.DeepEqual(got, writes) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, writes)
	}

	// Two frames back to back scan as two records.
	frames := appendRecord(frame, 43, writes[:1])
	var seqs []uint64
	off, err := segScan(frames, func(s uint64, _ []setdb.Write) error {
		seqs = append(seqs, s)
		return nil
	})
	if err != nil || off != len(frames) {
		t.Fatalf("segScan: off=%d err=%v, want %d, nil", off, err, len(frames))
	}
	if !reflect.DeepEqual(seqs, []uint64{42, 43}) {
		t.Fatalf("segScan seqs = %v", seqs)
	}
}

func TestRecordDecodeRejectsDamage(t *testing.T) {
	frame := appendRecord(nil, 7, []setdb.Write{{Key: "k", IDs: []uint64{1, 2, 3}}})

	// Truncation anywhere inside the frame is a short record.
	for cut := 1; cut < len(frame); cut++ {
		if _, _, _, err := decodeFrame(frame[:cut]); err != errShortRecord {
			t.Fatalf("decodeFrame(cut %d) err = %v, want errShortRecord", cut, err)
		}
	}
	// Any flipped bit is a CRC mismatch (or a corrupt length).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x80
		_, _, _, err := decodeFrame(mut)
		if err == nil {
			t.Fatalf("decodeFrame with byte %d flipped succeeded", i)
		}
	}
}

func TestStoreRecoversAllBackends(t *testing.T) {
	for _, kind := range []membership.Kind{membership.KindBloom, membership.KindCounting, membership.KindCuckoo} {
		t.Run(string(kind), func(t *testing.T) {
			opts := testOptions(t, kind)
			dir := t.TempDir()

			s, err := Open(dir, freshFunc(t, opts), Options{Fsync: FsyncNever})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			batches := testBatches()
			if kind == membership.KindBloom {
				// The plain bloom backend has no dynamic (deletable) sets.
				var plain [][]setdb.Write
				for _, b := range batches {
					var keep []setdb.Write
					for _, w := range b {
						if !w.Dynamic {
							keep = append(keep, w)
						}
					}
					if len(keep) > 0 {
						plain = append(plain, keep)
					}
				}
				batches = plain
			}
			for _, b := range batches {
				if err := s.Apply(b); err != nil {
					t.Fatalf("Apply: %v", err)
				}
			}
			want := bundleBytes(t, s.DB())
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			s2, err := Open(dir, func() (*setdb.DB, error) {
				t.Fatal("fresh called on a recovered directory")
				return nil, nil
			}, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			st := s2.Stats()
			if st.ReplayedAtBoot != uint64(len(batches)) {
				t.Fatalf("ReplayedAtBoot = %d, want %d", st.ReplayedAtBoot, len(batches))
			}
			if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, want) {
				t.Fatalf("recovered bundle differs: %d vs %d bytes", len(got), len(want))
			}
		})
	}
}

func TestEmptyWAL(t *testing.T) {
	opts := testOptions(t, membership.KindCounting)
	dir := t.TempDir()
	s, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := bundleBytes(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, func() (*setdb.DB, error) {
		t.Fatal("fresh called with a snapshot on disk")
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayedAtBoot != 0 || st.SkippedAtBoot != 0 || st.DroppedTailBytes != 0 {
		t.Fatalf("empty reopen stats = %+v, want zero boot counters", st)
	}
	if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, want) {
		t.Fatal("empty recovered bundle differs")
	}
}

func TestSnapshotWithNoTail(t *testing.T) {
	opts := testOptions(t, membership.KindCuckoo)
	dir := t.TempDir()
	s, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range testBatches() {
		if err := s.Apply(b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if info.Seq == 0 || info.Bytes == 0 {
		t.Fatalf("SnapshotInfo = %+v, want nonzero seq and bytes", info)
	}
	want := bundleBytes(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayedAtBoot != 0 {
		t.Fatalf("ReplayedAtBoot = %d after snapshot-with-no-tail, want 0", st.ReplayedAtBoot)
	}
	if st.Seq == 0 {
		t.Fatal("recovered seq = 0, want the snapshot's covered seq")
	}
	if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, want) {
		t.Fatal("recovered bundle differs from pre-close state")
	}
}

// TestDoubleReplayIdempotent duplicates a whole segment under the next
// index and verifies recovery applies its records exactly once — the
// sequence numbers, not the file layout, decide what is new.
func TestDoubleReplayIdempotent(t *testing.T) {
	opts := testOptions(t, membership.KindCounting)
	dir := t.TempDir()
	s, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	batches := testBatches()
	for _, b := range batches {
		if err := s.Apply(b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	want := bundleBytes(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.ReplayedAtBoot != uint64(len(batches)) || st.SkippedAtBoot != uint64(len(batches)) {
		t.Fatalf("replayed=%d skipped=%d, want %d replayed and %d skipped",
			st.ReplayedAtBoot, st.SkippedAtBoot, len(batches), len(batches))
	}
	// Counting filters are not idempotent under double-apply, so byte
	// equality here proves each record landed exactly once.
	if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, want) {
		t.Fatal("double replay changed the recovered state")
	}
}

func TestTornTailDroppedCleanly(t *testing.T) {
	cases := []struct {
		name string
		harm func(t *testing.T, path string)
	}{
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped-tail", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOptions(t, membership.KindCounting)
			dir := t.TempDir()
			s, err := Open(dir, freshFunc(t, opts), Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			batches := testBatches()
			var wantIntact []byte
			for i, b := range batches {
				if err := s.Apply(b); err != nil {
					t.Fatalf("Apply: %v", err)
				}
				if i == len(batches)-2 {
					// State up to the second-to-last batch: what
					// truncation/bit-flip recovery must land on.
					wantIntact = bundleBytes(t, s.DB())
				}
			}
			wantAll := bundleBytes(t, s.DB())
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			tc.harm(t, filepath.Join(dir, segmentName(1)))

			s2, err := Open(dir, freshFunc(t, opts), Options{})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			st := s2.Stats()
			if st.DroppedTailBytes == 0 {
				t.Fatalf("DroppedTailBytes = 0 after %s", tc.name)
			}
			got := bundleBytes(t, s2.DB())
			want := wantAll
			if st.ReplayedAtBoot == uint64(len(batches)-1) {
				want = wantIntact
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered state after %s matches neither full nor last-intact prefix", tc.name)
			}

			// The truncated tail must not poison later appends: write
			// more, close, recover again cleanly.
			if err := s2.Apply([]setdb.Write{{Key: "after", IDs: []uint64{1}}}); err != nil {
				t.Fatalf("Apply after torn-tail recovery: %v", err)
			}
			wantAfter := bundleBytes(t, s2.DB())
			if err := s2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s3, err := Open(dir, freshFunc(t, opts), Options{})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer s3.Close()
			if st := s3.Stats(); st.DroppedTailBytes != 0 {
				t.Fatalf("DroppedTailBytes = %d on clean reopen, want 0", st.DroppedTailBytes)
			}
			if got := bundleBytes(t, s3.DB()); !bytes.Equal(got, wantAfter) {
				t.Fatal("state lost across append-after-recovery cycle")
			}
		})
	}
}

// TestLegacySnapshotWithWAL seeds the data directory with a bare
// pre-durability SETDB1 snapshot (no bundle magic, no meta sidecar) plus
// a hand-built SETDB2-era WAL segment, and verifies recovery composes
// both.
func TestLegacySnapshotWithWAL(t *testing.T) {
	const (
		namespace = uint64(10_000)
		bits      = uint64(4096)
		k         = 3
		seed      = uint64(9)
		depth     = 8
	)
	var snap bytes.Buffer
	snap.WriteString("SETDB1")
	hdr := make([]byte, 0, 64)
	hdr = binary.LittleEndian.AppendUint64(hdr, namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(k))
	hdr = binary.LittleEndian.AppendUint64(hdr, seed)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(depth))
	hdr = binary.LittleEndian.AppendUint64(hdr, 100) // design set size
	hdr = append(hdr, 0)                             // not pruned
	kind := string(hashfam.DefaultKind)
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	snap.Write(hdr)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], 0) // zero plain sets
	snap.Write(cnt[:])

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), snap.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile snapshot: %v", err)
	}
	seg := []byte(segMagic)
	seg = appendRecord(seg, 1, []setdb.Write{{Key: "old", IDs: []uint64{5, 17}}})
	seg = appendRecord(seg, 2, []setdb.Write{{Key: "dyn", IDs: []uint64{7}, Dynamic: true}})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
		t.Fatalf("WriteFile segment: %v", err)
	}

	s, err := Open(dir, func() (*setdb.DB, error) {
		t.Fatal("fresh called with a legacy snapshot present")
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if st := s.Stats(); st.ReplayedAtBoot != 2 {
		t.Fatalf("ReplayedAtBoot = %d, want 2", st.ReplayedAtBoot)
	}
	db := s.DB()
	if ok, err := db.Contains("old", 5); err != nil || !ok {
		t.Fatalf("Contains(old, 5) = %v, %v after legacy mix recovery", ok, err)
	}
	if ok, err := db.ContainsDynamic("dyn", 7); err != nil || !ok {
		t.Fatalf("ContainsDynamic(dyn, 7) = %v, %v after legacy mix recovery", ok, err)
	}
}

// TestCorruptionInOlderSegmentRefused pins that damage anywhere but the
// final segment's tail aborts recovery instead of silently skipping
// history.
func TestCorruptionInOlderSegmentRefused(t *testing.T) {
	opts := testOptions(t, membership.KindCounting)
	dir := t.TempDir()
	s, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range testBatches() {
		if err := s.Apply(b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Damage segment 1's tail, then fabricate a later segment so the
	// damage is no longer in the final one.
	seg1 := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, freshFunc(t, opts), Options{}); err == nil {
		t.Fatal("Open recovered past corruption in a non-final segment")
	}
}

func TestSegmentRotationAndSnapshotPrune(t *testing.T) {
	opts := testOptions(t, membership.KindCounting)
	dir := t.TempDir()
	// Tiny segment budget: every batch rotates.
	s, err := Open(dir, freshFunc(t, opts), Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range testBatches() {
		if err := s.Apply(b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d with a 64-byte budget, want several", st.Segments)
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if info.SegmentsRemoved == 0 {
		t.Fatalf("SnapshotInfo.SegmentsRemoved = 0, want pruning; info=%+v", info)
	}
	if st := s.Stats(); st.Segments != 1 || st.RecordsSinceSnapshot != 0 {
		t.Fatalf("post-snapshot stats = %+v, want 1 segment and zero records since", st)
	}
	want := bundleBytes(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after rotation + snapshot + prune")
	}
}

func TestRestoreResetsHistory(t *testing.T) {
	opts := testOptions(t, membership.KindCounting)

	// Source database: some state, exported as a bundle.
	src, err := setdb.Open(opts)
	if err != nil {
		t.Fatalf("Open source: %v", err)
	}
	if err := src.Add("restored", 1, 2, 3); err != nil {
		t.Fatalf("Add: %v", err)
	}
	var bundle bytes.Buffer
	if _, err := src.SnapshotView().WriteBundleTo(&bundle); err != nil {
		t.Fatalf("WriteBundleTo: %v", err)
	}
	want := append([]byte(nil), bundle.Bytes()...)

	dir := t.TempDir()
	s, err := Open(dir, freshFunc(t, opts), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, b := range testBatches() {
		if err := s.Apply(b); err != nil {
			t.Fatalf("Apply: %v", err)
		}
	}
	if err := s.Restore(&bundle); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := bundleBytes(t, s.DB()); !bytes.Equal(got, want) {
		t.Fatal("live state after Restore differs from the bundle")
	}
	// Post-restore writes land in the new history.
	if err := s.Apply([]setdb.Write{{Key: "post", IDs: []uint64{9}}}); err != nil {
		t.Fatalf("Apply after Restore: %v", err)
	}
	wantAfter := bundleBytes(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, func() (*setdb.DB, error) {
		t.Fatal("fresh called after Restore persisted a snapshot")
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if got := bundleBytes(t, s2.DB()); !bytes.Equal(got, wantAfter) {
		t.Fatal("recovered state after Restore + Apply differs")
	}
	if ok, _ := s2.DB().Contains("plain-0", 0); ok {
		t.Fatal("pre-restore state leaked through recovery")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"", FsyncAlways, true},
		{"sometimes", "", false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %q, %v", tc.in, got, err)
		}
	}
}

// FuzzWALDecode pins that the frame decoder never panics, never claims
// to consume more bytes than it was given, and that every frame it
// accepts re-encodes to the identical bytes.
func FuzzWALDecode(f *testing.F) {
	valid := appendRecord(nil, 3, []setdb.Write{
		{Key: "k", IDs: []uint64{1, 2, 3}},
		{Key: "d", IDs: []uint64{4}, Dynamic: true},
		{Key: "r", IDs: []uint64{5}, Dynamic: true, Remove: true},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-2]) // truncated tail
	crcFlipped := append([]byte(nil), valid...)
	crcFlipped[5] ^= 0xff
	f.Add(crcFlipped)
	lenLie := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lenLie[0:4], 1<<30)
	f.Add(lenLie)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, writes, consumed, err := decodeFrame(data)
		if err != nil {
			if consumed != 0 {
				t.Fatalf("consumed %d on error %v", consumed, err)
			}
			return
		}
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if re := appendRecord(nil, seq, writes); !bytes.Equal(re, data[:consumed]) {
			t.Fatal("accepted frame does not re-encode to itself")
		}
	})
}
