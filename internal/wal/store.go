package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/setdb"
)

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every Apply: an acknowledged write is
	// durable, full stop. This is the policy the crash-injection tests
	// assert under, and the default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a timer (Options.FsyncInterval): a crash
	// loses at most one interval of acknowledged writes.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves syncing to the OS page cache: fastest ingest,
	// and a machine crash may lose everything since the last snapshot or
	// rotation. A clean process exit (Close) still syncs.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy parses a policy name as spelled in flags and stats.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a Store. The zero value gets safe defaults:
// fsync always, 64 MiB segments, no background snapshots.
type Options struct {
	// Fsync selects the durability/throughput trade-off (default
	// FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period of FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it grows past this
	// (default 64 MiB). Rotation bounds both the recovery replay unit
	// and the disk a snapshot can reclaim.
	SegmentBytes int64
	// SnapshotInterval takes a background snapshot this often when new
	// records exist (default 0: snapshots only on demand).
	SnapshotInterval time.Duration
	// Logf, when set, receives recovery and background-error log lines
	// (typically log.Printf).
	Logf func(format string, args ...any)
	// Logger, when set, receives structured log lines: recovery outcome
	// at info, fsync/rotation/snapshot failures at error. Both sinks may
	// be set; they receive the same events.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("wal: store closed")

// Store owns a data directory: the live setdb.DB plus the segmented WAL
// and snapshot bundles that make it durable. All mutations must flow
// through Apply — a write applied straight to the DB would be invisible
// to recovery.
type Store struct {
	dir  string
	opts Options

	// db is swapped atomically by Restore; readers (DB, the server's
	// request paths) never block on the store mutex.
	db atomic.Pointer[setdb.DB]

	// mu serializes Apply, rotation, snapshot bookkeeping and Close.
	// Holding it across the DB apply plus the log append is what makes
	// WAL order equal apply order — replay reproduces the exact live
	// sequence, which the crash tests compare byte-for-byte.
	mu          sync.Mutex
	seq         uint64
	active      *os.File
	activeIdx   uint64
	activeBytes int64
	oldestIdx   uint64
	walBytes    int64
	dirty       bool
	scratch     []byte
	closed      bool

	// snapMu serializes whole snapshot/restore cycles; it is never held
	// while mu is (always the outer lock), and Apply never takes it.
	snapMu sync.Mutex

	snapshots     uint64
	lastSnapUnix  int64
	lastSnapDur   time.Duration
	lastSnapBytes int64
	sinceRecords  uint64
	sinceBytes    int64

	// Boot-time recovery outcome, fixed after Open.
	bootReplayed    uint64
	bootSkipped     uint64
	bootDroppedTail int64

	// Durability health counters, atomics so Stats and /metrics read
	// them without contending on mu. fsyncErrors and snapshotErrors make
	// background failures visible: an interval-fsync error used to be a
	// single log line that scrolled away while the store kept
	// acknowledging writes it could no longer make durable.
	appendedBytes  atomic.Uint64
	fsyncs         atomic.Uint64
	fsyncErrors    atomic.Uint64
	rotations      atomic.Uint64
	snapshotErrors atomic.Uint64
	lastSnapSeq    atomic.Uint64

	// syncHook, when non-nil, replaces the active segment's Sync —
	// package-internal tests inject fsync failures through it to assert
	// the error surfacing above.
	syncHook func() error

	stopc chan struct{}
	wg    sync.WaitGroup
}

// snapMeta is the JSON sidecar of one snapshot bundle.
type snapMeta struct {
	Seq uint64 `json:"seq"`
}

// SnapshotInfo describes one completed snapshot; it is the JSON body of
// POST /v1/snapshot.
type SnapshotInfo struct {
	File            string  `json:"file"`
	Bytes           int64   `json:"bytes"`
	DurationMS      float64 `json:"duration_ms"`
	Seq             uint64  `json:"seq"`
	SegmentsRemoved int     `json:"segments_removed"`
}

// Stats is the durability section of the stats document.
type Stats struct {
	FsyncPolicy          string  `json:"fsync_policy"`
	Segments             int     `json:"segments"`
	ActiveSegment        uint64  `json:"active_segment"`
	WALBytes             int64   `json:"wal_bytes"`
	Seq                  uint64  `json:"seq"`
	RecordsSinceSnapshot uint64  `json:"records_since_snapshot"`
	BytesSinceSnapshot   int64   `json:"bytes_since_snapshot"`
	Snapshots            uint64  `json:"snapshots"`
	LastSnapshotUnix     int64   `json:"last_snapshot_unix,omitempty"`
	LastSnapshotMS       float64 `json:"last_snapshot_ms,omitempty"`
	LastSnapshotBytes    int64   `json:"last_snapshot_bytes,omitempty"`
	LastSnapshotSeq      uint64  `json:"last_snapshot_seq"`
	AppendedBytes        uint64  `json:"appended_bytes"`
	Fsyncs               uint64  `json:"fsyncs"`
	FsyncErrors          uint64  `json:"fsync_errors"`
	Rotations            uint64  `json:"rotations"`
	SnapshotErrors       uint64  `json:"snapshot_errors"`
	ReplayedAtBoot       uint64  `json:"replayed_records_at_boot"`
	SkippedAtBoot        uint64  `json:"skipped_records_at_boot"`
	DroppedTailBytes     int64   `json:"dropped_tail_bytes_at_boot"`
}

func segmentName(idx uint64) string  { return fmt.Sprintf("wal-%08d.log", idx) }
func snapshotName(idx uint64) string { return fmt.Sprintf("snap-%08d.snap", idx) }
func metaName(idx uint64) string     { return fmt.Sprintf("snap-%08d.meta", idx) }

// Open recovers (or initializes) the data directory and returns a
// running Store. fresh builds the database a brand-new directory starts
// from — its options are immediately pinned by the initial snapshot, so
// every later boot reconstructs the exact same profile from disk alone.
func Open(dir string, fresh func() (*setdb.DB, error), opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, stopc: make(chan struct{})}

	segs, snaps, err := s.scanDir()
	if err != nil {
		return nil, err
	}

	var db *setdb.DB
	var baseSeq uint64
	snapIdx := uint64(0)
	if len(snaps) > 0 {
		snapIdx = snaps[len(snaps)-1]
		db, baseSeq, err = s.loadSnapshot(snapIdx)
		if err != nil {
			return nil, fmt.Errorf("wal: loading %s: %w", snapshotName(snapIdx), err)
		}
	} else {
		db, err = fresh()
		if err != nil {
			return nil, err
		}
	}
	s.db.Store(db)
	s.seq = baseSeq
	s.lastSnapSeq.Store(baseSeq)

	// Replay every segment the newest snapshot does not cover, oldest
	// first. Records at or below the snapshot's seq are skipped — that
	// is what makes an accidental double replay (a segment the snapshot
	// already absorbed, a crash between snapshot and pruning) harmless.
	activeIdx := snapIdx
	if activeIdx == 0 {
		activeIdx = 1
	}
	tailOffset := int64(0)
	tailExists := false
	for _, idx := range segs {
		if idx < snapIdx {
			continue
		}
		last := idx == segs[len(segs)-1]
		goodOff, err := s.replaySegment(idx, last)
		if err != nil {
			return nil, err
		}
		if idx >= activeIdx {
			activeIdx = idx
			tailOffset = goodOff
			tailExists = true
		}
	}

	if !tailExists {
		// Brand-new directory (or snapshot with no tail): pin the
		// database profile on disk before the first record is written,
		// so recovery never depends on process flags.
		if len(snaps) == 0 {
			if _, err := s.writeSnapshotFiles(activeIdx, db.SnapshotView(), baseSeq); err != nil {
				return nil, err
			}
			s.snapshots++
		}
		if err := s.createSegment(activeIdx); err != nil {
			return nil, err
		}
	} else if err := s.openSegment(activeIdx, tailOffset); err != nil {
		return nil, err
	}
	s.activeIdx = activeIdx
	s.oldestIdx = activeIdx
	for _, idx := range segs {
		if idx >= snapIdx && idx < s.oldestIdx {
			s.oldestIdx = idx
		}
	}
	s.walBytes = s.sumSegmentBytes()

	// Stale files below the snapshot (a crash between snapshot and
	// prune) are reclaimed now, best-effort.
	s.prune(snapIdx)

	if s.bootReplayed > 0 || s.bootDroppedTail > 0 {
		s.logf("wal: recovered %s: %d records replayed, %d skipped, %d torn tail bytes dropped",
			dir, s.bootReplayed, s.bootSkipped, s.bootDroppedTail)
		if opts.Logger != nil {
			opts.Logger.Info("wal recovered", "dir", dir,
				"replayed", s.bootReplayed, "skipped", s.bootSkipped,
				"dropped_tail_bytes", s.bootDroppedTail)
		}
	}

	if s.opts.Fsync == FsyncInterval || s.opts.SnapshotInterval > 0 {
		s.wg.Add(1)
		go s.background()
	}
	return s, nil
}

// DB returns the live database. After Restore the pointer changes;
// callers holding the old value keep a consistent (stale) view.
func (s *Store) DB() *setdb.DB { return s.db.Load() }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Apply runs one group-commit batch through the database and, on
// success, appends it to the log (then syncs, under FsyncAlways) before
// returning. The whole cycle holds the store mutex, so the log's record
// order is exactly the apply order. A batch the database rejects logs
// nothing.
func (s *Store) Apply(writes []setdb.Write) error {
	if len(writes) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.db.Load().ApplyBatch(writes); err != nil {
		return err
	}
	s.seq++
	s.scratch = appendRecord(s.scratch[:0], s.seq, writes)
	n, err := s.active.Write(s.scratch)
	s.activeBytes += int64(n)
	s.walBytes += int64(n)
	s.sinceBytes += int64(n)
	s.appendedBytes.Add(uint64(n))
	if err != nil {
		// The state is applied but the log write failed (disk full, IO
		// error): the write is live but will not survive a restart.
		// There is nothing to roll back; surface it loudly.
		return fmt.Errorf("wal: append failed, write applied but not durable: %w", err)
	}
	s.sinceRecords++
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncActive(); err != nil {
			return fmt.Errorf("wal: fsync failed, write applied but not durable: %w", err)
		}
	} else {
		s.dirty = true
	}
	if s.activeBytes >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot persists the current database as a bundle and prunes every
// log segment it covers. Writers are paused only for the view pin and
// segment rotation; the bundle bytes are produced concurrently with new
// Applies landing in the fresh segment.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SnapshotInfo{}, ErrClosed
	}
	view := s.db.Load().SnapshotView()
	seq := s.seq
	if err := s.rotateLocked(); err != nil {
		s.mu.Unlock()
		s.snapshotErrors.Add(1)
		s.logError("wal snapshot failed", "stage", "rotate", "error", err)
		return SnapshotInfo{}, err
	}
	idx := s.activeIdx
	s.mu.Unlock()

	bytes, err := s.writeSnapshotFiles(idx, view, seq)
	if err != nil {
		s.snapshotErrors.Add(1)
		s.logError("wal snapshot failed", "stage", "write", "file", snapshotName(idx), "error", err)
		return SnapshotInfo{}, err
	}
	removed := s.prune(idx)
	dur := time.Since(start)

	s.mu.Lock()
	s.snapshots++
	s.lastSnapUnix = time.Now().Unix()
	s.lastSnapDur = dur
	s.lastSnapBytes = bytes
	s.lastSnapSeq.Store(seq)
	s.sinceRecords = 0
	s.sinceBytes = 0
	s.oldestIdx = idx
	s.walBytes = s.sumSegmentBytes()
	s.mu.Unlock()

	return SnapshotInfo{
		File:            snapshotName(idx),
		Bytes:           bytes,
		DurationMS:      float64(dur.Microseconds()) / 1000,
		Seq:             seq,
		SegmentsRemoved: removed,
	}, nil
}

// WriteSnapshotTo streams a restore bundle of the live database to w —
// the download half of the snapshot API. It touches no files and never
// blocks writers.
func (s *Store) WriteSnapshotTo(w io.Writer) (int64, error) {
	return s.db.Load().SnapshotView().WriteBundleTo(w)
}

// Restore replaces the live database with the bundle read from r: the
// new state is persisted as a snapshot, the log restarts empty, and the
// old history is pruned. Writes are blocked for the (rare) duration.
func (s *Store) Restore(r io.Reader) error {
	db, err := setdb.ReadBundle(r)
	if err != nil {
		return err
	}
	return s.RestoreDB(db)
}

// RestoreDB is Restore with an already-decoded database — for callers
// that need to distinguish a bad bundle (their input) from a
// persistence failure (the store's disk).
func (s *Store) RestoreDB(db *setdb.DB) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	idx := s.activeIdx + 1
	if _, err := s.writeSnapshotFiles(idx, db.SnapshotView(), 0); err != nil {
		return err
	}
	syncErr := s.syncActive()
	_ = syncErr // superseded history; best-effort
	s.active.Close()
	if err := s.createSegment(idx); err != nil {
		return fmt.Errorf("wal: restore wrote %s but the fresh segment failed: %w", snapshotName(idx), err)
	}
	s.activeIdx = idx
	s.oldestIdx = idx
	s.seq = 0
	s.db.Store(db)
	s.snapshots++
	s.lastSnapUnix = time.Now().Unix()
	s.lastSnapSeq.Store(0)
	s.sinceRecords = 0
	s.sinceBytes = 0
	s.prune(idx)
	s.walBytes = s.sumSegmentBytes()
	return nil
}

// Stats reports the durability health counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	segments := 0
	if s.activeIdx >= s.oldestIdx {
		segments = int(s.activeIdx - s.oldestIdx + 1)
	}
	return Stats{
		FsyncPolicy:          string(s.opts.Fsync),
		Segments:             segments,
		ActiveSegment:        s.activeIdx,
		WALBytes:             s.walBytes,
		Seq:                  s.seq,
		RecordsSinceSnapshot: s.sinceRecords,
		BytesSinceSnapshot:   s.sinceBytes,
		Snapshots:            s.snapshots,
		LastSnapshotUnix:     s.lastSnapUnix,
		LastSnapshotMS:       float64(s.lastSnapDur.Microseconds()) / 1000,
		LastSnapshotBytes:    s.lastSnapBytes,
		LastSnapshotSeq:      s.lastSnapSeq.Load(),
		AppendedBytes:        s.appendedBytes.Load(),
		Fsyncs:               s.fsyncs.Load(),
		FsyncErrors:          s.fsyncErrors.Load(),
		Rotations:            s.rotations.Load(),
		SnapshotErrors:       s.snapshotErrors.Load(),
		ReplayedAtBoot:       s.bootReplayed,
		SkippedAtBoot:        s.bootSkipped,
		DroppedTailBytes:     s.bootDroppedTail,
	}
}

// Close stops the background work and syncs and closes the active
// segment. The Store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopc)
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.active != nil {
		err = s.syncActive()
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// background runs the interval-fsync and periodic-snapshot timers.
func (s *Store) background() {
	defer s.wg.Done()
	fsyncC := make(<-chan time.Time)
	if s.opts.Fsync == FsyncInterval {
		t := time.NewTicker(s.opts.FsyncInterval)
		defer t.Stop()
		fsyncC = t.C
	}
	snapC := make(<-chan time.Time)
	if s.opts.SnapshotInterval > 0 {
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-s.stopc:
			return
		case <-fsyncC:
			s.mu.Lock()
			if !s.closed && s.dirty {
				s.dirty = false
				if err := s.syncActive(); err != nil {
					// The error is already counted and logged by
					// syncActive; mark the segment dirty again so the
					// next tick retries rather than silently dropping
					// the pending records' durability.
					s.dirty = true
					s.logf("wal: interval fsync: %v", err)
				}
			}
			s.mu.Unlock()
		case <-snapC:
			s.mu.Lock()
			pending := s.sinceRecords
			s.mu.Unlock()
			if pending == 0 {
				continue
			}
			if _, err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
				// Snapshot already counted and slog-logged the failure;
				// keep the printf sink informed too.
				s.logf("wal: background snapshot: %v", err)
			}
		}
	}
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// logError emits one structured error line when a Logger is configured.
func (s *Store) logError(msg string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Error(msg, args...)
	}
}

// scanDir lists the segment and snapshot indices present, ascending.
func (s *Store) scanDir() (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		var idx uint64
		switch {
		case matchIndexed(e.Name(), "wal-", ".log", &idx):
			segs = append(segs, idx)
		case matchIndexed(e.Name(), "snap-", ".snap", &idx):
			snaps = append(snaps, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// matchIndexed parses names like wal-00000007.log.
func matchIndexed(name, prefix, suffix string, idx *uint64) bool {
	if len(name) != len(prefix)+8+len(suffix) {
		return false
	}
	if name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	v := uint64(0)
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	if v == 0 {
		return false
	}
	*idx = v
	return true
}

// loadSnapshot reads one snapshot bundle plus its meta sidecar.
func (s *Store) loadSnapshot(idx uint64) (*setdb.DB, uint64, error) {
	f, err := os.Open(filepath.Join(s.dir, snapshotName(idx)))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	db, err := setdb.ReadBundle(f)
	if err != nil {
		return nil, 0, err
	}
	seq := uint64(0)
	if data, err := os.ReadFile(filepath.Join(s.dir, metaName(idx))); err == nil {
		var m snapMeta
		if err := json.Unmarshal(data, &m); err == nil {
			seq = m.Seq
		}
	}
	// A missing or unreadable meta degrades to seq 0: replay then
	// re-applies covered records only if stale segments also survived,
	// and those are pruned right after every snapshot.
	return db, seq, nil
}

// replaySegment applies one segment's records beyond the running max
// sequence (which starts at the snapshot's covered seq) — so a record
// the snapshot absorbed, or a whole duplicated segment, is skipped
// rather than applied twice. last marks the final segment on disk —
// only its tail may be torn; damage anywhere else is refused. It
// returns the file offset just past the last intact record.
func (s *Store) replaySegment(idx uint64, last bool) (int64, error) {
	path := filepath.Join(s.dir, segmentName(idx))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if last && len(data) < len(segMagic) {
			// The crash interrupted segment creation itself; the whole
			// file is a torn tail.
			s.bootDroppedTail += int64(len(data))
			return 0, nil
		}
		return 0, fmt.Errorf("%w: %s has a bad segment magic", ErrCorrupt, path)
	}
	db := s.db.Load()
	var applyErr error
	goodOff, scanErr := segScan(data[len(segMagic):], func(seq uint64, writes []setdb.Write) error {
		if seq <= s.seq {
			s.bootSkipped++
			return nil
		}
		if err := db.ApplyBatch(writes); err != nil {
			return fmt.Errorf("wal: replaying %s seq %d: %w", path, seq, err)
		}
		s.bootReplayed++
		s.seq = seq
		return nil
	})
	switch {
	case scanErr == nil:
	case errors.Is(scanErr, errShortRecord), errors.Is(scanErr, ErrCorrupt):
		dropped := int64(len(data)) - int64(len(segMagic)) - int64(goodOff)
		if !last {
			return 0, fmt.Errorf("wal: %s is damaged %d bytes before its end but is not the final segment: refusing to recover past missing history (%v)", path, dropped, scanErr)
		}
		s.bootDroppedTail += dropped
		s.logf("wal: %s: dropped %d torn tail bytes (%v)", path, dropped, scanErr)
	default:
		applyErr = scanErr
	}
	if applyErr != nil {
		return 0, applyErr
	}
	return int64(len(segMagic)) + int64(goodOff), nil
}

// createSegment creates a fresh active segment with its magic, synced
// so the file survives a crash that follows immediately.
func (s *Store) createSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(idx)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.activeBytes = int64(len(segMagic))
	return nil
}

// openSegment reopens a recovered segment for appending, truncated to
// its last intact record so a dropped torn tail can never sit between
// old and new records.
func (s *Store) openSegment(idx uint64, goodOffset int64) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(idx)), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if goodOffset < int64(len(segMagic)) {
		// The magic itself was torn; rewrite the segment from scratch.
		f.Close()
		return s.createSegment(idx)
	}
	if err := f.Truncate(goodOffset); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(goodOffset, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.activeBytes = goodOffset
	return nil
}

// rotateLocked closes the active segment (synced) and starts the next.
// Callers hold mu.
func (s *Store) rotateLocked() error {
	if err := s.syncActive(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.dirty = false
	if err := s.createSegment(s.activeIdx + 1); err != nil {
		return err
	}
	s.activeIdx++
	s.rotations.Add(1)
	s.walBytes += int64(len(segMagic))
	return nil
}

// syncActive fsyncs the active segment (or runs the test hook) and
// keeps the fsync counters. Callers hold mu.
func (s *Store) syncActive() error {
	var err error
	if s.syncHook != nil {
		err = s.syncHook()
	} else {
		err = s.active.Sync()
	}
	if err != nil {
		s.fsyncErrors.Add(1)
		s.logError("wal fsync failed", "segment", segmentName(s.activeIdx), "error", err)
		return err
	}
	s.fsyncs.Add(1)
	return nil
}

// writeSnapshotFiles persists one bundle + meta pair atomically: both
// land under temp names, are synced, and the bundle's rename is the
// commit point (recovery keys on the .snap file; the meta is already in
// place when it appears).
func (s *Store) writeSnapshotFiles(idx uint64, view *setdb.SnapshotView, seq uint64) (int64, error) {
	metaPath := filepath.Join(s.dir, metaName(idx))
	metaTmp := metaPath + ".tmp"
	meta, err := json.Marshal(snapMeta{Seq: seq})
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(metaTmp, meta); err != nil {
		return 0, err
	}
	if err := os.Rename(metaTmp, metaPath); err != nil {
		return 0, err
	}

	snapPath := filepath.Join(s.dir, snapshotName(idx))
	snapTmp := snapPath + ".tmp"
	f, err := os.OpenFile(snapTmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := view.WriteBundleTo(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(snapTmp)
		return 0, err
	}
	if err := os.Rename(snapTmp, snapPath); err != nil {
		return 0, err
	}
	syncDir(s.dir)
	return n, nil
}

// prune removes segments and snapshots below keepIdx, best-effort (a
// leftover file is reclaimed by the next prune). It returns the number
// of segments removed.
func (s *Store) prune(keepIdx uint64) int {
	segs, snaps, err := s.scanDir()
	if err != nil {
		return 0
	}
	removed := 0
	for _, idx := range segs {
		if idx < keepIdx {
			if os.Remove(filepath.Join(s.dir, segmentName(idx))) == nil {
				removed++
			}
		}
	}
	for _, idx := range snaps {
		if idx < keepIdx {
			os.Remove(filepath.Join(s.dir, snapshotName(idx)))
			os.Remove(filepath.Join(s.dir, metaName(idx)))
		}
	}
	return removed
}

// sumSegmentBytes totals the on-disk segment sizes.
func (s *Store) sumSegmentBytes() int64 {
	segs, _, err := s.scanDir()
	if err != nil {
		return 0
	}
	total := int64(0)
	for _, idx := range segs {
		if fi, err := os.Stat(filepath.Join(s.dir, segmentName(idx))); err == nil {
			total += fi.Size()
		}
	}
	return total
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames within it survive a crash;
// best-effort (not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
