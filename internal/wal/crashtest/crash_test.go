// Package crashtest is the durability layer's fault-injection harness:
// it runs a real bstserved binary with -data-dir, kills it with SIGKILL
// at randomized points mid-ingest, restarts it on the same directory,
// and asserts the recovered database matches a shadow model
// byte-for-byte — for every membership backend.
//
// The byte-equality argument: with -fsync always an acknowledged write
// is durable, the WAL's record order is the server's apply order (both
// happen under one mutex), and the ingest here keeps exactly one
// request outstanding — so the recovered database must equal a fresh
// database that applied the acknowledged writes in order. The one
// in-flight write at kill time is indeterminate (applied-but-unacked is
// possible), so the comparison accepts either shadow or shadow+pending.
package crashtest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/setdb"
	"repro/internal/wire"
)

var bstserved string // path to the built binary, set by TestMain

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "crashtest-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	bstserved = filepath.Join(dir, "bstserved")
	out, err := exec.Command("go", "build", "-o", bstserved, "repro/cmd/bstserved").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building bstserved: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// The planning flags the server is started with; the shadow database
// must be built from the exact same profile or the bytes cannot match.
const (
	namespace = 100_000
	setSize   = 200
	accuracy  = 0.9
	hashK     = 3
)

func shadowOptions(t *testing.T, backend membership.Kind) setdb.Options {
	t.Helper()
	opts, err := setdb.PlanOptions(accuracy, setSize, namespace, hashK)
	if err != nil {
		t.Fatalf("PlanOptions: %v", err)
	}
	opts.Pruned = true
	opts.Backend = backend
	return opts
}

// proc is one run of the bstserved binary.
type proc struct {
	cmd      *exec.Cmd
	httpAddr string
	binAddr  string
}

func startServer(t *testing.T, dataDir string, backend membership.Kind) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addrs")
	cmd := exec.Command(bstserved,
		"-addr", "127.0.0.1:0",
		"-bin-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-namespace", fmt.Sprint(namespace),
		"-setsize", fmt.Sprint(setSize),
		"-accuracy", fmt.Sprint(accuracy),
		"-k", fmt.Sprint(hashK),
		"-backend", string(backend),
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting bstserved: %v", err)
	}
	p := &proc{cmd: cmd}
	deadline := time.Now().Add(15 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
				if a, ok := strings.CutPrefix(line, "http="); ok {
					p.httpAddr = a
				}
				if a, ok := strings.CutPrefix(line, "bin="); ok {
					p.binAddr = a
				}
			}
			if p.httpAddr != "" && p.binAddr != "" {
				return p
			}
		}
		if time.Now().After(deadline) {
			p.kill(t)
			t.Fatal("bstserved did not publish its addresses in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *proc) kill(t *testing.T) {
	t.Helper()
	_ = p.cmd.Process.Kill() // SIGKILL: no cleanup, no final fsync
	_ = p.cmd.Wait()
}

func (p *proc) url(path string) string { return "http://" + p.httpAddr + path }

// postWrite sends one write as its own request — one WAL record — and
// returns whether the server acknowledged it.
func postWrite(client *http.Client, p *proc, w setdb.Write) error {
	var path string
	var body any
	if w.Remove {
		path = "/v1/remove"
		body = map[string]any{"key": w.Key, "ids": w.IDs}
	} else {
		path = "/v1/add"
		body = map[string]any{"key": w.Key, "ids": w.IDs, "dynamic": w.Dynamic}
	}
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(p.url(path), "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return &statusError{path: path, status: resp.Status, body: string(msg)}
	}
	return nil
}

// statusError is a structured HTTP rejection — the server was alive
// enough to answer, so it cannot be blamed on the kill.
type statusError struct{ path, status, body string }

func (e *statusError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.path, e.status, e.body)
}

// fetchBundle downloads the server's live restore bundle.
func fetchBundle(client *http.Client, p *proc) ([]byte, error) {
	resp, err := client.Get(p.url("/v1/snapshot"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/snapshot: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// shadowBundle builds a fresh database, applies writes in order (one
// batch per write, matching the server), and serializes it.
func shadowBundle(t *testing.T, backend membership.Kind, writes []setdb.Write) []byte {
	t.Helper()
	db, err := setdb.Open(shadowOptions(t, backend))
	if err != nil {
		t.Fatalf("shadow Open: %v", err)
	}
	for i, w := range writes {
		if err := db.ApplyBatch([]setdb.Write{w}); err != nil {
			t.Fatalf("shadow apply %d (%+v): %v", i, w, err)
		}
	}
	var buf bytes.Buffer
	if _, err := db.SnapshotView().WriteBundleTo(&buf); err != nil {
		t.Fatalf("shadow WriteBundleTo: %v", err)
	}
	return buf.Bytes()
}

// verifyRecovered compares the running server's state against the
// shadow. A pending write (in flight at kill time) may or may not have
// landed; the winning interpretation is returned so the caller can fold
// it into the acked history.
func verifyRecovered(t *testing.T, client *http.Client, p *proc, backend membership.Kind, acked []setdb.Write, pending *setdb.Write) bool {
	t.Helper()
	got, err := fetchBundle(client, p)
	if err != nil {
		t.Fatalf("downloading recovered bundle: %v", err)
	}
	if bytes.Equal(got, shadowBundle(t, backend, acked)) {
		return false
	}
	if pending != nil {
		if bytes.Equal(got, shadowBundle(t, backend, append(append([]setdb.Write{}, acked...), *pending))) {
			return true
		}
	}
	t.Fatalf("recovered state (%d bytes) matches neither the %d acked writes nor acked+pending", len(got), len(acked))
	return false
}

// writeGen produces the deterministic mixed workload, tracking which
// dynamic ids are safely removable (acked adds only).
type writeGen struct {
	rng       *rand.Rand
	next      uint64
	dynamic   bool
	removable map[string][]uint64
}

func newWriteGen(seed int64, dynamic bool) *writeGen {
	return &writeGen{rng: rand.New(rand.NewSource(seed)), dynamic: dynamic, removable: map[string][]uint64{}}
}

func (g *writeGen) ids(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = g.next % namespace
		g.next++
	}
	return ids
}

func (g *writeGen) gen() setdb.Write {
	if g.dynamic {
		switch g.rng.Intn(4) {
		case 0, 1: // dynamic add
			return setdb.Write{Key: fmt.Sprintf("d%d", g.rng.Intn(5)), IDs: g.ids(4), Dynamic: true}
		case 2: // dynamic remove, when something is removable
			for key, avail := range g.removable {
				if len(avail) >= 2 {
					w := setdb.Write{Key: key, IDs: avail[:2], Dynamic: true, Remove: true}
					g.removable[key] = avail[2:]
					return w
				}
			}
		}
	}
	return setdb.Write{Key: fmt.Sprintf("p%d", g.rng.Intn(7)), IDs: g.ids(8)}
}

// acked records a successfully acknowledged write, unlocking its ids
// for future removal.
func (g *writeGen) acked(w setdb.Write) {
	if w.Dynamic && !w.Remove {
		g.removable[w.Key] = append(g.removable[w.Key], w.IDs...)
	}
}

// ingestUntilKilled hammers single-outstanding writes while a timer
// SIGKILLs the server at a randomized point. It returns the acked
// writes and the single indeterminate in-flight write. A structured
// HTTP error response (the server is alive and rejecting) is a bug and
// fails the test; only transport errors are attributed to the kill.
func ingestUntilKilled(t *testing.T, client *http.Client, p *proc, g *writeGen, killAfter time.Duration) (acked []setdb.Write, pending *setdb.Write) {
	t.Helper()
	killed := make(chan struct{})
	timer := time.AfterFunc(killAfter, func() {
		p.kill(t)
		close(killed)
	})
	defer timer.Stop()
	for i := 0; i < 500_000; i++ {
		w := g.gen()
		if err := postWrite(client, p, w); err != nil {
			if errors.As(err, new(*statusError)) {
				t.Fatalf("server rejected a write while alive: %v", err)
			}
			<-killed // wait for the reap so the data dir is quiescent
			return acked, &w
		}
		g.acked(w)
		acked = append(acked, w)
	}
	t.Fatal("ingest outlived the kill timer")
	return nil, nil
}

// durabilityStats pulls the durability section of /v1/stats.
func durabilityStats(t *testing.T, client *http.Client, p *proc) map[string]any {
	t.Helper()
	resp, err := client.Get(p.url("/v1/stats"))
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	var doc struct {
		Durability map[string]any `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if doc.Durability == nil {
		t.Fatal("/v1/stats has no durability section on a -data-dir server")
	}
	return doc.Durability
}

// appendGarbage writes junk to the tail of the newest WAL segment —
// the torn-tail shape recovery must CRC-reject without refusing the
// intact prefix.
func appendGarbage(t *testing.T, dataDir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("finding WAL segments: %v (%d found)", err, len(segs))
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	junk := make([]byte, 37)
	for i := range junk {
		junk[i] = byte(i*7 + 13)
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash injection runs real processes; skipped in -short")
	}
	backends := []struct {
		kind    membership.Kind
		dynamic bool
	}{
		{membership.KindBloom, false},
		{membership.KindCounting, true},
		{membership.KindCuckoo, true},
	}
	for _, b := range backends {
		b := b
		t.Run(string(b.kind), func(t *testing.T) {
			t.Parallel()
			client := &http.Client{Timeout: 10 * time.Second}
			dataDir := t.TempDir()
			g := newWriteGen(int64(len(b.kind))*7919+1, b.dynamic)
			rng := rand.New(rand.NewSource(42))
			var acked []setdb.Write
			var pending *setdb.Write // in flight at the last kill; indeterminate

			const rounds = 3
			for round := 0; round < rounds; round++ {
				p := startServer(t, dataDir, b.kind)
				if round > 0 {
					// The previous round's crash must have lost nothing
					// acknowledged.
					if verifyRecovered(t, client, p, b.kind, acked, pending) {
						acked = append(acked, *pending)
					}
					pending = nil
					ds := durabilityStats(t, client, p)
					if ds["fsync_policy"] != "always" {
						t.Fatalf("fsync_policy = %v, want always", ds["fsync_policy"])
					}
					if replayed, _ := ds["replayed_records_at_boot"].(float64); replayed == 0 && len(acked) > 0 {
						t.Fatal("no records replayed at boot despite acked writes")
					}
					if round == 2 {
						// Round 1's crash was followed by torn-tail garbage.
						if dropped, _ := ds["dropped_tail_bytes_at_boot"].(float64); dropped == 0 {
							t.Fatal("torn tail bytes were not dropped at boot")
						}
					}
				}
				if round == 1 {
					// Snapshot mid-history: later recoveries must compose
					// snapshot + remaining WAL.
					resp, err := client.Post(p.url("/v1/snapshot"), "application/json", nil)
					if err != nil {
						t.Fatalf("POST /v1/snapshot: %v", err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("POST /v1/snapshot: %s", resp.Status)
					}
				}
				roundAcked, roundPending := ingestUntilKilled(t, client, p, g, time.Duration(30+rng.Intn(120))*time.Millisecond)
				acked = append(acked, roundAcked...)
				pending = roundPending
				if round == 1 {
					appendGarbage(t, dataDir)
				}
			}

			// Final recovery: verify, then exercise the binary listener on
			// the recovered database.
			p := startServer(t, dataDir, b.kind)
			defer p.kill(t)
			if verifyRecovered(t, client, p, b.kind, acked, pending) {
				acked = append(acked, *pending)
			}
			bc, err := wire.Dial(p.binAddr)
			if err != nil {
				t.Fatalf("dialing binary listener: %v", err)
			}
			defer bc.Close()
			w := setdb.Write{Key: "after-recovery", IDs: g.ids(8)}
			if _, err := bc.Add(wire.AddSet{Key: w.Key, IDs: w.IDs}); err != nil {
				t.Fatalf("binary add after recovery: %v", err)
			}
			acked = append(acked, w)
			verifyRecovered(t, client, p, b.kind, acked, nil)
		})
	}
}
