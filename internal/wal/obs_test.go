package wal

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/membership"
	"repro/internal/setdb"
)

// TestFsyncFailureSurfaced injects fsync failures through syncHook and
// asserts the full surfacing chain: Apply returns the error, the
// fsync_errors counter moves, and a structured error line lands on the
// configured Logger — the background-syncer failure mode that used to
// be one printf line.
func TestFsyncFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	opts := testOptions(t, membership.KindBloom)
	s, err := Open(dir, freshFunc(t, opts), Options{Fsync: FsyncAlways, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Healthy first: one durable write, counters moving the good way.
	if err := s.Apply([]setdb.Write{{Key: "a", IDs: []uint64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	if base.Fsyncs == 0 || base.FsyncErrors != 0 || base.AppendedBytes == 0 {
		t.Fatalf("healthy counters off: %+v", base)
	}

	injected := errors.New("injected: device gone")
	s.syncHook = func() error { return injected }
	err = s.Apply([]setdb.Write{{Key: "a", IDs: []uint64{3}}})
	if err == nil || !errors.Is(err, injected) {
		t.Fatalf("Apply under failing fsync returned %v, want wrapped injection", err)
	}
	if !strings.Contains(err.Error(), "not durable") {
		t.Errorf("error should say the write is applied but not durable: %v", err)
	}
	st := s.Stats()
	if st.FsyncErrors != 1 {
		t.Errorf("fsync_errors = %d, want 1", st.FsyncErrors)
	}
	if !strings.Contains(logBuf.String(), "wal fsync failed") ||
		!strings.Contains(logBuf.String(), "device gone") {
		t.Errorf("no structured error line logged:\n%s", logBuf.String())
	}

	// Recovery: hook removed, writes are durable again and the error
	// counter stays where it was.
	s.syncHook = nil
	if err := s.Apply([]setdb.Write{{Key: "a", IDs: []uint64{4}}}); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.FsyncErrors != 1 || after.Fsyncs <= st.Fsyncs {
		t.Errorf("post-recovery counters off: %+v", after)
	}
}

// TestSnapshotErrorCounted makes snapshotting fail (fsync of the
// rotation) and checks the snapshot_errors counter plus the log line.
func TestSnapshotErrorCounted(t *testing.T) {
	dir := t.TempDir()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	opts := testOptions(t, membership.KindBloom)
	s, err := Open(dir, freshFunc(t, opts), Options{Fsync: FsyncNever, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply([]setdb.Write{{Key: "k", IDs: []uint64{9}}}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected: snapshot rotate fsync")
	s.syncHook = func() error { return injected }
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot with failing fsync should error")
	}
	if st := s.Stats(); st.SnapshotErrors != 1 {
		t.Errorf("snapshot_errors = %d, want 1", st.SnapshotErrors)
	}
	if !strings.Contains(logBuf.String(), "wal snapshot failed") {
		t.Errorf("no structured snapshot-failure line:\n%s", logBuf.String())
	}
	s.syncHook = nil
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery: %v", err)
	}
	st := s.Stats()
	if st.Snapshots == 0 || st.LastSnapshotSeq != 1 {
		t.Errorf("recovered snapshot stats off: %+v", st)
	}
}

// TestRotationAndAppendCounters drives enough bytes to rotate segments
// and checks the new Stats fields move coherently.
func TestRotationAndAppendCounters(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, membership.KindBloom)
	s, err := Open(dir, freshFunc(t, opts), Options{Fsync: FsyncNever, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(0); i < 20; i++ {
		if err := s.Apply([]setdb.Write{{Key: "k", IDs: []uint64{i, i + 100, i + 200}}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Rotations == 0 {
		t.Errorf("no rotations after %d bytes appended over a 256-byte segment cap", st.AppendedBytes)
	}
	if st.AppendedBytes == 0 {
		t.Error("appended_bytes never moved")
	}
	if int(st.Rotations) != st.Segments-1 {
		t.Errorf("rotations %d vs segments %d: want segments-1 rotations", st.Rotations, st.Segments)
	}
}
