// Package wal is the durability layer under the serving tier: a
// segmented, checksummed write-ahead log plus periodic snapshots over a
// setdb.DB, so a crash mid-ingest loses at most the writes the fsync
// policy allows — never the database.
//
// Log format. A data directory holds numbered segment files and
// snapshot bundles:
//
//	wal-00000007.log    append log segment (records with seq > snapshot seq)
//	snap-00000007.snap  setdb bundle (SETDB2 stream + pruned tree)
//	snap-00000007.meta  JSON sidecar: the last sequence number the bundle covers
//
// Each segment starts with an 8-byte magic ("BSTWAL01") followed by
// framed records:
//
//	offset  size  field
//	0       4     payload length (uint32, little-endian)
//	4       4     CRC32-C of the payload (uint32, little-endian)
//	8       n     payload
//
// A payload is one group-commit batch — the unit setdb.ApplyBatch
// replays atomically:
//
//	seq     uvarint   monotone record sequence number
//	writes  uvarint   count, then per write:
//	  flags  byte     bit0 dynamic, bit1 remove
//	  key    uvarint length + bytes
//	  ids    uvarint count + uvarint ids
//
// The sequence number is what makes replay idempotent for the
// non-idempotent backends (counting increments, cuckoo inserts):
// recovery skips every record at or below the snapshot's covered seq,
// so replaying a segment twice — or a segment the snapshot already
// absorbed — applies nothing twice.
//
// A torn tail (the crash happened mid-append) fails the CRC or the
// length prefix and is dropped cleanly: recovery keeps everything up to
// the last intact record and truncates the rest before appending again.
// Corruption anywhere but the final segment's tail is refused — that is
// damaged history, not an interrupted write.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/setdb"
)

const (
	segMagic = "BSTWAL01"
	// recHeaderSize is the framed-record prefix: length + CRC32-C.
	recHeaderSize = 8
	// maxRecordBytes bounds a declared payload length during decode, so
	// a corrupt length prefix can never drive a giant allocation.
	maxRecordBytes = 256 << 20
	// maxKeyLen mirrors the setdb serialization bound (uint16 key length).
	maxKeyLen = 1<<16 - 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record flags.
const (
	flagDynamic byte = 1 << 0
	flagRemove  byte = 1 << 1
)

// ErrCorrupt marks a record that decodes wrong for reasons beyond a torn
// tail: CRC mismatch, impossible lengths, trailing payload bytes.
var ErrCorrupt = errors.New("wal: corrupt record")

// errShortRecord marks a buffer that ends mid-record — the torn-tail
// shape a crash during append leaves behind.
var errShortRecord = errors.New("wal: short record")

// appendRecord frames one group-commit batch onto dst.
func appendRecord(dst []byte, seq uint64, writes []setdb.Write) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, recHeaderSize)...)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(writes)))
	for i := range writes {
		w := &writes[i]
		var flags byte
		if w.Dynamic {
			flags |= flagDynamic
		}
		if w.Remove {
			flags |= flagRemove
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, uint64(len(w.Key)))
		dst = append(dst, w.Key...)
		dst = binary.AppendUvarint(dst, uint64(len(w.IDs)))
		for _, id := range w.IDs {
			dst = binary.AppendUvarint(dst, id)
		}
	}
	payload := dst[base+recHeaderSize:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeFrame parses one framed record from the head of b. It returns
// the bytes consumed; errShortRecord (with consumed 0) when b ends
// mid-frame, ErrCorrupt when the frame is structurally wrong or fails
// its checksum. It never panics on hostile input (FuzzWALDecode pins
// that).
func decodeFrame(b []byte) (seq uint64, writes []setdb.Write, consumed int, err error) {
	if len(b) < recHeaderSize {
		return 0, nil, 0, errShortRecord
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordBytes {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if uint64(len(b)-recHeaderSize) < uint64(n) {
		return 0, nil, 0, errShortRecord
	}
	payload := b[recHeaderSize : recHeaderSize+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return 0, nil, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	seq, writes, err = decodePayload(payload)
	if err != nil {
		return 0, nil, 0, err
	}
	return seq, writes, recHeaderSize + int(n), nil
}

// decodePayload parses the checksummed interior of one record. Element
// counts are validated against the remaining bytes (each element costs
// at least one byte) before any allocation.
func decodePayload(p []byte) (uint64, []setdb.Write, error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: seq", ErrCorrupt)
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(len(p)) {
		return 0, nil, fmt.Errorf("%w: write count", ErrCorrupt)
	}
	p = p[n:]
	writes := make([]setdb.Write, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return 0, nil, fmt.Errorf("%w: write %d flags", ErrCorrupt, i)
		}
		flags := p[0]
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || klen > maxKeyLen || klen > uint64(len(p)-n) {
			return 0, nil, fmt.Errorf("%w: write %d key length", ErrCorrupt, i)
		}
		p = p[n:]
		key := string(p[:klen])
		p = p[klen:]
		nids, n := binary.Uvarint(p)
		if n <= 0 || nids > uint64(len(p)) {
			return 0, nil, fmt.Errorf("%w: write %d id count", ErrCorrupt, i)
		}
		p = p[n:]
		var ids []uint64
		if nids > 0 {
			ids = make([]uint64, 0, nids)
			for j := uint64(0); j < nids; j++ {
				id, n := binary.Uvarint(p)
				if n <= 0 {
					return 0, nil, fmt.Errorf("%w: write %d id %d", ErrCorrupt, i, j)
				}
				p = p[n:]
				ids = append(ids, id)
			}
		}
		writes = append(writes, setdb.Write{
			Key:     key,
			IDs:     ids,
			Dynamic: flags&flagDynamic != 0,
			Remove:  flags&flagRemove != 0,
		})
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return seq, writes, nil
}

// segScan walks the framed records of one segment body (the bytes after
// the magic), calling fn per record. It returns the offset of the first
// byte past the last intact record (relative to the body) and the error
// that stopped the scan: nil for a clean end, errShortRecord/ErrCorrupt
// for a damaged tail. An error from fn aborts the scan and is returned
// as-is.
func segScan(body []byte, fn func(seq uint64, writes []setdb.Write) error) (int, error) {
	off := 0
	for off < len(body) {
		seq, writes, consumed, err := decodeFrame(body[off:])
		if err != nil {
			return off, err
		}
		if err := fn(seq, writes); err != nil {
			return off, err
		}
		off += consumed
	}
	return off, nil
}
