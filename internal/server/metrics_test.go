package server

import (
	"testing"
	"time"
)

func TestBucketForNS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{500 * time.Nanosecond, 0},             // <1µs
		{time.Microsecond, 1},                  // [1µs, 2µs)
		{3 * time.Microsecond, 2},              // [2µs, 4µs)
		{time.Millisecond, 10},                 // [512µs, 1024µs)
		{time.Second, 20},                      // [~0.5s, ~1.05s)
		{10 * time.Minute, latencyBuckets - 1}, // overflow
	}
	for _, tc := range cases {
		if got := bucketForNS(uint64(tc.d.Nanoseconds())); got != tc.want {
			t.Errorf("bucketForNS(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var m endpointMetrics
	// 90 fast requests at ~1ms, 10 slow at ~100ms: p50 must sit in the
	// 1ms bucket, p99 in the 100ms bucket.
	for i := 0; i < 90; i++ {
		m.observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		m.observe(100*time.Millisecond, false)
	}
	st := m.snapshot(time.Second)
	if st.Requests != 100 || st.Errors != 0 {
		t.Fatalf("counts: %+v", st)
	}
	if st.P50LatencyUS < 512 || st.P50LatencyUS > 1024 {
		t.Errorf("p50 %.0fµs outside the 1ms bucket [512,1024)", st.P50LatencyUS)
	}
	// 100ms = 102400µs → bucket [65536µs, 131072µs).
	if st.P99LatencyUS < 65536 || st.P99LatencyUS > 131072 {
		t.Errorf("p99 %.0fµs outside the 100ms bucket [65536,131072)", st.P99LatencyUS)
	}
	if st.P99LatencyUS < st.P50LatencyUS {
		t.Errorf("p99 %.0f < p50 %.0f", st.P99LatencyUS, st.P50LatencyUS)
	}
	if st.MaxLatencyUS < 100_000 {
		t.Errorf("max %.0fµs, want ≥ 100000", st.MaxLatencyUS)
	}
}

func TestShedCountsOutsideHistogram(t *testing.T) {
	var m endpointMetrics
	m.observe(time.Millisecond, false)
	m.observeShed()
	st := m.snapshot(time.Second)
	if st.Requests != 2 || st.Errors != 1 || st.Shed != 1 {
		t.Fatalf("counts: %+v", st)
	}
	// The shed's ~0 latency must not drag the percentiles: only the one
	// served request is in the histogram.
	if st.P50LatencyUS < 512 {
		t.Errorf("p50 %.0fµs polluted by shed fast-path", st.P50LatencyUS)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var m endpointMetrics
	st := m.snapshot(time.Second)
	if st.P50LatencyUS != 0 || st.P99LatencyUS != 0 || st.AvgLatencyUS != 0 {
		t.Fatalf("zero-request snapshot: %+v", st)
	}
}
