package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/wire"
)

// newBinaryTestServer builds the shared test database, serves it on a
// loopback binary listener, and returns the Server plus the dial
// address. The HTTP side is reachable through the same Server value via
// httptest when a test needs both protocols at once.
func newBinaryTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	_, db := newTestServer(t, Config{}) // reuse the db builder; its httptest server is torn down by Cleanup
	cfg.Seed = 42
	s := New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.ShutdownBinary(ctx)
		if err := <-done; !errors.Is(err, ErrBinaryClosed) {
			t.Errorf("ServeBinary returned %v, want ErrBinaryClosed", err)
		}
	})
	return s, ln.Addr().String()
}

func dialTestClient(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 5 * time.Second
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBinaryRoundTrips(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{})
	c := dialTestClient(t, addr)

	// Plain sample: every id must be a member of the stored set.
	set, err := s.DB().Reconstruct("plain", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	member := map[uint64]bool{}
	for _, id := range set {
		member[id] = true
	}
	ids, err := c.Sample("plain", 64, wire.SampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no samples returned")
	}
	for _, id := range ids {
		if !member[id] {
			t.Fatalf("sample %d not a member", id)
		}
	}

	// Uniform mode.
	if ids, err = c.Sample("plain", 16, wire.SampleOpts{Uniform: true}); err != nil || len(ids) == 0 {
		t.Fatalf("uniform sample: %v (%d ids)", err, len(ids))
	}

	// Add (batch through group commit), then reconstruct it back.
	ack, err := c.Add(
		wire.AddSet{Key: "wireA", IDs: []uint64{10, 20, 30}},
		wire.AddSet{Key: "wireB", Dynamic: true, IDs: []uint64{40, 50}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Count != 5 || ack.Keys != 2 {
		t.Fatalf("ack mismatch: %+v", ack)
	}
	got, err := c.Reconstruct("wireA", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("reconstructed %v, want 3 ids", got)
	}

	// Dynamic remove, all-or-nothing.
	if _, err := c.Remove("wireB", []uint64{40}); err != nil {
		t.Fatal(err)
	}

	// Intersection estimate over two overlapping plain sets.
	if _, err := c.Add(wire.AddSet{Key: "wireC", IDs: []uint64{10, 20, 99}}); err != nil {
		t.Fatal(err)
	}
	est, err := c.Intersection("wireA", "wireC")
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("intersection estimate %v, want > 0", est)
	}

	// Stats carries the wire section and the binary endpoint metrics.
	doc, err := c.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if st.Wire.ConnsActive < 1 || st.Wire.ConnsTotal < 1 || st.Wire.FramesIn == 0 {
		t.Fatalf("wire stats not populated: %+v", st.Wire)
	}
	m := st.Endpoints["bin:sample"]
	if m.Requests == 0 || m.P50LatencyUS <= 0 || m.P99LatencyUS < m.P50LatencyUS {
		t.Fatalf("bin:sample metrics: %+v", m)
	}
}

func TestBinaryErrorMapping(t *testing.T) {
	_, addr := newBinaryTestServer(t, Config{MaxBatch: 100})
	c := dialTestClient(t, addr)
	cases := []struct {
		name string
		call func() error
		code uint64
	}{
		{"unknown key", func() error { _, err := c.Sample("nope", 1, wire.SampleOpts{}); return err }, wire.ErrCodeNotFound},
		{"uniform+dynamic", func() error {
			_, err := c.Sample("dyn", 1, wire.SampleOpts{Uniform: true, Dynamic: true})
			return err
		}, wire.ErrCodeBadRequest},
		{"oversized n", func() error { _, err := c.Sample("plain", 101, wire.SampleOpts{}); return err }, wire.ErrCodeTooLarge},
		{"remove non-member", func() error { _, err := c.Remove("dyn", []uint64{77777}); return err }, wire.ErrCodeConflict},
		{"remove plain set", func() error { _, err := c.Remove("plain", []uint64{1}); return err }, wire.ErrCodeNotFound},
		{"empty add", func() error { _, err := c.Add(); return err }, wire.ErrCodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var er wire.ErrorResult
			if !errors.As(err, &er) {
				t.Fatalf("got %v, want wire.ErrorResult", err)
			}
			if er.Code != tc.code {
				t.Fatalf("code %d, want %d", er.Code, tc.code)
			}
		})
	}
}

func TestBinaryUnknownOpcode(t *testing.T) {
	_, addr := newBinaryTestServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, 0xEE, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	h, body, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Opcode != wire.OpError {
		t.Fatalf("opcode %d, want OpError", h.Opcode)
	}
	er, err := wire.DecodeErrorResult(body)
	if err != nil || er.Code != wire.ErrCodeBadRequest {
		t.Fatalf("error result %+v (%v)", er, err)
	}
}

func TestBinaryStreamWithCredits(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{StreamChunk: 64})
	c := dialTestClient(t, addr)
	var got []uint64
	err := c.SampleStream("plain", 1000, wire.SampleOpts{}, 128, func(ids []uint64) error {
		got = append(got, ids...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The near-uniform drawer can return fewer than asked (false-positive
	// descents yield nothing), so assert membership and rough volume, not
	// exact count.
	if len(got) == 0 {
		t.Fatal("stream returned nothing")
	}
	set, _ := s.DB().Reconstruct("plain", 0, nil)
	member := map[uint64]bool{}
	for _, id := range set {
		member[id] = true
	}
	for _, id := range got {
		if !member[id] {
			t.Fatalf("streamed id %d not a member", id)
		}
	}
}

// TestBinaryStreamCreditStall pins the flow-control contract: a stream
// opened with zero credit draws nothing until the client grants some,
// and the stall is visible in the wire counters.
func TestBinaryStreamCreditStall(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{StreamChunk: 64})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := wire.SampleReq{Key: "plain", N: 100, Credit: 0}.Encode(nil, true)
	if err := wire.WriteFrame(conn, wire.OpSampleStream, 0, 1, req); err != nil {
		t.Fatal(err)
	}
	// No credit: no chunk may arrive. Give the server a moment to park.
	_ = conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, _, err := wire.ReadFrame(conn, 0); err == nil {
		t.Fatal("got a chunk with zero credit")
	}
	if stalls := s.bin.creditStalls.Load(); stalls == 0 {
		t.Fatal("no credit stall recorded")
	}
	// Grant enough for the whole batch; the stream must now finish.
	if err := wire.WriteFrame(conn, wire.OpCredit, 0, 1, wire.CreditGrant{N: 100}.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		h, _, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatalf("stream did not finish after grant: %v", err)
		}
		if h.Opcode != wire.OpSampleChunk {
			t.Fatalf("opcode %d mid-stream", h.Opcode)
		}
		if h.Flags&wire.FlagFinal != 0 {
			return
		}
	}
}

// TestBinaryBusyShedding is the admission-control acceptance test: with
// the per-connection window saturated by parked streams, further
// requests get an immediate BUSY frame — the queue never grows — and the
// sheds are visible per endpoint and in the wire totals.
func TestBinaryBusyShedding(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{ConnWindow: 1, StreamChunk: 64})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Park one stream with zero credit: it occupies the connection's
	// whole in-flight window (ConnWindow=1) without finishing.
	stream := wire.SampleReq{Key: "plain", N: 64, Credit: 0}.Encode(nil, true)
	if err := wire.WriteFrame(conn, wire.OpSampleStream, 0, 1, stream); err != nil {
		t.Fatal(err)
	}
	// Saturated window: the next request must be shed, fast.
	sample := wire.SampleReq{Key: "plain", N: 1}.Encode(nil, false)
	if err := wire.WriteFrame(conn, wire.OpSample, 0, 2, sample); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	h, _, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Opcode != wire.OpBusy || h.RequestID != 2 {
		t.Fatalf("got opcode %d for request %d, want OpBusy for 2", h.Opcode, h.RequestID)
	}
	if s.bin.shed.Load() == 0 {
		t.Fatal("wire shed counter not incremented")
	}
	if shed := s.metrics["bin:sample"].shed.Load(); shed == 0 {
		t.Fatal("per-endpoint shed counter not incremented")
	}
	// Release the stream; the window frees and the same request succeeds.
	if err := wire.WriteFrame(conn, wire.OpCredit, 0, 1, wire.CreditGrant{N: 64}.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	for {
		h, _, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if h.Opcode == wire.OpSampleChunk && h.Flags&wire.FlagFinal != 0 {
			break
		}
	}
	if err := wire.WriteFrame(conn, wire.OpSample, 0, 3, sample); err != nil {
		t.Fatal(err)
	}
	h, _, err = wire.ReadFrame(conn, 0)
	if err != nil || h.Opcode != wire.OpSampleResult {
		t.Fatalf("after release: opcode %d, err %v; want OpSampleResult", h.Opcode, err)
	}
}

// TestSharedAdmissionAcrossProtocols pins that both listeners draw from
// one global budget: a binary stream holding the only in-flight slot
// causes HTTP to shed with 503, and the slot's release restores service.
func TestSharedAdmissionAcrossProtocols(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{MaxInFlight: 1, ConnWindow: 8, StreamChunk: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stream := wire.SampleReq{Key: "plain", N: 64, Credit: 0}.Encode(nil, true)
	if err := wire.WriteFrame(conn, wire.OpSampleStream, 0, 1, stream); err != nil {
		t.Fatal(err)
	}
	// Wait until the stream actually occupies the budget.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.inUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never acquired the in-flight budget")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP status %d while budget exhausted, want 503", resp.StatusCode)
	}
	// Release and verify recovery.
	if err := wire.WriteFrame(conn, wire.OpCredit, 0, 1, wire.CreditGrant{N: 64}.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		h, _, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if h.Flags&wire.FlagFinal != 0 {
			break
		}
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("HTTP still shedding after release: %d", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinaryShutdownBounded pins the drain contract: idle connections
// close immediately, and a mid-flight stream cannot stretch the drain
// past the context deadline — it is force-closed instead.
func TestBinaryShutdownBounded(t *testing.T) {
	s, addr := newBinaryTestServer(t, Config{StreamChunk: 64})
	// One idle connection (a finished request, then nothing).
	idle := dialTestClient(t, addr)
	if _, err := idle.Sample("plain", 1, wire.SampleOpts{}); err != nil {
		t.Fatal(err)
	}
	// One connection parked mid-stream on credit.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stream := wire.SampleReq{Key: "plain", N: 1000, Credit: 0}.Encode(nil, true)
	if err := wire.WriteFrame(conn, wire.OpSampleStream, 0, 1, stream); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.bin.streamsActive.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.ShutdownBinary(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want DeadlineExceeded (stream was mid-flight)", err)
	}
	if elapsed > 1*time.Second {
		t.Fatalf("drain took %v, want ≈150ms — the deadline did not bound it", elapsed)
	}
	// Both connections must now be closed server-side: reads fail fast.
	_ = conn.SetReadDeadline(time.Now().Add(1 * time.Second))
	for {
		if _, _, err := wire.ReadFrame(conn, 0); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("stream connection still open after bounded drain")
			}
			break
		}
	}
	if got := s.bin.connsActive.Load(); got != 0 {
		t.Fatalf("%d connections still tracked after drain", got)
	}
}
