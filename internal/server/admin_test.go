package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/setdb"
)

// newObsServer builds a Server (not just its handler) so tests can
// reach SetReady and AdminHandler, plus httptest frontends for both the
// data and admin planes.
func newObsServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *httptest.Server) {
	t.Helper()
	opts, err := setdb.PlanOptions(0.9, 256, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pruned = true
	opts.Seed = 7
	db, err := setdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("plain", 1, 2, 3, 4, 5, 6, 7, 8); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 42
	srv := New(db, cfg)
	data := httptest.NewServer(srv)
	admin := httptest.NewServer(srv.AdminHandler())
	t.Cleanup(data.Close)
	t.Cleanup(admin.Close)
	return srv, data, admin
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition drives traffic through the HTTP plane and then
// validates the scrape end to end: declared families all have samples,
// no series repeats, histograms are cumulative with +Inf == _count, and
// the per-endpoint and per-stage series show the traffic just sent.
func TestMetricsExposition(t *testing.T) {
	srv, data, admin := newObsServer(t, Config{})
	srv.SetReady(true)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(data.URL+"/v1/sample", "application/json",
			strings.NewReader(`{"key":"plain","n":4}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	code, body := get(t, admin.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}

	declared := map[string]bool{}
	sampled := map[string]bool{}
	series := map[string]bool{}
	var bucketPrev float64
	var bucketFamily string
	var infVal, countVal float64
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		if series[key] {
			t.Errorf("duplicate series %q", key)
		}
		series[key] = true
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		sampled[base] = true

		// Cumulative monotonicity for the request-duration histogram of
		// the sampled endpoint, bucket order as rendered.
		if strings.HasPrefix(key, `bst_request_duration_seconds_bucket{endpoint="/v1/sample"`) {
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad value %q: %v", line, err)
			}
			if bucketFamily == key[:40] && v < bucketPrev {
				t.Errorf("histogram not cumulative at %q: %v < %v", key, v, bucketPrev)
			}
			bucketFamily = key[:40]
			bucketPrev = v
			if strings.Contains(key, `le="+Inf"`) {
				infVal = v
			}
		}
		if strings.HasPrefix(key, `bst_request_duration_seconds_count{endpoint="/v1/sample"`) {
			countVal, _ = strconv.ParseFloat(valStr, 64)
		}
	}
	for fam := range declared {
		if !sampled[fam] {
			t.Errorf("family %s declared with # TYPE but has no samples", fam)
		}
	}
	if infVal != 3 || countVal != 3 {
		t.Errorf("+Inf bucket %v / _count %v, want 3 requests", infVal, countVal)
	}
	for _, want := range []string{
		`bst_requests_total{endpoint="/v1/sample"} 3`,
		`bst_request_stage_duration_seconds_count{endpoint="/v1/sample",stage="decode"} 3`,
		`bst_request_stage_duration_seconds_count{endpoint="/v1/sample",stage="execute"} 3`,
		"bst_ready 1",
		"bst_go_goroutines",
		`bst_admission_limit{budget="global"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestHealthzReadyzLifecycle walks /readyz through the serving
// lifecycle: not ready at boot (replay may still be running), ready
// after SetReady(true), not ready again once drain begins — while
// /healthz stays 200 throughout.
func TestHealthzReadyzLifecycle(t *testing.T) {
	srv, _, admin := newObsServer(t, Config{})
	if code, _ := get(t, admin.URL+"/healthz"); code != 200 {
		t.Errorf("healthz at boot: %d", code)
	}
	if code, _ := get(t, admin.URL+"/readyz"); code != 503 {
		t.Errorf("readyz before SetReady: %d, want 503", code)
	}
	srv.SetReady(true)
	if code, _ := get(t, admin.URL+"/readyz"); code != 200 {
		t.Errorf("readyz after SetReady(true): %d", code)
	}
	srv.SetReady(false) // drain begins
	if code, _ := get(t, admin.URL+"/readyz"); code != 503 {
		t.Errorf("readyz during drain: %d, want 503", code)
	}
	if code, _ := get(t, admin.URL+"/healthz"); code != 200 {
		t.Errorf("healthz during drain: %d", code)
	}
}

func TestPprofIndexServed(t *testing.T) {
	_, _, admin := newObsServer(t, Config{})
	code, body := get(t, admin.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}

// TestRequestIDPropagation covers the three header cases: a well-formed
// client ID is propagated, a malformed one is replaced, and no header
// gets a generated ID. Error responses must carry the ID in the body.
func TestRequestIDPropagation(t *testing.T) {
	_, data, _ := newObsServer(t, Config{})
	req, _ := http.NewRequest("POST", data.URL+"/v1/sample", strings.NewReader(`{"key":"plain"}`))
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Errorf("well-formed client ID not propagated: %q", got)
	}

	req, _ = http.NewRequest("POST", data.URL+"/v1/sample", strings.NewReader(`{"key":"plain"}`))
	req.Header.Set("X-Request-ID", "has spaces and {braces}")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "" || strings.Contains(got, " ") || len(got) != 16 {
		t.Errorf("malformed client ID should be replaced by a generated one, got %q", got)
	}

	// Error responses echo the ID in the JSON body.
	resp, err = http.Post(data.URL+"/v1/sample", "application/json",
		strings.NewReader(`{"key":"no-such-set"}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 || eb.RequestID == "" {
		t.Errorf("404 body should carry request_id: status %d, body %+v", resp.StatusCode, eb)
	}
	if eb.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("body request_id %q != header %q", eb.RequestID, resp.Header.Get("X-Request-ID"))
	}
}

// TestTraceDisabled asserts the off switch really is off: no response
// header, no request_id in error bodies, no stage series in the scrape.
func TestTraceDisabled(t *testing.T) {
	_, data, admin := newObsServer(t, Config{TraceDisabled: true})
	resp, err := http.Post(data.URL+"/v1/sample", "application/json",
		strings.NewReader(`{"key":"plain"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "" {
		t.Errorf("TraceDisabled leaked X-Request-ID %q", got)
	}
	_, body := get(t, admin.URL+"/metrics")
	if strings.Contains(body, "bst_request_stage_duration_seconds") {
		t.Error("TraceDisabled still exported stage histograms")
	}
	if !strings.Contains(body, `bst_requests_total{endpoint="/v1/sample"} 1`) {
		t.Error("per-endpoint counters must stay on with tracing off")
	}
}

// TestSlowRequestLog sets an absurdly low threshold so every request is
// "slow" and asserts the warn line carries the joinable fields.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	_, data, _ := newObsServer(t, Config{Logger: logger, SlowRequest: time.Nanosecond})
	req, _ := http.NewRequest("POST", data.URL+"/v1/sample", strings.NewReader(`{"key":"plain"}`))
	req.Header.Set("X-Request-ID", "slow-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{"slow request", "request_id=slow-probe-1",
		"endpoint=/v1/sample", "stages_us.execute="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q in:\n%s", want, out)
		}
	}
}
