package server

// Durability surface: every mutation flows through applyWrites (so a
// configured WAL logs it before the client sees the ack), and the
// snapshot/restore admin endpoints exposed on both protocols:
//
//	GET  /v1/snapshot   download a live restore bundle (works with or without a WAL)
//	POST /v1/snapshot   trigger an on-disk snapshot (requires -data-dir)
//	POST /v1/restore    replace the database with an uploaded bundle
//
// plus the binary opcodes OpSnapshot and OpRestore.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/setdb"
	"repro/internal/wal"
)

// applyWrites runs one batch of mutations through the durability layer
// when one is configured (apply + log + fsync before the ack), or
// straight into the in-memory database otherwise.
func (s *Server) applyWrites(writes []setdb.Write) error {
	if d := s.cfg.Durability; d != nil {
		return d.Apply(writes)
	}
	return s.DB().ApplyBatch(writes)
}

// handleSnapshotGet streams a live restore bundle of the current
// database. It needs no WAL: the bundle is produced from a pinned
// in-memory view, so this doubles as the backup/replication primitive
// for purely in-memory servers.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="setdb.snap"`)
	if _, err := s.DB().SnapshotView().WriteBundleTo(w); err != nil {
		// Headers are long gone mid-stream; the aborted connection is
		// the only signal the client needs.
		return fmt.Errorf("%w: snapshot download: %v", errStreamAborted, err)
	}
	return nil
}

// SnapshotTriggerResponse is the POST /v1/snapshot payload.
type SnapshotTriggerResponse struct {
	Snapshot wal.SnapshotInfo `json:"snapshot"`
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) error {
	d := s.cfg.Durability
	if d == nil {
		return errf(http.StatusBadRequest, "server has no durability layer (start with -data-dir); GET /v1/snapshot still downloads a live bundle")
	}
	info, err := d.Snapshot()
	if err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, SnapshotTriggerResponse{Snapshot: info})
	return nil
}

// RestoreResponse acknowledges a completed restore.
type RestoreResponse struct {
	Restored bool   `json:"restored"`
	Sets     int    `json:"sets"`
	Dynamic  int    `json:"dynamic_sets"`
	Backend  string `json:"backend"`
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRestoreBytes)
	db, err := setdb.ReadBundle(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "restore bundle exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "bad restore bundle: %v", err)
	}
	if err := s.adoptDB(db); err != nil {
		return err
	}
	st := db.Stats()
	writeJSON(w, r, http.StatusOK, RestoreResponse{
		Restored: true,
		Sets:     st.Sets,
		Dynamic:  st.DynamicSets,
		Backend:  string(db.Options().Backend),
	})
	return nil
}

// restoreFromBytes is the binary-protocol restore path.
func (s *Server) restoreFromBytes(data []byte) (*setdb.DB, error) {
	db, err := setdb.ReadBundle(bytes.NewReader(data))
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad restore bundle: %v", err)
	}
	if err := s.adoptDB(db); err != nil {
		return nil, err
	}
	return db, nil
}

// adoptDB makes a freshly-decoded database the served one: persisted
// through the WAL first (the restore is itself durable), then published
// to readers, then the sampler cache — calibrated against the old
// database's sets — is dropped wholesale.
func (s *Server) adoptDB(db *setdb.DB) error {
	if d := s.cfg.Durability; d != nil {
		if err := d.RestoreDB(db); err != nil {
			return err
		}
		db = d.DB()
	}
	s.db.Store(db)
	s.samplers.Range(func(k, _ any) bool {
		s.samplers.Delete(k)
		return true
	})
	return nil
}
