package server

import (
	"bufio"
	"io"
)

// gate is a non-blocking counting semaphore: the admission-control
// primitive. tryAcquire never waits — admission control's contract is
// that overload turns into immediate sheds, not queues, so there is
// deliberately no blocking acquire.
type gate struct{ ch chan struct{} }

func newGate(n int) *gate { return &gate{ch: make(chan struct{}, n)} }

func (g *gate) tryAcquire() bool {
	select {
	case g.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *gate) release() { <-g.ch }

// inUse reports the current occupancy (point-in-time, for stats).
func (g *gate) inUse() int { return len(g.ch) }

// newBufReader sizes the per-connection read buffer: large enough to
// take a whole pipelined burst in one syscall, small enough that ten
// thousand idle connections stay cheap.
func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, 64<<10) }
