package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
)

// AdminHandler returns the operational surface served on the separate
// -admin-addr listener, kept off the data-plane mux on purpose: pprof
// exposes heap contents and /metrics invites unauthenticated scrapes,
// so neither belongs on the port that faces clients.
//
//	GET /metrics        Prometheus text exposition (0.0.4)
//	GET /healthz        liveness: 200 once the process serves at all
//	GET /readyz         readiness: 200 only between SetReady(true/false)
//	    /debug/pprof/*  the standard Go profiling endpoints
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("not ready\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.collectMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = e.WriteTo(w)
}

// latencyUppers is the exposition-format view of the shared latency
// bucket layout: finite upper bounds in seconds for buckets 0..26; the
// overflow bucket renders as +Inf.
var latencyUppers = func() []float64 {
	uppers := make([]float64, latencyBuckets-1)
	for i := range uppers {
		uppers[i] = bucketUpperUS(i) / 1e6
	}
	return uppers
}()

// collectMetrics assembles the full exposition: request counters and
// histograms per endpoint, stage timings, admission and wire state,
// database and backend gauges, WAL durability counters, and Go runtime
// basics. Map iteration is sorted so consecutive scrapes are
// byte-comparable apart from the values.
func (s *Server) collectMetrics() *obs.Exposition {
	e := obs.NewExposition()
	uptime := time.Since(s.start)

	e.Gauge("bst_uptime_seconds", "Seconds since the server started.", uptime.Seconds())
	ready := 0.0
	if s.Ready() {
		ready = 1
	}
	e.Gauge("bst_ready", "1 when /readyz reports ready.", ready)

	endpoints := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		endpoints = append(endpoints, name)
	}
	sort.Strings(endpoints)
	for _, name := range endpoints {
		m := s.metrics[name]
		label := obs.L("endpoint", name)
		requests := m.requests.Load()
		e.Counter("bst_requests_total", "Requests finished, per endpoint (sheds included).",
			float64(requests), label)
		e.Counter("bst_request_errors_total", "Requests that failed, per endpoint (sheds included).",
			float64(m.errors.Load()), label)
		e.Counter("bst_requests_shed_total", "Requests rejected by admission control, per endpoint.",
			float64(m.shed.Load()), label)
		if requests == 0 {
			// No traffic yet: skip the histograms (30+ series each) so an
			// idle server's scrape stays a few KB. The counters above
			// still advertise the endpoint's existence.
			continue
		}
		counts, sumNS := m.histCounts()
		e.Histogram("bst_request_duration_seconds", "Request latency, per endpoint (sheds excluded).",
			[]obs.Label{label}, latencyUppers, counts[:], float64(sumNS)/1e9)
		for st := 0; st < obs.NumStages; st++ {
			stCounts, stSumNS := m.stageCounts(obs.Stage(st))
			var total uint64
			for _, c := range stCounts {
				total += c
			}
			if total == 0 {
				continue // tracing off, or no traced request yet
			}
			e.Histogram("bst_request_stage_duration_seconds",
				"Per-stage request latency (admission wait, decode, execute, encode).",
				[]obs.Label{label, obs.L("stage", obs.StageNames[st])},
				latencyUppers, stCounts[:], float64(stSumNS)/1e9)
		}
	}

	// Admission gates: point-in-time occupancy against the budget.
	e.Gauge("bst_admission_in_flight", "Requests currently holding an admission slot.",
		float64(s.inflight.inUse()), obs.L("budget", "global"))
	e.Gauge("bst_admission_in_flight", "", float64(s.writeGate.inUse()), obs.L("budget", "write"))
	e.Gauge("bst_admission_limit", "Admission budget size.",
		float64(s.cfg.MaxInFlight), obs.L("budget", "global"))
	e.Gauge("bst_admission_limit", "", float64(s.cfg.MaxWrites), obs.L("budget", "write"))

	// Binary wire listener.
	e.Gauge("bst_wire_conns_active", "Open binary-protocol connections.", float64(s.bin.connsActive.Load()))
	e.Counter("bst_wire_conns_total", "Binary-protocol connections accepted.", float64(s.bin.connsTotal.Load()))
	e.Counter("bst_wire_frames_in_total", "Frames received on the binary listener.", float64(s.bin.framesIn.Load()))
	e.Counter("bst_wire_frames_out_total", "Frames sent on the binary listener.", float64(s.bin.framesOut.Load()))
	e.Gauge("bst_wire_streams_active", "Binary sample streams in progress.", float64(s.bin.streamsActive.Load()))
	e.Counter("bst_wire_credit_stalls_total", "Stream pauses waiting for client credit.", float64(s.bin.creditStalls.Load()))
	e.Counter("bst_wire_protocol_errors_total", "Malformed frames and protocol violations.", float64(s.bin.protoErrors.Load()))
	e.Counter("bst_wire_shed_total", "BUSY frames sent by admission control.", float64(s.bin.shed.Load()))

	// Database state: copy-on-write write path and tree memory.
	st := s.DB().Stats()
	e.Gauge("bst_db_sets", "Plain sets stored.", float64(st.Sets))
	e.Gauge("bst_db_dynamic_sets", "Dynamic (deletable) sets stored.", float64(st.DynamicSets))
	e.Counter("bst_db_state_writes_total", "Copy-on-write shard-state writes.", float64(st.StateWrites))
	e.Counter("bst_db_state_publishes_total", "Shard-state snapshot publishes (group commit coalesces writes).", float64(st.StatePublishes))
	e.Counter("bst_db_state_bytes_copied_total", "Bytes copied by the copy-on-write write path.", float64(st.StateBytesCopied))
	e.Counter("bst_db_generations_total", "Filter-version generations published.", float64(st.Generations))
	e.Gauge("bst_db_tree_nodes", "Materialized BST nodes.", float64(st.TreeNodes))
	e.Gauge("bst_db_tree_memory_bytes", "Bytes held by the sampling tree.", float64(st.TreeMemoryBytes))
	e.Gauge("bst_db_growth_epoch", "Adaptive shard-layout growth epoch.", float64(st.GrowthEpoch))
	e.Gauge("bst_db_total_chunks", "Chunks across all shard key maps.", float64(st.TotalChunks))

	// Dynamic-set membership backend descriptor.
	kind := obs.L("kind", st.Backend.Kind)
	e.Gauge("bst_backend_entries", "Live elements across dynamic sets.", float64(st.Backend.Entries), kind)
	e.Gauge("bst_backend_memory_bytes", "Resident bytes of the membership backend.", float64(st.Backend.MemoryBytes), kind)
	e.Gauge("bst_backend_bits_per_entry", "Realized bits per stored element.", st.Backend.BitsPerEntry, kind)
	e.Gauge("bst_backend_load_factor", "Fingerprint-slot occupancy (cuckoo backends).", st.Backend.LoadFactor, kind)

	// Durability (only when a WAL store backs the server).
	if d := s.cfg.Durability; d != nil {
		ds := d.Stats()
		e.Counter("bst_wal_appended_bytes_total", "Bytes appended to the write-ahead log.", float64(ds.AppendedBytes))
		e.Counter("bst_wal_fsyncs_total", "Successful fsyncs of the active segment.", float64(ds.Fsyncs))
		e.Counter("bst_wal_fsync_errors_total", "Failed fsyncs of the active segment.", float64(ds.FsyncErrors))
		e.Counter("bst_wal_rotations_total", "Segment rotations.", float64(ds.Rotations))
		e.Counter("bst_wal_snapshots_total", "Snapshots completed.", float64(ds.Snapshots))
		e.Counter("bst_wal_snapshot_errors_total", "Snapshot attempts that failed.", float64(ds.SnapshotErrors))
		e.Gauge("bst_wal_segments", "Log segments on disk.", float64(ds.Segments))
		e.Gauge("bst_wal_bytes", "Total on-disk log bytes.", float64(ds.WALBytes))
		e.Gauge("bst_wal_seq", "Last applied record sequence number.", float64(ds.Seq))
		e.Gauge("bst_wal_records_since_snapshot", "Records appended since the last snapshot.", float64(ds.RecordsSinceSnapshot))
		e.Gauge("bst_wal_last_snapshot_seq", "Sequence number covered by the newest snapshot.", float64(ds.LastSnapshotSeq))
		if ds.LastSnapshotUnix > 0 {
			e.Gauge("bst_wal_snapshot_age_seconds", "Seconds since the last completed snapshot.",
				time.Since(time.Unix(ds.LastSnapshotUnix, 0)).Seconds())
		}
		e.Counter("bst_wal_dropped_tail_bytes", "Torn tail bytes dropped during boot recovery.", float64(ds.DroppedTailBytes))
		e.Counter("bst_wal_replayed_records", "Records replayed during boot recovery.", float64(ds.ReplayedAtBoot))
	}

	// Go runtime basics — enough to spot GC pressure and goroutine leaks
	// without importing a metrics dependency.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Gauge("bst_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	e.Gauge("bst_go_heap_alloc_bytes", "Heap bytes allocated and in use.", float64(ms.HeapAlloc))
	e.Gauge("bst_go_heap_sys_bytes", "Heap bytes obtained from the OS.", float64(ms.HeapSys))
	e.Gauge("bst_go_heap_objects", "Live heap objects.", float64(ms.HeapObjects))
	e.Counter("bst_go_gc_runs_total", "Completed GC cycles.", float64(ms.NumGC))
	e.Counter("bst_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(ms.PauseTotalNs)/1e9)
	e.Gauge("bst_go_gomaxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))
	return e
}
