package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/setdb"
	"repro/internal/wal"
	"repro/internal/wire"
)

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newDurableTestServer wraps a fresh WAL-backed store in an httptest
// server. The database starts empty; tests ingest through the API so
// every write flows through the durability layer.
func newDurableTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *wal.Store) {
	t.Helper()
	opts, err := setdb.PlanOptions(0.9, 256, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pruned = true
	opts.Seed = 7
	store, err := wal.Open(t.TempDir(), func() (*setdb.DB, error) { return setdb.Open(opts) }, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	cfg.Seed = 42
	cfg.Durability = store
	s := New(store.DB(), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, store
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStatsDurabilitySection(t *testing.T) {
	ts, _, _ := newDurableTestServer(t, Config{})
	if code := post(t, ts, "/v1/add", `{"key":"a","ids":[1,2,3]}`, nil); code != 200 {
		t.Fatalf("add: status %d", code)
	}
	if code := post(t, ts, "/v1/add", `{"key":"b","ids":[4,5],"dynamic":true}`, nil); code != 200 {
		t.Fatalf("dynamic add: status %d", code)
	}
	st := getStats(t, ts)
	d := st.Durability
	if d == nil {
		t.Fatal("stats of a WAL-backed server carry no durability section")
	}
	if d.FsyncPolicy != string(wal.FsyncAlways) {
		t.Fatalf("fsync policy = %q, want %q", d.FsyncPolicy, wal.FsyncAlways)
	}
	if d.Seq != 2 {
		t.Fatalf("seq = %d after 2 writes", d.Seq)
	}
	if d.Segments < 1 || d.WALBytes <= 0 {
		t.Fatalf("segment accounting: %+v", d)
	}
	// The in-memory server must not fake one.
	plain, _ := newTestServer(t, Config{})
	if st := getStats(t, plain); st.Durability != nil {
		t.Fatalf("in-memory server reports durability: %+v", st.Durability)
	}
}

func TestSnapshotEndpointsHTTP(t *testing.T) {
	ts, _, store := newDurableTestServer(t, Config{})
	if code := post(t, ts, "/v1/add", `{"key":"s","ids":[10,20,30]}`, nil); code != 200 {
		t.Fatalf("add: status %d", code)
	}

	// GET downloads a live bundle that ReadBundle accepts.
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	bundle := readAll(t, resp)
	if resp.StatusCode != 200 || len(bundle) == 0 {
		t.Fatalf("GET /v1/snapshot: status %d, %d bytes", resp.StatusCode, len(bundle))
	}
	if _, err := setdb.ReadBundle(bytes.NewReader(bundle)); err != nil {
		t.Fatalf("downloaded bundle does not decode: %v", err)
	}

	// POST triggers an on-disk snapshot and reports the file it wrote.
	var trig SnapshotTriggerResponse
	if code := post(t, ts, "/v1/snapshot", "", &trig); code != 200 {
		t.Fatalf("POST /v1/snapshot: status %d", code)
	}
	if trig.Snapshot.File == "" || trig.Snapshot.Bytes <= 0 {
		t.Fatalf("snapshot info: %+v", trig.Snapshot)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), trig.Snapshot.File)); err != nil {
		t.Fatalf("reported snapshot file missing: %v", err)
	}
	after := getStats(t, ts)
	if after.Durability.Snapshots == 0 || after.Durability.LastSnapshotUnix == 0 {
		t.Fatalf("snapshot not reflected in stats: %+v", after.Durability)
	}

	// Unsupported method: 405 with both allowed methods advertised.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/snapshot", nil)
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/snapshot: status %d", mresp.StatusCode)
	}
	allow := mresp.Header.Get("Allow")
	if !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodPost) {
		t.Fatalf("Allow = %q", allow)
	}

	// Without a WAL the trigger is a 400, but the download still works.
	plain, _ := newTestServer(t, Config{})
	if code := post(t, plain, "/v1/snapshot", "", nil); code != http.StatusBadRequest {
		t.Fatalf("POST /v1/snapshot without WAL: status %d", code)
	}
	presp, err := http.Get(plain.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	pb := readAll(t, presp)
	if presp.StatusCode != 200 || len(pb) == 0 {
		t.Fatalf("GET /v1/snapshot without WAL: status %d, %d bytes", presp.StatusCode, len(pb))
	}
}

func TestRestoreHTTP(t *testing.T) {
	// Source: the shared test database (one plain set, one dynamic set).
	src, srcDB := newTestServer(t, Config{})
	resp, err := http.Get(src.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	bundle := readAll(t, resp)

	// Destination: a WAL-backed server with unrelated contents.
	dst, s, _ := newDurableTestServer(t, Config{})
	if code := post(t, dst, "/v1/add", `{"key":"doomed","ids":[1]}`, nil); code != 200 {
		t.Fatalf("add: status %d", code)
	}
	var rr RestoreResponse
	if code := post(t, dst, "/v1/restore", string(bundle), &rr); code != 200 {
		t.Fatalf("POST /v1/restore: status %d (%+v)", code, rr)
	}
	if !rr.Restored || rr.Sets == 0 || rr.Dynamic == 0 {
		t.Fatalf("restore response: %+v", rr)
	}

	// The restored state serves the source's sets and dropped the old one.
	want, err := srcDB.Reconstruct("plain", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DB().Reconstruct("plain", 0, nil)
	if err != nil {
		t.Fatalf("reconstructing restored set: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored set has %d ids, want %d", len(got), len(want))
	}
	var sr SampleResponse
	if code := post(t, dst, "/v1/sample", `{"key":"doomed"}`, &sr); code != http.StatusNotFound {
		t.Fatalf("pre-restore set survived: status %d", code)
	}

	// The restore is itself durable: re-download must be byte-identical
	// to the uploaded bundle plus nothing (same serialization).
	dresp, err := http.Get(dst.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	redownload := readAll(t, dresp)
	if !bytes.Equal(redownload, bundle) {
		t.Fatalf("re-downloaded bundle differs: %d vs %d bytes", len(redownload), len(bundle))
	}

	// Garbage is a 400, an oversized upload a 413.
	if code := post(t, dst, "/v1/restore", "not a bundle", nil); code != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d", code)
	}
	tiny, _, _ := newDurableTestServer(t, Config{MaxRestoreBytes: 16})
	if code := post(t, tiny, "/v1/restore", string(bundle), nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized restore: status %d", code)
	}
}

func TestBinarySnapshotAndRestore(t *testing.T) {
	// A WAL-backed server on the binary listener.
	_, s, store := newDurableTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(ln)
	t.Cleanup(func() { ln.Close() })
	c := dialTestClient(t, ln.Addr().String())

	if _, err := c.Add(wire.AddSet{Key: "wired", IDs: []uint64{7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	info, err := c.Snapshot()
	if err != nil {
		t.Fatalf("OpSnapshot: %v", err)
	}
	var trig SnapshotTriggerResponse
	if err := json.Unmarshal(info, &trig); err != nil {
		t.Fatalf("snapshot info payload: %v", err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), trig.Snapshot.File)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// Restore over the wire: replace the database with the shared test
	// fixture's bundle.
	_, fixtureDB := newTestServer(t, Config{})
	var buf bytes.Buffer
	if _, err := fixtureDB.SnapshotView().WriteBundleTo(&buf); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Restore(buf.Bytes())
	if err != nil {
		t.Fatalf("OpRestore: %v", err)
	}
	if ack.Count == 0 {
		t.Fatalf("restore ack: %+v", ack)
	}
	if _, err := s.DB().Reconstruct("plain", 0, nil); err != nil {
		t.Fatalf("restored set unreachable: %v", err)
	}

	// OpSnapshot against a WAL-less server is a clean protocol error.
	_, addr := newBinaryTestServer(t, Config{})
	pc := dialTestClient(t, addr)
	if _, err := pc.Snapshot(); err == nil {
		t.Fatal("OpSnapshot without a WAL succeeded")
	}
}
