package server

import (
	"sync/atomic"
	"time"
)

// endpointMetrics accumulates per-endpoint counters. All fields are
// atomics: the hot path adds to them without locks, and /v1/stats reads
// them without pausing traffic.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	latencyNS atomic.Uint64 // cumulative, successful and failed alike
	maxNS     atomic.Uint64
}

// observe records one finished request.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := uint64(d.Nanoseconds())
	m.latencyNS.Add(ns)
	for {
		old := m.maxNS.Load()
		if ns <= old || m.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	AvgLatencyUS float64 `json:"avg_latency_us"`
	MaxLatencyUS float64 `json:"max_latency_us"`
	QPS          float64 `json:"qps"`
}

// snapshot renders the counters; uptime converts the request count into
// a lifetime QPS.
func (m *endpointMetrics) snapshot(uptime time.Duration) EndpointStats {
	st := EndpointStats{
		Requests:     m.requests.Load(),
		Errors:       m.errors.Load(),
		MaxLatencyUS: float64(m.maxNS.Load()) / 1e3,
	}
	if st.Requests > 0 {
		st.AvgLatencyUS = float64(m.latencyNS.Load()) / float64(st.Requests) / 1e3
	}
	if s := uptime.Seconds(); s > 0 {
		st.QPS = float64(st.Requests) / s
	}
	return st
}
