package server

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Latency histogram layout: fixed log-spaced buckets, one atomic counter
// each. Bucket i holds durations in [2^(i-1)µs, 2^i µs) — bucket 0 is
// everything under 1µs, the last bucket is an overflow for anything at
// or above ~67s. Log spacing gives ~1 significant figure of resolution
// across six orders of magnitude for 28 words per endpoint, and the
// power-of-two boundaries make the bucket index one bits.Len64, no
// search, no float math on the hot path.
const latencyBuckets = 28

// bucketForNS maps a duration to its histogram bucket.
func bucketForNS(ns uint64) int {
	us := ns / 1e3
	idx := bits.Len64(us) // 0 for <1µs, 1 for 1µs, ... log2+1 beyond
	if idx >= latencyBuckets {
		idx = latencyBuckets - 1
	}
	return idx
}

// bucketUpperUS is the exclusive upper bound of bucket i in µs.
func bucketUpperUS(i int) float64 {
	return float64(uint64(1) << i)
}

// endpointMetrics accumulates per-endpoint counters. All fields are
// atomics: the hot path adds to them without locks, and /v1/stats reads
// them without pausing traffic.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	shed      atomic.Uint64 // rejected by admission control (subset of errors)
	latencyNS atomic.Uint64 // cumulative, successful and failed alike
	maxNS     atomic.Uint64
	hist      [latencyBuckets]atomic.Uint64

	// Per-stage timing histograms (admission wait / decode / execute /
	// encode), fed by request tracing. Same bucket layout as hist, so
	// "where does p99 live" is answerable stage by stage from /metrics.
	stageNS   [obs.NumStages]atomic.Uint64
	stageHist [obs.NumStages][latencyBuckets]atomic.Uint64
}

// observe records one finished request.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := uint64(d.Nanoseconds())
	m.latencyNS.Add(ns)
	m.hist[bucketForNS(ns)].Add(1)
	for {
		old := m.maxNS.Load()
		if ns <= old || m.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// observeStages folds one finished request's trace into the per-stage
// histograms. Every stage is recorded (a zero-duration stage lands in
// bucket 0) so all four stage series share one _count and stay
// comparable.
func (m *endpointMetrics) observeStages(tr *obs.Trace) {
	for s := 0; s < obs.NumStages; s++ {
		ns := uint64(tr.StageDur(obs.Stage(s)).Nanoseconds())
		m.stageNS[s].Add(ns)
		m.stageHist[s][bucketForNS(ns)].Add(1)
	}
}

// histCounts copies the latency histogram plus its cumulative sum for
// export — a point-in-time view taken bucket by bucket.
func (m *endpointMetrics) histCounts() (counts [latencyBuckets]uint64, sumNS uint64) {
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
	}
	return counts, m.latencyNS.Load()
}

// stageCounts is histCounts for one stage histogram.
func (m *endpointMetrics) stageCounts(s obs.Stage) (counts [latencyBuckets]uint64, sumNS uint64) {
	for i := range m.stageHist[s] {
		counts[i] = m.stageHist[s][i].Load()
	}
	return counts, m.stageNS[s].Load()
}

// observeShed records one request rejected by admission control. Sheds
// count as requests and errors (a client saw a failure) but skip the
// histogram: a fast-path rejection's ~µs latency would drag p50 down
// and misrepresent the latency of served traffic.
func (m *endpointMetrics) observeShed() {
	m.requests.Add(1)
	m.errors.Add(1)
	m.shed.Add(1)
}

// quantile estimates the q-th latency quantile (0 < q < 1) in µs from
// the histogram counts, interpolating linearly within the bucket that
// holds the target rank. counts is a point-in-time copy so the answer is
// internally consistent even while writers race.
func quantile(counts *[latencyBuckets]uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if seen+fc >= rank {
			lower := 0.0
			if i > 0 {
				lower = bucketUpperUS(i - 1)
			}
			upper := bucketUpperUS(i)
			frac := (rank - seen) / fc
			return lower + frac*(upper-lower)
		}
		seen += fc
	}
	return bucketUpperUS(latencyBuckets - 1)
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	Shed         uint64  `json:"shed,omitempty"` // admission-control rejections
	AvgLatencyUS float64 `json:"avg_latency_us"`
	P50LatencyUS float64 `json:"p50_latency_us"`
	P99LatencyUS float64 `json:"p99_latency_us"`
	MaxLatencyUS float64 `json:"max_latency_us"`
	QPS          float64 `json:"qps"`
}

// snapshot renders the counters; uptime converts the request count into
// a lifetime QPS.
func (m *endpointMetrics) snapshot(uptime time.Duration) EndpointStats {
	st := EndpointStats{
		Requests:     m.requests.Load(),
		Errors:       m.errors.Load(),
		Shed:         m.shed.Load(),
		MaxLatencyUS: float64(m.maxNS.Load()) / 1e3,
	}
	var counts [latencyBuckets]uint64
	var histTotal uint64
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
		histTotal += counts[i]
	}
	if histTotal > 0 {
		st.P50LatencyUS = quantile(&counts, 0.50)
		st.P99LatencyUS = quantile(&counts, 0.99)
	}
	if observed := histTotal; observed > 0 {
		st.AvgLatencyUS = float64(m.latencyNS.Load()) / float64(observed) / 1e3
	}
	if s := uptime.Seconds(); s > 0 {
		st.QPS = float64(st.Requests) / s
	}
	return st
}
