package server

// The binary listener: the compact wire protocol (internal/wire) served
// next to the HTTP/JSON API, over the same database and the same
// admission gates. The protocol exists because the serving benchmark
// showed JSON encode/decode as a visible per-request cost; this path
// replaces it with varint frames and replaces HTTP's per-request
// connection machinery with pipelined frames on long-lived connections.
//
// Backpressure happens at three levels, innermost first:
//
//   - per-connection window (Config.ConnWindow): at most that many
//     requests of one connection are in flight at once; excess frames
//     get an immediate BUSY frame. One greedy pipelining client
//     therefore saturates itself, not the server.
//   - global budget (Config.MaxInFlight) and the write sub-budget
//     (Config.MaxWrites), shared with the HTTP listener: when the
//     server-wide budget is gone, requests are shed with BUSY instead
//     of queueing behind the group-commit path.
//   - per-stream credit: a streaming sample response may only have
//     Credit unconsumed samples in flight; the server stalls drawing
//     (creditStalls counts it) until the client grants more via
//     OpCredit frames. A slow stream consumer therefore costs the
//     server a parked goroutine, not an unbounded buffer.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/setdb"
	"repro/internal/wire"
)

// ErrBinaryClosed is returned by ServeBinary after ShutdownBinary tears
// the listener down — the binary analogue of http.ErrServerClosed.
var ErrBinaryClosed = errors.New("server: binary listener closed")

// binEndpoints are the metrics keys of the binary protocol's endpoints,
// registered alongside the HTTP paths so /v1/stats reports both
// protocols in one endpoint table.
var binEndpoints = []string{
	"bin:sample", "bin:sample_stream", "bin:reconstruct",
	"bin:intersection", "bin:add", "bin:remove", "bin:stats",
	"bin:snapshot", "bin:restore",
}

// binEndpointFor maps a request opcode to its metrics key and write-path
// classification.
func binEndpointFor(op byte) (name string, isWrite, ok bool) {
	switch op {
	case wire.OpSample:
		return "bin:sample", false, true
	case wire.OpSampleStream:
		return "bin:sample_stream", false, true
	case wire.OpReconstruct:
		return "bin:reconstruct", false, true
	case wire.OpIntersection:
		return "bin:intersection", false, true
	case wire.OpAdd:
		return "bin:add", true, true
	case wire.OpRemove:
		return "bin:remove", true, true
	case wire.OpStats:
		return "bin:stats", false, true
	case wire.OpSnapshot:
		// Snapshotting never touches the shard write path (it pins a
		// read view), so it rides the global budget only.
		return "bin:snapshot", false, true
	case wire.OpRestore:
		return "bin:restore", true, true
	}
	return "", false, false
}

// binState is the binary listener's shared state and counters, embedded
// in Server so /v1/stats can report it and both protocols share gates.
type binState struct {
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*binConn]struct{}
	draining bool
	wg       sync.WaitGroup

	connsActive   atomic.Int64
	connsTotal    atomic.Uint64
	framesIn      atomic.Uint64
	framesOut     atomic.Uint64
	streamsActive atomic.Int64
	creditStalls  atomic.Uint64
	protoErrors   atomic.Uint64
	shed          atomic.Uint64
}

func (b *binState) isDraining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// ServeBinary accepts and serves binary-protocol connections on ln until
// ShutdownBinary (then it returns ErrBinaryClosed) or a fatal accept
// error. Call it from its own goroutine, like http.Server.Serve.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.bin.mu.Lock()
	if s.bin.draining {
		s.bin.mu.Unlock()
		ln.Close()
		return ErrBinaryClosed
	}
	if s.bin.ln != nil {
		s.bin.mu.Unlock()
		ln.Close()
		return errors.New("server: ServeBinary called twice")
	}
	s.bin.ln = ln
	if s.bin.conns == nil {
		s.bin.conns = map[*binConn]struct{}{}
	}
	s.bin.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.bin.isDraining() {
				return ErrBinaryClosed
			}
			return err
		}
		bc := &binConn{srv: s, conn: conn, streams: map[uint32]*binStream{}}
		s.bin.mu.Lock()
		if s.bin.draining {
			s.bin.mu.Unlock()
			conn.Close()
			continue
		}
		s.bin.conns[bc] = struct{}{}
		s.bin.mu.Unlock()
		s.bin.connsActive.Add(1)
		bc.id = s.bin.connsTotal.Add(1)
		s.bin.wg.Add(1)
		go func() {
			defer s.bin.wg.Done()
			bc.serve()
			s.bin.mu.Lock()
			delete(s.bin.conns, bc)
			s.bin.mu.Unlock()
			s.bin.connsActive.Add(-1)
		}()
	}
}

// ShutdownBinary drains the binary listener: stop accepting, close idle
// connections immediately, let in-flight requests (streams included)
// finish until ctx expires, then force-close whatever remains. It always
// returns with every connection closed; the error reports whether the
// drain was graceful (nil) or cut short (ctx.Err()).
func (s *Server) ShutdownBinary(ctx context.Context) error {
	s.bin.mu.Lock()
	s.bin.draining = true
	ln := s.bin.ln
	s.bin.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.bin.wg.Wait()
		close(done)
	}()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.closeBinaryConns(false)
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.closeBinaryConns(true)
			<-done // force-close unblocks every handler promptly
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// closeBinaryConns closes idle connections (zero in-flight requests), or
// every connection when force is set.
func (s *Server) closeBinaryConns(force bool) {
	s.bin.mu.Lock()
	conns := make([]*binConn, 0, len(s.bin.conns))
	for bc := range s.bin.conns {
		conns = append(conns, bc)
	}
	s.bin.mu.Unlock()
	for _, bc := range conns {
		if force || bc.inflight.Load() == 0 {
			bc.close()
		}
	}
}

// binConn is one accepted binary-protocol connection. The reader loop
// (serve) owns the read side; responses are written by per-request
// goroutines under writeMu, one whole frame per critical section, so
// pipelined responses never interleave.
type binConn struct {
	srv      *Server
	conn     net.Conn
	id       uint64 // connection ordinal, the request-ID prefix in traces
	writeMu  sync.Mutex
	inflight atomic.Int32

	streamsMu sync.Mutex
	streams   map[uint32]*binStream
	closed    bool // streams map sealed; set on teardown under streamsMu
}

func (bc *binConn) close() { bc.conn.Close() }

// serve runs the reader loop until the peer disconnects, a protocol
// error poisons the stream, or shutdown closes the connection.
func (bc *binConn) serve() {
	defer bc.conn.Close()
	defer bc.abortStreams()
	br := newBufReader(bc.conn)
	for {
		h, body, err := wire.ReadFrame(br, int(bc.srv.cfg.MaxBodyBytes))
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// clean disconnect between frames
			case errors.Is(err, wire.ErrVersion):
				bc.srv.bin.protoErrors.Add(1)
				bc.writeError(h.RequestID, wire.ErrCodeVersion, err.Error())
			case errors.Is(err, wire.ErrFrameTooLarge):
				bc.srv.bin.protoErrors.Add(1)
				bc.writeError(h.RequestID, wire.ErrCodeTooLarge, err.Error())
			case errors.Is(err, wire.ErrTruncated), errors.Is(err, wire.ErrReserved):
				bc.srv.bin.protoErrors.Add(1)
			}
			// Any of these poisons the framing; the next header offset is
			// unknowable, so the connection closes rather than guessing.
			return
		}
		bc.srv.bin.framesIn.Add(1)
		bc.dispatch(h, body)
	}
}

// dispatch admits one request frame and hands it to a goroutine, or
// sheds it. Credit grants are handled inline — they must overtake queued
// requests, that is their whole point.
func (bc *binConn) dispatch(h wire.Header, body []byte) {
	if h.Opcode == wire.OpCredit {
		bc.grantCredit(h.RequestID, body)
		return
	}
	name, isWrite, ok := binEndpointFor(h.Opcode)
	if !ok {
		bc.srv.bin.protoErrors.Add(1)
		bc.writeError(h.RequestID, wire.ErrCodeBadRequest, fmt.Sprintf("unknown opcode %d", h.Opcode))
		return
	}
	m := bc.srv.metrics[name]
	if bc.srv.bin.isDraining() {
		bc.writeError(h.RequestID, wire.ErrCodeShutdown, "server draining")
		return
	}
	// Admission, cheapest gate first. The per-connection window is
	// checked before the global budget so one connection's burst can
	// never consume global slots it would only be shed from anyway.
	admit := time.Now()
	if int(bc.inflight.Load()) >= bc.srv.cfg.ConnWindow {
		bc.busy(h.RequestID, m, name, "conn window")
		return
	}
	if !bc.srv.inflight.tryAcquire() {
		bc.busy(h.RequestID, m, name, "global budget")
		return
	}
	if isWrite && !bc.srv.writeGate.tryAcquire() {
		bc.srv.inflight.release()
		bc.busy(h.RequestID, m, name, "write budget")
		return
	}
	bc.inflight.Add(1)
	// The trace's request ID combines the connection ordinal with the
	// frame's request id — the same id the response frame echoes, so a
	// client can quote "bin-3-17" and the server log line is findable.
	var tr *obs.Trace
	if !bc.srv.cfg.TraceDisabled {
		tr = obs.NewTrace(fmt.Sprintf("bin-%d-%d", bc.id, h.RequestID))
		tr.Add(obs.StageAdmission, time.Since(admit))
	}
	go func() {
		start := time.Now()
		err := bc.handle(tr, h, body)
		d := time.Since(start)
		m.observe(d, err != nil)
		if tr != nil {
			tr.FillExecute(d)
			m.observeStages(tr)
		}
		bc.srv.logRequest(name, "binary", tr, d, err)
		bc.inflight.Add(-1)
		if isWrite {
			bc.srv.writeGate.release()
		}
		bc.srv.inflight.release()
	}()
}

// busy sheds one request with a BUSY frame — the fast path out: no body
// decode, no database work, one 12-byte frame back.
func (bc *binConn) busy(reqID uint32, m *endpointMetrics, endpoint, cause string) {
	m.observeShed()
	bc.srv.bin.shed.Add(1)
	bc.writeFrame(wire.OpBusy, 0, reqID, nil)
	bc.srv.logShed(endpoint, "binary", nil, cause)
}

// writeFrame writes one frame under the write lock with a write
// deadline, so one dead peer cannot park every handler goroutine of its
// connection forever.
func (bc *binConn) writeFrame(op, flags byte, reqID uint32, body []byte) error {
	bc.writeMu.Lock()
	defer bc.writeMu.Unlock()
	_ = bc.conn.SetWriteDeadline(time.Now().Add(bc.srv.cfg.StreamWriteTimeout))
	err := wire.WriteFrame(bc.conn, op, flags, reqID, body)
	if err == nil {
		bc.srv.bin.framesOut.Add(1)
	}
	return err
}

func (bc *binConn) writeError(reqID uint32, code uint64, msg string) {
	_ = bc.writeFrame(wire.OpError, 0, reqID, wire.ErrorResult{Code: code, Msg: msg}.Encode(nil))
}

// errCodeFor maps handler errors onto wire error codes by reusing the
// HTTP status classification — one taxonomy for both protocols.
func errCodeFor(err error) uint64 { return uint64(statusFor(err)) }

// handle serves one admitted request. The returned error is for metrics
// only; the client-visible form has already been written as an OpError
// frame.
func (bc *binConn) handle(tr *obs.Trace, h wire.Header, body []byte) error {
	var err error
	switch h.Opcode {
	case wire.OpSample:
		err = bc.handleSample(tr, h, body)
	case wire.OpSampleStream:
		err = bc.handleSampleStream(tr, h, body)
	case wire.OpReconstruct:
		err = bc.handleReconstruct(tr, h, body)
	case wire.OpIntersection:
		err = bc.handleIntersection(tr, h, body)
	case wire.OpAdd:
		err = bc.handleAdd(tr, h, body)
	case wire.OpRemove:
		err = bc.handleRemove(tr, h, body)
	case wire.OpStats:
		err = bc.handleStats(tr, h)
	case wire.OpSnapshot:
		err = bc.handleSnapshot(tr, h)
	case wire.OpRestore:
		err = bc.handleRestore(tr, h, body)
	}
	return err
}

// reply writes one response frame, charging the wire write to the
// trace's encode stage. (Varint body packing happens at the call sites
// and rides in execute — it is allocation-light; the frame write with
// its lock and deadline is where encode time actually goes.)
func (bc *binConn) reply(tr *obs.Trace, op, flags byte, reqID uint32, body []byte) error {
	t0 := time.Now()
	err := bc.writeFrame(op, flags, reqID, body)
	tr.Add(obs.StageEncode, time.Since(t0))
	return err
}

// fail writes err to the peer as an error frame and returns it for the
// metrics path. Decode failures additionally count as protocol errors.
func (bc *binConn) fail(reqID uint32, err error) error {
	if errors.Is(err, wire.ErrMalformed) {
		bc.srv.bin.protoErrors.Add(1)
		bc.writeError(reqID, wire.ErrCodeBadRequest, err.Error())
		return err
	}
	bc.writeError(reqID, errCodeFor(err), err.Error())
	return err
}

// sampleRequestFrom translates a wire sample request into the shared
// SampleRequest the HTTP handlers use, applying the same defaults.
func sampleRequestFrom(h wire.Header, m wire.SampleReq, stream bool) SampleRequest {
	req := SampleRequest{
		Key:     m.Key,
		N:       int(m.N),
		Workers: int(m.Workers),
		Dynamic: h.Flags&wire.FlagDynamic != 0,
		Uniform: h.Flags&wire.FlagUniform != 0,
		Stream:  stream,
	}
	if req.N == 0 {
		req.N = 1
	}
	return req
}

// validateSample mirrors handleSample's request validation.
func (bc *binConn) validateSample(req SampleRequest) error {
	if req.Key == "" {
		return errf(400, "missing key")
	}
	if req.N < 0 {
		return errf(400, "negative n %d", req.N)
	}
	if req.Stream {
		if req.N > bc.srv.cfg.MaxStreamBatch {
			return errf(413, "n %d exceeds the streaming batch limit %d", req.N, bc.srv.cfg.MaxStreamBatch)
		}
	} else if req.N > bc.srv.cfg.MaxBatch {
		return errf(413, "n %d exceeds the batch limit %d (stream mode affords up to %d)", req.N, bc.srv.cfg.MaxBatch, bc.srv.cfg.MaxStreamBatch)
	}
	if req.Uniform && req.Dynamic {
		return errf(400, "uniform sampling serves plain sets only")
	}
	return nil
}

func (bc *binConn) handleSample(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeSampleReq(body, false)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	req := sampleRequestFrom(h, m, false)
	if err := bc.validateSample(req); err != nil {
		return bc.fail(h.RequestID, err)
	}
	draw, err := bc.srv.chunkDrawer(req)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	var rng *rand.Rand
	if req.Uniform {
		rng = bc.srv.rng()
		defer bc.srv.putRNG(rng)
	}
	ids, err := draw(req.N, rng)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	resp := wire.SampleResult{Requested: uint64(req.N), IDs: ids}.Encode(nil)
	return bc.reply(tr, wire.OpSampleResult, 0, h.RequestID, resp)
}

// binStream is the flow-control state of one streaming response.
type binStream struct {
	credit atomic.Int64
	notify chan struct{} // capacity 1: "credit changed"
	done   chan struct{} // closed on connection teardown
}

// errStreamStarved marks a stream whose client stopped granting credit
// for a whole StreamWriteTimeout.
var errStreamStarved = errors.New("stream starved of credit")

// take claims up to max samples of credit, waiting (bounded by timeout)
// for a grant when the window is empty.
func (st *binStream) take(max int, timeout time.Duration, stalls *atomic.Uint64) (int, error) {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		c := st.credit.Load()
		if c > 0 {
			n := int64(max)
			if c < n {
				n = c
			}
			if st.credit.CompareAndSwap(c, c-n) {
				return int(n), nil
			}
			continue
		}
		if timer == nil {
			timer = time.NewTimer(timeout)
			stalls.Add(1)
		}
		select {
		case <-st.notify:
		case <-st.done:
			return 0, errStreamAborted
		case <-timer.C:
			return 0, errStreamStarved
		}
	}
}

func (st *binStream) grant(n uint64) {
	st.credit.Add(int64(n))
	select {
	case st.notify <- struct{}{}:
	default:
	}
}

// registerStream installs the flow-control state for stream id, failing
// on a duplicate id (a client bug) or a torn-down connection.
func (bc *binConn) registerStream(id uint32, st *binStream) error {
	bc.streamsMu.Lock()
	defer bc.streamsMu.Unlock()
	if bc.closed {
		return errStreamAborted
	}
	if _, dup := bc.streams[id]; dup {
		return fmt.Errorf("%w: stream id %d already active", wire.ErrMalformed, id)
	}
	bc.streams[id] = st
	return nil
}

func (bc *binConn) unregisterStream(id uint32) {
	bc.streamsMu.Lock()
	delete(bc.streams, id)
	bc.streamsMu.Unlock()
}

// abortStreams wakes every parked stream worker on connection teardown.
func (bc *binConn) abortStreams() {
	bc.streamsMu.Lock()
	bc.closed = true
	for id, st := range bc.streams {
		close(st.done)
		delete(bc.streams, id)
	}
	bc.streamsMu.Unlock()
}

// grantCredit applies an OpCredit frame. Grants for unknown stream ids
// are dropped silently: the stream may have finished (or failed) while
// the grant was in flight, which is a benign race, not a protocol error.
func (bc *binConn) grantCredit(id uint32, body []byte) {
	g, err := wire.DecodeCreditGrant(body)
	if err != nil {
		bc.srv.bin.protoErrors.Add(1)
		bc.writeError(id, wire.ErrCodeBadRequest, err.Error())
		return
	}
	bc.streamsMu.Lock()
	st := bc.streams[id]
	bc.streamsMu.Unlock()
	if st != nil && g.N > 0 {
		st.grant(g.N)
	}
}

func (bc *binConn) handleSampleStream(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeSampleReq(body, true)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	req := sampleRequestFrom(h, m, true)
	if err := bc.validateSample(req); err != nil {
		return bc.fail(h.RequestID, err)
	}
	draw, err := bc.srv.chunkDrawer(req)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	st := &binStream{notify: make(chan struct{}, 1), done: make(chan struct{})}
	st.credit.Store(int64(m.Credit))
	if err := bc.registerStream(h.RequestID, st); err != nil {
		return bc.fail(h.RequestID, err)
	}
	defer bc.unregisterStream(h.RequestID)
	bc.srv.bin.streamsActive.Add(1)
	defer bc.srv.bin.streamsActive.Add(-1)

	var rng *rand.Rand
	if req.Uniform {
		rng = bc.srv.rng()
		defer bc.srv.putRNG(rng)
	}
	for drawn := 0; drawn < req.N; {
		want := req.N - drawn
		if want > bc.srv.cfg.StreamChunk {
			want = bc.srv.cfg.StreamChunk
		}
		n, err := st.take(want, bc.srv.cfg.StreamWriteTimeout, &bc.srv.bin.creditStalls)
		if err != nil {
			if errors.Is(err, errStreamStarved) {
				bc.writeError(h.RequestID, wire.ErrCodeTimeout, err.Error())
			}
			return err
		}
		ids, err := draw(n, rng)
		if err != nil {
			return bc.fail(h.RequestID, err)
		}
		var flags byte
		// The drawer may return fewer ids than asked (false-positive
		// descents); progress is counted by the ask, matching the NDJSON
		// path's accounting, so the stream always terminates.
		drawn += n
		if drawn >= req.N {
			flags = wire.FlagFinal
		}
		if err := bc.reply(tr, wire.OpSampleChunk, flags, h.RequestID, wire.SampleChunk{IDs: ids}.Encode(nil)); err != nil {
			return err
		}
	}
	return nil
}

func (bc *binConn) handleReconstruct(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeReconstructReq(body)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	if m.Key == "" {
		return bc.fail(h.RequestID, errf(400, "missing key"))
	}
	ids, err := bc.srv.reconstructIDs(m.Key, h.Flags&wire.FlagDynamic != 0)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	return bc.reply(tr, wire.OpIDsResult, 0, h.RequestID, wire.IDsResult{IDs: ids}.Encode(nil))
}

func (bc *binConn) handleIntersection(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeIntersectionReq(body)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	if m.KeyA == "" || m.KeyB == "" {
		return bc.fail(h.RequestID, errf(400, "missing key_a or key_b"))
	}
	est, err := bc.srv.DB().IntersectionEstimate(m.KeyA, m.KeyB)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	return bc.reply(tr, wire.OpEstimateResult, 0, h.RequestID, wire.EstimateResult{Estimate: est}.Encode(nil))
}

func (bc *binConn) handleAdd(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeAddReq(body)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	if len(m.Sets) == 0 {
		return bc.fail(h.RequestID, errf(400, "empty add request"))
	}
	if len(m.Sets) > bc.srv.cfg.MaxBatchSets {
		return bc.fail(h.RequestID, errf(413, "%d sets exceed the batch limit %d", len(m.Sets), bc.srv.cfg.MaxBatchSets))
	}
	total := 0
	writes := make([]setdb.Write, len(m.Sets))
	for i, set := range m.Sets {
		if set.Key == "" {
			return bc.fail(h.RequestID, errf(400, "sets[%d]: missing key", i))
		}
		total += len(set.IDs)
		writes[i] = setdb.Write{Key: set.Key, IDs: set.IDs, Dynamic: set.Dynamic}
	}
	if total > bc.srv.cfg.MaxBatch {
		return bc.fail(h.RequestID, errf(413, "%d ids exceed the batch limit %d", total, bc.srv.cfg.MaxBatch))
	}
	if err := bc.srv.applyWrites(writes); err != nil {
		return bc.fail(h.RequestID, err)
	}
	ack := wire.AckResult{Count: uint64(total), Keys: uint64(len(m.Sets))}
	return bc.reply(tr, wire.OpAckResult, 0, h.RequestID, ack.Encode(nil))
}

func (bc *binConn) handleRemove(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeRemoveReq(body)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	if m.Key == "" {
		return bc.fail(h.RequestID, errf(400, "missing key"))
	}
	if len(m.IDs) > bc.srv.cfg.MaxBatch {
		return bc.fail(h.RequestID, errf(413, "%d ids exceed the batch limit %d", len(m.IDs), bc.srv.cfg.MaxBatch))
	}
	if err := bc.srv.applyWrites([]setdb.Write{{Key: m.Key, IDs: m.IDs, Dynamic: true, Remove: true}}); err != nil {
		return bc.fail(h.RequestID, err)
	}
	ack := wire.AckResult{Count: uint64(len(m.IDs)), Keys: 1}
	return bc.reply(tr, wire.OpAckResult, 0, h.RequestID, ack.Encode(nil))
}

func (bc *binConn) handleStats(tr *obs.Trace, h wire.Header) error {
	doc, err := json.Marshal(bc.srv.statsResponse())
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	return bc.reply(tr, wire.OpStatsResult, 0, h.RequestID, wire.StatsResult{JSON: doc}.Encode(nil))
}

func (bc *binConn) handleSnapshot(tr *obs.Trace, h wire.Header) error {
	d := bc.srv.cfg.Durability
	if d == nil {
		return bc.fail(h.RequestID, errf(400, "server has no durability layer (start with -data-dir)"))
	}
	info, err := d.Snapshot()
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	doc, err := json.Marshal(SnapshotTriggerResponse{Snapshot: info})
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	return bc.reply(tr, wire.OpSnapshotResult, 0, h.RequestID, wire.SnapshotInfoResult{JSON: doc}.Encode(nil))
}

func (bc *binConn) handleRestore(tr *obs.Trace, h wire.Header, body []byte) error {
	t0 := time.Now()
	m, err := wire.DecodeRestoreReq(body)
	tr.Add(obs.StageDecode, time.Since(t0))
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	// The frame-body cap already bounded the bundle; bundles beyond it
	// must use POST /v1/restore, which streams arbitrary sizes.
	db, err := bc.srv.restoreFromBytes(m.Data)
	if err != nil {
		return bc.fail(h.RequestID, err)
	}
	st := db.Stats()
	ack := wire.AckResult{Count: uint64(st.Sets + st.DynamicSets), Keys: uint64(st.Sets + st.DynamicSets)}
	return bc.reply(tr, wire.OpAckResult, 0, h.RequestID, ack.Encode(nil))
}
