// Package server is the network serving layer over setdb.DB: an
// HTTP/JSON API (command bstserved) that makes the lock-free sampling
// and copy-on-write write paths reachable by many remote clients at
// once.
//
// Endpoints (all JSON; POST bodies, GET for stats):
//
//	POST /v1/sample        draw n samples (single, batch, uniform, dynamic; NDJSON streaming)
//	POST /v1/reconstruct   reconstruct a stored set
//	POST /v1/intersection  estimate |A ∩ B| for two stored sets
//	POST /v1/add           insert ids (plain copy-on-write or dynamic counting set; multi-key batches group-commit)
//	POST /v1/remove        remove ids from a dynamic set (all-or-nothing)
//	GET  /v1/stats         shard/epoch/calibration introspection + per-endpoint metrics
//
// The handler layer adds nothing to the concurrency story — it doesn't
// need to: every request body is decoded into a value, the database call
// is lock-free (reads) or shard-serialized (writes), and the per-endpoint
// metrics are atomics. Request limits (body size, batch size) bound the
// work a single client can demand.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/setdb"
	"repro/internal/wal"
)

// Default request limits, shared with the bstserved flag definitions so
// the -help text can never drift from the handler behavior.
const (
	DefaultMaxBatch        = 100_000
	DefaultMaxStreamBatch  = 10_000_000
	DefaultMaxBodyBytes    = 1 << 20
	DefaultMaxBatchSets    = 1_000
	DefaultMaxInFlight     = 1024
	DefaultConnWindow      = 32
	DefaultMaxWrites       = 128
	DefaultMaxRestoreBytes = int64(1) << 30
)

// Config bounds and seeds a Server. The zero value gets sensible
// defaults from withDefaults.
type Config struct {
	// MaxBatch caps the n of a buffered sample request, the ids of an
	// add/remove request, and the (estimated) size of a reconstructed
	// set (default DefaultMaxBatch). Oversized requests get 413.
	MaxBatch int
	// MaxBatchSets caps the number of sets in one batch add request
	// (default DefaultMaxBatchSets). The id count alone does not bound a
	// batch's work: every new key allocates a full-size filter and the
	// whole group commit holds its shards' write mutexes while building,
	// so the key count needs its own, much tighter cap.
	MaxBatchSets int
	// MaxStreamBatch caps the n of a streaming sample request (default
	// DefaultMaxStreamBatch). Streaming holds only one chunk in memory,
	// so it affords far larger batches than the buffered mode; this
	// bounds the total draw work of one request, and StreamWriteTimeout
	// bounds how long a slow reader can stretch it.
	MaxStreamBatch int
	// MaxBodyBytes caps a request body (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// StreamChunk is the draw granularity of the NDJSON streaming mode
	// (default 4096): samples are drawn and flushed a chunk at a time, so
	// a huge batch never buffers fully in server memory.
	StreamChunk int
	// StreamWriteTimeout bounds each chunk write of a streaming response
	// (default 30s): a client reading too slowly fails its stream instead
	// of pinning a handler goroutine for the server's lifetime.
	StreamWriteTimeout time.Duration
	// MaxInFlight is the admission-control budget: the number of requests
	// (HTTP and binary combined) the server will work on at once (default
	// DefaultMaxInFlight). Arrivals beyond it are shed immediately — 503
	// over HTTP, a BUSY frame over the binary protocol — instead of
	// queueing, so overload degrades into fast rejections rather than
	// growing latency for everyone.
	MaxInFlight int
	// MaxWrites sub-budgets the write endpoints (add/remove, both
	// protocols; default DefaultMaxWrites): each write holds shard
	// mutexes through its group-commit build, so a write flood would
	// otherwise convoy behind the commit path while still consuming the
	// whole global budget. Exhaustion sheds the write, not the readers.
	MaxWrites int
	// ConnWindow is the per-connection in-flight window of the binary
	// protocol (default DefaultConnWindow): one connection may have at
	// most this many requests being processed (a stream counts as one
	// until its final chunk). The window is the protocol's connection-
	// level backpressure — a single pipelining client saturates its own
	// window and gets BUSY frames, not the whole server's budget.
	ConnWindow int
	// Durability, when set, is the write-ahead-log store behind the
	// database: every mutating request (add/remove, both protocols) is
	// applied through it so the write is logged before it is
	// acknowledged, POST /v1/snapshot triggers its snapshots, and its
	// health shows up under "durability" in /v1/stats. Nil serves the
	// database purely in memory, exactly as before.
	Durability *wal.Store
	// MaxRestoreBytes caps a POST /v1/restore body (default
	// DefaultMaxRestoreBytes). Restore bundles are full database images,
	// so they get their own, much larger cap than MaxBodyBytes.
	MaxRestoreBytes int64
	// Seed makes uniform-mode sampling deterministic-ish for tests (each
	// uniform request's rng derives from it); the plain/dynamic batch
	// paths seed their workers internally. 0 seeds from the clock.
	Seed uint64
	// Logger receives the server's structured log lines (request access
	// logs at debug, slow requests and internal failures at warn/error).
	// Nil discards everything.
	Logger *slog.Logger
	// SlowRequest is the duration above which a finished request is
	// logged at warn with its stage breakdown. Zero disables slow-request
	// logging (there is no sane universal default: a 50ms stream chunk
	// cadence and a 50ms point lookup mean different things).
	SlowRequest time.Duration
	// TraceDisabled turns off request tracing: no request IDs, no
	// per-stage timings, no trace in the context. Per-endpoint counters
	// and latency histograms stay on. The obs benchmark compares a server
	// in this mode against the default to price the tracing overhead.
	TraceDisabled bool
}

// withDefaults normalizes unset limits. Zero and negative values both
// fall back to the default: a limit of -1 would otherwise reject every
// request, so healing beats bricking the whole API over a typo.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBatchSets <= 0 {
		c.MaxBatchSets = DefaultMaxBatchSets
	}
	if c.MaxStreamBatch <= 0 {
		c.MaxStreamBatch = DefaultMaxStreamBatch
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.StreamChunk <= 0 {
		c.StreamChunk = 4096
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 30 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxWrites <= 0 {
		c.MaxWrites = DefaultMaxWrites
	}
	if c.ConnWindow <= 0 {
		c.ConnWindow = DefaultConnWindow
	}
	if c.MaxRestoreBytes <= 0 {
		c.MaxRestoreBytes = DefaultMaxRestoreBytes
	}
	if c.Seed == 0 {
		c.Seed = uint64(time.Now().UnixNano())
	}
	return c
}

// Server serves one setdb.DB over HTTP. It implements http.Handler;
// lifecycle (listening, graceful shutdown) belongs to the caller's
// http.Server.
type Server struct {
	// db is atomically swappable so /v1/restore can replace the whole
	// database underneath in-flight readers: each request loads the
	// pointer once and finishes against a consistent (possibly
	// just-superseded) database.
	db      atomic.Pointer[setdb.DB]
	cfg     Config
	mux     *http.ServeMux
	start   time.Time
	metrics map[string]*endpointMetrics

	// samplers caches one shared exactly-uniform sampler per key:
	// setdb.Sampler is lock-free on draws and follows its key across
	// copy-on-write Adds, so all requests for a key share calibration.
	// Entries invalidated by an (in-process) db.Delete are evicted
	// lazily — on the next uniform draw or /v1/stats call — which is
	// bounded for the HTTP surface (it exposes no delete); embedders
	// that churn keys should poll stats or manage samplers themselves.
	samplers sync.Map // string → *setdb.Sampler

	// rngs pools per-request rand sources; seq derives each new source's
	// seed so pooled misses never collide.
	rngs sync.Pool
	seq  atomic.Uint64

	// Admission gates, shared by the HTTP and binary listeners: inflight
	// is the global work budget, writeGate the tighter write sub-budget.
	// Both are non-blocking — a failed acquire sheds the request.
	inflight  *gate
	writeGate *gate

	// bin is the binary-protocol listener state (nil until ServeBinary).
	bin binState

	// log is cfg.Logger normalized to never-nil (NopLogger).
	log *slog.Logger

	// ready gates /readyz on the admin surface: false until the embedder
	// calls SetReady(true) (after WAL replay and listener setup), flipped
	// back to false at drain so load balancers stop routing new work
	// before in-flight requests finish.
	ready atomic.Bool
}

// New builds a Server over db. When cfg.Durability is set its recovered
// database takes precedence — the store owns the authoritative state.
func New(db *setdb.DB, cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		metrics: map[string]*endpointMetrics{},
	}
	if s.log = s.cfg.Logger; s.log == nil {
		s.log = obs.NopLogger()
	}
	if s.cfg.Durability != nil {
		db = s.cfg.Durability.DB()
	}
	s.db.Store(db)
	s.rngs.New = func() any {
		n := s.seq.Add(1)
		return rand.New(rand.NewSource(int64(s.cfg.Seed ^ n*0x9E3779B97F4A7C15)))
	}
	s.inflight = newGate(s.cfg.MaxInFlight)
	s.writeGate = newGate(s.cfg.MaxWrites)
	s.route("/v1/sample", http.MethodPost, s.handleSample, false)
	s.route("/v1/reconstruct", http.MethodPost, s.handleReconstruct, false)
	s.route("/v1/intersection", http.MethodPost, s.handleIntersection, false)
	s.route("/v1/add", http.MethodPost, s.handleAdd, true)
	s.route("/v1/remove", http.MethodPost, s.handleRemove, true)
	s.route("/v1/stats", http.MethodGet, s.handleStats, false)
	s.routeMulti("/v1/snapshot", map[string]handlerFunc{
		http.MethodGet:  s.handleSnapshotGet,
		http.MethodPost: s.handleSnapshotPost,
	}, false)
	s.route("/v1/restore", http.MethodPost, s.handleRestore, true)
	for _, op := range binEndpoints {
		s.metrics[op] = &endpointMetrics{}
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// DB returns the currently served database.
func (s *Server) DB() *setdb.DB { return s.db.Load() }

// SetReady flips the /readyz state on the admin surface. The embedder
// calls SetReady(true) once recovery is done and the listeners are up,
// and SetReady(false) when drain begins so load balancers steer new
// traffic away while in-flight requests finish.
func (s *Server) SetReady(ready bool) {
	if s.ready.Swap(ready) != ready {
		s.log.Info("readiness changed", "ready", ready)
	}
}

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

// apiError carries an HTTP status with a message. Handlers return it for
// conditions they classify themselves; bare errors are classified by
// statusFor.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// statusFor maps database errors onto HTTP statuses: absent keys are
// 404, semantic conflicts (plain/dynamic clash, remove of a non-member,
// invalidated sampler) are 409, known caller mistakes are 400, and
// anything unrecognized is a genuine server-side failure — 500, so
// monitoring never blames the client for an internal bug.
func statusFor(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, setdb.ErrNoSet):
		return http.StatusNotFound
	case errors.Is(err, setdb.ErrKeyClash),
		errors.Is(err, setdb.ErrSamplerInvalid),
		errors.Is(err, bloom.ErrNotMember):
		return http.StatusConflict
	case errors.Is(err, setdb.ErrOutOfRange):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope of every non-2xx response.
// RequestID echoes the request's trace ID (when tracing is on) so a
// client-side error report can be joined against the server's logs.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// handlerFunc is the endpoint handler shape route/routeMulti register.
type handlerFunc func(http.ResponseWriter, *http.Request) error

// route registers one endpoint with method gating, admission control
// and metrics. isWrite endpoints additionally pass the write sub-budget.
func (s *Server) route(path, method string, h handlerFunc, isWrite bool) {
	s.routeMulti(path, map[string]handlerFunc{method: h}, isWrite)
}

// routeMulti registers one endpoint serving several methods (e.g.
// /v1/snapshot: GET downloads, POST triggers) behind shared admission
// control and metrics.
func (s *Server) routeMulti(path string, handlers map[string]handlerFunc, isWrite bool) {
	m := &endpointMetrics{}
	s.metrics[path] = m
	allow := ""
	for _, method := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete} {
		if _, ok := handlers[method]; ok {
			if allow != "" {
				allow += ", "
			}
			allow += method
		}
	}
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		// Tracing first, so even a shed response carries a request ID the
		// client can quote back. The ID is taken from X-Request-ID when the
		// caller sent a well-formed one (propagation across hops), freshly
		// generated otherwise, and always echoed on the response.
		var tr *obs.Trace
		if !s.cfg.TraceDisabled {
			rid := obs.CleanRequestID(r.Header.Get("X-Request-ID"))
			if rid == "" {
				rid = obs.NewRequestID()
			}
			tr = obs.NewTrace(rid)
			w.Header().Set("X-Request-ID", rid)
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
		}
		// Admission next, before reading the body: a shed request should
		// cost the server nothing but the rejection write. 503 (not 429)
		// because the condition is server saturation, not client quota.
		admit := time.Now()
		if !s.inflight.tryAcquire() {
			m.observeShed()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, r, http.StatusServiceUnavailable,
				errorBody{Error: "server at capacity, request shed", RequestID: tr.ID()})
			s.logShed(path, "http", tr, "global budget")
			return
		}
		defer s.inflight.release()
		if isWrite {
			if !s.writeGate.tryAcquire() {
				m.observeShed()
				w.Header().Set("Retry-After", "1")
				writeJSON(w, r, http.StatusServiceUnavailable,
					errorBody{Error: "write path at capacity, request shed", RequestID: tr.ID()})
				s.logShed(path, "http", tr, "write budget")
				return
			}
			defer s.writeGate.release()
		}
		tr.Add(obs.StageAdmission, time.Since(admit))
		start := time.Now()
		var err error
		if h, ok := handlers[r.Method]; !ok {
			w.Header().Set("Allow", allow)
			err = errf(http.StatusMethodNotAllowed, "use %s %s", allow, path)
		} else {
			err = h(w, r)
		}
		if err != nil && !errors.Is(err, errStreamAborted) {
			writeJSON(w, r, statusFor(err), errorBody{Error: err.Error(), RequestID: tr.ID()})
		}
		d := time.Since(start)
		m.observe(d, err != nil)
		if tr != nil {
			tr.FillExecute(d)
			m.observeStages(tr)
		}
		s.logRequest(path, "http", tr, d, err)
	})
}

// logShed records one admission rejection at debug — sheds are expected
// under deliberate overload and already counted, so they must not be
// able to flood the log at info.
func (s *Server) logShed(endpoint, proto string, tr *obs.Trace, cause string) {
	s.log.Debug("request shed", "endpoint", endpoint, "proto", proto,
		"request_id", tr.ID(), "cause", cause)
}

// logRequest emits the access-log line for one finished request: debug
// normally, warn with the stage breakdown when it ran slower than
// cfg.SlowRequest, so production logs surface outliers without paying
// for a line per request.
func (s *Server) logRequest(endpoint, proto string, tr *obs.Trace, d time.Duration, err error) {
	slow := s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest
	if !slow && !s.log.Enabled(nil, slog.LevelDebug) {
		return
	}
	attrs := make([]any, 0, 12)
	attrs = append(attrs, "endpoint", endpoint, "proto", proto,
		"request_id", tr.ID(), "duration_us", float64(d.Nanoseconds())/1e3)
	if err != nil && !errors.Is(err, errStreamAborted) {
		attrs = append(attrs, "error", err.Error())
	} else if errors.Is(err, errStreamAborted) {
		attrs = append(attrs, "error", "stream aborted")
	}
	attrs = append(attrs, tr.StageAttr())
	if slow {
		s.log.Warn("slow request", attrs...)
		return
	}
	s.log.Debug("request", attrs...)
}

// decode reads one JSON request body under the configured size limit.
// Unknown fields are rejected: a typo'd mode flag ("dynamc") silently
// selecting the wrong storage kind would be irreversible once the key
// is created, so strictness beats leniency here.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	tr := obs.TraceFrom(r.Context())
	t0 := time.Now()
	defer func() { tr.Add(obs.StageDecode, time.Since(t0)) }()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "malformed JSON: %v", err)
	}
	// Same strictness for trailing content: a concatenated second JSON
	// value would otherwise be silently dropped.
	if dec.More() {
		return errf(http.StatusBadRequest, "trailing data after the JSON request body")
	}
	return nil
}

// writeJSON writes one JSON response, charging the marshal+write to the
// request's encode stage (r carries the trace; a nil trace costs two
// clock reads and nothing else).
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	tr := obs.TraceFrom(r.Context())
	t0 := time.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // header already sent; nothing useful left on failure
	tr.Add(obs.StageEncode, time.Since(t0))
}

// rng hands out a pooled rand source for one request.
func (s *Server) rng() *rand.Rand { return s.rngs.Get().(*rand.Rand) }

func (s *Server) putRNG(r *rand.Rand) { s.rngs.Put(r) }

// SampleRequest asks for n samples from the set under Key.
//
// Exactly one storage/sampling mode applies: plain sets use the
// near-uniform BSTSample batch path (parallel workers), Dynamic selects
// the counting-set snapshot path, Uniform the rejection-corrected
// exactly-uniform sampler (plain sets only; calibration is shared and
// shows up in /v1/stats). Stream switches the response to NDJSON — one
// {"id":N} object per line, drawn and flushed chunk-wise — for batches
// too large to buffer.
type SampleRequest struct {
	Key     string `json:"key"`
	N       int    `json:"n,omitempty"` // default 1
	Workers int    `json:"workers,omitempty"`
	Dynamic bool   `json:"dynamic,omitempty"`
	Uniform bool   `json:"uniform,omitempty"`
	Stream  bool   `json:"stream,omitempty"`
}

// SampleResponse carries the drawn ids. Returned can be less than
// Requested: a BSTSample descent that ends on a false-positive path
// yields no sample (the near-uniform modes), and the uniform sampler
// stops at its rejection bound.
type SampleResponse struct {
	Key       string   `json:"key"`
	Requested int      `json:"requested"`
	Returned  int      `json:"returned"`
	IDs       []uint64 `json:"ids"`
}

// StreamLine is the decoded form of one NDJSON record of a streamed
// sample response: exactly one of the three shapes below applies per
// line — an id line {"id":N}, an in-band error {"error":"..."}, or the
// {"done":true} terminator. Clients unmarshal each line into this.
type StreamLine struct {
	ID    uint64 `json:"id"`
	Error string `json:"error"`
	Done  bool   `json:"done"`
}

// The three NDJSON record shapes used for *encoding*. They are distinct
// types (rather than StreamLine with omitempty) so that a sampled id of
// 0 still encodes as {"id":0}.
type (
	streamIDLine struct {
		ID uint64 `json:"id"`
	}
	streamErrorLine struct {
		Error string `json:"error"`
	}
	streamDoneLine struct {
		Done bool `json:"done"`
	}
)

// errStreamAborted marks a stream that ended before its terminator — a
// draw failure reported in-band, a client disconnect, a cancelled
// context. route() must count the request as failed (so truncated
// streams are visible in /v1/stats) but not write a second response.
var errStreamAborted = errors.New("server: stream aborted mid-response")

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) error {
	var req SampleRequest
	if err := s.decode(w, r, &req); err != nil {
		return err
	}
	if req.Key == "" {
		return errf(http.StatusBadRequest, "missing key")
	}
	if req.N == 0 {
		req.N = 1
	}
	if req.N < 0 {
		return errf(http.StatusBadRequest, "negative n %d", req.N)
	}
	if req.Stream {
		if req.N > s.cfg.MaxStreamBatch {
			return errf(http.StatusRequestEntityTooLarge, "n %d exceeds the streaming batch limit %d", req.N, s.cfg.MaxStreamBatch)
		}
	} else if req.N > s.cfg.MaxBatch {
		return errf(http.StatusRequestEntityTooLarge, "n %d exceeds the batch limit %d (stream mode affords up to %d)", req.N, s.cfg.MaxBatch, s.cfg.MaxStreamBatch)
	}
	if req.Uniform && req.Dynamic {
		return errf(http.StatusBadRequest, "uniform sampling serves plain sets only")
	}
	draw, err := s.chunkDrawer(req)
	if err != nil {
		return err
	}
	// Only the uniform mode consumes a per-request rng; the batch paths
	// seed their worker pools internally.
	var rng *rand.Rand
	if req.Uniform {
		rng = s.rng()
		defer s.putRNG(rng)
	}
	if req.Stream {
		return s.streamSamples(w, r, req, draw, rng)
	}
	ids, err := draw(req.N, rng)
	if err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, SampleResponse{
		Key: req.Key, Requested: req.N, Returned: len(ids), IDs: ids,
	})
	return nil
}

// chunkDrawer resolves the request's sampling mode to a draw function.
// The plain and dynamic modes pin the key's currently published filter
// version here, once: a batch spread over many chunks (streaming) is
// drawn entirely from that one point-in-time version, never interleaving
// set versions mid-response no matter how writers race it. The uniform
// mode deliberately does the opposite — the shared sampler follows its
// key across copy-on-write swaps, which is its documented contract.
func (s *Server) chunkDrawer(req SampleRequest) (func(n int, rng *rand.Rand) ([]uint64, error), error) {
	// Clamp the client-supplied worker count: it is a hint, not a lever
	// to make the server spawn 100k goroutines for one request.
	workers := req.Workers
	if workers < 0 {
		workers = 0
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	switch {
	case req.Uniform:
		// Resolve the shared sampler once per request. A Delete/re-Add
		// racing the request surfaces as ErrSamplerInvalid from the draw
		// (409, or an in-band stream error) — one response never silently
		// splices ids from two key lifetimes.
		smp, err := s.uniformSampler(req.Key)
		if err != nil {
			return nil, err
		}
		return func(n int, rng *rand.Rand) ([]uint64, error) {
			return smp.SampleN(n, rng, nil)
		}, nil
	case req.Dynamic:
		snap, err := s.DB().SnapshotDynamic(req.Key)
		if err != nil {
			return nil, err
		}
		return func(n int, _ *rand.Rand) ([]uint64, error) {
			return s.DB().SampleManyFrom(snap, n, workers, nil)
		}, nil
	default:
		f := s.DB().Filter(req.Key)
		if f == nil {
			return nil, fmt.Errorf("%w %q", setdb.ErrNoSet, req.Key)
		}
		return func(n int, _ *rand.Rand) ([]uint64, error) {
			return s.DB().SampleManyFrom(f, n, workers, nil)
		}, nil
	}
}

// uniformSampler returns the shared per-key uniform sampler, building it
// on first use. A cached sampler invalidated by Delete/re-Add is dropped
// and rebuilt against the key's current lifetime.
func (s *Server) uniformSampler(key string) (*setdb.Sampler, error) {
	for attempt := 0; attempt < 2; attempt++ {
		v, ok := s.samplers.Load(key)
		if !ok {
			smp, err := s.DB().UniformSampler(key)
			if err != nil {
				return nil, err
			}
			v, _ = s.samplers.LoadOrStore(key, smp)
		}
		smp := v.(*setdb.Sampler)
		if smp.Valid() {
			return smp, nil
		}
		// Evict only the sampler we observed stale: a plain Delete could
		// race-discard a valid replacement (and its calibration) that
		// another request already stored.
		s.samplers.CompareAndDelete(key, v)
	}
	// Two cache rounds both raced Delete/re-Adds of this key; serve the
	// request from a fresh sampler bound to the current lifetime rather
	// than trusting the churning cache.
	return s.DB().UniformSampler(key)
}

// streamSamples writes the NDJSON response: chunk-wise draws, one id per
// line, a final {"done":true} terminator. An error after the 200 header
// is reported in-band as an {"error":...} line. A client that goes away
// (write failure or context cancellation) stops the drawing immediately
// rather than burning tree descents into a dead connection.
func (s *Server) streamSamples(w http.ResponseWriter, r *http.Request, req SampleRequest, draw func(int, *rand.Rand) ([]uint64, error), rng *rand.Rand) error {
	// Draw the first chunk before committing to a 200, so key/mode errors
	// still get a proper status.
	first := req.N
	if first > s.cfg.StreamChunk {
		first = s.cfg.StreamChunk
	}
	ids, err := draw(first, rng)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	ctx := r.Context()
	rc := http.NewResponseController(w)
	// Clear the per-chunk deadline on the way out so it never bleeds
	// into the next request on a kept-alive connection.
	defer rc.SetWriteDeadline(time.Time{})
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	tr := obs.TraceFrom(ctx)
	emit := func(ids []uint64) error {
		// Each chunk write gets a fresh deadline: a client reading too
		// slowly fails its own stream instead of pinning this goroutine
		// (and its draw work) for the server's lifetime.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
		t0 := time.Now()
		for _, id := range ids {
			if err := enc.Encode(streamIDLine{ID: id}); err != nil {
				tr.Add(obs.StageEncode, time.Since(t0))
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		tr.Add(obs.StageEncode, time.Since(t0))
		return nil
	}
	if err := emit(ids); err != nil {
		return errStreamAborted // client went away
	}
	for drawn := first; drawn < req.N; {
		if ctx.Err() != nil {
			return errStreamAborted
		}
		chunk := req.N - drawn
		if chunk > s.cfg.StreamChunk {
			chunk = s.cfg.StreamChunk
		}
		ids, err := draw(chunk, rng)
		if err != nil {
			_ = enc.Encode(streamErrorLine{Error: err.Error()})
			return errStreamAborted
		}
		if err := emit(ids); err != nil {
			return errStreamAborted
		}
		drawn += chunk
	}
	if enc.Encode(streamDoneLine{Done: true}) != nil {
		return errStreamAborted // terminator never reached the client
	}
	return nil
}

// ReconstructRequest asks for the full contents of a stored set.
type ReconstructRequest struct {
	Key     string `json:"key"`
	Dynamic bool   `json:"dynamic,omitempty"`
}

// ReconstructResponse returns the reconstructed ids in ascending order.
type ReconstructResponse struct {
	Key   string   `json:"key"`
	Count int      `json:"count"`
	IDs   []uint64 `json:"ids"`
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) error {
	var req ReconstructRequest
	if err := s.decode(w, r, &req); err != nil {
		return err
	}
	if req.Key == "" {
		return errf(http.StatusBadRequest, "missing key")
	}
	ids, err := s.reconstructIDs(req.Key, req.Dynamic)
	if err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, ReconstructResponse{Key: req.Key, Count: len(ids), IDs: ids})
	return nil
}

// reconstructIDs is the shared reconstruction path of both protocols:
// pin the published filter version, bound the response (a reconstruction
// buffers the whole set in memory, so it obeys the same cap as a
// buffered sample batch), reconstruct.
func (s *Server) reconstructIDs(key string, dynamic bool) ([]uint64, error) {
	var f *bloom.Filter
	if dynamic {
		snap, err := s.DB().SnapshotDynamic(key)
		if err != nil {
			return nil, err
		}
		f = snap
	} else if f = s.DB().Filter(key); f == nil {
		return nil, fmt.Errorf("%w %q", setdb.ErrNoSet, key)
	}
	if est := f.EstimateCardinality(); est > float64(s.cfg.MaxBatch) {
		return nil, errf(http.StatusRequestEntityTooLarge,
			"set %q holds an estimated %.0f elements, above the %d reconstruction limit", key, est, s.cfg.MaxBatch)
	}
	ids, err := s.DB().Tree().Reconstruct(f, core.PruneByEstimate, nil)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []uint64{}
	}
	return ids, nil
}

// IntersectionRequest names the two stored sets to compare.
type IntersectionRequest struct {
	KeyA string `json:"key_a"`
	KeyB string `json:"key_b"`
}

// IntersectionResponse carries the |A ∩ B| estimate (§4 estimator).
type IntersectionResponse struct {
	KeyA     string  `json:"key_a"`
	KeyB     string  `json:"key_b"`
	Estimate float64 `json:"estimate"`
}

func (s *Server) handleIntersection(w http.ResponseWriter, r *http.Request) error {
	var req IntersectionRequest
	if err := s.decode(w, r, &req); err != nil {
		return err
	}
	if req.KeyA == "" || req.KeyB == "" {
		return errf(http.StatusBadRequest, "missing key_a or key_b")
	}
	est, err := s.DB().IntersectionEstimate(req.KeyA, req.KeyB)
	if err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, IntersectionResponse{KeyA: req.KeyA, KeyB: req.KeyB, Estimate: est})
	return nil
}

// AddRequest inserts ids, creating sets on first use. Two shapes apply:
//
//   - single-key: Key + IDs (+ Dynamic) — one copy-on-write publish.
//   - batch: Sets — any number of key/ids pairs applied through the
//     database's group-commit path (setdb.ApplyBatch), which folds the
//     whole batch into one snapshot publish per touched shard, so heavy
//     ingest pays one publish per batch rather than one per key. The
//     batch is all-or-nothing: any clash or out-of-range id applies
//     nothing.
//
// Exactly one shape must be used per request. Dynamic selects the
// counting-filter (deletable) storage kind; the kind is fixed at
// creation and mixing kinds on one key is a 409.
type AddRequest struct {
	Key     string   `json:"key,omitempty"`
	IDs     []uint64 `json:"ids,omitempty"`
	Dynamic bool     `json:"dynamic,omitempty"`
	Sets    []AddSet `json:"sets,omitempty"`
}

// AddSet is one key's pending writes within a batch AddRequest.
type AddSet struct {
	Key     string   `json:"key"`
	IDs     []uint64 `json:"ids"`
	Dynamic bool     `json:"dynamic,omitempty"`
}

// AddResponse acknowledges a write. Keys is the number of keys written
// (batch shape only).
type AddResponse struct {
	Key   string `json:"key,omitempty"`
	Added int    `json:"added"`
	Keys  int    `json:"keys,omitempty"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) error {
	var req AddRequest
	if err := s.decode(w, r, &req); err != nil {
		return err
	}
	if len(req.Sets) > 0 {
		return s.addBatch(w, r, req)
	}
	if req.Key == "" {
		return errf(http.StatusBadRequest, "missing key (or sets for a batch)")
	}
	if len(req.IDs) > s.cfg.MaxBatch {
		return errf(http.StatusRequestEntityTooLarge, "%d ids exceed the batch limit %d", len(req.IDs), s.cfg.MaxBatch)
	}
	if err := s.applyWrites([]setdb.Write{{Key: req.Key, IDs: req.IDs, Dynamic: req.Dynamic}}); err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, AddResponse{Key: req.Key, Added: len(req.IDs)})
	return nil
}

// addBatch serves the batch shape of /v1/add over the group-commit path.
// Two limits bound the work: MaxBatch caps the total id count across the
// batch (as for the single-key shape), and MaxBatchSets caps the key
// count — each set costs a full-size filter allocation and lengthens the
// locked group-commit build regardless of how few ids it carries.
func (s *Server) addBatch(w http.ResponseWriter, r *http.Request, req AddRequest) error {
	if req.Key != "" || len(req.IDs) > 0 || req.Dynamic {
		return errf(http.StatusBadRequest, "use either key/ids or sets, not both")
	}
	if len(req.Sets) > s.cfg.MaxBatchSets {
		return errf(http.StatusRequestEntityTooLarge, "%d sets exceed the batch limit %d", len(req.Sets), s.cfg.MaxBatchSets)
	}
	total := 0
	writes := make([]setdb.Write, len(req.Sets))
	for i, set := range req.Sets {
		if set.Key == "" {
			return errf(http.StatusBadRequest, "sets[%d]: missing key", i)
		}
		total += len(set.IDs)
		writes[i] = setdb.Write{Key: set.Key, IDs: set.IDs, Dynamic: set.Dynamic}
	}
	if total > s.cfg.MaxBatch {
		return errf(http.StatusRequestEntityTooLarge, "%d ids exceed the batch limit %d", total, s.cfg.MaxBatch)
	}
	if err := s.applyWrites(writes); err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, AddResponse{Added: total, Keys: len(req.Sets)})
	return nil
}

// RemoveRequest removes one insertion of each id from the dynamic set
// under Key. The batch is all-or-nothing: a single non-member id fails
// the whole request (409) and publishes nothing.
type RemoveRequest struct {
	Key string   `json:"key"`
	IDs []uint64 `json:"ids"`
}

// RemoveResponse acknowledges a removal.
type RemoveResponse struct {
	Key     string `json:"key"`
	Removed int    `json:"removed"`
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) error {
	var req RemoveRequest
	if err := s.decode(w, r, &req); err != nil {
		return err
	}
	if req.Key == "" {
		return errf(http.StatusBadRequest, "missing key")
	}
	if len(req.IDs) > s.cfg.MaxBatch {
		return errf(http.StatusRequestEntityTooLarge, "%d ids exceed the batch limit %d", len(req.IDs), s.cfg.MaxBatch)
	}
	if err := s.applyWrites([]setdb.Write{{Key: req.Key, IDs: req.IDs, Dynamic: true, Remove: true}}); err != nil {
		return err
	}
	writeJSON(w, r, http.StatusOK, RemoveResponse{Key: req.Key, Removed: len(req.IDs)})
	return nil
}

// DBStats mirrors setdb.DBStats with JSON tags; per-shard occupancy is
// summarized to occupied/min/max so the payload stays small at 64 shards.
type DBStats struct {
	Sets           int `json:"sets"`
	DynamicSets    int `json:"dynamic_sets"`
	Shards         int `json:"shards"`
	OccupiedShards int `json:"occupied_shards"`
	MaxShardKeys   int `json:"max_shard_keys"`
	// Chunk occupancy and write-amplification observability: every write
	// copies one chunk of its shard's chunked key map (plus the chunk
	// table), so mean_bytes_copied_per_write is the live amplification
	// figure, and occupied_chunks/max_chunk_keys show how evenly the
	// copy units are loaded. Chunk tables are adaptive — each shard map
	// grows from 1 chunk toward max_chunks_per_shard with occupancy — so
	// total_chunks tracks how far the layout has fanned out.
	// state_publishes < state_writes means group commit (batch /v1/add)
	// is coalescing writes into shared publishes.
	MaxChunksPerShard       int     `json:"max_chunks_per_shard"`
	TotalChunks             int     `json:"total_chunks"`
	OccupiedChunks          int     `json:"occupied_chunks"`
	MaxChunkKeys            int     `json:"max_chunk_keys"`
	StateWrites             uint64  `json:"state_writes"`
	StatePublishes          uint64  `json:"state_publishes"`
	StateBytesCopied        uint64  `json:"state_bytes_copied"`
	MeanBytesCopiedPerWrite float64 `json:"mean_bytes_copied_per_write"`
	Generations             uint64  `json:"generations"`
	TreeNodes               uint64  `json:"tree_nodes"`
	TreeDepth               int     `json:"tree_depth"`
	TreePruned              bool    `json:"tree_pruned"`
	TreeMemoryBytes         uint64  `json:"tree_memory_bytes"`
	GrowthEpoch             uint64  `json:"growth_epoch"`
	SubtreeEpochs           uint64  `json:"subtree_epochs_active"` // stripes with ≥1 completed epoch
	// Backend is the dynamic-set membership backend descriptor: configured
	// kind plus realized entries, memory, bits/entry and (cuckoo) load
	// factor. setdb.BackendStats carries its own JSON tags.
	Backend setdb.BackendStats `json:"backend"`
}

// SamplerStats is the calibration view of one cached uniform sampler.
type SamplerStats struct {
	Attempts     uint64  `json:"attempts"`
	Accepted     uint64  `json:"accepted"`
	Clamped      uint64  `json:"clamped"`
	Retargets    uint64  `json:"retargets"`
	SafetyFactor float64 `json:"safety_factor"`
	MaxAttempts  int     `json:"max_attempts"`
}

// OptionsStats echoes the database profile.
type OptionsStats struct {
	Namespace uint64 `json:"namespace"`
	Bits      uint64 `json:"bits"`
	K         int    `json:"k"`
	HashKind  string `json:"hash_kind"`
	TreeDepth int    `json:"tree_depth"`
	Pruned    bool   `json:"pruned"`
}

// WireStats is the binary-listener and admission-control view within
// /v1/stats: connection counts, frame traffic, stream flow control and
// shed totals. InFlight/WritesInFlight are point-in-time gate
// occupancies; the rest are lifetime counters.
type WireStats struct {
	ConnsActive    int64  `json:"conns_active"`
	ConnsTotal     uint64 `json:"conns_total"`
	FramesIn       uint64 `json:"frames_in"`
	FramesOut      uint64 `json:"frames_out"`
	StreamsActive  int64  `json:"streams_active"`
	CreditStalls   uint64 `json:"credit_stalls"` // stream pauses waiting for client credit
	ProtocolErrors uint64 `json:"protocol_errors"`
	Shed           uint64 `json:"shed"` // BUSY frames sent (admission control)
	InFlight       int    `json:"in_flight"`
	MaxInFlight    int    `json:"max_in_flight"`
	WritesInFlight int    `json:"writes_in_flight"`
	MaxWrites      int    `json:"max_writes"`
	ConnWindow     int    `json:"conn_window"`
}

// StatsResponse is the full /v1/stats payload.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Options       OptionsStats             `json:"options"`
	DB            DBStats                  `json:"db"`
	Wire          WireStats                `json:"wire"`
	Durability    *wal.Stats               `json:"durability,omitempty"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Samplers      map[string]SamplerStats  `json:"samplers,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, r, http.StatusOK, s.statsResponse())
	return nil
}

// statsResponse assembles the stats document served by both GET
// /v1/stats and the binary OpStats — one schema, two framings.
func (s *Server) statsResponse() StatsResponse {
	st := s.DB().Stats()
	// One clock read: the QPS denominators below must agree with the
	// uptime field they ship with.
	uptime := time.Since(s.start)
	resp := StatsResponse{
		UptimeSeconds: uptime.Seconds(),
		DB: DBStats{
			Sets:                    st.Sets,
			DynamicSets:             st.DynamicSets,
			Shards:                  len(st.Shards),
			MaxChunksPerShard:       st.MaxChunksPerShard,
			TotalChunks:             st.TotalChunks,
			StateWrites:             st.StateWrites,
			StatePublishes:          st.StatePublishes,
			StateBytesCopied:        st.StateBytesCopied,
			MeanBytesCopiedPerWrite: st.MeanBytesCopiedPerWrite(),
			Generations:             st.Generations,
			TreeNodes:               st.TreeNodes,
			TreeDepth:               st.TreeDepth,
			TreePruned:              st.TreePruned,
			TreeMemoryBytes:         st.TreeMemoryBytes,
			GrowthEpoch:             st.GrowthEpoch,
			Backend:                 st.Backend,
		},
		Endpoints: map[string]EndpointStats{},
	}
	opts := s.DB().Options()
	resp.Options = OptionsStats{
		Namespace: opts.Namespace,
		Bits:      opts.Bits,
		K:         opts.K,
		HashKind:  string(opts.HashKind),
		TreeDepth: opts.TreeDepth,
		Pruned:    opts.Pruned,
	}
	for i := range st.Shards {
		keys := st.Shards[i].Sets + st.Shards[i].Dynamic
		if keys > 0 {
			resp.DB.OccupiedShards++
		}
		if keys > resp.DB.MaxShardKeys {
			resp.DB.MaxShardKeys = keys
		}
		resp.DB.OccupiedChunks += st.Shards[i].OccupiedChunks
		if st.Shards[i].MaxChunkKeys > resp.DB.MaxChunkKeys {
			resp.DB.MaxChunkKeys = st.Shards[i].MaxChunkKeys
		}
	}
	for _, e := range st.SubtreeEpochs {
		if e > 0 {
			resp.DB.SubtreeEpochs++
		}
	}
	resp.Wire = WireStats{
		ConnsActive:    s.bin.connsActive.Load(),
		ConnsTotal:     s.bin.connsTotal.Load(),
		FramesIn:       s.bin.framesIn.Load(),
		FramesOut:      s.bin.framesOut.Load(),
		StreamsActive:  s.bin.streamsActive.Load(),
		CreditStalls:   s.bin.creditStalls.Load(),
		ProtocolErrors: s.bin.protoErrors.Load(),
		Shed:           s.bin.shed.Load(),
		InFlight:       s.inflight.inUse(),
		MaxInFlight:    s.cfg.MaxInFlight,
		WritesInFlight: s.writeGate.inUse(),
		MaxWrites:      s.cfg.MaxWrites,
		ConnWindow:     s.cfg.ConnWindow,
	}
	if d := s.cfg.Durability; d != nil {
		ds := d.Stats()
		resp.Durability = &ds
	}
	for path, m := range s.metrics {
		resp.Endpoints[path] = m.snapshot(uptime)
	}
	s.samplers.Range(func(k, v any) bool {
		smp := v.(*setdb.Sampler)
		if !smp.Valid() {
			// The key was deleted (or deleted and re-created) since this
			// sampler was cached: evict it instead of reporting
			// calibration for a dead set. CompareAndDelete so a valid
			// replacement stored meanwhile is left alone.
			s.samplers.CompareAndDelete(k, v)
			return true
		}
		us := smp.Stats()
		if resp.Samplers == nil {
			resp.Samplers = map[string]SamplerStats{}
		}
		resp.Samplers[k.(string)] = SamplerStats{
			Attempts:     us.Attempts,
			Accepted:     us.Accepted,
			Clamped:      us.Clamped,
			Retargets:    us.Retargets,
			SafetyFactor: smp.SafetyFactor(),
			MaxAttempts:  smp.MaxAttempts(),
		}
		return true
	})
	return resp
}
