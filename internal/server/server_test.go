package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/setdb"
)

// newTestServer builds a small pruned database with one plain and one
// dynamic set, wrapped in an httptest server.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *setdb.DB) {
	t.Helper()
	opts, err := setdb.PlanOptions(0.9, 256, 100_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pruned = true
	opts.Seed = 7
	db, err := setdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, 256)
	for i := uint64(0); i < 256; i++ {
		ids = append(ids, i*17%100_000)
	}
	if err := db.Add("plain", ids...); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("dyn", 1, 2, 3, 4, 5); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 42
	ts := httptest.NewServer(New(db, cfg))
	t.Cleanup(ts.Close)
	return ts, db
}

// post sends body to path and decodes the JSON response into out (unless
// nil), returning the status code.
func post(t *testing.T, ts *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestSampleSingleAndBatch(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	set, err := db.Reconstruct("plain", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	member := map[uint64]bool{}
	for _, id := range set {
		member[id] = true
	}
	var single SampleResponse
	if code := post(t, ts, "/v1/sample", `{"key":"plain"}`, &single); code != 200 {
		t.Fatalf("single sample: status %d", code)
	}
	if single.Requested != 1 || single.Returned != len(single.IDs) {
		t.Fatalf("single sample shape: %+v", single)
	}
	// An absurd client-supplied worker count is clamped server-side, not
	// honored.
	var batch SampleResponse
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":200,"workers":99999}`, &batch); code != 200 {
		t.Fatalf("batch sample: status %d", code)
	}
	if batch.Requested != 200 || len(batch.IDs) == 0 {
		t.Fatalf("batch sample shape: %+v", batch)
	}
	for _, id := range batch.IDs {
		if !member[id] {
			t.Fatalf("sampled id %d not in the stored set", id)
		}
	}
}

func TestSampleUniformAndDynamic(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	var uni SampleResponse
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":50,"uniform":true}`, &uni); code != 200 {
		t.Fatalf("uniform sample: status %d", code)
	}
	if len(uni.IDs) == 0 {
		t.Fatal("uniform sample returned nothing")
	}
	var dyn SampleResponse
	if code := post(t, ts, "/v1/sample", `{"key":"dyn","n":20,"dynamic":true}`, &dyn); code != 200 {
		t.Fatalf("dynamic sample: status %d", code)
	}
	for _, id := range dyn.IDs {
		if id < 1 || id > 5 {
			t.Fatalf("dynamic sample %d outside {1..5}", id)
		}
	}
	// Uniform + dynamic is rejected.
	if code := post(t, ts, "/v1/sample", `{"key":"dyn","uniform":true,"dynamic":true}`, nil); code != 400 {
		t.Fatalf("uniform+dynamic: status %d, want 400", code)
	}
	// The uniform sampler's calibration must show in /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	smp, ok := st.Samplers["plain"]
	if !ok {
		t.Fatalf("no sampler calibration for 'plain' in stats: %+v", st.Samplers)
	}
	if smp.Attempts == 0 || smp.SafetyFactor <= 0 || smp.MaxAttempts <= 0 {
		t.Fatalf("sampler calibration not populated: %+v", smp)
	}
}

// TestSampleUniformSurvivesDeleteReAdd covers the sampler-cache
// invalidation path: after Delete+Add the old sampler is discarded and a
// fresh one bound to the new key lifetime.
func TestSampleUniformSurvivesDeleteReAdd(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":5,"uniform":true}`, nil); code != 200 {
		t.Fatalf("warmup: status %d", code)
	}
	if !db.Delete("plain") {
		t.Fatal("delete failed")
	}
	// A stats call between the delete and the next draw evicts the dead
	// sampler instead of reporting calibration for a set that is gone.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := st.Samplers["plain"]; ok {
		t.Fatal("stats still reports a sampler for the deleted key")
	}
	if err := db.Add("plain", 10, 20, 30); err != nil {
		t.Fatal(err)
	}
	var got SampleResponse
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":5,"uniform":true}`, &got); code != 200 {
		t.Fatalf("post-re-add: status %d", code)
	}
	for _, id := range got.IDs {
		if id != 10 && id != 20 && id != 30 {
			t.Fatalf("sampled %d from the dead key lifetime", id)
		}
	}
}

func TestSampleStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t, Config{StreamChunk: 64})
	resp, err := http.Post(ts.URL+"/v1/sample", "application/json",
		strings.NewReader(`{"key":"plain","n":300,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var ids, done int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("in-band error: %s", line.Error)
		case line.Done:
			done++
		default:
			ids++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done != 1 || ids == 0 || ids > 300 {
		t.Fatalf("stream shape: %d ids, %d done markers", ids, done)
	}
	// A bad key in stream mode still gets a real HTTP error status.
	if code := post(t, ts, "/v1/sample", `{"key":"nope","stream":true}`, nil); code != 404 {
		t.Fatalf("stream missing key: status %d, want 404", code)
	}
}

// TestSampleStreamEncodesIDZero pins the NDJSON encoding of id 0: it
// must appear as an explicit {"id":0} line, not an empty object.
func TestSampleStreamEncodesIDZero(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	if err := db.Add("zero", 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sample", "application/json",
		strings.NewReader(`{"key":"zero","n":4,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream too short: %q", body)
	}
	for _, line := range lines[:len(lines)-1] {
		if line != `{"id":0}` {
			t.Fatalf("id-0 line encoded as %q", line)
		}
	}
	if lines[len(lines)-1] != `{"done":true}` {
		t.Fatalf("missing done terminator: %q", lines[len(lines)-1])
	}
}

func TestReconstructAndIntersection(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	want, err := db.Reconstruct("plain", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rec ReconstructResponse
	if code := post(t, ts, "/v1/reconstruct", `{"key":"plain"}`, &rec); code != 200 {
		t.Fatalf("reconstruct: status %d", code)
	}
	if rec.Count != len(want) || len(rec.IDs) != len(want) {
		t.Fatalf("reconstruct count %d, want %d", rec.Count, len(want))
	}
	var dyn ReconstructResponse
	if code := post(t, ts, "/v1/reconstruct", `{"key":"dyn","dynamic":true}`, &dyn); code != 200 {
		t.Fatalf("dynamic reconstruct: status %d", code)
	}
	if dyn.Count < 5 {
		t.Fatalf("dynamic reconstruct lost members: %+v", dyn)
	}
	if err := db.Add("other", want[0], want[1], 99_999); err != nil {
		t.Fatal(err)
	}
	var inter IntersectionResponse
	if code := post(t, ts, "/v1/intersection", `{"key_a":"plain","key_b":"other"}`, &inter); code != 200 {
		t.Fatalf("intersection: status %d", code)
	}
	if inter.Estimate < 0.5 {
		t.Fatalf("intersection estimate %.3f implausibly low (true ≥ 2)", inter.Estimate)
	}
	if code := post(t, ts, "/v1/intersection", `{"key_a":"plain","key_b":"ghost"}`, nil); code != 404 {
		t.Fatalf("intersection with missing key: status %d, want 404", code)
	}
}

func TestAddRemoveLifecycle(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	if code := post(t, ts, "/v1/add", `{"key":"web","ids":[7,8,9],"dynamic":true}`, nil); code != 200 {
		t.Fatalf("add dynamic: status %d", code)
	}
	if code := post(t, ts, "/v1/remove", `{"key":"web","ids":[8]}`, nil); code != 200 {
		t.Fatalf("remove: status %d", code)
	}
	got, err := db.ReconstructDynamic("web", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if id == 8 {
			t.Fatal("removed id still present")
		}
	}
	// Plain/dynamic kind clash is a 409 both ways.
	if code := post(t, ts, "/v1/add", `{"key":"web","ids":[1]}`, nil); code != 409 {
		t.Fatalf("plain add onto dynamic key: status %d, want 409", code)
	}
	if code := post(t, ts, "/v1/add", `{"key":"plain","ids":[1],"dynamic":true}`, nil); code != 409 {
		t.Fatalf("dynamic add onto plain key: status %d, want 409", code)
	}
	// Namespace violation is a 400.
	if code := post(t, ts, "/v1/add", `{"key":"web2","ids":[999999999]}`, nil); code != 400 {
		t.Fatalf("out-of-namespace add: status %d, want 400", code)
	}
}

// TestErrorPaths covers the satellite checklist: malformed JSON,
// oversized batches/bodies, and all-or-nothing remove of an absent id.
func TestErrorPaths(t *testing.T) {
	ts, db := newTestServer(t, Config{MaxBatch: 100, MaxBodyBytes: 512, MaxStreamBatch: 1000})

	var eb errorBody
	if code := post(t, ts, "/v1/sample", `{"key":`, &eb); code != 400 || eb.Error == "" {
		t.Fatalf("malformed JSON: status %d, body %+v", code, eb)
	}
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":101}`, nil); code != 413 {
		t.Fatalf("oversized sample batch: status %d, want 413", code)
	}
	// Stream mode has its own, larger cap: a batch beyond MaxBatch is
	// accepted when streaming, and 413 only past MaxStreamBatch.
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":500,"stream":true}`, nil); code != 200 {
		t.Fatalf("stream batch beyond MaxBatch: status %d, want 200", code)
	}
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":1001,"stream":true}`, nil); code != 413 {
		t.Fatalf("stream batch beyond MaxStreamBatch: status %d, want 413", code)
	}
	if code := post(t, ts, "/v1/sample", `{"key":"plain","n":-1}`, nil); code != 400 {
		t.Fatalf("negative n: status %d, want 400", code)
	}
	// A typo'd field name must not silently select the wrong mode.
	if code := post(t, ts, "/v1/add", `{"key":"typo","ids":[1],"dynamc":true}`, nil); code != 400 {
		t.Fatalf("unknown JSON field: status %d, want 400", code)
	}
	// A concatenated second body must not be silently dropped.
	if code := post(t, ts, "/v1/add", `{"key":"a","ids":[1]}{"key":"b","ids":[2]}`, nil); code != 400 {
		t.Fatalf("trailing JSON data: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/sample", `{"n":3}`, nil); code != 400 {
		t.Fatalf("missing key: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/sample", `{"key":"ghost"}`, nil); code != 404 {
		t.Fatalf("missing set: status %d, want 404", code)
	}

	// Reconstruction obeys the same cap: "plain" holds ~256 elements,
	// estimated above MaxBatch=100.
	if code := post(t, ts, "/v1/reconstruct", `{"key":"plain"}`, nil); code != 413 {
		t.Fatalf("oversized reconstruct: status %d, want 413", code)
	}

	// Oversized body (beyond MaxBodyBytes) → 413.
	big := fmt.Sprintf(`{"key":"big","ids":[%s1]}`, strings.Repeat("1,", 400))
	if code := post(t, ts, "/v1/add", big, nil); code != 413 {
		t.Fatalf("oversized body: status %d, want 413", code)
	}

	// Remove of an absent id is all-or-nothing: 409 and no change.
	before, err := db.ReconstructDynamic("dyn", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(t, ts, "/v1/remove", `{"key":"dyn","ids":[3,77777]}`, &eb); code != 409 {
		t.Fatalf("remove absent id: status %d, want 409", code)
	}
	after, err := db.ReconstructDynamic("dyn", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("failed remove mutated the set: %d → %d members", len(before), len(after))
	}
	// An out-of-namespace id must be rejected up front (400), never
	// allowed to alias onto real members' counters.
	if code := post(t, ts, "/v1/remove", `{"key":"dyn","ids":[999999999]}`, nil); code != 400 {
		t.Fatalf("out-of-namespace remove: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/remove", `{"key":"ghost","ids":[1]}`, nil); code != 404 {
		t.Fatalf("remove on missing dynamic set: status %d, want 404", code)
	}
	// Remove targets dynamic sets only; a plain key is absent there.
	if code := post(t, ts, "/v1/remove", `{"key":"plain","ids":[1]}`, nil); code != 404 {
		t.Fatalf("remove on plain set: status %d, want 404", code)
	}

	// Wrong methods → 405 with Allow.
	resp, err := http.Get(ts.URL + "/v1/sample")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 405 || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET sample: status %d allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST stats: status %d", resp.StatusCode)
	}
}

func TestStatsIntrospection(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	post(t, ts, "/v1/sample", `{"key":"plain","n":10}`, nil)
	post(t, ts, "/v1/sample", `{"key":"ghost"}`, nil) // one error

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.DB.Sets != 1 || st.DB.DynamicSets != 1 || st.DB.Shards != 64 {
		t.Fatalf("db stats wrong: %+v", st.DB)
	}
	if st.DB.OccupiedShards == 0 || st.DB.MaxShardKeys == 0 || st.DB.TreeNodes == 0 {
		t.Fatalf("shard/tree introspection empty: %+v", st.DB)
	}
	if !st.DB.TreePruned || st.DB.GrowthEpoch == 0 {
		t.Fatalf("growth epochs not visible on a pruned tree: %+v", st.DB)
	}
	if st.Options.Namespace != 100_000 || st.Options.K != 3 {
		t.Fatalf("options not echoed: %+v", st.Options)
	}
	sm := st.Endpoints["/v1/sample"]
	if sm.Requests != 2 || sm.Errors != 1 || sm.AvgLatencyUS <= 0 || sm.QPS <= 0 {
		t.Fatalf("sample endpoint metrics wrong: %+v", sm)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", st.UptimeSeconds)
	}
}

// TestConcurrentAddSample hammers /v1/add and /v1/sample (plus the
// dynamic write path) over real HTTP from many goroutines. Under -race
// this is the serving-layer regression test for the copy-on-write
// guarantees: no request may observe a filter mid-update.
func TestConcurrentAddSample(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	if err := db.AddDynamic("churn", 50, 51, 52); err != nil {
		t.Fatal(err)
	}
	client := ts.Client()
	do := func(path, body string) int {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id := (w*1000 + i*37) % 100_000
				switch i % 4 {
				case 0:
					if code := do("/v1/add", fmt.Sprintf(`{"key":"plain","ids":[%d]}`, id)); code != 200 {
						t.Errorf("add: status %d", code)
					}
				case 1:
					if code := do("/v1/sample", `{"key":"plain","n":8}`); code != 200 {
						t.Errorf("sample: status %d", code)
					}
				case 2:
					if code := do("/v1/add", fmt.Sprintf(`{"key":"churn","ids":[%d],"dynamic":true}`, id)); code != 200 {
						t.Errorf("dynamic add: status %d", code)
					}
				default:
					if code := do("/v1/sample", `{"key":"churn","n":4,"dynamic":true}`); code != 200 {
						t.Errorf("dynamic sample: status %d", code)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every plain id written above must now be present.
	for w := 0; w < workers; w++ {
		for i := 0; i < 30; i += 4 {
			id := uint64((w*1000 + i*37) % 100_000)
			ok, err := db.Contains("plain", id)
			if err != nil || !ok {
				t.Fatalf("id %d written over HTTP not visible (ok=%v err=%v)", id, ok, err)
			}
		}
	}
}

// TestAddBatch covers the group-commit shape of /v1/add: multi-key
// batches land atomically through setdb.ApplyBatch, mixing shapes is a
// 400, clashes roll the whole batch back with a 409, and the write
// coalescing shows up in /v1/stats as fewer publishes than writes.
func TestAddBatch(t *testing.T) {
	ts, db := newTestServer(t, Config{})
	var ar AddResponse
	body := `{"sets":[{"key":"b1","ids":[1,2]},{"key":"b2","ids":[3]},{"key":"bd","ids":[4,5],"dynamic":true}]}`
	if code := post(t, ts, "/v1/add", body, &ar); code != 200 {
		t.Fatalf("batch add: status %d", code)
	}
	if ar.Added != 5 || ar.Keys != 3 {
		t.Fatalf("batch ack wrong: %+v", ar)
	}
	for key, id := range map[string]uint64{"b1": 1, "b2": 3} {
		if ok, err := db.Contains(key, id); err != nil || !ok {
			t.Fatalf("%s should contain %d (ok=%v err=%v)", key, id, ok, err)
		}
	}
	if ok, err := db.ContainsDynamic("bd", 4); err != nil || !ok {
		t.Fatalf("bd should contain 4 (ok=%v err=%v)", ok, err)
	}

	// Mixing the single-key and batch shapes is ambiguous → 400.
	if code := post(t, ts, "/v1/add", `{"key":"x","ids":[1],"sets":[{"key":"y","ids":[2]}]}`, nil); code != 400 {
		t.Fatalf("mixed shapes: status %d, want 400", code)
	}
	if code := post(t, ts, "/v1/add", `{"sets":[{"key":"","ids":[1]}]}`, nil); code != 400 {
		t.Fatalf("batch with empty key: status %d, want 400", code)
	}

	// A clash anywhere rolls back the whole batch: "fresh" must not
	// appear even though its write precedes the clashing one.
	if code := post(t, ts, "/v1/add", `{"sets":[{"key":"fresh","ids":[9]},{"key":"dyn","ids":[1]}]}`, nil); code != 409 {
		t.Fatalf("clashing batch: status %d, want 409", code)
	}
	if db.Filter("fresh") != nil {
		t.Fatal("aborted batch leaked a key")
	}

	// The batch total obeys MaxBatch, and the set count its own (tighter)
	// MaxBatchSets cap — many near-empty sets are not a cheap request:
	// each allocates a full-size filter inside the locked group commit.
	ts2, _ := newTestServer(t, Config{MaxBatch: 3, MaxBatchSets: 2})
	if code := post(t, ts2, "/v1/add", `{"sets":[{"key":"a","ids":[1,2]},{"key":"b","ids":[3,4]}]}`, nil); code != 413 {
		t.Fatalf("oversized batch total: status %d, want 413", code)
	}
	if code := post(t, ts2, "/v1/add", `{"sets":[{"key":"a","ids":[]},{"key":"b","ids":[]},{"key":"c","ids":[]}]}`, nil); code != 413 {
		t.Fatalf("oversized set count: status %d, want 413", code)
	}
}

// TestStatsWriteAmplification checks the /v1/stats write-amplification
// observability: chunk occupancy, copy counters and the coalescing
// signal (publishes < writes after a batch add).
func TestStatsWriteAmplification(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	// Four keys in one shard, so the group commit provably folds four
	// writes into a single publish.
	var sets []string
	for i := 0; len(sets) < 4; i++ {
		k := fmt.Sprintf("w%d", i)
		if setdb.ShardOf(k) == setdb.ShardOf("w0") {
			sets = append(sets, fmt.Sprintf(`{"key":%q,"ids":[%d]}`, k, i%100))
		}
	}
	body := fmt.Sprintf(`{"sets":[%s]}`, strings.Join(sets, ","))
	if code := post(t, ts, "/v1/add", body, nil); code != 200 {
		t.Fatalf("batch add: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.DB.MaxChunksPerShard == 0 || st.DB.TotalChunks == 0 || st.DB.OccupiedChunks == 0 || st.DB.MaxChunkKeys == 0 {
		t.Fatalf("chunk occupancy not exposed: %+v", st.DB)
	}
	if st.DB.StateWrites == 0 || st.DB.StateBytesCopied == 0 || st.DB.MeanBytesCopiedPerWrite <= 0 {
		t.Fatalf("write-amplification counters not exposed: %+v", st.DB)
	}
	if st.DB.StatePublishes >= st.DB.StateWrites {
		t.Fatalf("batch add did not coalesce publishes: writes=%d publishes=%d",
			st.DB.StateWrites, st.DB.StatePublishes)
	}
}
