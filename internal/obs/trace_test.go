package obs

import (
	"context"
	"testing"
	"time"
)

func TestRequestIDsUniqueAndClean(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10_000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if CleanRequestID(id) != id {
			t.Fatalf("generated id %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestCleanRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123_X.y":       "abc-123_X.y",
		"":                  "",
		"has space":         "",
		"newline\nembedded": "",
		"quote\"":           "",
		"héllo":             "",
	}
	for in, want := range cases {
		if got := CleanRequestID(in); got != want {
			t.Errorf("CleanRequestID(%q) = %q, want %q", in, got, want)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	if got := CleanRequestID(string(long)); got != "" {
		t.Errorf("65-char id accepted: %q", got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Add(StageDecode, time.Millisecond) // must not panic
	tr.FillExecute(time.Second)
	if tr.ID() != "" || tr.StageDur(StageExecute) != 0 {
		t.Error("nil trace leaked state")
	}
	_ = tr.StageAttr()
	if got := TraceFrom(context.Background()); got != nil {
		t.Errorf("TraceFrom(empty ctx) = %v, want nil", got)
	}
}

func TestTraceStagesAndFillExecute(t *testing.T) {
	tr := NewTrace("rid1")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	tr.Add(StageAdmission, 1*time.Microsecond)
	tr.Add(StageDecode, 10*time.Microsecond)
	tr.Add(StageDecode, 5*time.Microsecond) // accumulates
	tr.Add(StageEncode, 20*time.Microsecond)
	tr.FillExecute(100 * time.Microsecond)
	if got := tr.StageDur(StageDecode); got != 15*time.Microsecond {
		t.Errorf("decode = %v, want 15µs", got)
	}
	if got := tr.StageDur(StageExecute); got != 65*time.Microsecond {
		t.Errorf("execute = %v, want 100-15-20 = 65µs", got)
	}
	// A total smaller than the measured stages clamps to zero rather
	// than going negative.
	tr.FillExecute(time.Microsecond)
	if got := tr.StageDur(StageExecute); got != 0 {
		t.Errorf("clamped execute = %v, want 0", got)
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"admission", "decode", "execute", "encode"}
	for i, name := range want {
		if Stage(i).String() != name {
			t.Errorf("Stage(%d) = %q, want %q", i, Stage(i), name)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage must stringify as unknown")
	}
}
