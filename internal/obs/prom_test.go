package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

func render(t *testing.T, e *Exposition) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestLabelAndHelpEscaping(t *testing.T) {
	e := NewExposition()
	e.Gauge("g", "help with \\ backslash\nand newline", 1,
		L("path", `quoted "value" with \ and`+"\nnewline"))
	out := render(t, e)
	wantHelp := `# HELP g help with \\ backslash\nand newline`
	if !strings.Contains(out, wantHelp+"\n") {
		t.Errorf("help not escaped:\n%s", out)
	}
	wantSeries := `g{path="quoted \"value\" with \\ and\nnewline"} 1`
	if !strings.Contains(out, wantSeries+"\n") {
		t.Errorf("label value not escaped, want %q in:\n%s", wantSeries, out)
	}
	// The rendered output must stay line-parseable: exactly one
	// unescaped newline per sample line.
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("got %d lines, want 3 (HELP, TYPE, series):\n%s", got, out)
	}
}

func TestHistogramCumulativeAndInf(t *testing.T) {
	e := NewExposition()
	uppers := []float64{0.001, 0.01, 0.1}
	counts := []uint64{5, 0, 3, 2} // last = overflow bucket
	e.Histogram("h", "latency", []Label{L("endpoint", "/x")}, uppers, counts, 1.25)
	out := render(t, e)

	// Parse the bucket series back and check monotone cumulative counts
	// with the +Inf bucket equal to _count.
	var bucketVals []float64
	var infVal, countVal, sumVal float64
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q has %d fields, want 2", line, len(fields))
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch {
		case strings.Contains(line, `le="+Inf"`):
			infVal = v
		case strings.HasPrefix(line, "h_bucket"):
			bucketVals = append(bucketVals, v)
		case strings.HasPrefix(line, "h_sum"):
			sumVal = v
		case strings.HasPrefix(line, "h_count"):
			countVal = v
		}
	}
	if len(bucketVals) != len(uppers) {
		t.Fatalf("got %d finite buckets, want %d", len(bucketVals), len(uppers))
	}
	want := []float64{5, 5, 8}
	for i, v := range bucketVals {
		if v != want[i] {
			t.Errorf("bucket %d = %v, want %v (cumulative)", i, v, want[i])
		}
		if i > 0 && v < bucketVals[i-1] {
			t.Errorf("bucket %d = %v < previous %v: not monotone", i, v, bucketVals[i-1])
		}
	}
	if infVal != 10 {
		t.Errorf("+Inf bucket = %v, want 10 (total)", infVal)
	}
	if countVal != infVal {
		t.Errorf("_count %v != +Inf bucket %v", countVal, infVal)
	}
	if sumVal != 1.25 {
		t.Errorf("_sum = %v, want 1.25", sumVal)
	}
}

func TestStableSeriesOrdering(t *testing.T) {
	build := func() *Exposition {
		e := NewExposition()
		// Families declared out of name order; series for several label
		// sets interleaved.
		e.Counter("zzz_total", "last family", 1)
		for _, ep := range []string{"/v1/sample", "/v1/add", "/v1/stats"} {
			e.Counter("aaa_requests_total", "first family", 7, L("endpoint", ep))
		}
		e.Histogram("mid_seconds", "a histogram", nil, []float64{1, 2}, []uint64{1, 2, 3}, 9)
		return e
	}
	a, b := render(t, build()), render(t, build())
	if a != b {
		t.Fatalf("two renders differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	// Families must come out sorted by name.
	za := strings.Index(a, "# TYPE zzz_total")
	ma := strings.Index(a, "# TYPE mid_seconds")
	aa := strings.Index(a, "# TYPE aaa_requests_total")
	if !(aa < ma && ma < za) {
		t.Errorf("families not name-sorted (aaa@%d mid@%d zzz@%d):\n%s", aa, ma, za, a)
	}
	// Series within a family keep insertion order.
	s1 := strings.Index(a, `endpoint="/v1/sample"`)
	s2 := strings.Index(a, `endpoint="/v1/add"`)
	s3 := strings.Index(a, `endpoint="/v1/stats"`)
	if !(s1 < s2 && s2 < s3) {
		t.Errorf("series lost insertion order:\n%s", a)
	}
}

func TestNoDuplicateSeriesAndTypedSamples(t *testing.T) {
	// The CI smoke asserts this shape on a live scrape; pin the same
	// invariants at the unit level: every TYPE has ≥1 sample and no
	// series key repeats.
	e := NewExposition()
	e.Gauge("up", "", 1)
	for i := 0; i < 3; i++ {
		e.Counter("reqs_total", "", float64(i), L("i", fmt.Sprint(i)))
	}
	e.Histogram("lat", "", nil, []float64{0.5}, []uint64{1, 1}, 0.7)
	out := render(t, e)
	seen := map[string]bool{}
	declared := map[string]bool{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			t.Errorf("duplicate series %q", key)
		}
		seen[key] = true
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		sampled[name] = true
	}
	for fam := range declared {
		if !sampled[fam] {
			t.Errorf("family %s declared but has no samples", fam)
		}
	}
	// And a family with zero samples renders nothing at all.
	e2 := NewExposition()
	e2.fam("empty_total", "", TypeCounter)
	if out := render(t, e2); out != "" {
		t.Errorf("empty family rendered %q, want nothing", out)
	}
}

func TestFormatValueInf(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf rendered %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf rendered %q", got)
	}
	if got := formatValue(0.25); got != "0.25" {
		t.Errorf("0.25 rendered %q", got)
	}
}
