package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"log/slog"
	"sync/atomic"
	"time"
)

// Stage is one phase of a request's lifetime. Per-stage timings tell
// apart where a slow request spent its time: waiting for admission,
// decoding the body, doing database work, or encoding the response.
type Stage uint8

const (
	StageAdmission Stage = iota // admission-gate acquisition
	StageDecode                 // request body/frame decode
	StageExecute                // database work (derived: total minus the others)
	StageEncode                 // response encode + write
	numStages
)

// NumStages is the number of distinct stages, for sizing per-stage
// counter arrays.
const NumStages = int(numStages)

// StageNames lists the stage label values in Stage order.
var StageNames = [NumStages]string{"admission", "decode", "execute", "encode"}

func (s Stage) String() string {
	if int(s) < NumStages {
		return StageNames[s]
	}
	return "unknown"
}

// Trace carries one request's ID and accumulated per-stage durations.
// It is owned by the request's handler goroutine; no synchronization.
// All methods are nil-receiver-safe so untraced paths (tracing disabled,
// or a context without a trace) cost a nil check and nothing else.
type Trace struct {
	id     string
	stages [NumStages]time.Duration
}

// NewTrace starts a trace under the given request ID.
func NewTrace(id string) *Trace { return &Trace{id: id} }

// ID returns the request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Add accumulates d into one stage.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	t.stages[s] += d
}

// StageDur returns the accumulated duration of one stage.
func (t *Trace) StageDur(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return t.stages[s]
}

// FillExecute derives the execute stage as the handler total minus the
// measured decode and encode stages (admission is timed outside the
// handler total), clamped at zero so clock skew never yields a negative
// duration.
func (t *Trace) FillExecute(total time.Duration) {
	if t == nil {
		return
	}
	exec := total - t.stages[StageDecode] - t.stages[StageEncode]
	if exec < 0 {
		exec = 0
	}
	t.stages[StageExecute] = exec
}

// StageAttr renders the stage breakdown as one slog group attribute
// (microseconds per stage), for slow-request and error log lines.
func (t *Trace) StageAttr() slog.Attr {
	if t == nil {
		return slog.Group("stages")
	}
	attrs := make([]any, 0, NumStages)
	for i := 0; i < NumStages; i++ {
		attrs = append(attrs, slog.Float64(StageNames[i], float64(t.stages[i].Nanoseconds())/1e3))
	}
	return slog.Group("stages_us", attrs...)
}

type traceKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil — and nil is safe to
// use with every Trace method.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Request-ID generation: a random 64-bit base (crypto-seeded once) plus
// a splitmix64-mixed counter, rendered as 16 hex digits. Collision-free
// within a process, no per-request syscall, no lock.
var (
	ridBase    uint64
	ridCounter atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		ridBase = binary.LittleEndian.Uint64(b[:])
	} else {
		ridBase = uint64(time.Now().UnixNano())
	}
}

// NewRequestID returns a fresh 16-hex-digit request ID.
func NewRequestID() string {
	x := ridBase + ridCounter.Add(1)*0x9E3779B97F4A7C15
	// splitmix64 finalizer: counter increments must not produce
	// near-identical IDs.
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	const hexdigits = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hexdigits[x&0xf]
		x >>= 4
	}
	return string(out[:])
}

// CleanRequestID validates a client-supplied request ID for propagation:
// at most 64 characters of [A-Za-z0-9._-]. Anything else returns "" and
// the caller generates a fresh ID — a header is attacker-controlled
// input headed for logs, so the allowlist is strict.
func CleanRequestID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}
