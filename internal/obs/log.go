package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger from the -log-level and
// -log-format flag values: level is debug|info|warn|error, format is
// text|json. Empty strings select info/text.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// nopHandler discards everything and reports every level disabled, so
// argument evaluation short-circuits too.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that drops everything — the default for
// embedders that configure no logging. (slog.DiscardHandler needs Go
// 1.24; this module still builds on 1.23.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
