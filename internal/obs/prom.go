// Package obs is the dependency-free observability spine of the
// serving stack: a Prometheus text-format exposition writer, request
// tracing (request IDs plus per-stage timings), and log/slog plumbing.
// It deliberately imports nothing beyond the standard library — the
// server packages depend on it, never the other way around.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Metric family types of the Prometheus exposition format.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one name="value" pair on a series.
type Label struct{ Name, Value string }

// L builds a Label; collect code reads better with obs.L("endpoint", p)
// than with struct literals.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// sample is one exposition line: family name + optional suffix
// (_bucket, _sum, _count), labels, value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// family is one metric family: HELP/TYPE header plus its samples in
// insertion order.
type family struct {
	name, help, typ string
	samples         []sample
}

// Exposition accumulates metric families and renders them in the
// Prometheus text format (version 0.0.4). Families are sorted by name
// on output and series keep their insertion order within a family, so
// two collections over the same state render byte-identically — the
// "stable series ordering" contract the tests pin.
//
// The zero value is not usable; start from NewExposition.
type Exposition struct {
	byName map[string]*family
	order  []string
}

// NewExposition returns an empty exposition document.
func NewExposition() *Exposition {
	return &Exposition{byName: map[string]*family{}}
}

// fam returns (creating on first use) the named family. The first
// declaration fixes help and type; later calls must agree — a family
// emitted under two types would be malformed exposition.
func (e *Exposition) fam(name, help, typ string) *family {
	if f, ok := e.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric family %s declared as both %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	e.byName[name] = f
	e.order = append(e.order, name)
	return f
}

// Counter adds one sample to a counter family.
func (e *Exposition) Counter(name, help string, v float64, labels ...Label) {
	f := e.fam(name, help, TypeCounter)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Gauge adds one sample to a gauge family.
func (e *Exposition) Gauge(name, help string, v float64, labels ...Label) {
	f := e.fam(name, help, TypeGauge)
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Histogram adds one histogram series from per-bucket (NOT cumulative)
// counts. uppers are the finite upper bounds, in ascending order, of
// the first len(uppers) buckets; counts must have exactly one more
// entry — the overflow bucket, which becomes the +Inf bucket. The
// cumulative _bucket series, the implicit +Inf bucket (always equal to
// _count) and the _sum/_count samples are derived here, so a histogram
// emitted through this method is monotone by construction.
func (e *Exposition) Histogram(name, help string, labels []Label, uppers []float64, counts []uint64, sum float64) {
	if len(counts) != len(uppers)+1 {
		panic(fmt.Sprintf("obs: histogram %s: %d counts for %d finite bounds (want bounds+1)", name, len(counts), len(uppers)))
	}
	f := e.fam(name, help, TypeHistogram)
	cum := uint64(0)
	for i, upper := range uppers {
		cum += counts[i]
		f.samples = append(f.samples, sample{
			suffix: "_bucket",
			labels: append(append([]Label{}, labels...), L("le", formatValue(upper))),
			value:  float64(cum),
		})
	}
	cum += counts[len(counts)-1]
	f.samples = append(f.samples, sample{
		suffix: "_bucket",
		labels: append(append([]Label{}, labels...), L("le", "+Inf")),
		value:  float64(cum),
	})
	f.samples = append(f.samples,
		sample{suffix: "_sum", labels: labels, value: sum},
		sample{suffix: "_count", labels: labels, value: float64(cum)},
	)
}

// WriteTo renders the document. Families print in name order; each
// family prints its HELP and TYPE header once, then its samples.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	names := append([]string{}, e.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := e.byName[name]
		if len(f.samples) == 0 {
			// A family with no samples renders nothing: a bare # TYPE
			// header with no series trips scrape validators.
			continue
		}
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double quote and
// newline, per the exposition-format spec.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: shortest round-trip float, with
// the infinities spelled the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
