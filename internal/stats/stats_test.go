package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference values for the chi-squared survival function, from standard
// distribution tables: P(Q >= q | df).
func TestChiSquaredSurvivalReferenceValues(t *testing.T) {
	cases := []struct {
		q    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{18.307, 10, 0.05},
		{2.706, 1, 0.10},
		{23.209, 10, 0.01},
		{10, 10, 0.4405}, // P(X>=10) for df=10
		{1, 1, 0.3173},
	}
	for _, c := range cases {
		got := ChiSquaredSurvival(c.q, c.df)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("Survival(%v, %d) = %.4f, want %.4f", c.q, c.df, got, c.want)
		}
	}
}

func TestChiSquaredSurvivalEdges(t *testing.T) {
	if got := ChiSquaredSurvival(0, 5); got != 1 {
		t.Fatalf("Survival(0) = %v, want 1", got)
	}
	if got := ChiSquaredSurvival(-1, 5); got != 1 {
		t.Fatalf("Survival(-1) = %v, want 1", got)
	}
	if !math.IsNaN(ChiSquaredSurvival(1, 0)) {
		t.Fatal("df=0 did not return NaN")
	}
	if got := ChiSquaredSurvival(1e6, 3); got > 1e-10 {
		t.Fatalf("huge statistic: p = %v, want ~0", got)
	}
}

func TestRegularizedGammaComplementarity(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.1, 1, 5, 50, 200} {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-10 {
				t.Fatalf("P+Q = %v for a=%v x=%v", p+q, a, x)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Fatalf("out of [0,1]: P=%v Q=%v for a=%v x=%v", p, q, a, x)
			}
		}
	}
}

func TestRegularizedGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegularizedGammaP(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaDomain(t *testing.T) {
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Fatal("domain errors not NaN")
	}
	if RegularizedGammaP(3, 0) != 0 || RegularizedGammaQ(3, 0) != 1 {
		t.Fatal("x=0 values wrong")
	}
}

// Property: the gamma functions are monotone in x.
func TestQuickGammaMonotone(t *testing.T) {
	f := func(aSeed, xSeed uint16) bool {
		a := 0.5 + float64(aSeed%100)
		x1 := float64(xSeed%1000) / 10
		x2 := x1 + 1
		return RegularizedGammaP(a, x1) <= RegularizedGammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquaredUniformAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	for i := 0; i < 13000; i++ {
		counts[rng.Intn(100)]++
	}
	res, err := ChiSquaredUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Fatalf("uniform sample rejected: %v", res)
	}
	if res.DF != 99 {
		t.Fatalf("df = %d, want 99", res.DF)
	}
}

func TestChiSquaredUniformRejectsSkewed(t *testing.T) {
	counts := make([]int, 100)
	for i := range counts {
		counts[i] = 100
	}
	counts[0] = 2000 // one cell wildly overrepresented
	res, err := ChiSquaredUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.08) {
		t.Fatalf("skewed sample accepted: %v", res)
	}
}

func TestChiSquaredUniformErrors(t *testing.T) {
	if _, err := ChiSquaredUniform([]int{5}); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, err := ChiSquaredUniform([]int{0, 0}); err == nil {
		t.Fatal("zero totals accepted")
	}
	if _, err := ChiSquaredUniform([]int{1, -1}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestChiSquaredAgainstExpected(t *testing.T) {
	obs := []int{50, 30, 20}
	exp := []float64{50, 30, 20}
	res, err := ChiSquared(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 || res.PValue != 1 {
		t.Fatalf("perfect fit: %v", res)
	}
	if _, err := ChiSquared([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ChiSquared([]int{1, 2}, []float64{1, 0}); err == nil {
		t.Fatal("zero expected accepted")
	}
	if _, err := ChiSquared([]int{1}, []float64{1}); err == nil {
		t.Fatal("single cell accepted")
	}
}

func TestChiSquaredResultString(t *testing.T) {
	r := ChiSquaredResult{Statistic: 1.5, DF: 3, PValue: 0.68}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestRecommendedRounds(t *testing.T) {
	if RecommendedRounds(1000) != 130000 {
		t.Fatal("wrong recommendation")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty input not zero")
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Std != 0 {
		t.Fatalf("singleton summary wrong: %+v", one)
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("quantiles wrong: %+v", s)
	}
}

// Property: chi-squared statistic is invariant under cell permutation.
func TestQuickChiSquaredPermutationInvariant(t *testing.T) {
	f := func(counts []uint8, seed int64) bool {
		if len(counts) < 2 {
			return true
		}
		obs := make([]int, len(counts))
		total := 0
		for i, c := range counts {
			obs[i] = int(c)
			total += int(c)
		}
		if total == 0 {
			return true
		}
		r1, err := ChiSquaredUniform(obs)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(obs), func(i, j int) { obs[i], obs[j] = obs[j], obs[i] })
		r2, err := ChiSquaredUniform(obs)
		if err != nil {
			return false
		}
		return math.Abs(r1.Statistic-r2.Statistic) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
