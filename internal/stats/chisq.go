package stats

import (
	"fmt"
	"math"
	"sort"
)

// ChiSquaredResult reports a Pearson chi-squared goodness-of-fit test.
type ChiSquaredResult struct {
	// Statistic is the value q of Q = Σ (o_i − e_i)² / e_i.
	Statistic float64
	// DF is the degrees of freedom (number of cells − 1).
	DF int
	// PValue is P(Q >= q) under the null hypothesis.
	PValue float64
}

// Reject reports whether the null hypothesis is rejected at significance
// level alpha (the paper uses 0.08, §7.2).
func (r ChiSquaredResult) Reject(alpha float64) bool { return r.PValue < alpha }

func (r ChiSquaredResult) String() string {
	return fmt.Sprintf("chi2=%.2f df=%d p=%.4f", r.Statistic, r.DF, r.PValue)
}

// ChiSquaredUniform tests the null hypothesis that the observed counts are
// draws from the uniform distribution over the len(observed) cells (§7.2:
// e_i = T/n for T total samples). It returns an error for fewer than two
// cells or zero total observations.
func ChiSquaredUniform(observed []int) (ChiSquaredResult, error) {
	if len(observed) < 2 {
		return ChiSquaredResult{}, fmt.Errorf("stats: need >= 2 cells, got %d", len(observed))
	}
	total := 0
	for _, o := range observed {
		if o < 0 {
			return ChiSquaredResult{}, fmt.Errorf("stats: negative count %d", o)
		}
		total += o
	}
	if total == 0 {
		return ChiSquaredResult{}, fmt.Errorf("stats: no observations")
	}
	e := float64(total) / float64(len(observed))
	var q float64
	for _, o := range observed {
		d := float64(o) - e
		q += d * d / e
	}
	df := len(observed) - 1
	return ChiSquaredResult{Statistic: q, DF: df, PValue: ChiSquaredSurvival(q, df)}, nil
}

// ChiSquared tests observed counts against arbitrary expected counts.
// expected must be strictly positive and the same length as observed.
func ChiSquared(observed []int, expected []float64) (ChiSquaredResult, error) {
	if len(observed) != len(expected) {
		return ChiSquaredResult{}, fmt.Errorf("stats: length mismatch %d vs %d", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return ChiSquaredResult{}, fmt.Errorf("stats: need >= 2 cells, got %d", len(observed))
	}
	var q float64
	for i, o := range observed {
		if expected[i] <= 0 {
			return ChiSquaredResult{}, fmt.Errorf("stats: non-positive expected count at %d", i)
		}
		d := float64(o) - expected[i]
		q += d * d / expected[i]
	}
	df := len(observed) - 1
	return ChiSquaredResult{Statistic: q, DF: df, PValue: ChiSquaredSurvival(q, df)}, nil
}

// RecommendedRounds returns the paper's sample-count recommendation for
// the uniformity test at its significance level: T = 130·n (§7.2, citing
// Six Sigma design guidance [24]).
func RecommendedRounds(n int) int { return 130 * n }

// Summary holds descriptive statistics of a float64 sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P50, P95, P99  float64
	Total, SumSqrs float64
}

// Summarize computes descriptive statistics; it copies and sorts the
// input. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, x := range xs {
		s.Total += x
		s.SumSqrs += x * x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	n := float64(s.N)
	s.Mean = s.Total / n
	if s.N > 1 {
		v := (s.SumSqrs - n*s.Mean*s.Mean) / (n - 1)
		if v > 0 {
			s.Std = math.Sqrt(v)
		}
	}
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-quantile of sorted data by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
