// Package stats provides the statistical machinery the paper's evaluation
// uses: the Pearson chi-squared goodness-of-fit test for sample uniformity
// (§7.2), with p-values computed from the regularized incomplete gamma
// function, plus summary statistics for the experiment harness.
package stats

import (
	"math"
)

// RegularizedGammaP returns P(a, x), the regularized lower incomplete
// gamma function, computed with the series expansion for x < a+1 and the
// continued fraction for x >= a+1 (Numerical Recipes §6.2). a must be
// positive and x non-negative; out-of-domain inputs return NaN.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// RegularizedGammaQ returns Q(a, x) = 1 − P(a, x), the regularized upper
// incomplete gamma function.
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContinuedFraction(a, x)
	}
}

const (
	gammaEpsilon  = 3e-14
	gammaMaxIters = 1000
)

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIters; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEpsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz's method).
func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIters; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEpsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquaredSurvival returns P(Q >= q) for a chi-squared random variable Q
// with df degrees of freedom: the p-value of an observed statistic q.
func ChiSquaredSurvival(q float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if q <= 0 {
		return 1
	}
	return RegularizedGammaQ(float64(df)/2, q/2)
}
