package membership

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cuckoo"
)

// The serialized form of every backend is a tagged envelope, so a
// reader can reconstruct the right implementation without out-of-band
// knowledge:
//
//	magic   [4]byte "BSM1"
//	kind    uint8 length + backend kind string
//	payload backend-specific encoding
//
// For compatibility with snapshots written before backends existed,
// Unmarshal also accepts a bare plain-filter encoding ("BSF1" — what
// setdb used to store per set) and returns it as the Bloom backend, and
// a bare counting encoding ("BSC1") as the counting backend.
const envelopeMagic = "BSM1"

// MarshalBinary implementations: each adapter wraps its concrete
// encoding in the envelope.

func (s bloomSet) MarshalBinary() ([]byte, error) {
	payload, err := s.f.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return envelope(KindBloom, payload), nil
}

func (s countingSet) MarshalBinary() ([]byte, error) {
	payload, err := s.c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return envelope(KindCounting, payload), nil
}

// The cuckoo payload carries the live count, the query view, and the
// table stack:
//
//	live    uint64
//	view    uint32 length + "BSF1" filter
//	tables  uint32 count, then per table: uint32 length + "CKF1" filter
func (s *cuckooSet) MarshalBinary() ([]byte, error) {
	view, err := s.view.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 16+len(view))
	out = binary.LittleEndian.AppendUint64(out, s.live)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(view)))
	out = append(out, view...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.tables)))
	for _, t := range s.tables {
		enc, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(enc)))
		out = append(out, enc...)
	}
	return envelope(KindCuckoo, out), nil
}

func envelope(kind Kind, payload []byte) []byte {
	out := make([]byte, 0, 4+1+len(kind)+len(payload))
	out = append(out, envelopeMagic...)
	out = append(out, byte(len(kind)))
	out = append(out, kind...)
	return append(out, payload...)
}

// Unmarshal decodes any Membership encoding: the tagged "BSM1" envelope,
// or (for pre-backend snapshots) a bare "BSF1" plain filter — returned
// as the Bloom backend — or a bare "BSC1" counting filter.
func Unmarshal(data []byte) (Membership, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("membership: truncated encoding")
	}
	switch string(data[:4]) {
	case envelopeMagic:
		kl := 0
		if len(data) >= 5 {
			kl = int(data[4])
		}
		if len(data) < 5+kl {
			return nil, fmt.Errorf("membership: truncated envelope")
		}
		kind, err := ParseKind(string(data[5 : 5+kl]))
		if err != nil {
			return nil, err
		}
		return unmarshalPayload(kind, data[5+kl:])
	case "BSF1": // legacy: a bare plain filter is the Bloom backend
		return unmarshalPayload(KindBloom, data)
	case "BSC1": // legacy: a bare counting filter
		return unmarshalPayload(KindCounting, data)
	}
	return nil, fmt.Errorf("membership: unrecognized encoding %q", data[:4])
}

// UnmarshalDynamic decodes a DynamicMembership, rejecting backends that
// cannot delete.
func UnmarshalDynamic(data []byte) (DynamicMembership, error) {
	m, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	d, ok := m.(DynamicMembership)
	if !ok {
		return nil, fmt.Errorf("membership: backend %q is not dynamic", m.Backend())
	}
	return d, nil
}

func unmarshalPayload(kind Kind, payload []byte) (Membership, error) {
	switch kind {
	case KindBloom:
		f, err := bloom.UnmarshalFilter(payload)
		if err != nil {
			return nil, err
		}
		return bloomSet{f}, nil
	case KindCounting:
		c, err := bloom.UnmarshalCounting(payload)
		if err != nil {
			return nil, err
		}
		return countingSet{c}, nil
	case KindCuckoo:
		return unmarshalCuckoo(payload)
	}
	return nil, fmt.Errorf("membership: unknown backend kind %q", kind)
}

func unmarshalCuckoo(data []byte) (*cuckooSet, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("membership: truncated cuckoo payload")
	}
	live := binary.LittleEndian.Uint64(data[0:])
	vl := binary.LittleEndian.Uint32(data[8:])
	data = data[12:]
	if uint64(len(data)) < uint64(vl)+4 {
		return nil, fmt.Errorf("membership: truncated cuckoo view")
	}
	view, err := bloom.UnmarshalFilter(data[:vl])
	if err != nil {
		return nil, fmt.Errorf("membership: cuckoo view: %w", err)
	}
	data = data[vl:]
	nt := binary.LittleEndian.Uint32(data)
	data = data[4:]
	if nt == 0 {
		return nil, fmt.Errorf("membership: cuckoo payload has no tables")
	}
	tables := make([]*cuckoo.Filter, 0, nt)
	for i := uint32(0); i < nt; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("membership: truncated cuckoo table %d", i)
		}
		tl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint64(len(data)) < uint64(tl) {
			return nil, fmt.Errorf("membership: truncated cuckoo table %d", i)
		}
		t, err := cuckoo.Unmarshal(data[:tl])
		if err != nil {
			return nil, fmt.Errorf("membership: cuckoo table %d: %w", i, err)
		}
		tables = append(tables, t)
		data = data[tl:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("membership: %d trailing bytes after cuckoo payload", len(data))
	}
	return &cuckooSet{fam: view.Family(), tables: tables, view: view, live: live}, nil
}
