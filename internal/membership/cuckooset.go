package membership

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cuckoo"
	"repro/internal/hashfam"
)

// cuckooSet adapts cuckoo filters to the DynamicMembership contract.
//
// Two design points make the adapter, not the filter, the interesting
// part:
//
// Stacked growth. A cuckoo filter stores fingerprints, not keys, so a
// full table cannot be rehashed into a larger one — the key bits needed
// to recompute bucket indices at the new size are gone. Instead the set
// holds a stack of tables: inserts target the newest, and when it
// reports full a fresh table with twice the slots is appended (so the
// stack depth is logarithmic in growth and the geometric total keeps
// amortized memory within ~2x of a right-sized table). Probes and
// deletes search newest-first — the newest table is where recent, still
// live entries concentrate.
//
// Monotone query view. The tree descent needs bit-level intersection
// estimates, which fingerprints cannot provide, so the set maintains a
// plain Bloom projection alongside the tables: extended incrementally on
// CloneAdd (sharing the underlying vector when nothing changes), shared
// unchanged on CloneRemove. The view is therefore a monotone
// over-approximation after deletes — it can steer the sampler into a
// branch whose elements are gone (the leaf probe, which goes through the
// delete-aware tables, rejects them), but can never hide a live element.
// That is the same performance-not-correctness argument the pruned tree
// makes for node occupancy.
type cuckooSet struct {
	fam    hashfam.Family
	tables []*cuckoo.Filter // newest last; only the newest accepts inserts
	view   *bloom.Filter    // monotone plain-Bloom projection for the descent
	live   uint64
}

// minCuckooCapacity floors the first table so tiny design hints do not
// produce a stack of near-empty micro-tables.
const minCuckooCapacity = 64

func newCuckooSet(fam hashfam.Family, capacityHint uint64, ids []uint64) *cuckooSet {
	if capacityHint < minCuckooCapacity {
		capacityHint = minCuckooCapacity
	}
	s := &cuckooSet{
		fam:    fam,
		tables: []*cuckoo.Filter{cuckoo.New(capacityHint, fam.Seed())},
		view:   bloom.New(fam),
	}
	s.insertAll(ids)
	s.view.AddMany(ids)
	s.live += uint64(len(ids))
	return s
}

// insertAll inserts into privately-owned tables (fresh or just cloned),
// stacking doubled tables as they fill. It cannot fail: a fresh table
// always has room for at least one more fingerprint.
func (s *cuckooSet) insertAll(ids []uint64) {
	last := len(s.tables) - 1
	for _, id := range ids {
		for s.tables[last].Insert(id) != nil {
			// Full: freeze this table and stack one with double the slots.
			s.tables = append(s.tables, cuckoo.New(s.tables[last].Capacity(), s.fam.Seed()))
			last++
		}
	}
}

func (s *cuckooSet) Backend() Kind { return KindCuckoo }

func (s *cuckooSet) Contains(id uint64) bool {
	for i := len(s.tables) - 1; i >= 0; i-- {
		if s.tables[i].Contains(id) {
			return true
		}
	}
	return false
}

// ContainsBatch probes each id through the native tables. The cuckoo
// probe is two bucket reads, already cache-friendly; scratch is returned
// untouched to honor the shared contract.
func (s *cuckooSet) ContainsBatch(ids []uint64, out []bool, scratch []uint64) []uint64 {
	for i, id := range ids {
		out[i] = s.Contains(id)
	}
	return scratch
}

func (s *cuckooSet) Live() uint64             { return s.live }
func (s *cuckooSet) QueryView() *bloom.Filter { return s.view }

func (s *cuckooSet) IntersectionEstimate(q *bloom.Filter) float64 {
	return bloom.EstimateIntersectionOf(s.view, q)
}

func (s *cuckooSet) IntersectsAny(q *bloom.Filter) bool { return s.view.IntersectsAny(q) }

func (s *cuckooSet) SizeBytes() uint64 {
	total := s.view.SizeBytes()
	for _, t := range s.tables {
		total += t.SizeBytes()
	}
	return total
}

// LoadFactor reports fingerprint occupancy across the table stack.
func (s *cuckooSet) LoadFactor() float64 {
	var n, cap uint64
	for _, t := range s.tables {
		n += t.Count()
		cap += t.Capacity()
	}
	if cap == 0 {
		return 0
	}
	return float64(n) / float64(cap)
}

func (s *cuckooSet) CloneAdd(ids ...uint64) Membership { return s.CloneAddDynamic(ids...) }

func (s *cuckooSet) CloneAddDynamic(ids ...uint64) DynamicMembership {
	next := &cuckooSet{
		fam:    s.fam,
		tables: append([]*cuckoo.Filter(nil), s.tables...),
		view:   s.view.CloneAdd(ids...),
		live:   s.live,
	}
	if len(ids) == 0 {
		return next
	}
	// Only the insert target needs a private copy; frozen tables are
	// shared structurally with the receiver.
	last := len(next.tables) - 1
	next.tables[last] = next.tables[last].Clone()
	next.insertAll(ids)
	next.live += uint64(len(ids))
	return next
}

func (s *cuckooSet) CloneRemove(ids ...uint64) (DynamicMembership, error) {
	next := &cuckooSet{
		fam:    s.fam,
		tables: append([]*cuckoo.Filter(nil), s.tables...),
		view:   s.view, // monotone: the view is shared unchanged across deletes
		live:   s.live,
	}
	cloned := make([]bool, len(next.tables))
	for _, id := range ids {
		removed := false
		for i := len(next.tables) - 1; i >= 0; i-- {
			if !next.tables[i].Contains(id) {
				continue
			}
			if !cloned[i] {
				next.tables[i] = next.tables[i].Clone()
				cloned[i] = true
			}
			next.tables[i].Delete(id)
			removed = true
			break
		}
		if !removed {
			// All-or-nothing: discard the partial clone, report which id.
			return nil, fmt.Errorf("%w %d", bloom.ErrNotMember, id)
		}
		next.live--
	}
	return next, nil
}
