package membership

import "repro/internal/bloom"

// countingSet adapts a *bloom.CountingFilter to the DynamicMembership
// contract. Its query view is the filter's memoized plain-Bloom
// Snapshot, which the counting filter already keeps consistent with
// every mutation — so unlike the cuckoo view it is exact after deletes.
type countingSet struct {
	c *bloom.CountingFilter
}

func (s countingSet) Backend() Kind           { return KindCounting }
func (s countingSet) Contains(id uint64) bool { return s.c.Contains(id) }
func (s countingSet) Live() uint64            { return s.c.Live() }

// QueryView returns the memoized snapshot; on a published (immutable)
// filter the projection is computed at most once.
func (s countingSet) QueryView() *bloom.Filter { return s.c.Snapshot() }

// SizeBytes counts the counter array plus the materialized query view,
// which serving always ends up holding.
func (s countingSet) SizeBytes() uint64 {
	return s.c.SizeBytes() + s.c.Snapshot().SizeBytes()
}

func (s countingSet) ContainsBatch(ids []uint64, out []bool, scratch []uint64) []uint64 {
	return s.c.Snapshot().ContainsBatch(ids, out, scratch)
}

func (s countingSet) IntersectionEstimate(q *bloom.Filter) float64 {
	return bloom.EstimateIntersectionOf(s.c.Snapshot(), q)
}

func (s countingSet) IntersectsAny(q *bloom.Filter) bool { return s.c.Snapshot().IntersectsAny(q) }

func (s countingSet) CloneAdd(ids ...uint64) Membership { return s.CloneAddDynamic(ids...) }

func (s countingSet) CloneAddDynamic(ids ...uint64) DynamicMembership {
	return countingSet{s.c.CloneAdd(ids...)}
}

func (s countingSet) CloneRemove(ids ...uint64) (DynamicMembership, error) {
	next, err := s.c.CloneRemove(ids...)
	if err != nil {
		return nil, err
	}
	return countingSet{next}, nil
}

// Counting returns the wrapped counting filter, for callers that need
// the concrete type (introspection, tests).
func (s countingSet) Counting() *bloom.CountingFilter { return s.c }
