// Package membership defines the backend contract behind every set the
// system stores: tree nodes in internal/core and shard entries in
// internal/setdb hold Membership values instead of concrete Bloom
// filters, so approximate-membership structures with different
// memory/delete trade-offs (plain Bloom, counting Bloom, cuckoo) plug in
// behind one interface. The paper's sampling machinery needs only a
// small contract from each node — probe, batched probe, copy-on-write
// add/remove, an intersection estimate against a query filter, and a
// tagged serialization — and this package is that contract plus the
// adapters for the backends the repository ships.
//
// The tree descent itself works on bit-level intersection estimates, a
// Bloom-specific operation; backends whose native representation cannot
// intersect bit vectors (the cuckoo filter stores fingerprints) expose a
// QueryView: a plain Bloom projection of their contents used only to
// steer the descent and size estimates. The cuckoo backend maintains its
// view incrementally on CloneAdd and leaves it unchanged on CloneRemove,
// making the view a monotone over-approximation — exactly the argument
// the pruned tree already uses for node occupancy: a stale view can only
// send the sampler down a branch that turns out empty (a performance
// cost), never hide a live element (a correctness cost), because leaf
// probes and Contains go through the backend's native, delete-aware
// representation.
package membership

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// Kind names a membership backend; it is embedded in the serialized form
// and surfaced through stats.
type Kind string

const (
	// KindBloom is a plain Bloom filter: cheapest probes and memory, no
	// deletion. The only legal backend for static (plain) sets and tree
	// nodes.
	KindBloom Kind = "bloom"
	// KindCounting is the counting Bloom filter: 8-bit counters, native
	// delete, 8x a plain filter's memory.
	KindCounting Kind = "counting"
	// KindCuckoo is the cuckoo filter backend: 16-bit fingerprints in
	// 4-slot buckets, native delete at roughly 2.4 bytes per live entry
	// plus a plain-Bloom query view — well under the counting filter's
	// one byte per filter *position*.
	KindCuckoo Kind = "cuckoo"
)

// ParseKind validates a backend name from a flag or wire header.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindBloom, KindCounting, KindCuckoo:
		return Kind(s), nil
	case "":
		return KindCounting, nil
	}
	return "", fmt.Errorf("membership: unknown backend kind %q (want bloom, counting or cuckoo)", s)
}

// Membership is the read-plus-COW-write contract every backend satisfies.
// Values are immutable once published: CloneAdd returns a new value and
// never mutates the receiver, so instances can sit behind atomic pointers
// and be read without synchronization, the repository-wide discipline.
type Membership interface {
	// Backend identifies the concrete implementation.
	Backend() Kind
	// Contains reports whether id is a (possibly false) positive, through
	// the backend's native representation — delete-aware where the
	// backend supports deletion.
	Contains(id uint64) bool
	// ContainsBatch probes ids, writing results into out (len(ids)) and
	// reusing scratch for position buffers where the backend hashes in
	// batch (the PositionsMany path); it returns the possibly-grown
	// scratch, preserving the caller-owned-scratch allocation contract.
	ContainsBatch(ids []uint64, out []bool, scratch []uint64) []uint64
	// Live returns the net number of stored elements (adds minus removes).
	Live() uint64
	// QueryView returns a plain Bloom projection of the contents for the
	// tree descent and intersection estimates. For a Bloom backend this
	// is the filter itself (free); other backends maintain or memoize a
	// projection. The returned filter is shared — treat it as immutable.
	QueryView() *bloom.Filter
	// IntersectionEstimate estimates |self ∩ q| from bit-level overlap
	// with the query filter (Papapetrou's inner-intersection estimator).
	IntersectionEstimate(q *bloom.Filter) float64
	// IntersectsAny reports whether any query bit overlaps the view.
	IntersectsAny(q *bloom.Filter) bool
	// CloneAdd returns a new Membership equal to the receiver with ids
	// inserted. The receiver is never mutated.
	CloneAdd(ids ...uint64) Membership
	// SizeBytes returns the backend's resident memory, including any
	// query-view projection it maintains.
	SizeBytes() uint64
	// MarshalBinary serializes the backend with an embedded kind tag
	// (the "BSM1" envelope; see Unmarshal).
	MarshalBinary() ([]byte, error)
}

// DynamicMembership extends Membership with deletion for the backends
// that support it (counting, cuckoo).
type DynamicMembership interface {
	Membership
	// CloneAddDynamic is CloneAdd with a dynamic static type, so writers
	// on the dynamic path keep deletion capability without asserting.
	CloneAddDynamic(ids ...uint64) DynamicMembership
	// CloneRemove returns a new value with one insertion of each id
	// removed, all-or-nothing: if any id is not a member, it returns an
	// error wrapping bloom.ErrNotMember and no new value. The receiver is
	// never mutated.
	CloneRemove(ids ...uint64) (DynamicMembership, error)
}

// LoadFactorer is implemented by backends with a meaningful slot
// occupancy (the cuckoo filter); stats report it when present.
type LoadFactorer interface {
	LoadFactor() float64
}

// NewDynamic creates an empty dynamic set of the given kind. The family
// supplies the Bloom geometry (query view and, for counting, the counter
// array); capacityHint sizes the cuckoo fingerprint table (the design
// set size is the natural hint — the table stacks more capacity on
// demand, so the hint is not a cap).
func NewDynamic(kind Kind, fam hashfam.Family, capacityHint uint64) (DynamicMembership, error) {
	return newDynamicWith(kind, fam, capacityHint, nil)
}

// NewDynamicWith creates a dynamic set pre-populated with ids in one
// step, mutating only private state before first publication (cheaper
// than NewDynamic followed by CloneAddDynamic, which clones the empty
// value).
func NewDynamicWith(kind Kind, fam hashfam.Family, capacityHint uint64, ids []uint64) (DynamicMembership, error) {
	return newDynamicWith(kind, fam, capacityHint, ids)
}

func newDynamicWith(kind Kind, fam hashfam.Family, capacityHint uint64, ids []uint64) (DynamicMembership, error) {
	switch kind {
	case KindCounting:
		c := bloom.NewCounting(fam)
		for _, id := range ids {
			c.Add(id)
		}
		return countingSet{c}, nil
	case KindCuckoo:
		return newCuckooSet(fam, capacityHint, ids), nil
	case KindBloom:
		return nil, fmt.Errorf("membership: backend %q cannot delete; use counting or cuckoo for dynamic sets", kind)
	}
	return nil, fmt.Errorf("membership: unknown backend kind %q", kind)
}

// FromBloom wraps a plain Bloom filter as a (static) Membership.
func FromBloom(f *bloom.Filter) Membership { return bloomSet{f} }

// FromCounting wraps a counting filter as a DynamicMembership.
func FromCounting(c *bloom.CountingFilter) DynamicMembership { return countingSet{c} }
