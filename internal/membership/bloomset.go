package membership

import "repro/internal/bloom"

// bloomSet adapts a plain *bloom.Filter to the Membership contract. The
// filter is its own query view, so every method is a direct delegation —
// the Bloom backend pays nothing for the indirection beyond the
// interface dispatch.
type bloomSet struct {
	f *bloom.Filter
}

func (s bloomSet) Backend() Kind            { return KindBloom }
func (s bloomSet) Contains(id uint64) bool  { return s.f.Contains(id) }
func (s bloomSet) Live() uint64             { return s.f.Insertions() }
func (s bloomSet) QueryView() *bloom.Filter { return s.f }
func (s bloomSet) SizeBytes() uint64        { return s.f.SizeBytes() }

func (s bloomSet) ContainsBatch(ids []uint64, out []bool, scratch []uint64) []uint64 {
	return s.f.ContainsBatch(ids, out, scratch)
}

func (s bloomSet) IntersectionEstimate(q *bloom.Filter) float64 {
	return bloom.EstimateIntersectionOf(s.f, q)
}

func (s bloomSet) IntersectsAny(q *bloom.Filter) bool { return s.f.IntersectsAny(q) }

func (s bloomSet) CloneAdd(ids ...uint64) Membership { return bloomSet{s.f.CloneAdd(ids...)} }
