package membership

import (
	"sync"
	"testing"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// Conformance suite: every dynamic backend must satisfy the same
// contract — add/contains/delete round-trips, immutable copy-on-write
// versions (checked for real under -race), marshal round-trips through
// the envelope, and a false-positive rate within the planned bound.
// The table is the single place a new backend registers to inherit the
// whole suite.

var conformanceKinds = []Kind{KindCounting, KindCuckoo}

func testFamily(t testing.TB) hashfam.Family {
	t.Helper()
	fam, err := hashfam.New(hashfam.DefaultKind, 1<<14, 3, 42)
	if err != nil {
		t.Fatalf("hashfam.New: %v", err)
	}
	return fam
}

func TestConformanceAddContainsDelete(t *testing.T) {
	for _, kind := range conformanceKinds {
		t.Run(string(kind), func(t *testing.T) {
			m, err := NewDynamic(kind, testFamily(t), 0)
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			if m.Backend() != kind {
				t.Fatalf("Backend() = %q, want %q", m.Backend(), kind)
			}
			ids := []uint64{1, 7, 99, 1 << 40, 12345}
			m2 := m.CloneAddDynamic(ids...)
			for _, id := range ids {
				if !m2.Contains(id) {
					t.Fatalf("added id %d not contained", id)
				}
			}
			if m2.Live() != uint64(len(ids)) {
				t.Fatalf("Live() = %d, want %d", m2.Live(), len(ids))
			}
			m3, err := m2.CloneRemove(7, 99)
			if err != nil {
				t.Fatalf("CloneRemove: %v", err)
			}
			if m3.Contains(7) || m3.Contains(99) {
				t.Fatal("removed ids still contained")
			}
			for _, id := range []uint64{1, 1 << 40, 12345} {
				if !m3.Contains(id) {
					t.Fatalf("remaining id %d lost by removal", id)
				}
			}
			if m3.Live() != uint64(len(ids)-2) {
				t.Fatalf("Live() after remove = %d, want %d", m3.Live(), len(ids)-2)
			}
			// Removing a non-member is an error and leaves the set intact
			// (all-or-nothing): 7 was already removed.
			if _, err := m3.CloneRemove(1, 7); err == nil {
				t.Fatal("CloneRemove of non-member succeeded")
			}
			if !m3.Contains(1) {
				t.Fatal("failed batch removal mutated the receiver")
			}
		})
	}
}

func TestConformanceCopyOnWriteIsolation(t *testing.T) {
	// A published version must never change under later clones. Readers
	// hammer the original membership and its query view while a writer
	// derives clone after clone; run with -race this doubles as a data
	// race check on the clone paths.
	for _, kind := range conformanceKinds {
		t.Run(string(kind), func(t *testing.T) {
			base, err := NewDynamicWith(kind, testFamily(t), 0, []uint64{10, 20, 30})
			if err != nil {
				t.Fatalf("NewDynamicWith: %v", err)
			}
			view := base.QueryView()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if !base.Contains(10) || !base.Contains(20) || !base.Contains(30) {
							t.Error("published version lost a member")
							return
						}
						if base.Contains(555) {
							t.Error("published version gained a member")
							return
						}
						if !view.Contains(10) {
							t.Error("query view lost a member")
							return
						}
						if base.Live() != 3 {
							t.Error("published version's Live changed")
							return
						}
					}
				}()
			}
			cur := base
			for i := uint64(0); i < 200; i++ {
				cur = cur.CloneAddDynamic(1000 + i)
				if i%3 == 0 {
					next, err := cur.CloneRemove(1000 + i)
					if err != nil {
						t.Fatalf("CloneRemove: %v", err)
					}
					cur = next
				}
			}
			close(stop)
			wg.Wait()
			if base.Contains(555) || base.Live() != 3 {
				t.Fatal("base mutated by cloning")
			}
		})
	}
}

func TestConformanceMarshalRoundTrip(t *testing.T) {
	for _, kind := range conformanceKinds {
		t.Run(string(kind), func(t *testing.T) {
			ids := []uint64{3, 5, 8, 13, 1 << 33}
			m, err := NewDynamicWith(kind, testFamily(t), 0, ids)
			if err != nil {
				t.Fatalf("NewDynamicWith: %v", err)
			}
			m2, err := m.CloneRemove(8)
			if err != nil {
				t.Fatalf("CloneRemove: %v", err)
			}
			data, err := m2.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			got, err := UnmarshalDynamic(data)
			if err != nil {
				t.Fatalf("UnmarshalDynamic: %v", err)
			}
			if got.Backend() != kind {
				t.Fatalf("decoded Backend() = %q, want %q", got.Backend(), kind)
			}
			if got.Live() != m2.Live() {
				t.Fatalf("decoded Live() = %d, want %d", got.Live(), m2.Live())
			}
			for _, id := range []uint64{3, 5, 13, 1 << 33} {
				if !got.Contains(id) {
					t.Fatalf("decoded filter lost member %d", id)
				}
			}
			// The decoded value must stay fully usable: add, remove,
			// re-marshal.
			got2 := got.CloneAddDynamic(777)
			if !got2.Contains(777) {
				t.Fatal("decoded filter rejects further adds")
			}
			if _, err := got2.MarshalBinary(); err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
		})
	}
}

func TestConformanceFalsePositiveBound(t *testing.T) {
	for _, kind := range conformanceKinds {
		t.Run(string(kind), func(t *testing.T) {
			fam := testFamily(t)
			const n = 1000
			ids := make([]uint64, n)
			for i := range ids {
				ids[i] = uint64(i) * 2 // members even, probes odd
			}
			m, err := NewDynamicWith(kind, fam, n, ids)
			if err != nil {
				t.Fatalf("NewDynamicWith: %v", err)
			}
			const probes = 100_000
			fp := 0
			for i := 0; i < probes; i++ {
				if m.Contains(uint64(i)*2 + 1) {
					fp++
				}
			}
			rate := float64(fp) / probes
			// The counting filter realizes the planned Bloom rate; the
			// cuckoo filter's 16-bit fingerprints are far below it. Allow
			// 3x slack over the Bloom design rate for sampling noise.
			bound := 3 * bloom.FalsePositiveRate(fam.M(), fam.K(), n)
			if bound < 1e-3 {
				bound = 1e-3
			}
			if rate > bound {
				t.Fatalf("false-positive rate %.5f exceeds bound %.5f", rate, bound)
			}
		})
	}
}

func TestConformanceQueryViewTracksAdds(t *testing.T) {
	// The query view is the tree-facing projection: it must cover every
	// live member after any sequence of adds (deletes may leave it an
	// over-approximation, never an under-approximation).
	for _, kind := range conformanceKinds {
		t.Run(string(kind), func(t *testing.T) {
			m, err := NewDynamic(kind, testFamily(t), 0)
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			cur := m
			for i := uint64(0); i < 500; i++ {
				cur = cur.CloneAddDynamic(i * 3)
				if i%5 == 4 {
					next, err := cur.CloneRemove(i * 3)
					if err != nil {
						t.Fatalf("CloneRemove: %v", err)
					}
					cur = next
				}
			}
			view := cur.QueryView()
			for i := uint64(0); i < 500; i++ {
				if i%5 == 4 {
					continue // removed; the view may or may not cover it
				}
				if !cur.Contains(i * 3) {
					t.Fatalf("live member %d lost", i*3)
				}
				if !view.Contains(i * 3) {
					t.Fatalf("query view misses live member %d", i*3)
				}
			}
		})
	}
}
