// Package cuckoo implements a cuckoo filter (Fan et al., CoNEXT 2014):
// an approximate-membership structure storing short fingerprints in
// 4-slot buckets, where each element may live in one of two buckets
// linked by a partial-key XOR. Unlike a Bloom filter it supports native
// deletion at a fraction of a counting filter's memory (~2 bytes per
// entry at 16-bit fingerprints versus one byte per *filter bit*), and
// its probes touch at most two cache lines. It is the second membership
// backend behind internal/membership; the ROADMAP names tildeleb/cuckoo
// as the reference idiom for the bucketed layout and load-factor design.
//
// Like the Bloom substrate, a Filter follows the repository's
// copy-on-write discipline: the query side (Contains, Count, LoadFactor)
// is read-only and safe for unsynchronized concurrent callers on a
// published (no longer mutated) filter, while Insert/Delete require
// external synchronization — publishers Clone first and swap atomically.
package cuckoo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

const (
	// slotsPerBucket is the bucket width b. Four slots is the sweet spot
	// of Fan et al.'s Table 2: ~95% achievable load factor at a false
	// positive rate of ~ 2b/2^f.
	slotsPerBucket = 4
	// targetLoad is the design load factor capacity planning divides by;
	// BFS eviction reliably fills past it, so sizing at 0.84 leaves slack
	// for skewed fingerprint distributions before Insert reports full.
	targetLoad = 0.84
	// maxBFSNodes bounds the breadth-first eviction search. With fanout 4
	// it explores eviction chains about four buckets deep — enough to
	// reach ~95% load — while keeping the worst-case insert cost fixed.
	// The search is read-only until a path to a free slot is found, so a
	// failed insert never strands a displaced fingerprint (the classic
	// random-walk hazard).
	maxBFSNodes = 512
)

// ErrFull is wrapped by Insert when no eviction path to a free slot
// exists within the search budget; match it with errors.Is. The filter
// is unchanged when Insert fails.
var ErrFull = errors.New("cuckoo: filter full")

// Filter is a cuckoo filter over uint64 elements. Fingerprints are 16
// bits (zero reserved as the empty-slot sentinel), so the per-slot cost
// is 2 bytes and the false-positive rate is about 2·4/2¹⁶ ≈ 0.012%.
type Filter struct {
	table    []uint16 // nbuckets × slotsPerBucket fingerprints; 0 = empty
	nbuckets uint64   // power of two
	mask     uint64   // nbuckets - 1
	seed     uint64
	n        uint64 // live fingerprints (inserts minus deletes)
}

// New returns an empty filter sized to hold about capacity elements at
// the design load factor. The seed derives the fingerprint and bucket
// hashes; filters that should be comparable must share it.
func New(capacity, seed uint64) *Filter {
	if capacity < 1 {
		capacity = 1
	}
	need := uint64(float64(capacity)/targetLoad)/slotsPerBucket + 1
	nb := uint64(1) << bits.Len64(need-1)
	if nb < 2 {
		nb = 2
	}
	return &Filter{
		table:    make([]uint16, nb*slotsPerBucket),
		nbuckets: nb,
		mask:     nb - 1,
		seed:     seed,
	}
}

// mix64 is the splitmix64 finalizer, the same avalanche structure the
// fast hash family builds on.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fingerprintAndIndex derives the element's 16-bit fingerprint (never
// zero) and primary bucket from one mix of the key and seed.
func (f *Filter) fingerprintAndIndex(x uint64) (uint16, uint64) {
	h := mix64(x ^ f.seed*0x9e3779b97f4a7c15)
	fp := uint16(h >> 48)
	if fp == 0 {
		fp = 1
	}
	return fp, h & f.mask
}

// altIndex returns the element's other admissible bucket. XORing with a
// pure function of the fingerprint makes the mapping an involution, so
// either bucket recovers the other without knowing which one i is.
func (f *Filter) altIndex(i uint64, fp uint16) uint64 {
	return (i ^ mix64(uint64(fp)*0xc4ceb9fe1a85ec53)) & f.mask
}

// tryPlace stores fp in any free slot of bucket i.
func (f *Filter) tryPlace(fp uint16, i uint64) bool {
	base := i * slotsPerBucket
	for s := uint64(0); s < slotsPerBucket; s++ {
		if f.table[base+s] == 0 {
			f.table[base+s] = fp
			return true
		}
	}
	return false
}

// Insert adds x to the filter. Duplicate insertions are allowed (each
// occupies a slot and must be deleted separately, the counting-filter
// analogue). Insert mutates the filter and requires external
// synchronization; on ErrFull the filter is unchanged.
func (f *Filter) Insert(x uint64) error {
	fp, i1 := f.fingerprintAndIndex(x)
	i2 := f.altIndex(i1, fp)
	if f.tryPlace(fp, i1) || f.tryPlace(fp, i2) {
		f.n++
		return nil
	}
	if f.insertBFS(fp, i1, i2) {
		f.n++
		return nil
	}
	return fmt.Errorf("%w: %d/%d slots at %d buckets", ErrFull, f.n, f.nbuckets*slotsPerBucket, f.nbuckets)
}

// bfsEntry is one node of the eviction search: freeing a slot in bucket
// requires relocating the fingerprint at (queue[parent].bucket, slot).
type bfsEntry struct {
	bucket uint64
	parent int32
	slot   int8
}

// insertBFS searches breadth-first for a chain of relocations ending in
// a free slot, then executes the chain backwards. The search only reads
// the table; mutations happen exclusively on a discovered complete path,
// so failure leaves the filter untouched.
func (f *Filter) insertBFS(fp uint16, i1, i2 uint64) bool {
	queue := make([]bfsEntry, 0, maxBFSNodes)
	queue = append(queue, bfsEntry{bucket: i1, parent: -1}, bfsEntry{bucket: i2, parent: -1})
	for qi := 0; qi < len(queue); qi++ {
		e := queue[qi]
		base := e.bucket * slotsPerBucket
		for s := uint64(0); s < slotsPerBucket; s++ {
			if f.table[base+s] != 0 {
				continue
			}
			// Free slot found: walk the chain root-ward, moving each
			// parent victim into the slot freed one step later.
			slot := base + s
			for queue[qi].parent >= 0 {
				p := queue[qi].parent
				victim := queue[p].bucket*slotsPerBucket + uint64(queue[qi].slot)
				f.table[slot] = f.table[victim]
				slot = victim
				qi = int(p)
			}
			f.table[slot] = fp
			return true
		}
		if len(queue)+slotsPerBucket > maxBFSNodes {
			continue
		}
		for s := uint64(0); s < slotsPerBucket; s++ {
			vfp := f.table[base+s]
			queue = append(queue, bfsEntry{
				bucket: f.altIndex(e.bucket, vfp),
				parent: int32(qi),
				slot:   int8(s),
			})
		}
	}
	return false
}

// Contains reports whether x is a (possibly false) positive. Read-only;
// safe for unsynchronized concurrent callers of a published filter.
func (f *Filter) Contains(x uint64) bool {
	fp, i1 := f.fingerprintAndIndex(x)
	if f.bucketHas(i1, fp) {
		return true
	}
	return f.bucketHas(f.altIndex(i1, fp), fp)
}

func (f *Filter) bucketHas(i uint64, fp uint16) bool {
	base := i * slotsPerBucket
	return f.table[base] == fp || f.table[base+1] == fp ||
		f.table[base+2] == fp || f.table[base+3] == fp
}

// Delete removes one stored copy of x's fingerprint, reporting whether
// one was found. Like a counting filter, deleting an element that was
// never inserted can remove another element's colliding fingerprint —
// call it only for previously inserted elements. Delete mutates the
// filter and requires external synchronization.
func (f *Filter) Delete(x uint64) bool {
	fp, i1 := f.fingerprintAndIndex(x)
	if f.bucketDelete(i1, fp) || f.bucketDelete(f.altIndex(i1, fp), fp) {
		f.n--
		return true
	}
	return false
}

func (f *Filter) bucketDelete(i uint64, fp uint16) bool {
	base := i * slotsPerBucket
	for s := uint64(0); s < slotsPerBucket; s++ {
		if f.table[base+s] == fp {
			f.table[base+s] = 0
			return true
		}
	}
	return false
}

// Count returns the number of stored fingerprints.
func (f *Filter) Count() uint64 { return f.n }

// Capacity returns the total slot count.
func (f *Filter) Capacity() uint64 { return f.nbuckets * slotsPerBucket }

// LoadFactor returns the fraction of slots occupied.
func (f *Filter) LoadFactor() float64 {
	return float64(f.n) / float64(f.Capacity())
}

// SizeBytes returns the in-memory size of the fingerprint table.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.table)) * 2 }

// Seed returns the hash seed the filter was built with.
func (f *Filter) Seed() uint64 { return f.seed }

// Clone returns a deep copy, the copy-on-write unit for publishers.
func (f *Filter) Clone() *Filter {
	table := make([]uint16, len(f.table))
	copy(table, f.table)
	return &Filter{table: table, nbuckets: f.nbuckets, mask: f.mask, seed: f.seed, n: f.n}
}

// Binary encoding:
//
//	magic    [4]byte "CKF1"
//	seed     uint64
//	nbuckets uint64
//	n        uint64
//	table    nbuckets×4 little-endian uint16
const filterMagic = "CKF1"

// MarshalBinary encodes the filter.
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+24+len(f.table)*2)
	out = append(out, filterMagic...)
	out = binary.LittleEndian.AppendUint64(out, f.seed)
	out = binary.LittleEndian.AppendUint64(out, f.nbuckets)
	out = binary.LittleEndian.AppendUint64(out, f.n)
	for _, fp := range f.table {
		out = binary.LittleEndian.AppendUint16(out, fp)
	}
	return out, nil
}

// Unmarshal decodes a filter produced by MarshalBinary.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 4+24 || string(data[:4]) != filterMagic {
		return nil, fmt.Errorf("cuckoo: bad magic")
	}
	data = data[4:]
	seed := binary.LittleEndian.Uint64(data[0:])
	nb := binary.LittleEndian.Uint64(data[8:])
	n := binary.LittleEndian.Uint64(data[16:])
	data = data[24:]
	if nb < 2 || nb&(nb-1) != 0 {
		return nil, fmt.Errorf("cuckoo: bucket count %d not a power of two", nb)
	}
	if want := int(nb * slotsPerBucket * 2); len(data) != want {
		return nil, fmt.Errorf("cuckoo: table payload %d bytes, want %d", len(data), want)
	}
	f := &Filter{
		table:    make([]uint16, nb*slotsPerBucket),
		nbuckets: nb,
		mask:     nb - 1,
		seed:     seed,
		n:        n,
	}
	for i := range f.table {
		f.table[i] = binary.LittleEndian.Uint16(data[i*2:])
	}
	return f, nil
}
