package cuckoo

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInsertContainsDelete(t *testing.T) {
	f := New(1000, 42)
	for i := uint64(0); i < 1000; i++ {
		if err := f.Insert(i); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if f.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", f.Count())
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	for i := uint64(0); i < 500; i++ {
		if !f.Delete(i) {
			t.Fatalf("Delete(%d) found nothing", i)
		}
	}
	if f.Count() != 500 {
		t.Fatalf("Count after deletes = %d, want 500", f.Count())
	}
	// Remaining elements must still be present (no false negatives ever).
	for i := uint64(500); i < 1000; i++ {
		if !f.Contains(i) {
			t.Fatalf("false negative for %d after unrelated deletes", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10_000
	f := New(n, 7)
	for i := uint64(0); i < n; i++ {
		if err := f.Insert(i); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	fp := 0
	const probes = 100_000
	for i := uint64(0); i < probes; i++ {
		if f.Contains(1_000_000 + i) {
			fp++
		}
	}
	// Theoretical bound ≈ 2b/2^f ≈ 0.012% at partial load; allow 10x slack.
	if rate := float64(fp) / probes; rate > 0.0012 {
		t.Fatalf("false positive rate %.5f exceeds bound", rate)
	}
}

func TestFillToHighLoad(t *testing.T) {
	f := New(1, 3) // minimal: 2 buckets, 8 slots — force growth pressure off
	// A fresh filter sized for n should accept n inserts; push a bigger one
	// well past the design load factor to exercise BFS eviction.
	g := New(4096, 9)
	rng := rand.New(rand.NewSource(11))
	inserted := uint64(0)
	for inserted < 4096 {
		if err := g.Insert(rng.Uint64()); err != nil {
			t.Fatalf("Insert at load %.3f: %v", g.LoadFactor(), err)
		}
		inserted++
	}
	if lf := g.LoadFactor(); lf < 0.5 {
		t.Fatalf("load factor %.3f unexpectedly low", lf)
	}
	_ = f
}

func TestErrFullLeavesFilterIntact(t *testing.T) {
	f := New(1, 5) // 8 slots
	var members []uint64
	var x uint64
	for {
		if err := f.Insert(x); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		members = append(members, x)
		x++
		if x > 1000 {
			t.Fatal("tiny filter never filled")
		}
	}
	// Failed insert must not have dropped any resident fingerprint.
	for _, m := range members {
		if !f.Contains(m) {
			t.Fatalf("false negative for %d after failed insert", m)
		}
	}
	if f.Count() != uint64(len(members)) {
		t.Fatalf("Count = %d, want %d", f.Count(), len(members))
	}
}

func TestCloneIsolation(t *testing.T) {
	f := New(100, 1)
	for i := uint64(0); i < 50; i++ {
		if err := f.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	g := f.Clone()
	if err := g.Insert(999); err != nil {
		t.Fatal(err)
	}
	g.Delete(0)
	if f.Contains(999) {
		t.Fatal("insert into clone leaked into original")
	}
	if !f.Contains(0) {
		t.Fatal("delete in clone leaked into original")
	}
	if f.Count() != 50 || g.Count() != 50 {
		t.Fatalf("counts: original %d clone %d", f.Count(), g.Count())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(500, 77)
	for i := uint64(0); i < 300; i++ {
		if err := f.Insert(i * 3); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() || g.Seed() != f.Seed() || g.Capacity() != f.Capacity() {
		t.Fatal("metadata mismatch after round trip")
	}
	for i := uint64(0); i < 300; i++ {
		if !g.Contains(i * 3) {
			t.Fatalf("false negative for %d after round trip", i*3)
		}
	}
	if _, err := Unmarshal(data[:10]); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
	data[0] = 'X'
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("bad magic decoded without error")
	}
}

func TestAltIndexInvolution(t *testing.T) {
	f := New(1024, 13)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		fp, i1 := f.fingerprintAndIndex(rng.Uint64())
		i2 := f.altIndex(i1, fp)
		if back := f.altIndex(i2, fp); back != i1 {
			t.Fatalf("altIndex not involutive: %d -> %d -> %d (fp %d)", i1, i2, back, fp)
		}
	}
}

// FuzzInsertEvict drives inserts and deletes from fuzzed bytes and checks
// the no-false-negative invariant plus count bookkeeping after every
// operation, exercising the BFS eviction paths on small tables.
func FuzzInsertEvict(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint64(3))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00}, uint64(99))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		cf := New(64, seed)
		live := make(map[uint64]int)
		var total uint64
		for i, b := range ops {
			x := uint64(b) % 97
			if b&0x80 != 0 && live[x] > 0 {
				if !cf.Delete(x) {
					t.Fatalf("op %d: Delete(%d) failed for a live element", i, x)
				}
				live[x]--
				total--
			} else {
				if err := cf.Insert(x); err != nil {
					if !errors.Is(err, ErrFull) {
						t.Fatalf("op %d: %v", i, err)
					}
					continue
				}
				live[x]++
				total++
			}
			if cf.Count() != total {
				t.Fatalf("op %d: Count=%d want %d", i, cf.Count(), total)
			}
			for m, c := range live {
				if c > 0 && !cf.Contains(m) {
					t.Fatalf("op %d: false negative for %d", i, m)
				}
			}
		}
	})
}
