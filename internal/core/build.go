package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/hashfam"
	"repro/internal/membership"
)

// BuildTree constructs the full BloomSampleTree of Definition 5.1: every
// node stores its entire namespace range. Leaves are filled by element
// insertion; internal filters are formed by unioning children (valid
// because all filters share m and H, §3.1), which is much cheaper than
// re-inserting every element at every level.
func BuildTree(cfg Config) (*Tree, error) {
	t, err := newTree(cfg, false)
	if err != nil {
		return nil, err
	}
	t.root.Store(t.buildFull(0, cfg.Namespace, cfg.Depth))
	return t, nil
}

// BuildPruned constructs the Pruned-BloomSampleTree of §5.2 over the given
// occupied identifiers: nodes are allocated only for ranges containing at
// least one occupied id, and node filters store only occupied ids. The
// occupied slice need not be sorted; duplicates are tolerated. Every id
// must lie in [0, Namespace).
func BuildPruned(cfg Config, occupied []uint64) (*Tree, error) {
	t, err := newTree(cfg, true)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(occupied))
	copy(ids, occupied)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id >= cfg.Namespace {
			return nil, fmt.Errorf("core: occupied id %d outside namespace [0,%d)", id, cfg.Namespace)
		}
	}
	if len(ids) > 0 {
		root, count := t.buildSubtree(0, cfg.Namespace, cfg.Depth, ids)
		t.root.Store(root)
		t.nodes.Store(count)
	}
	return t, nil
}

func newTree(cfg Config, pruned bool) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fam, err := hashfam.New(cfg.HashKind, cfg.Bits, cfg.K, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, fam: fam, pruned: pruned}
	if pruned {
		t.spineDepth = cfg.Depth
		if t.spineDepth > maxSpineDepth {
			t.spineDepth = maxSpineDepth
		}
		t.stripes = make([]growthStripe, 1<<t.spineDepth)
	}
	return t, nil
}

// buildFull recursively builds the complete tree for [lo, hi) with the
// given remaining depth. The node counter is advanced atomically so
// BuildTreeParallel workers can share it.
func (t *Tree) buildFull(lo, hi uint64, depth int) *node {
	n := newNode(lo, hi, nil)
	t.nodes.Add(1)
	if depth == 0 || hi-lo <= 1 {
		f := bloom.New(t.fam)
		var buf []uint64
		for x := lo; x < hi; x++ {
			buf = f.AddScratch(x, buf)
		}
		n.setFilter(membership.FromBloom(f))
		return n
	}
	mid := split(lo, hi)
	left := t.buildFull(lo, mid, depth-1)
	right := t.buildFull(mid, hi, depth-1)
	n.left.Store(left)
	n.right.Store(right)
	f, err := left.filter().QueryView().Union(right.filter().QueryView())
	if err != nil {
		panic("core: sibling filters incompatible: " + err.Error()) // unreachable
	}
	n.setFilter(membership.FromBloom(f))
	return n
}

// buildSubtree builds a complete private subtree over [lo, hi) holding
// exactly ids (sorted, non-empty) and returns it with its node count. The
// subtree is not yet reachable by readers; the caller publishes it with a
// single pointer store and only then folds the count into t.nodes, so a
// subtree discarded after a lost publish race never skews the counter.
func (t *Tree) buildSubtree(lo, hi uint64, depth int, ids []uint64) (*node, uint64) {
	n := newNode(lo, hi, nil)
	if depth == 0 || hi-lo <= 1 {
		n.setFilter(membership.FromBloom(bloom.NewFromElements(t.fam, ids)))
		return n, 1
	}
	mid := split(lo, hi)
	cut := sort.Search(len(ids), func(i int) bool { return ids[i] >= mid })
	count := uint64(1)
	var lf, rf *bloom.Filter
	if cut > 0 {
		child, c := t.buildSubtree(lo, mid, depth-1, ids[:cut])
		n.left.Store(child)
		count += c
		lf = child.filter().QueryView()
	}
	if cut < len(ids) {
		child, c := t.buildSubtree(mid, hi, depth-1, ids[cut:])
		n.right.Store(child)
		count += c
		rf = child.filter().QueryView()
	}
	switch {
	case lf == nil:
		n.setFilter(membership.FromBloom(rf.Clone()))
	case rf == nil:
		n.setFilter(membership.FromBloom(lf.Clone()))
	default:
		f, err := lf.Union(rf)
		if err != nil {
			panic("core: sibling filters incompatible: " + err.Error()) // unreachable
		}
		n.setFilter(membership.FromBloom(f))
	}
	return n, count
}

// stripeOf maps an id to the index of the subtree (stripe) that owns it,
// by following the first spineDepth midpoint splits.
func (t *Tree) stripeOf(x uint64) int {
	lo, hi := uint64(0), t.cfg.Namespace
	idx := 0
	for d := 0; d < t.spineDepth; d++ {
		mid := split(lo, hi)
		idx <<= 1
		if x >= mid {
			idx |= 1
			lo = mid
		} else {
			hi = mid
		}
	}
	return idx
}

// Insert adds one occupied identifier to a pruned tree; see InsertBatch.
func (t *Tree) Insert(x uint64) error { return t.InsertBatch([]uint64{x}) }

// InsertBatch adds occupied identifiers to a pruned tree, growing nodes
// along the root-to-leaf paths as needed (§5.2: "either we need to insert
// this new element into already existing nodes in the tree, or we need to
// create a new node"). The ids are grouped by subtree and each group is
// published as one epoch under its subtree's stripe lock, so batches
// touching different subtrees proceed in parallel; existing node filters
// are replaced by copy-on-write clones (spine nodes via compare-and-swap,
// since several stripes share them), and missing paths are built privately
// and attached with a single pointer store. Queries therefore never block:
// a concurrent reader sees either the previous or the new version of each
// node. The cost per id is proportional to the height of the tree plus
// one filter copy per path node (amortized across the batch).
//
// InsertBatch returns an error on full trees (which already store the
// whole namespace) and on out-of-range ids; on an out-of-range id the
// whole batch is rejected before anything is published.
func (t *Tree) InsertBatch(ids []uint64) error {
	if !t.pruned {
		return fmt.Errorf("core: Insert is only supported on pruned trees")
	}
	for _, x := range ids {
		if x >= t.cfg.Namespace {
			return fmt.Errorf("core: id %d outside namespace [0,%d)", x, t.cfg.Namespace)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sorted := make([]uint64, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Stripe intervals partition the namespace in order, so sorted ids
	// fall into contiguous runs of equal stripe.
	for start := 0; start < len(sorted); {
		stripe := t.stripeOf(sorted[start])
		end := start + 1
		for end < len(sorted) && t.stripeOf(sorted[end]) == stripe {
			end++
		}
		s := &t.stripes[stripe]
		s.mu.Lock()
		t.growRoot(sorted[start:end])
		s.epoch.Add(1)
		s.mu.Unlock()
		start = end
	}
	return nil
}

// growRoot inserts one stripe's sorted ids starting at the root, creating
// it if the tree is still empty.
func (t *Tree) growRoot(ids []uint64) {
	for {
		root := t.root.Load()
		if root != nil {
			t.growNode(root, t.cfg.Depth, ids)
			return
		}
		sub, count := t.buildSubtree(0, t.cfg.Namespace, t.cfg.Depth, ids)
		if t.root.CompareAndSwap(nil, sub) {
			t.nodes.Add(count)
			return
		}
		// Another stripe published the first root; retry against it.
	}
}

// growNode inserts sorted ids into the subtree rooted at the existing
// node n (remaining depth `depth`), publishing copy-on-write filters.
func (t *Tree) growNode(n *node, depth int, ids []uint64) {
	for {
		old := n.f.Load()
		if n.f.CompareAndSwap(old, &boxedFilter{old.m.CloneAdd(ids...)}) {
			break
		}
		// CAS failure: a writer of another stripe updated this shared
		// spine node between our load and swap; redo against its filter.
	}
	if depth == 0 || n.hi-n.lo <= 1 {
		return
	}
	mid := split(n.lo, n.hi)
	cut := sort.Search(len(ids), func(i int) bool { return ids[i] >= mid })
	if cut > 0 {
		t.growChild(&n.left, n.lo, mid, depth-1, ids[:cut])
	}
	if cut < len(ids) {
		t.growChild(&n.right, mid, n.hi, depth-1, ids[cut:])
	}
}

// growChild descends into (or creates) one child slot. A missing child is
// built as a complete private subtree and attached with a single
// compare-and-swap, so readers only ever see fully formed nodes; losing
// the swap (another stripe created the shared child first) discards the
// private subtree and merges into the published one instead.
func (t *Tree) growChild(slot *atomic.Pointer[node], lo, hi uint64, depth int, ids []uint64) {
	for {
		if child := slot.Load(); child != nil {
			t.growNode(child, depth, ids)
			return
		}
		sub, count := t.buildSubtree(lo, hi, depth, ids)
		if slot.CompareAndSwap(nil, sub) {
			t.nodes.Add(count)
			return
		}
	}
}
