package core

import (
	"fmt"
	"sort"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// BuildTree constructs the full BloomSampleTree of Definition 5.1: every
// node stores its entire namespace range. Leaves are filled by element
// insertion; internal filters are formed by unioning children (valid
// because all filters share m and H, §3.1), which is much cheaper than
// re-inserting every element at every level.
func BuildTree(cfg Config) (*Tree, error) {
	t, err := newTree(cfg, false)
	if err != nil {
		return nil, err
	}
	t.root = t.buildFull(0, cfg.Namespace, cfg.Depth)
	return t, nil
}

// BuildPruned constructs the Pruned-BloomSampleTree of §5.2 over the given
// occupied identifiers: nodes are allocated only for ranges containing at
// least one occupied id, and node filters store only occupied ids. The
// occupied slice need not be sorted; duplicates are tolerated. Every id
// must lie in [0, Namespace).
func BuildPruned(cfg Config, occupied []uint64) (*Tree, error) {
	t, err := newTree(cfg, true)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(occupied))
	copy(ids, occupied)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id >= cfg.Namespace {
			return nil, fmt.Errorf("core: occupied id %d outside namespace [0,%d)", id, cfg.Namespace)
		}
	}
	if len(ids) > 0 {
		t.root = t.buildPruned(0, cfg.Namespace, cfg.Depth, ids)
	}
	return t, nil
}

func newTree(cfg Config, pruned bool) (*Tree, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fam, err := hashfam.New(cfg.HashKind, cfg.Bits, cfg.K, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, fam: fam, pruned: pruned}, nil
}

// buildFull recursively builds the complete tree for [lo, hi) with the
// given remaining depth.
func (t *Tree) buildFull(lo, hi uint64, depth int) *node {
	n := &node{lo: lo, hi: hi}
	t.nodes++
	if depth == 0 || hi-lo <= 1 {
		n.f = bloom.New(t.fam)
		var buf []uint64
		for x := lo; x < hi; x++ {
			buf = n.f.AddScratch(x, buf)
		}
		return n
	}
	mid := split(lo, hi)
	n.left = t.buildFull(lo, mid, depth-1)
	n.right = t.buildFull(mid, hi, depth-1)
	f, err := n.left.f.Union(n.right.f)
	if err != nil {
		panic("core: sibling filters incompatible: " + err.Error()) // unreachable
	}
	n.f = f
	return n
}

// buildPruned recursively builds nodes for ranges intersecting ids
// (sorted). ids is exactly the occupied elements within [lo, hi).
func (t *Tree) buildPruned(lo, hi uint64, depth int, ids []uint64) *node {
	if len(ids) == 0 {
		return nil
	}
	n := &node{lo: lo, hi: hi}
	t.nodes++
	if depth == 0 || hi-lo <= 1 {
		n.f = bloom.NewFromElements(t.fam, ids)
		return n
	}
	mid := split(lo, hi)
	cut := sort.Search(len(ids), func(i int) bool { return ids[i] >= mid })
	n.left = t.buildPruned(lo, mid, depth-1, ids[:cut])
	n.right = t.buildPruned(mid, hi, depth-1, ids[cut:])
	switch {
	case n.left == nil:
		n.f = n.right.f.Clone()
	case n.right == nil:
		n.f = n.left.f.Clone()
	default:
		f, err := n.left.f.Union(n.right.f)
		if err != nil {
			panic("core: sibling filters incompatible: " + err.Error()) // unreachable
		}
		n.f = f
	}
	return n
}

// Insert adds an occupied identifier to a pruned tree, growing nodes along
// the root-to-leaf path as needed (§5.2: "either we need to insert this new
// element into already existing nodes in the tree, or we need to create a
// new node"). The cost is proportional to the height of the tree. Insert
// returns an error on full trees (which already store the whole namespace)
// and on out-of-range ids.
func (t *Tree) Insert(x uint64) error {
	if !t.pruned {
		return fmt.Errorf("core: Insert is only supported on pruned trees")
	}
	if x >= t.cfg.Namespace {
		return fmt.Errorf("core: id %d outside namespace [0,%d)", x, t.cfg.Namespace)
	}
	if t.root == nil {
		t.root = &node{lo: 0, hi: t.cfg.Namespace, f: bloom.New(t.fam)}
		t.nodes++
	}
	n := t.root
	depth := t.cfg.Depth
	for {
		n.f.Add(x)
		if depth == 0 || n.hi-n.lo <= 1 {
			return nil
		}
		mid := split(n.lo, n.hi)
		if x < mid {
			if n.left == nil {
				n.left = &node{lo: n.lo, hi: mid, f: bloom.New(t.fam)}
				t.nodes++
			}
			n = n.left
		} else {
			if n.right == nil {
				n.right = &node{lo: mid, hi: n.hi, f: bloom.New(t.fam)}
				t.nodes++
			}
			n = n.right
		}
		depth--
	}
}
