// Package core implements the paper's primary contribution: the
// BloomSampleTree (§5) and its Pruned variant (§5.2, §8), with the
// BSTSample sampling algorithm (Algorithm 1), single-pass multi-item
// sampling (§5.3), set reconstruction (§6), empty-intersection
// thresholding (§5.6), and the cost-model-driven choice of the leaf range
// M⊥ (§5.4).
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/hashfam"
	"repro/internal/membership"
)

// DefaultEmptyThreshold is the default estimated-intersection size below
// which an intersection is treated as empty (§5.6). A single spurious set
// bit yields a small but non-zero estimate; 0.5 prunes those while keeping
// any branch estimated to hold at least one element.
const DefaultEmptyThreshold = 0.5

// Config describes a BloomSampleTree. The Bloom-filter parameters (Bits,
// K, HashKind, Seed) must match the query Bloom filters the tree will be
// used with (§5.1).
type Config struct {
	// Namespace is the size M of the namespace [0, M).
	Namespace uint64
	// Bits is the Bloom-filter size m used at every node.
	Bits uint64
	// K is the number of hash functions.
	K int
	// HashKind selects the hash family (default Murmur3).
	HashKind hashfam.Kind
	// Seed derives the hash functions deterministically.
	Seed uint64
	// Depth is the number of times the namespace is halved; leaves cover
	// ranges of about Namespace/2^Depth elements (M⊥ in the paper). Use
	// PlanTree to derive it from the cost model of §5.4.
	Depth int
	// EmptyThreshold is the estimated-intersection size below which a
	// branch is pruned (§5.6); 0 means DefaultEmptyThreshold.
	EmptyThreshold float64
}

func (c *Config) validate() error {
	if c.Namespace < 2 {
		return fmt.Errorf("core: namespace size %d too small", c.Namespace)
	}
	if c.Bits < 2 {
		return fmt.Errorf("core: filter size %d too small", c.Bits)
	}
	if c.K < 1 {
		return fmt.Errorf("core: k = %d, need k >= 1", c.K)
	}
	if c.Depth < 0 {
		return fmt.Errorf("core: depth = %d, need depth >= 0", c.Depth)
	}
	if maxDepth := int(math.Ceil(math.Log2(float64(c.Namespace)))); c.Depth > maxDepth {
		return fmt.Errorf("core: depth %d exceeds log2(M) = %d", c.Depth, maxDepth)
	}
	if c.EmptyThreshold < 0 {
		return fmt.Errorf("core: negative empty threshold %v", c.EmptyThreshold)
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HashKind == "" {
		out.HashKind = hashfam.DefaultKind
	}
	if out.EmptyThreshold == 0 {
		out.EmptyThreshold = DefaultEmptyThreshold
	}
	return out
}

// node is one BloomSampleTree node covering the namespace range [lo, hi).
// In a pruned tree, children covering unoccupied ranges are nil.
//
// The filter and child pointers are atomic so that pruned-tree growth can
// publish copy-on-write updates (a fresh immutable filter, or a fully
// built private subtree) with single stores while readers traverse
// lock-free. Filters reachable from a node are immutable: growth swaps
// the pointer to a CloneAdd result instead of mutating in place. lo and
// hi never change after the node is created.
type node struct {
	lo, hi      uint64
	f           atomic.Pointer[boxedFilter]
	left, right atomic.Pointer[node]
}

// boxedFilter boxes a Membership interface value behind a concrete
// pointer: atomic.Pointer cannot hold interfaces directly, and boxing
// happens only on publish (rare) while reads pay one extra dereference.
type boxedFilter struct {
	m membership.Membership
}

// newNode returns a node over [lo, hi) holding f (which may be nil during
// private subtree construction).
func newNode(lo, hi uint64, f membership.Membership) *node {
	n := &node{lo: lo, hi: hi}
	if f != nil {
		n.f.Store(&boxedFilter{f})
	}
	return n
}

// newNodeBloom wraps a plain Bloom filter — what tree construction
// produces natively — as a node.
func newNodeBloom(lo, hi uint64, f *bloom.Filter) *node {
	if f == nil {
		return newNode(lo, hi, nil)
	}
	return newNode(lo, hi, membership.FromBloom(f))
}

// filter returns the node's current (immutable) membership value.
func (n *node) filter() membership.Membership {
	if b := n.f.Load(); b != nil {
		return b.m
	}
	return nil
}

// setFilter publishes a new membership value for the node.
func (n *node) setFilter(m membership.Membership) { n.f.Store(&boxedFilter{m}) }

// children loads both child pointers once; traversals load them into
// locals so one visit sees one consistent pair (a node with neither
// child is a leaf).
func (n *node) children() (left, right *node) { return n.left.Load(), n.right.Load() }

// maxSpineDepth bounds the number of top tree levels treated as the
// shared spine by pruned-tree growth; below it the namespace splits into
// up to 1<<maxSpineDepth independently locked subtrees.
const maxSpineDepth = 4

// growthStripe serializes writers of one subtree and counts its publishes.
type growthStripe struct {
	mu    sync.Mutex
	epoch atomic.Uint64
}

// Tree is a BloomSampleTree: a complete binary tree over the namespace
// with a Bloom filter per node, where each node's filter stores the
// elements of its range (full tree) or the occupied elements of its range
// (pruned tree). Build once, query many times (§5).
//
// Sample, SampleN, Reconstruct and EstimateSetSize are read-only on the
// tree and on the query filter, so any number of goroutines may call them
// concurrently — even sharing a single query Filter — as long as each
// goroutine owns its rand source and Ops accumulator.
//
// Pruned trees additionally support concurrent growth: Insert/InsertBatch
// publish copy-on-write filter swaps and privately built subtrees through
// the nodes' atomic pointers, so queries never wait on a writer — there is
// no tree-wide lock at all. Writers serialize per subtree (see
// growthStripe): the top spineDepth levels form a shared spine updated
// with per-node compare-and-swap, and each of the 1<<spineDepth subtrees
// below it is guarded by its own stripe mutex, so inserts into different
// subtrees proceed in parallel. A query racing a growth epoch sees the
// tree somewhere between the two versions (filters only ever gain bits,
// so previously visible elements never disappear); ids being inserted
// become sampleable when their epoch publishes.
type Tree struct {
	cfg    Config
	fam    hashfam.Family
	root   atomic.Pointer[node]
	pruned bool
	nodes  atomic.Uint64 // number of allocated (published) nodes

	// Growth machinery; stripes is nil on full trees, which are immutable
	// after construction.
	spineDepth int
	stripes    []growthStripe
}

// rootNode returns the current root (nil for an empty pruned tree).
func (t *Tree) rootNode() *node { return t.root.Load() }

// Config returns the configuration the tree was built with.
func (t *Tree) Config() Config { return t.cfg }

// Family returns the hash family shared by all node filters; query filters
// must be built with the same family (use NewQueryFilter).
func (t *Tree) Family() hashfam.Family { return t.fam }

// Namespace returns the namespace size M.
func (t *Tree) Namespace() uint64 { return t.cfg.Namespace }

// Depth returns the number of halvings between the root and the leaves.
func (t *Tree) Depth() int { return t.cfg.Depth }

// LeafRange returns the maximum number of namespace elements a leaf covers
// (M⊥ in the paper).
func (t *Tree) LeafRange() uint64 {
	r := t.cfg.Namespace
	for i := 0; i < t.cfg.Depth; i++ {
		r = (r + 1) / 2
	}
	return r
}

// Pruned reports whether the tree was built in pruned (occupancy-aware)
// mode.
func (t *Tree) Pruned() bool { return t.pruned }

// Nodes returns the number of allocated tree nodes. For a full tree this
// is 2^(Depth+1) − 1; a pruned tree allocates only nodes whose range is
// occupied.
func (t *Tree) Nodes() uint64 { return t.nodes.Load() }

// MemoryBytes returns the total size of all node Bloom filters in bytes —
// the quantity reported in the paper's memory tables (Tables 2–3, Fig. 14).
func (t *Tree) MemoryBytes() uint64 {
	perNode := (t.cfg.Bits + 63) / 64 * 8
	return t.nodes.Load() * perNode
}

// SubtreeEpochs returns a copy of the per-subtree growth epoch counters
// of a pruned tree (one per stripe, in namespace order; each counts the
// insert batches published into that subtree). Nil for full trees. The
// counters let callers observe that concurrent inserts into different
// subtrees really do proceed independently, and give cache layers a cheap
// per-region invalidation signal.
func (t *Tree) SubtreeEpochs() []uint64 {
	if t.stripes == nil {
		return nil
	}
	out := make([]uint64, len(t.stripes))
	for i := range t.stripes {
		out[i] = t.stripes[i].epoch.Load()
	}
	return out
}

// GrowthEpoch returns the total number of growth publishes across all
// subtrees (0 for full trees); it advances exactly when new ids become
// visible to queries.
func (t *Tree) GrowthEpoch() uint64 {
	var sum uint64
	for i := range t.stripes {
		sum += t.stripes[i].epoch.Load()
	}
	return sum
}

// NewQueryFilter returns an empty Bloom filter compatible with the tree
// (same m, k, family and seed), ready to receive a query set.
func (t *Tree) NewQueryFilter() *bloom.Filter { return bloom.New(t.fam) }

// checkQuery validates that q was built with the tree's parameters. It
// compares parameters directly (no probe filter is allocated), so it is
// free on the per-query hot path.
func (t *Tree) checkQuery(q *bloom.Filter) error {
	return q.MatchesFamily(t.fam)
}

// Ops counts the operations a sampling or reconstruction call performed;
// these are the metrics of the paper's Figures 3–4 and 8–10. Pass nil to
// skip counting.
type Ops struct {
	// Intersections counts Bloom-filter intersection-size estimations
	// (one per child filter examined at an internal node).
	Intersections uint64
	// Memberships counts membership queries fired at the query filter.
	Memberships uint64
	// NodesVisited counts tree nodes entered.
	NodesVisited uint64
	// LeavesScanned counts leaves whose whole range was brute-force
	// checked.
	LeavesScanned uint64
	// Backtracks counts the times the search exhausted one child and
	// re-descended into the sibling (§5.3's false-positive paths).
	Backtracks uint64
}

// Add accumulates o2 into o.
func (o *Ops) Add(o2 Ops) {
	o.Intersections += o2.Intersections
	o.Memberships += o2.Memberships
	o.NodesVisited += o2.NodesVisited
	o.LeavesScanned += o2.LeavesScanned
	o.Backtracks += o2.Backtracks
}

func (o *Ops) String() string {
	return fmt.Sprintf("intersections=%d memberships=%d nodes=%d leaves=%d backtracks=%d",
		o.Intersections, o.Memberships, o.NodesVisited, o.LeavesScanned, o.Backtracks)
}

// split returns the midpoint used to halve [lo, hi).
func split(lo, hi uint64) uint64 { return lo + (hi-lo+1)/2 }
