package core

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestUniformSamplerReturnsPositives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	M := uint64(100000)
	cfg := testConfig(t, M, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 500))
	s, err := tree.NewUniformSampler(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x, err := s.Sample(rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Contains(x) {
			t.Fatalf("sample %d not a positive", x)
		}
	}
	st := s.Stats()
	if st.Accepted != 200 {
		t.Fatalf("accepted = %d", st.Accepted)
	}
	if st.Attempts < st.Accepted {
		t.Fatal("attempts < accepted")
	}
	// Expected attempts ≈ C per accept; 20x headroom against flakiness.
	if st.Attempts > 80*st.Accepted {
		t.Fatalf("rejection rate pathological: %d attempts for %d accepts", st.Attempts, st.Accepted)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// The defining property: the corrected sampler passes the paper's Table 5
// chi-squared uniformity test, where the raw BSTSample proposal does not
// at these filter sizes. A single seed can land a legitimate p below the
// paper's 0.08 threshold about 8% of the time, so this runs three seeds
// and requires a majority to pass (a 10-seed sweep during development
// showed p spread over 0.009–0.92 with no clamping, i.e. uniform within
// test resolution).
func TestUniformSamplerPassesChiSquared(t *testing.T) {
	if testing.Short() {
		t.Skip("uniformity test needs 130·n samples")
	}
	M := uint64(100000)
	const n = 200
	cfg := testConfig(t, M, n, 0.9, 9)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	passes := 0
	for seed := int64(2); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set := uniformSet(rng, M, n)
		q := buildQueryFilter(t, tree, set)
		s, err := tree.NewUniformSampler(q)
		if err != nil {
			t.Fatal(err)
		}
		index := make(map[uint64]int, n)
		for i, x := range set {
			index[x] = i
		}
		counts := make([]int, n)
		rounds := stats.RecommendedRounds(n)
		for i := 0; i < rounds; i++ {
			x, err := s.Sample(rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			if j, ok := index[x]; ok {
				counts[j]++
			}
		}
		res, err := stats.ChiSquaredUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: %v (clamped=%d)", seed, res, s.Stats().Clamped)
		if !res.Reject(0.08) {
			passes++
		}
	}
	if passes < 2 {
		t.Fatalf("uniformity rejected on %d/3 seeds at the paper's significance level", 3-passes)
	}
}

func TestUniformSamplerEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tree.NewUniformSampler(tree.NewQueryFilter())
	if err != nil {
		t.Fatal(err)
	}
	s.SetMaxAttempts(16) // keep the failure path fast
	if _, err := s.Sample(rng, nil); err != ErrNoSample {
		t.Fatalf("err = %v, want ErrNoSample", err)
	}
}

func TestUniformSamplerIncompatibleQuery(t *testing.T) {
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Bits = cfg.Bits + 1
	other, err := BuildTree(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.NewUniformSampler(other.NewQueryFilter()); err == nil {
		t.Fatal("incompatible query accepted")
	}
}

func TestUniformSamplerSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	M := uint64(50000)
	cfg := testConfig(t, M, 300, 0.9, 6)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 300))
	s, err := tree.NewUniformSampler(q)
	if err != nil {
		t.Fatal(err)
	}
	var ops Ops
	got, err := s.SampleN(50, rng, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d samples", len(got))
	}
	if ops.Memberships == 0 || ops.Intersections == 0 {
		t.Fatalf("ops not counted: %+v", ops)
	}
}

func TestUniformSamplerOnPrunedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	M := uint64(1 << 20)
	cfg := testConfig(t, M, 200, 0.9, 10)
	occupied := uniformSet(rng, M, 5000)
	tree, err := BuildPruned(cfg, occupied)
	if err != nil {
		t.Fatal(err)
	}
	set := occupied[:200]
	q := buildQueryFilter(t, tree, set)
	s, err := tree.NewUniformSampler(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x, err := s.Sample(rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Contains(x) {
			t.Fatalf("sample %d not positive", x)
		}
	}
}

func TestUniformSamplerEmptyPrunedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tree.NewUniformSampler(tree.NewQueryFilter())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(rng, nil); err != ErrNoSample {
		t.Fatalf("err = %v", err)
	}
}
