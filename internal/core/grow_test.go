package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInsertBatchMatchesSequentialInsert pins that the batched, striped
// growth path stores exactly what repeated single Inserts store.
func TestInsertBatchMatchesSequentialInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	M := uint64(1 << 20)
	cfg := testConfig(t, M, 200, 0.9, 10)
	ids := uniformSet(rng, M, 3000)

	batched, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := batched.InsertBatch(ids); err != nil {
		t.Fatal(err)
	}
	single, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := single.Insert(id); err != nil {
			t.Fatal(err)
		}
	}
	if batched.Nodes() != single.Nodes() {
		t.Fatalf("Nodes: batched %d, single %d", batched.Nodes(), single.Nodes())
	}
	q := buildQueryFilter(t, batched, ids[:200])
	for _, tree := range []*Tree{batched, single} {
		got, err := tree.Reconstruct(q, PruneByAndBits, nil)
		if err != nil {
			t.Fatal(err)
		}
		found := map[uint64]bool{}
		for _, x := range got {
			found[x] = true
		}
		for _, id := range ids[:200] {
			if !found[id] {
				t.Fatalf("id %d missing from reconstruction", id)
			}
		}
	}
}

// TestInsertBatchRejectsOutOfRange pins the all-or-nothing validation:
// one bad id fails the whole batch before anything is published.
func TestInsertBatchRejectsOutOfRange(t *testing.T) {
	cfg := testConfig(t, 1<<16, 100, 0.9, 8)
	tree, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.InsertBatch([]uint64{1, 2, 1 << 16}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if tree.Nodes() != 0 || tree.GrowthEpoch() != 0 {
		t.Fatalf("rejected batch published state: nodes=%d epoch=%d", tree.Nodes(), tree.GrowthEpoch())
	}
	full, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.InsertBatch([]uint64{1}); err == nil {
		t.Fatal("InsertBatch accepted on a full tree")
	}
}

// TestConcurrentGrowthAndQueries hammers a pruned tree with parallel
// InsertBatch writers in different subtrees while readers sample,
// reconstruct and run the shared uniform sampler. Under -race this is the
// regression test for the lock-free growth path; afterwards every
// inserted id must be reachable and per-subtree epochs must have
// advanced independently.
func TestConcurrentGrowthAndQueries(t *testing.T) {
	M := uint64(1 << 20)
	cfg := testConfig(t, M, 200, 0.9, 10)
	// Seed with a design-sized occupied set so the uniform sampler's
	// initial safety factor (∝ leaves/n̂) stays small and shared draws
	// stay cheap under -race.
	seedRng := rand.New(rand.NewSource(42))
	seedIDs := uniformSet(seedRng, M, 300)
	tree, err := BuildPruned(cfg, seedIDs)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, seedIDs)
	us, err := tree.NewUniformSampler(q)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	perWriter := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		// Writer w owns the namespace slice [w*M/writers, (w+1)*M/writers):
		// disjoint subtrees, so their stripes should advance in parallel.
		base := uint64(w) * (M / writers)
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < 60; i++ {
			perWriter[w] = append(perWriter[w], base+uint64(rng.Intn(int(M/writers))))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := perWriter[w]
			for i := 0; i < len(ids); i += 10 {
				end := i + 10
				if end > len(ids) {
					end = len(ids)
				}
				if err := tree.InsertBatch(ids[i:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < 40; i++ {
				tree.Sample(q, rng, nil)
				if i%8 == 0 {
					tree.Reconstruct(q, PruneByAndBits, nil)
					us.Sample(rng, nil)
				}
			}
		}(w)
	}
	wg.Wait()

	// Every inserted id is now a member of its leaf filters: reconstruct
	// a probe set per writer and check reachability.
	for w := 0; w < writers; w++ {
		probe := buildQueryFilter(t, tree, perWriter[w][:10])
		got, err := tree.Reconstruct(probe, PruneByAndBits, nil)
		if err != nil {
			t.Fatal(err)
		}
		found := map[uint64]bool{}
		for _, x := range got {
			found[x] = true
		}
		for _, id := range perWriter[w][:10] {
			if !found[id] {
				t.Fatalf("writer %d: id %d unreachable after concurrent growth", w, id)
			}
		}
	}
	epochs := tree.SubtreeEpochs()
	if len(epochs) == 0 {
		t.Fatal("pruned tree reports no stripes")
	}
	advanced := 0
	for _, e := range epochs {
		if e > 0 {
			advanced++
		}
	}
	if advanced < 2 {
		t.Fatalf("only %d subtree(s) advanced; growth is not striped (epochs=%v)", advanced, epochs)
	}
	if tree.GrowthEpoch() == 0 {
		t.Fatal("GrowthEpoch did not advance")
	}
}
