package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/bitset"
	"repro/internal/bloom"
	"repro/internal/hashfam"
	"repro/internal/membership"
)

// Binary encoding of a Tree. Building a BloomSampleTree costs one hash
// pass over the namespace (or the occupied ids); at the paper's Twitter
// scale that is minutes of work worth persisting. The format stores the
// configuration once, then the nodes in pre-order with a presence byte
// per child, so pruned trees serialize only what they allocated:
//
//	magic    [4]byte "BST1"
//	kindLen  uint8, kind string
//	namespace, bits uint64; k, depth uint32; seed uint64
//	emptyThreshold float64 bits (uint64)
//	pruned   uint8
//	hasRoot  uint8
//	nodes    (pre-order): lo, hi uint64; bits payload; childMask uint8
//	         (bit0 = left present, bit1 = right present)
const treeMagic = "BST1"

// WriteTo serializes the tree. It implements io.WriterTo. On a pruned
// tree, growth concurrent with WriteTo yields a valid snapshot that may
// include in-flight epochs only partially; quiesce writers first when an
// exact point-in-time image is required.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	root := t.rootNode()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(treeMagic); err != nil {
		return cw.n, err
	}
	kind := string(t.cfg.HashKind)
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	hdr = binary.LittleEndian.AppendUint64(hdr, t.cfg.Namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, t.cfg.Bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(t.cfg.K))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(t.cfg.Depth))
	hdr = binary.LittleEndian.AppendUint64(hdr, t.cfg.Seed)
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(t.cfg.EmptyThreshold))
	hdr = append(hdr, b2u8(t.pruned), b2u8(root != nil))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}
	if root != nil {
		if err := writeNode(bw, root); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func writeNode(w *bufio.Writer, n *node) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], n.lo)
	binary.LittleEndian.PutUint64(hdr[8:], n.hi)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	bits, err := n.filter().QueryView().Bits().MarshalBinary()
	if err != nil {
		return err
	}
	var bl [4]byte
	binary.LittleEndian.PutUint32(bl[:], uint32(len(bits)))
	if _, err := w.Write(bl[:]); err != nil {
		return err
	}
	if _, err := w.Write(bits); err != nil {
		return err
	}
	left, right := n.children()
	var mask byte
	if left != nil {
		mask |= 1
	}
	if right != nil {
		mask |= 2
	}
	if err := w.WriteByte(mask); err != nil {
		return err
	}
	if left != nil {
		if err := writeNode(w, left); err != nil {
			return err
		}
	}
	if right != nil {
		if err := writeNode(w, right); err != nil {
			return err
		}
	}
	return nil
}

// ReadTree deserializes a tree written by WriteTo. The result is fully
// usable (sampling, reconstruction, dynamic Insert on pruned trees).
func ReadTree(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(treeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != treeMagic {
		return nil, fmt.Errorf("core: bad tree magic %q", magic)
	}
	kl, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	kind := make([]byte, kl)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, err
	}
	fixed := make([]byte, 8+8+4+4+8+8+1+1)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, err
	}
	cfg := Config{
		HashKind:       hashfam.Kind(kind),
		Namespace:      binary.LittleEndian.Uint64(fixed[0:]),
		Bits:           binary.LittleEndian.Uint64(fixed[8:]),
		K:              int(binary.LittleEndian.Uint32(fixed[16:])),
		Depth:          int(binary.LittleEndian.Uint32(fixed[20:])),
		Seed:           binary.LittleEndian.Uint64(fixed[24:]),
		EmptyThreshold: math.Float64frombits(binary.LittleEndian.Uint64(fixed[32:])),
	}
	pruned := fixed[40] == 1
	hasRoot := fixed[41] == 1

	t, err := newTree(cfg, pruned)
	if err != nil {
		return nil, err
	}
	if hasRoot {
		root, count, err := readNode(br, t)
		if err != nil {
			return nil, err
		}
		t.root.Store(root)
		t.nodes.Store(count)
	}
	if err := t.validateShape(); err != nil {
		return nil, err
	}
	return t, nil
}

func readNode(r *bufio.Reader, t *Tree) (*node, uint64, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := newNode(binary.LittleEndian.Uint64(hdr[0:]), binary.LittleEndian.Uint64(hdr[8:]), nil)
	var bl [4]byte
	if _, err := io.ReadFull(r, bl[:]); err != nil {
		return nil, 0, err
	}
	blen := binary.LittleEndian.Uint32(bl[:])
	if uint64(blen) > 8+(t.cfg.Bits/64+1)*8+8 {
		return nil, 0, fmt.Errorf("core: node filter payload %d bytes too large", blen)
	}
	payload := make([]byte, blen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	var bits bitset.Set
	if err := bits.UnmarshalBinary(payload); err != nil {
		return nil, 0, err
	}
	if bits.Len() != t.cfg.Bits {
		return nil, 0, fmt.Errorf("core: node filter has %d bits, tree expects %d", bits.Len(), t.cfg.Bits)
	}
	n.setFilter(membership.FromBloom(bloom.NewFromBits(t.fam, &bits)))
	mask, err := r.ReadByte()
	if err != nil {
		return nil, 0, err
	}
	count := uint64(1)
	if mask&1 != 0 {
		child, c, err := readNode(r, t)
		if err != nil {
			return nil, 0, err
		}
		n.left.Store(child)
		count += c
	}
	if mask&2 != 0 {
		child, c, err := readNode(r, t)
		if err != nil {
			return nil, 0, err
		}
		n.right.Store(child)
		count += c
	}
	return n, count, nil
}

// validateShape checks structural invariants of a decoded tree: ranges
// nest and partition, and children of internal nodes exist per the
// pruned/full contract.
func (t *Tree) validateShape() error {
	root := t.rootNode()
	if root == nil {
		if !t.pruned {
			return fmt.Errorf("core: full tree without a root")
		}
		return nil
	}
	if root.lo != 0 || root.hi != t.cfg.Namespace {
		return fmt.Errorf("core: root range [%d,%d) != namespace [0,%d)", root.lo, root.hi, t.cfg.Namespace)
	}
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.lo >= n.hi {
			return fmt.Errorf("core: empty node range [%d,%d)", n.lo, n.hi)
		}
		left, right := n.children()
		if left == nil && right == nil {
			return nil
		}
		if !t.pruned && (left == nil || right == nil) {
			return fmt.Errorf("core: full-tree internal node [%d,%d) missing a child", n.lo, n.hi)
		}
		mid := split(n.lo, n.hi)
		if left != nil {
			if left.lo != n.lo || left.hi != mid {
				return fmt.Errorf("core: left child [%d,%d) does not match split of [%d,%d)", left.lo, left.hi, n.lo, n.hi)
			}
			if err := walk(left); err != nil {
				return err
			}
		}
		if right != nil {
			if right.lo != mid || right.hi != n.hi {
				return fmt.Errorf("core: right child [%d,%d) does not match split of [%d,%d)", right.lo, right.hi, n.lo, n.hi)
			}
			if err := walk(right); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

// Save writes the tree to path atomically.
func (t *Tree) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTree reads a tree saved with Save.
func LoadTree(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTree(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}
