package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// testConfig returns a tree config for a small namespace with filter
// parameters planned for the given accuracy.
func testConfig(t testing.TB, M uint64, n uint64, acc float64, depth int) Config {
	t.Helper()
	p, err := bloom.PlanParams(acc, n, M, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Namespace: M,
		Bits:      p.Bits,
		K:         3,
		HashKind:  hashfam.KindMurmur3,
		Seed:      7,
		Depth:     depth,
	}
}

func buildQueryFilter(t testing.TB, tree *Tree, set []uint64) *bloom.Filter {
	t.Helper()
	q := tree.NewQueryFilter()
	for _, x := range set {
		q.Add(x)
	}
	return q
}

func uniformSet(rng *rand.Rand, M uint64, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		x := rng.Uint64() % M
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Namespace: 1, Bits: 100, K: 3, Depth: 0},                       // tiny namespace
		{Namespace: 100, Bits: 1, K: 3, Depth: 0},                       // tiny filter
		{Namespace: 100, Bits: 100, K: 0, Depth: 0},                     // no hashes
		{Namespace: 100, Bits: 100, K: 3, Depth: -1},                    // negative depth
		{Namespace: 100, Bits: 100, K: 3, Depth: 20},                    // depth > log2(M)
		{Namespace: 100, Bits: 100, K: 3, Depth: 2, EmptyThreshold: -1}, // bad threshold
	}
	for i, cfg := range cases {
		if _, err := BuildTree(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestBuildFullStructure(t *testing.T) {
	cfg := testConfig(t, 1024, 100, 0.8, 4)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 31 { // 2^5 - 1 for depth 4
		t.Fatalf("Nodes = %d, want 31", tree.Nodes())
	}
	if tree.Depth() != 4 {
		t.Fatalf("Depth = %d", tree.Depth())
	}
	if tree.LeafRange() != 64 {
		t.Fatalf("LeafRange = %d, want 64", tree.LeafRange())
	}
	if tree.Pruned() {
		t.Fatal("full tree reports pruned")
	}
	// Every node's filter must contain every element of its range
	// (no false negatives), and the laminar property must hold:
	// parent = union of children.
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		for x := n.lo; x < n.hi; x++ {
			if !n.filter().Contains(x) {
				t.Fatalf("node [%d,%d) missing element %d", n.lo, n.hi, x)
			}
		}
		if left, right := n.children(); left != nil || right != nil {
			u, err := left.filter().QueryView().Union(right.filter().QueryView())
			if err != nil {
				t.Fatal(err)
			}
			if !u.Equal(n.filter().QueryView()) {
				t.Fatalf("node [%d,%d) is not the union of its children", n.lo, n.hi)
			}
			if left.lo != n.lo || right.hi != n.hi || left.hi != right.lo {
				t.Fatalf("children do not partition [%d,%d)", n.lo, n.hi)
			}
			walk(left)
			walk(right)
		}
	}
	walk(tree.rootNode())
}

func TestBuildFullNonPowerOfTwoNamespace(t *testing.T) {
	cfg := testConfig(t, 1000, 50, 0.8, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf ranges must cover [0,1000) exactly, without gaps or overlaps.
	var leaves []*node
	var walk func(n *node)
	walk = func(n *node) {
		left, right := n.children()
		if left == nil && right == nil {
			leaves = append(leaves, n)
			return
		}
		walk(left)
		walk(right)
	}
	walk(tree.rootNode())
	if len(leaves) != 32 {
		t.Fatalf("leaves = %d, want 32", len(leaves))
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].lo < leaves[j].lo })
	pos := uint64(0)
	for _, l := range leaves {
		if l.lo != pos {
			t.Fatalf("gap/overlap at %d (leaf starts %d)", pos, l.lo)
		}
		if l.hi-l.lo > tree.LeafRange() {
			t.Fatalf("leaf [%d,%d) larger than LeafRange %d", l.lo, l.hi, tree.LeafRange())
		}
		pos = l.hi
	}
	if pos != 1000 {
		t.Fatalf("coverage ends at %d, want 1000", pos)
	}
}

func TestSampleReturnsOnlyPositives(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := testConfig(t, 100000, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := uniformSet(rng, 100000, 500)
	q := buildQueryFilter(t, tree, set)
	for i := 0; i < 300; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !q.Contains(x) {
			t.Fatalf("sample %d is not a positive of the query filter", x)
		}
	}
}

func TestSampleMostlyTrueElements(t *testing.T) {
	// At accuracy 0.9 at least ~90% of samples should come from the true
	// set; give slack to 0.8.
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(t, 100000, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := uniformSet(rng, 100000, 500)
	inSet := make(map[uint64]bool, len(set))
	for _, x := range set {
		inSet[x] = true
	}
	q := buildQueryFilter(t, tree, set)
	hits := 0
	const rounds = 500
	for i := 0; i < rounds; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inSet[x] {
			hits++
		}
	}
	if frac := float64(hits) / rounds; frac < 0.8 {
		t.Fatalf("true-element fraction %.2f < 0.8", frac)
	}
}

func TestSampleEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := tree.NewQueryFilter()
	if _, err := tree.Sample(q, rng, nil); err != ErrNoSample {
		t.Fatalf("empty query: err = %v, want ErrNoSample", err)
	}
}

func TestSampleIncompatibleQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := bloom.New(hashfam.MustNew(hashfam.KindMurmur3, 999, 3, 7))
	if _, err := tree.Sample(other, rng, nil); err == nil {
		t.Fatal("incompatible query accepted")
	}
	if _, err := tree.Reconstruct(other, PruneByEstimate, nil); err == nil {
		t.Fatal("incompatible query accepted by Reconstruct")
	}
	if _, err := tree.SampleN(other, 3, true, rng, nil); err == nil {
		t.Fatal("incompatible query accepted by SampleN")
	}
}

func TestSampleSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, []uint64{4321})
	for i := 0; i < 50; i++ {
		x, err := tree.Sample(q, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Contains(x) {
			t.Fatalf("sample %d not positive", x)
		}
	}
}

func TestSampleOpsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testConfig(t, 100000, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, 100000, 500))
	var ops Ops
	if _, err := tree.Sample(q, rng, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.NodesVisited < uint64(tree.Depth()) {
		t.Fatalf("NodesVisited = %d < depth %d", ops.NodesVisited, tree.Depth())
	}
	if ops.Intersections == 0 || ops.Memberships == 0 || ops.LeavesScanned == 0 {
		t.Fatalf("ops not counted: %+v", ops)
	}
	// Memberships should be a small multiple of the leaf range, far below
	// the dictionary attack's M.
	if ops.Memberships >= cfg.Namespace/2 {
		t.Fatalf("memberships %d close to namespace scan", ops.Memberships)
	}
}

// Proposition 5.3 sanity check: the expected number of nodes visited is
// O(log(M/M⊥) + M·k²·n/m); verify that the measured average is below a
// small constant times that bound.
func TestSampleNodesVisitedWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	M := uint64(1 << 17)
	n := uint64(200)
	cfg := testConfig(t, M, n, 0.9, 8)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, int(n)))
	var total uint64
	const rounds = 200
	for i := 0; i < rounds; i++ {
		var ops Ops
		if _, err := tree.Sample(q, rng, &ops); err != nil {
			t.Fatal(err)
		}
		total += ops.NodesVisited
	}
	avg := float64(total) / rounds
	k := float64(cfg.K)
	bound := float64(tree.Depth()) + float64(M)*k*k*float64(n)/float64(cfg.Bits)
	if avg > 4*bound+8 {
		t.Fatalf("avg nodes visited %.1f exceeds 4x bound %.1f", avg, bound)
	}
}

func TestOpsAddString(t *testing.T) {
	a := Ops{Intersections: 1, Memberships: 2, NodesVisited: 3, LeavesScanned: 4, Backtracks: 5}
	b := a
	a.Add(b)
	if a.Intersections != 2 || a.Memberships != 4 || a.NodesVisited != 6 ||
		a.LeavesScanned != 8 || a.Backtracks != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestReconstructExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	M := uint64(50000)
	cfg := testConfig(t, M, 300, 0.9, 6)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := uniformSet(rng, M, 300)
	q := buildQueryFilter(t, tree, set)

	got, err := tree.Reconstruct(q, PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: S ∪ S(B) = all x in [0,M) with q.Contains(x).
	var want []uint64
	for x := uint64(0); x < M; x++ {
		if q.Contains(x) {
			want = append(want, x)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("reconstructed %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("reconstruction not sorted")
	}
}

func TestReconstructEmptyQuery(t *testing.T) {
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.Reconstruct(tree.NewQueryFilter(), PruneByEstimate, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty query reconstructed %d elements", len(got))
	}
}

func TestReconstructOpsBelowDictionaryAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	M := uint64(1 << 17)
	cfg := testConfig(t, M, 200, 0.9, 9)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 200))
	var ops Ops
	if _, err := tree.Reconstruct(q, PruneByEstimate, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Memberships >= M {
		t.Fatalf("reconstruction used %d memberships (>= namespace %d)", ops.Memberships, M)
	}
}

func TestSampleNWithReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	M := uint64(100000)
	cfg := testConfig(t, M, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 500))
	got, err := tree.SampleN(q, 100, true, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 100 {
		t.Fatalf("SampleN returned %d samples", len(got))
	}
	for _, x := range got {
		if !q.Contains(x) {
			t.Fatalf("multi-sample %d not a positive", x)
		}
	}
}

func TestSampleNWithoutReplacementDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	M := uint64(100000)
	cfg := testConfig(t, M, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 500))
	got, err := tree.SampleN(q, 50, false, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, x := range got {
		if seen[x] {
			t.Fatalf("duplicate %d in without-replacement multi-sample", x)
		}
		seen[x] = true
	}
}

func TestSampleNFewerIntersectionsThanRepeated(t *testing.T) {
	// One r-path pass must not cost more intersections than r independent
	// samples (§5.3's claimed benefit).
	rng := rand.New(rand.NewSource(47))
	M := uint64(100000)
	cfg := testConfig(t, M, 1000, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, M, 1000))
	const r = 50

	var multi Ops
	if _, err := tree.SampleN(q, r, true, rng, &multi); err != nil {
		t.Fatal(err)
	}
	var single Ops
	for i := 0; i < r; i++ {
		if _, err := tree.Sample(q, rng, &single); err != nil {
			t.Fatal(err)
		}
	}
	if multi.Intersections > single.Intersections {
		t.Fatalf("multi-sample intersections %d > %d for %d repeated samples",
			multi.Intersections, single.Intersections, r)
	}
}

func TestSampleNEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, []uint64{1, 2, 3})
	if got, _ := tree.SampleN(q, 0, true, rng, nil); got != nil {
		t.Fatal("r=0 returned samples")
	}
	if got, _ := tree.SampleN(tree.NewQueryFilter(), 5, true, rng, nil); len(got) != 0 {
		t.Fatal("empty query returned samples")
	}
	// Without replacement, r greater than the positive count returns at
	// most the distinct positives.
	got, err := tree.SampleN(q, 1000, false, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, _ := tree.Reconstruct(q, PruneByAndBits, nil)
	if len(got) > len(recon) {
		t.Fatalf("without replacement returned %d > %d positives", len(got), len(recon))
	}
}

func TestMemoryBytes(t *testing.T) {
	cfg := testConfig(t, 1024, 100, 0.8, 3)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perNode := (cfg.Bits + 63) / 64 * 8
	if got := tree.MemoryBytes(); got != perNode*15 {
		t.Fatalf("MemoryBytes = %d, want %d", got, perNode*15)
	}
}

func TestDepthZeroTreeIsSingleLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cfg := testConfig(t, 1000, 50, 0.9, 0)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1", tree.Nodes())
	}
	q := buildQueryFilter(t, tree, []uint64{123, 456})
	x, err := tree.Sample(q, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Contains(x) {
		t.Fatal("sample not positive")
	}
}

func TestPlanTreeMatchesPaperTable3(t *testing.T) {
	// With the default cost model the planned depth should track the
	// paper's Table 3 (M = 10⁷, n = 10³) within one level; no single
	// icost/mcost model reproduces every row of the paper's table exactly
	// (its rows are mutually inconsistent under the §5.4 rule — see
	// EXPERIMENTS.md), so the anchors at 0.5, 0.9 and 1.0 are checked
	// exactly and the rest within ±1.
	cases := []struct {
		acc       float64
		wantDepth int
		exact     bool
	}{
		{0.5, 13, true},
		{0.6, 13, false},
		{0.7, 13, false},
		{0.8, 13, false},
		{0.9, 12, true},
		{1.0, 10, true},
	}
	prevDepth := 1 << 30
	for _, c := range cases {
		p, err := PlanTree(c.acc, 1000, 10_000_000, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		diff := p.Depth - c.wantDepth
		if diff < 0 {
			diff = -diff
		}
		if (c.exact && diff != 0) || diff > 1 {
			t.Errorf("acc %.1f: depth = %d, want %d±%d (m=%d ratio=%.1f)",
				c.acc, p.Depth, c.wantDepth, b2i(!c.exact), p.Bits, p.CostRatio)
		}
		// Depth must be non-increasing in accuracy (larger filters make
		// intersections dearer, so the tree gets shallower).
		if p.Depth > prevDepth {
			t.Errorf("acc %.1f: depth %d increased from %d", c.acc, p.Depth, prevDepth)
		}
		prevDepth = p.Depth
		// Leaf range must correspond to the depth.
		if want := leafRangeAtDepth(10_000_000, p.Depth); p.LeafRange != want {
			t.Errorf("acc %.1f: leaf = %d, want %d", c.acc, p.LeafRange, want)
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPlanTreeCustomRatio(t *testing.T) {
	p, err := PlanTree(0.9, 1000, 1_000_000, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.CostRatio != 200 {
		t.Fatalf("CostRatio = %v", p.CostRatio)
	}
	// N⊥/log2(N⊥) <= 200 → N⊥ max is 1246; leaf range must be ≤ that.
	if float64(p.LeafRange)/math.Log2(float64(p.LeafRange)) > 200 {
		t.Fatalf("leaf range %d violates cost rule", p.LeafRange)
	}
}

func TestLeafRangeForRatio(t *testing.T) {
	if got := LeafRangeForRatio(1); got != 2 {
		t.Fatalf("ratio 1: %d, want 2", got)
	}
	// For ratio r, result N satisfies N/log2(N) <= r < (N+1)/log2(N+1).
	for _, r := range []float64{10, 100, 350, 1000} {
		n := LeafRangeForRatio(r)
		if float64(n)/math.Log2(float64(n)) > r {
			t.Fatalf("ratio %v: N=%d violates rule", r, n)
		}
		np := float64(n + 1)
		if np/math.Log2(np) <= r {
			t.Fatalf("ratio %v: N=%d not maximal", r, n)
		}
	}
}

func TestPlanTreeConfigRoundTrip(t *testing.T) {
	p, err := PlanTree(0.9, 1000, 1_000_000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.TreeConfig(hashfam.KindMurmur3, 99)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != p.Depth || tree.Namespace() != 1_000_000 {
		t.Fatal("config round trip lost parameters")
	}
}

func TestCalibrateCosts(t *testing.T) {
	c, err := CalibrateCosts(hashfam.KindMurmur3, 60870, 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Membership <= 0 || c.Intersection <= 0 {
		t.Fatalf("non-positive costs: %+v", c)
	}
	if c.Ratio() <= 0 {
		t.Fatalf("ratio = %v", c.Ratio())
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
	if _, err := CalibrateCosts("nope", 100, 3, 10); err == nil {
		t.Fatal("bad kind accepted")
	}
}
