package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestTreeSaveLoadFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(t, 50000, 300, 0.9, 6)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tree.bst")
	if err := tree.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != tree.Nodes() || got.Depth() != tree.Depth() ||
		got.Namespace() != tree.Namespace() || got.Pruned() != tree.Pruned() {
		t.Fatalf("metadata mismatch: %d/%d nodes, %d/%d depth",
			got.Nodes(), tree.Nodes(), got.Depth(), tree.Depth())
	}
	// The loaded tree must behave identically: same reconstruction for
	// the same query.
	set := uniformSet(rng, 50000, 300)
	q1 := buildQueryFilter(t, tree, set)
	q2 := buildQueryFilter(t, got, set)
	r1, err := tree.Reconstruct(q1, PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := got.Reconstruct(q2, PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("reconstructions differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reconstructions differ at %d", i)
		}
	}
	// And sampling must work.
	if _, err := got.Sample(q2, rng, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSaveLoadPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig(t, 1<<20, 200, 0.9, 10)
	occupied := uniformSet(rng, 1<<20, 2000)
	tree, err := BuildPruned(cfg, occupied)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != tree.Nodes() || !got.Pruned() {
		t.Fatalf("pruned metadata lost: %d vs %d nodes, pruned=%v",
			got.Nodes(), tree.Nodes(), got.Pruned())
	}
	// Dynamic insert must keep working on the loaded tree.
	before := got.Nodes()
	if err := got.Insert(uint64(1<<20 - 1)); err != nil {
		t.Fatal(err)
	}
	if got.Nodes() < before {
		t.Fatal("insert shrank tree")
	}
	q := buildQueryFilter(t, got, occupied[:50])
	if _, err := got.Sample(q, rng, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSaveLoadEmptyPruned(t *testing.T) {
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != 0 {
		t.Fatalf("empty tree loaded with %d nodes", got.Nodes())
	}
	if err := got.Insert(42); err != nil {
		t.Fatal(err)
	}
}

func TestReadTreeRejectsCorrupt(t *testing.T) {
	if _, err := ReadTree(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadTree(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	cfg := testConfig(t, 10000, 100, 0.9, 4)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadTree(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated tree accepted")
	}
	// Corrupt a node range so the shape validation trips.
	bad := append([]byte(nil), full...)
	// The root's lo/hi sit right after the header; overwrite hi with 0.
	hdrLen := 4 + 1 + len(tree.cfg.HashKind) + 42
	for i := 0; i < 8; i++ {
		bad[hdrLen+8+i] = 0
	}
	if _, err := ReadTree(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt root range accepted")
	}
}

func TestBuildTreeParallelEquivalent(t *testing.T) {
	cfg := testConfig(t, 100000, 500, 0.8, 7)
	serial, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		parallel, err := BuildTreeParallel(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Nodes() != serial.Nodes() {
			t.Fatalf("workers=%d: %d nodes vs %d serial", workers, parallel.Nodes(), serial.Nodes())
		}
		// Identical trees: every query reconstructs identically; compare
		// via serialization equality, the strongest check.
		var b1, b2 bytes.Buffer
		if _, err := serial.WriteTo(&b1); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("workers=%d: parallel build differs from serial", workers)
		}
	}
}

func TestBuildTreeParallelDefaultWorkers(t *testing.T) {
	cfg := testConfig(t, 20000, 100, 0.8, 5)
	tree, err := BuildTreeParallel(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 63 {
		t.Fatalf("nodes = %d, want 63", tree.Nodes())
	}
}

func TestBuildTreeParallelValidation(t *testing.T) {
	if _, err := BuildTreeParallel(Config{Namespace: 1, Bits: 10, K: 1}, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestComputeStats(t *testing.T) {
	cfg := testConfig(t, 100000, 500, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.ComputeStats()
	if len(s.Levels) != 8 { // depth 7 → levels 0..7
		t.Fatalf("levels = %d, want 8", len(s.Levels))
	}
	if s.Levels[0].Nodes != 1 || s.Levels[7].Nodes != 128 {
		t.Fatalf("level node counts wrong: %+v", s.Levels)
	}
	// Fill must be non-increasing down the tree (each child holds half
	// the parent's range) and the root saturated for M >> m.
	if s.Levels[0].MeanFill < 0.99 {
		t.Fatalf("root fill %.3f, want ~1", s.Levels[0].MeanFill)
	}
	for i := 1; i < len(s.Levels); i++ {
		if s.Levels[i].MeanFill > s.Levels[i-1].MeanFill+1e-9 {
			t.Fatalf("fill increased at level %d", i)
		}
		if s.Levels[i].MinFill > s.Levels[i].MaxFill {
			t.Fatalf("level %d min > max", i)
		}
	}
	if s.SaturationDepth == 0 || s.SaturationDepth > 8 {
		t.Fatalf("saturation depth %d", s.SaturationDepth)
	}
	if s.Nodes != tree.Nodes() || s.MemoryBytes != tree.MemoryBytes() {
		t.Fatal("stats totals mismatch")
	}
}

func TestComputeStatsEmptyTree(t *testing.T) {
	cfg := testConfig(t, 10000, 100, 0.9, 5)
	tree, err := BuildPruned(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.ComputeStats()
	if len(s.Levels) != 0 || s.Nodes != 0 {
		t.Fatalf("empty tree stats: %+v", s)
	}
}

func TestEstimateSetSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig(t, 100000, 1000, 0.9, 7)
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := buildQueryFilter(t, tree, uniformSet(rng, 100000, 1000))
	est, err := tree.EstimateSetSize(q)
	if err != nil {
		t.Fatal(err)
	}
	if est < 900 || est > 1100 {
		t.Fatalf("estimate %.1f, want ~1000", est)
	}
	cfg2 := cfg
	cfg2.Bits++
	other, err := BuildTree(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.EstimateSetSize(other.NewQueryFilter()); err == nil {
		t.Fatal("incompatible filter accepted")
	}
}
