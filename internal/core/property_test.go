package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashfam"
)

// quickTree builds a small tree with parameters derived from fuzz input.
func quickTree(seed uint64, depthSel, kindSel uint8, pruned bool, occupied []uint64) (*Tree, error) {
	kinds := hashfam.Kinds()
	cfg := Config{
		Namespace: 4096,
		Bits:      2048 + seed%4096,
		K:         3,
		HashKind:  kinds[int(kindSel)%len(kinds)],
		Seed:      seed,
		Depth:     1 + int(depthSel)%8,
	}
	if pruned {
		return BuildPruned(cfg, occupied)
	}
	return BuildTree(cfg)
}

// Property: PruneByAndBits reconstruction contains every inserted element
// (no false negatives), for arbitrary parameters, hash families and sets.
func TestQuickReconstructSuperset(t *testing.T) {
	f := func(seed uint64, depthSel, kindSel uint8, raw []uint16) bool {
		tree, err := quickTree(seed, depthSel, kindSel, false, nil)
		if err != nil {
			return false
		}
		q := tree.NewQueryFilter()
		set := map[uint64]bool{}
		for _, r := range raw {
			x := uint64(r) % 4096
			q.Add(x)
			set[x] = true
		}
		if len(set) == 0 {
			return true
		}
		got, err := tree.Reconstruct(q, PruneByAndBits, nil)
		if err != nil {
			return false
		}
		found := map[uint64]bool{}
		for _, x := range got {
			if !q.Contains(x) {
				return false // must also be a positive
			}
			found[x] = true
		}
		for x := range set {
			if !found[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every sample is a positive of the query filter, across
// arbitrary configurations.
func TestQuickSampleIsPositive(t *testing.T) {
	f := func(seed uint64, depthSel, kindSel uint8, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		tree, err := quickTree(seed, depthSel, kindSel, false, nil)
		if err != nil {
			return false
		}
		q := tree.NewQueryFilter()
		for _, r := range raw {
			q.Add(uint64(r) % 4096)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for i := 0; i < 5; i++ {
			x, err := tree.Sample(q, rng, nil)
			if err == ErrNoSample {
				continue // permitted only via false-positive paths; rare
			}
			if err != nil || !q.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a pruned tree over the inserted elements reconstructs every
// inserted element under PruneByAndBits, like the full tree.
func TestQuickPrunedReconstructSuperset(t *testing.T) {
	f := func(seed uint64, depthSel, kindSel uint8, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		occ := make([]uint64, 0, len(raw))
		for _, r := range raw {
			occ = append(occ, uint64(r)%4096)
		}
		tree, err := quickTree(seed, depthSel, kindSel, true, occ)
		if err != nil {
			return false
		}
		q := tree.NewQueryFilter()
		for _, x := range occ {
			q.Add(x)
		}
		got, err := tree.Reconstruct(q, PruneByAndBits, nil)
		if err != nil {
			return false
		}
		found := map[uint64]bool{}
		for _, x := range got {
			found[x] = true
		}
		for _, x := range occ {
			if !found[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: dynamic insertion is equivalent to batch pruned construction
// — same node count and same serialized bytes.
func TestQuickInsertEquivalentToBatchBuild(t *testing.T) {
	f := func(seed uint64, depthSel, kindSel uint8, raw []uint16) bool {
		occ := make([]uint64, 0, len(raw))
		seen := map[uint64]bool{}
		for _, r := range raw {
			x := uint64(r) % 4096
			if !seen[x] {
				seen[x] = true
				occ = append(occ, x)
			}
		}
		batch, err := quickTree(seed, depthSel, kindSel, true, occ)
		if err != nil {
			return false
		}
		dyn, err := quickTree(seed, depthSel, kindSel, true, nil)
		if err != nil {
			return false
		}
		for _, x := range occ {
			if err := dyn.Insert(x); err != nil {
				return false
			}
		}
		if batch.Nodes() != dyn.Nodes() {
			return false
		}
		var b1, b2 bytes.Buffer
		if _, err := batch.WriteTo(&b1); err != nil {
			return false
		}
		if _, err := dyn.WriteTo(&b2); err != nil {
			return false
		}
		return bytes.Equal(b1.Bytes(), b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips byte-exactly for arbitrary trees.
func TestQuickTreeMarshalRoundTrip(t *testing.T) {
	f := func(seed uint64, depthSel, kindSel uint8, pruned bool, raw []uint16) bool {
		occ := make([]uint64, 0, len(raw))
		for _, r := range raw {
			occ = append(occ, uint64(r)%4096)
		}
		tree, err := quickTree(seed, depthSel, kindSel, pruned, occ)
		if err != nil {
			return false
		}
		var b1 bytes.Buffer
		if _, err := tree.WriteTo(&b1); err != nil {
			return false
		}
		got, err := ReadTree(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return false
		}
		var b2 bytes.Buffer
		if _, err := got.WriteTo(&b2); err != nil {
			return false
		}
		return bytes.Equal(b1.Bytes(), b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SampleN without replacement returns a subset of the
// PruneByAndBits reconstruction (the complete positive set).
func TestQuickSampleNSubsetOfReconstruction(t *testing.T) {
	f := func(seed uint64, kindSel uint8, raw []uint16, r uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tree, err := quickTree(seed, 6, kindSel, false, nil)
		if err != nil {
			return false
		}
		q := tree.NewQueryFilter()
		for _, v := range raw {
			q.Add(uint64(v) % 4096)
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		got, err := tree.SampleN(q, int(r%50)+1, false, rng, nil)
		if err != nil {
			return false
		}
		all, err := tree.Reconstruct(q, PruneByAndBits, nil)
		if err != nil {
			return false
		}
		in := map[uint64]bool{}
		for _, x := range all {
			in[x] = true
		}
		for _, x := range got {
			if !in[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LeafRange and Depth are consistent — 2^depth leaves of
// LeafRange cover the namespace.
func TestQuickLeafRangeCoversNamespace(t *testing.T) {
	f := func(nsSel uint16, depthSel uint8) bool {
		M := uint64(nsSel)%100000 + 16
		depth := int(depthSel) % 5
		cfg := Config{Namespace: M, Bits: 1024, K: 2, Depth: depth, HashKind: hashfam.KindFNV}
		tree, err := BuildTree(cfg)
		if err != nil {
			return false
		}
		return tree.LeafRange()*(uint64(1)<<depth) >= M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
