package core

import (
	"repro/internal/bloom"
)

// PruneRule selects how Reconstruct decides that a node's intersection
// with the query is empty (§5.6's practical problem: there is no reliable
// way to detect an empty set intersection).
type PruneRule int

const (
	// PruneByEstimate prunes subtrees whose estimated intersection size
	// falls below the tree's EmptyThreshold. This is the paper's
	// thresholding heuristic: fastest, but the estimator's noise at leaf
	// scale can prune sparse live branches, trading recall for speed.
	PruneByEstimate PruneRule = iota
	// PruneByAndBits prunes a subtree only when the bitwise AND of the
	// node filter and the query has no set bit — the paper's formal
	// definition of a (non-)overlap (Eq. 1). Any stored element sets all
	// its k bits in both filters, so a live branch always has a non-empty
	// AND: recall is perfect, at the cost of following more false set
	// overlap paths.
	PruneByAndBits
)

// Reconstruct returns the full set stored in the query Bloom filter q —
// S ∪ S(B), the stored elements plus the filter's false positives over the
// tree's namespace — by the recursive traversal of §6: subtrees whose
// intersection with q is deemed empty under the given rule are pruned; at
// the leaves the surviving ranges are brute-force checked and the
// positives unioned. The result is in ascending order.
//
// On a pruned tree the reconstruction is restricted to the occupied
// portion of the namespace, which is exactly the §8 setting.
func (t *Tree) Reconstruct(q *bloom.Filter, rule PruneRule, ops *Ops) ([]uint64, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	root := t.rootNode()
	if root == nil {
		return nil, nil
	}
	// One scratch buffer (leaf key block + batched hash positions) is
	// threaded through the whole traversal, so every surviving leaf scan
	// reuses it instead of allocating.
	scratch := make([]uint64, 0, leafProbeBatch*(q.K()+1))
	out, _ := t.reconstructNode(root, q, rule, ops, nil, scratch)
	return out, nil
}

func (t *Tree) reconstructNode(n *node, q *bloom.Filter, rule PruneRule, ops *Ops, out, scratch []uint64) ([]uint64, []uint64) {
	if ops != nil {
		ops.NodesVisited++
	}
	left, right := n.children()
	if left == nil && right == nil {
		return t.positivesInLeaf(n, q, ops, out, scratch)
	}
	if left != nil && t.childAlive(left, q, rule, ops) {
		out, scratch = t.reconstructNode(left, q, rule, ops, out, scratch)
	}
	if right != nil && t.childAlive(right, q, rule, ops) {
		out, scratch = t.reconstructNode(right, q, rule, ops, out, scratch)
	}
	return out, scratch
}

// childAlive applies the prune rule to one child.
func (t *Tree) childAlive(child *node, q *bloom.Filter, rule PruneRule, ops *Ops) bool {
	if ops != nil {
		ops.Intersections++
	}
	if rule == PruneByAndBits {
		return child.filter().IntersectsAny(q)
	}
	return child.filter().IntersectionEstimate(q) >= t.cfg.EmptyThreshold
}
