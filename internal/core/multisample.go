package core

import (
	"math/rand"

	"repro/internal/bloom"
)

// SampleN draws r elements from the set stored in q in a single pass down
// the tree (§5.3 "Sampling multiple items"): all r search paths move down
// together, and at each internal node where both children intersect q the
// paths are split by independent biased coin flips, so shared prefixes of
// the paths pay for their intersections only once.
//
// If withReplacement is true, a leaf reached by several paths may return
// the same element more than once; otherwise the returned elements are
// globally distinct, as if the leaf positives were drawn without
// replacement.
//
// The returned slice holds between 0 and r elements; fewer than r means
// some paths ended in false-positive leaves or, without replacement, the
// query's positives were exhausted.
func (t *Tree) SampleN(q *bloom.Filter, r int, withReplacement bool, rng *rand.Rand, ops *Ops) ([]uint64, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	root := t.rootNode()
	if r <= 0 || root == nil {
		return nil, nil
	}
	st := &multiState{drained: make(map[*node]bool)}
	if !withReplacement {
		st.exclude = make(map[uint64]bool)
	}
	return t.multiNode(root, q, r, st, rng, ops), nil
}

// multiState carries per-call bookkeeping for SampleN. exclude (nil in
// with-replacement mode) holds elements already returned; drained marks
// subtrees that have yielded everything they can, so backtracking never
// re-descends them (this keeps the pass linear even when r far exceeds the
// number of positives).
type multiState struct {
	exclude map[uint64]bool
	drained map[*node]bool
}

// multiNode routes r paths through n and returns the samples produced.
func (t *Tree) multiNode(n *node, q *bloom.Filter, r int, st *multiState, rng *rand.Rand, ops *Ops) []uint64 {
	if st.drained[n] {
		return nil
	}
	if ops != nil {
		ops.NodesVisited++
	}
	left, right := n.children()
	if left == nil && right == nil {
		out := t.multiLeaf(n, q, r, st, rng, ops)
		if len(out) < r {
			st.drained[n] = true
		}
		return out
	}

	lEst := t.childEstimate(left, q, ops)
	rEst := t.childEstimate(right, q, ops)
	thr := t.cfg.EmptyThreshold
	lOK, rOK := lEst >= thr, rEst >= thr

	var out []uint64
	switch {
	case !lOK && !rOK:
		st.drained[n] = true
		return nil
	case lOK && !rOK:
		out = t.multiNode(left, q, r, st, rng, ops)
	case !lOK && rOK:
		out = t.multiNode(right, q, r, st, rng, ops)
	default:
		// Split the r paths between the children with independent biased
		// coins, exactly as r separate BSTSample runs would (§5.3), so the
		// per-path distribution is unchanged.
		pLeft := lEst / (lEst + rEst)
		toLeft := 0
		for i := 0; i < r; i++ {
			if rng.Float64() < pLeft {
				toLeft++
			}
		}
		if toLeft > 0 {
			out = append(out, t.multiNode(left, q, toLeft, st, rng, ops)...)
		}
		if r-toLeft > 0 {
			out = append(out, t.multiNode(right, q, r-toLeft, st, rng, ops)...)
		}
		// Reroute unsatisfied paths into the sibling (backtracking), as
		// BSTSample does for a single path; drained marks prevent
		// re-scanning exhausted subtrees.
		if deficit := r - len(out); deficit > 0 {
			if ops != nil {
				ops.Backtracks++
			}
			firstChild, secondChild := left, right
			if rEst > lEst {
				firstChild, secondChild = right, left
			}
			out = append(out, t.multiNode(firstChild, q, deficit, st, rng, ops)...)
			if deficit = r - len(out); deficit > 0 {
				out = append(out, t.multiNode(secondChild, q, deficit, st, rng, ops)...)
			}
			if len(out) > r {
				out = out[:r]
			}
		}
	}
	if len(out) < r {
		// Both children have been given the chance to cover the deficit;
		// anything still missing does not exist in this subtree.
		st.drained[n] = true
	}
	return out
}

// multiLeaf resolves r paths arriving at one leaf.
func (t *Tree) multiLeaf(n *node, q *bloom.Filter, r int, st *multiState, rng *rand.Rand, ops *Ops) []uint64 {
	pos, _ := t.positivesInLeaf(n, q, ops, nil, nil)
	if st.exclude == nil { // with replacement
		if len(pos) == 0 {
			return nil
		}
		out := make([]uint64, r)
		for i := range out {
			out[i] = pos[rng.Intn(len(pos))]
		}
		return out
	}
	// Without replacement: drop already-returned elements, then partial
	// Fisher–Yates over the remainder.
	avail := pos[:0]
	for _, x := range pos {
		if !st.exclude[x] {
			avail = append(avail, x)
		}
	}
	take := r
	if take > len(avail) {
		take = len(avail)
	}
	for i := 0; i < take; i++ {
		j := i + rng.Intn(len(avail)-i)
		avail[i], avail[j] = avail[j], avail[i]
		st.exclude[avail[i]] = true
	}
	return avail[:take]
}
