package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/bloom"
)

// UniformSampler draws exactly uniform samples from a query Bloom filter
// through the BloomSampleTree by rejection: the tree descent is used as a
// proposal distribution whose probability is tracked exactly, and a sample
// found at a leaf with ℓ positives reached with path probability p is
// accepted with probability ℓ/(n̂·p·C).
//
// Why this exists: BSTSample's leaf-choice probabilities are products of
// noisy intersection estimates (§5.3), and Proposition 5.2's near-
// uniformity needs ε(m) = √(2nk·(log m + log log m + log n)/m) → 0 —
// which does not hold at the paper's own filter sizes (ε ≈ 1 there). The
// rejection step cancels the proposal entirely: accepted samples are
// uniform over the filter's positives regardless of estimator noise,
// because P(x) = p·(1/ℓ)·[ℓ/(n̂·p·C)] = 1/(n̂·C) for every reachable x.
// An acceptance probability that would exceed 1 (an under-proposed leaf)
// is never returned: the attempt is discarded and C is doubled, so after
// a short self-calibration every positive has acceptance probability
// exactly ℓ/(n̂·p·C) < 1 and the output distribution is exactly uniform.
// Clamp events are counted in Stats.Clamped.
//
// The proposal mixes the intersection estimate with a uniform-over-
// namespace component (child weight = ê + β·n̂·rangeFraction), so every
// leaf keeps a path probability within a small factor of its ideal share
// even where the estimator is pure noise, and the tracked probability is
// exact; there is no backtracking — a failed leaf is a rejection, and the
// sampler retries from the root.
//
// A UniformSampler is safe for concurrent use: the query filter, the
// cardinality estimate and the self-calibration (safety factor, attempt
// bound, rejection statistics) all live in atomics, so any number of
// goroutines can share one sampler — each still owns its rand source and
// Ops accumulator. Calibration updates are monotone (the safety factor
// and the cardinality estimate only ever rise via compare-and-swap max),
// which keeps racing recalibrations from regressing the learned headroom.
// Retarget rebinds the sampler to a newer copy-on-write version of its
// filter without discarding that calibration.
type UniformSampler struct {
	t *Tree
	q atomic.Pointer[bloom.Filter]
	// nHatBits and safetyBits hold float64 bits; both are raised
	// monotonically with CAS-max (atomicMaxFloat). safety is C in the
	// acceptance rule: larger values reduce clamping (better uniformity
	// in the extreme tails) but cost proportionally more attempts.
	nHatBits    atomic.Uint64
	safetyBits  atomic.Uint64
	maxAttempts atomic.Int64
	// uniformMix is β, the weight of the uniform-over-namespace component
	// in the proposal; fixed at creation.
	uniformMix float64

	attempts, accepted, clamped, retargets atomic.Uint64
}

// UniformStats reports the sampler's rejection behaviour.
type UniformStats struct {
	// Attempts is the total number of root-to-leaf descents.
	Attempts uint64
	// Accepted is the number of samples returned.
	Accepted uint64
	// Clamped counts acceptances whose probability was capped at 1
	// (slight local over-sampling; the safety factor doubles on each).
	Clamped uint64
	// Retargets counts Retarget calls that actually swapped the filter.
	Retargets uint64
}

// atomicMaxFloat raises the float64 stored in bits to at least v.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// NewUniformSampler prepares a uniform sampler for one query filter. The
// filter's estimated cardinality is computed once and reused; Retarget
// the sampler if the filter is replaced by a newer version.
func (t *Tree) NewUniformSampler(q *bloom.Filter) (*UniformSampler, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	nHat := t.clampEstimate(q.EstimateCardinality())
	// For sets much smaller than the leaf count the proposal cannot know
	// which near-empty leaf hides two elements instead of one, so the
	// acceptance headroom must scale with leaves/n̂; clamp-doubling
	// handles whatever this initial guess still misses.
	leaves := float64(uint64(1) << t.cfg.Depth)
	c := 8.0
	if scaled := 4 * leaves / nHat; scaled > c {
		c = scaled
	}
	s := &UniformSampler{t: t, uniformMix: 2}
	s.q.Store(q)
	s.nHatBits.Store(math.Float64bits(nHat))
	s.safetyBits.Store(math.Float64bits(c))
	s.maxAttempts.Store(int64(64 * c))
	return s, nil
}

// clampEstimate bounds a cardinality estimate to [1, Namespace].
func (t *Tree) clampEstimate(nHat float64) float64 {
	if math.IsInf(nHat, 1) || nHat > float64(t.cfg.Namespace) {
		nHat = float64(t.cfg.Namespace)
	}
	if nHat < 1 {
		nHat = 1
	}
	return nHat
}

// Retarget rebinds the sampler to a newer version of its query filter —
// typically the copy-on-write successor published by a writer — while
// keeping the learned safety calibration. The cardinality estimate is
// recalibrated by atomic max: it only ever rises, so concurrent
// retargets (or retargets racing draws) cannot regress the acceptance
// rule below a level already proven necessary. Draws racing a Retarget
// use either filter version; both are valid snapshots of the set.
func (s *UniformSampler) Retarget(q *bloom.Filter) error {
	if err := s.t.checkQuery(q); err != nil {
		return err
	}
	if s.q.Swap(q) == q {
		return nil
	}
	atomicMaxFloat(&s.nHatBits, s.t.clampEstimate(q.EstimateCardinality()))
	s.retargets.Add(1)
	return nil
}

// Filter returns the query filter the sampler currently draws from.
func (s *UniformSampler) Filter() *bloom.Filter { return s.q.Load() }

// SafetyFactor returns the current acceptance headroom C.
func (s *UniformSampler) SafetyFactor() float64 {
	return math.Float64frombits(s.safetyBits.Load())
}

// SetMaxAttempts bounds the rejection loop (default 64·C, doubled on each
// clamp event).
func (s *UniformSampler) SetMaxAttempts(n int) { s.maxAttempts.Store(int64(n)) }

// MaxAttempts returns the current rejection-loop bound.
func (s *UniformSampler) MaxAttempts() int { return int(s.maxAttempts.Load()) }

// Stats returns cumulative rejection statistics.
func (s *UniformSampler) Stats() UniformStats {
	return UniformStats{
		Attempts:  s.attempts.Load(),
		Accepted:  s.accepted.Load(),
		Clamped:   s.clamped.Load(),
		Retargets: s.retargets.Load(),
	}
}

// Sample returns one uniform sample from the set stored in the query
// filter (including its false positives). It returns ErrNoSample when the
// rejection loop exhausts MaxAttempts — in practice only for (nearly)
// empty query filters.
func (s *UniformSampler) Sample(rng *rand.Rand, ops *Ops) (uint64, error) {
	if s.t.rootNode() == nil {
		return 0, ErrNoSample
	}
	for attempt := int64(0); attempt < s.maxAttempts.Load(); attempt++ {
		s.attempts.Add(1)
		x, ok := s.descend(rng, ops)
		if ok {
			s.accepted.Add(1)
			return x, nil
		}
	}
	return 0, ErrNoSample
}

// SampleN draws r uniform samples (with replacement) by repeated Sample.
func (s *UniformSampler) SampleN(r int, rng *rand.Rand, ops *Ops) ([]uint64, error) {
	out := make([]uint64, 0, r)
	for i := 0; i < r; i++ {
		x, err := s.Sample(rng, ops)
		if err == ErrNoSample {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, x)
	}
	return out, nil
}

// descend performs one proposal walk and the acceptance test. The query
// filter, estimate and safety factor are loaded once per attempt so the
// walk is internally consistent even while another goroutine retargets or
// recalibrates.
func (s *UniformSampler) descend(rng *rand.Rand, ops *Ops) (uint64, bool) {
	q := s.q.Load()
	nHat := math.Float64frombits(s.nHatBits.Load())
	safety := math.Float64frombits(s.safetyBits.Load())
	n := s.t.rootNode()
	pathProb := 1.0
	for {
		left, right := n.children()
		if left == nil && right == nil {
			break
		}
		if ops != nil {
			ops.NodesVisited++
		}
		wl := s.childWeight(left, q, nHat, ops)
		wr := s.childWeight(right, q, nHat, ops)
		if wl == 0 && wr == 0 {
			return 0, false // pruned-tree dead end (both children missing)
		}
		pl := wl / (wl + wr)
		if rng.Float64() < pl {
			n, pathProb = left, pathProb*pl
		} else {
			n, pathProb = right, pathProb*(1-pl)
		}
	}
	if ops != nil {
		ops.NodesVisited++
	}

	// Reservoir over the leaf's positives, counting them exactly.
	var chosen uint64
	count := 0
	if ops != nil {
		ops.LeavesScanned++
		ops.Memberships += n.hi - n.lo
	}
	var buf [maxScratchK]uint64
	scratch := buf[:0]
	for x := n.lo; x < n.hi; x++ {
		var hit bool
		hit, scratch = q.ContainsScratch(x, scratch)
		if hit {
			count++
			if rng.Intn(count) == 0 {
				chosen = x
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	alpha := float64(count) / (nHat * pathProb * safety)
	if alpha >= 1 {
		// Under-proposed leaf: returning now would bias the output, so
		// discard the attempt and widen the headroom for all future
		// acceptances (self-calibration; exact once clamps stop). The
		// doubling is a CAS-max so racing clamps compose instead of
		// overwriting each other.
		s.clamped.Add(1)
		atomicMaxFloat(&s.safetyBits, safety*2)
		for {
			old := s.maxAttempts.Load()
			if s.maxAttempts.CompareAndSwap(old, old*2) {
				break
			}
		}
		return 0, false
	}
	return chosen, rng.Float64() < alpha
}

// childWeight is the proposal weight of a child: the estimated
// intersection size plus the uniform-mixture share β·n̂·(range/M), or 0
// for a missing child.
func (s *UniformSampler) childWeight(child *node, q *bloom.Filter, nHat float64, ops *Ops) float64 {
	if child == nil {
		return 0
	}
	if ops != nil {
		ops.Intersections++
	}
	cf := child.filter().QueryView()
	m := cf.M()
	k := cf.K()
	t1 := cf.SetBits()
	t2 := q.SetBits()
	tand := cf.IntersectionSetBits(q)
	est := bloom.EstimateIntersection(m, k, t1, t2, tand)
	if est < 0 || math.IsNaN(est) {
		est = 0
	}
	if math.IsInf(est, 1) || est > nHat {
		est = nHat
	}
	// Shrink the estimate by one standard deviation of its chance-level
	// noise: the AND bit count fluctuates by ~√(t1·t2/m) even for
	// disjoint sets, and at mid-tree levels that noise (converted to
	// elements) exceeds the true count. Without shrinkage the proposal
	// chases noise and the acceptance probabilities spread over orders of
	// magnitude (heavy clamping).
	if est > 0 && est < nHat {
		sigmaBits := 1.5 * math.Sqrt(float64(t1)*float64(t2)/float64(m))
		lo := tand - uint64(sigmaBits)
		if sigmaBits >= float64(tand) {
			lo = 0
		}
		estLo := bloom.EstimateIntersection(m, k, t1, t2, lo)
		if math.IsNaN(estLo) || math.IsInf(estLo, 0) || estLo < 0 {
			estLo = 0
		}
		est = estLo
	}
	frac := float64(child.hi-child.lo) / float64(s.t.cfg.Namespace)
	return est + s.uniformMix*nHat*frac
}

// String summarizes the sampler's configuration and statistics.
func (s *UniformSampler) String() string {
	return fmt.Sprintf("UniformSampler(n̂=%.1f C=%.1f β=%.2f attempts=%d accepted=%d clamped=%d retargets=%d)",
		math.Float64frombits(s.nHatBits.Load()), s.SafetyFactor(), s.uniformMix,
		s.attempts.Load(), s.accepted.Load(), s.clamped.Load(), s.retargets.Load())
}
