package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bloom"
)

// UniformSampler draws exactly uniform samples from a query Bloom filter
// through the BloomSampleTree by rejection: the tree descent is used as a
// proposal distribution whose probability is tracked exactly, and a sample
// found at a leaf with ℓ positives reached with path probability p is
// accepted with probability ℓ/(n̂·p·C).
//
// Why this exists: BSTSample's leaf-choice probabilities are products of
// noisy intersection estimates (§5.3), and Proposition 5.2's near-
// uniformity needs ε(m) = √(2nk·(log m + log log m + log n)/m) → 0 —
// which does not hold at the paper's own filter sizes (ε ≈ 1 there). The
// rejection step cancels the proposal entirely: accepted samples are
// uniform over the filter's positives regardless of estimator noise,
// because P(x) = p·(1/ℓ)·[ℓ/(n̂·p·C)] = 1/(n̂·C) for every reachable x.
// An acceptance probability that would exceed 1 (an under-proposed leaf)
// is never returned: the attempt is discarded and C is doubled, so after
// a short self-calibration every positive has acceptance probability
// exactly ℓ/(n̂·p·C) < 1 and the output distribution is exactly uniform.
// Clamp events are counted in Stats.Clamped.
//
// The proposal mixes the intersection estimate with a uniform-over-
// namespace component (child weight = ê + β·n̂·rangeFraction), so every
// leaf keeps a path probability within a small factor of its ideal share
// even where the estimator is pure noise, and the tracked probability is
// exact; there is no backtracking — a failed leaf is a rejection, and the
// sampler retries from the root.
//
// A UniformSampler instance is NOT safe for concurrent use: the
// self-calibration mutates SafetyFactor and the rejection statistics.
// The tree and query filter it reads are never mutated, so concurrent
// callers should create one sampler per goroutine over the same tree and
// filter.
type UniformSampler struct {
	t    *Tree
	q    *bloom.Filter
	nHat float64
	// SafetyFactor is C in the acceptance rule; larger values reduce
	// clamping (better uniformity in the extreme tails) but cost
	// proportionally more attempts. Default 8.
	SafetyFactor float64
	// UniformMix is β, the weight of the uniform-over-namespace component
	// in the proposal. 0 descends purely by estimates (fast but heavy
	// clamping on sparse leaves); 1 gives an even mixture. Default 1.
	UniformMix float64
	// MaxAttempts bounds the rejection loop. Default 512.
	MaxAttempts int
	stats       UniformStats
}

// UniformStats reports the sampler's rejection behaviour.
type UniformStats struct {
	// Attempts is the total number of root-to-leaf descents.
	Attempts uint64
	// Accepted is the number of samples returned.
	Accepted uint64
	// Clamped counts acceptances whose probability was capped at 1
	// (slight local over-sampling; raise SafetyFactor to eliminate).
	Clamped uint64
}

// NewUniformSampler prepares a uniform sampler for one query filter. The
// filter's estimated cardinality is computed once and reused; rebuild the
// sampler if the filter changes.
func (t *Tree) NewUniformSampler(q *bloom.Filter) (*UniformSampler, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	nHat := q.EstimateCardinality()
	if math.IsInf(nHat, 1) || nHat > float64(t.cfg.Namespace) {
		nHat = float64(t.cfg.Namespace)
	}
	if nHat < 1 {
		nHat = 1
	}
	// For sets much smaller than the leaf count the proposal cannot know
	// which near-empty leaf hides two elements instead of one, so the
	// acceptance headroom must scale with leaves/n̂; clamp-doubling
	// handles whatever this initial guess still misses.
	leaves := float64(uint64(1) << t.cfg.Depth)
	c := 8.0
	if scaled := 4 * leaves / nHat; scaled > c {
		c = scaled
	}
	return &UniformSampler{
		t:            t,
		q:            q,
		nHat:         nHat,
		SafetyFactor: c,
		UniformMix:   2,
		MaxAttempts:  int(64 * c),
	}, nil
}

// Stats returns cumulative rejection statistics.
func (s *UniformSampler) Stats() UniformStats { return s.stats }

// Sample returns one uniform sample from the set stored in the query
// filter (including its false positives). It returns ErrNoSample when the
// rejection loop exhausts MaxAttempts — in practice only for (nearly)
// empty query filters.
func (s *UniformSampler) Sample(rng *rand.Rand, ops *Ops) (uint64, error) {
	if s.t.root == nil {
		return 0, ErrNoSample
	}
	for attempt := 0; attempt < s.MaxAttempts; attempt++ {
		s.stats.Attempts++
		x, ok := s.descend(rng, ops)
		if ok {
			s.stats.Accepted++
			return x, nil
		}
	}
	return 0, ErrNoSample
}

// SampleN draws r uniform samples (with replacement) by repeated Sample.
func (s *UniformSampler) SampleN(r int, rng *rand.Rand, ops *Ops) ([]uint64, error) {
	out := make([]uint64, 0, r)
	for i := 0; i < r; i++ {
		x, err := s.Sample(rng, ops)
		if err == ErrNoSample {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, x)
	}
	return out, nil
}

// descend performs one proposal walk and the acceptance test.
func (s *UniformSampler) descend(rng *rand.Rand, ops *Ops) (uint64, bool) {
	n := s.t.root
	pathProb := 1.0
	for !n.isLeaf() {
		if ops != nil {
			ops.NodesVisited++
		}
		wl := s.childWeight(n.left, ops)
		wr := s.childWeight(n.right, ops)
		if wl == 0 && wr == 0 {
			return 0, false // pruned-tree dead end (both children missing)
		}
		pl := wl / (wl + wr)
		if rng.Float64() < pl {
			n, pathProb = n.left, pathProb*pl
		} else {
			n, pathProb = n.right, pathProb*(1-pl)
		}
	}
	if ops != nil {
		ops.NodesVisited++
	}

	// Reservoir over the leaf's positives, counting them exactly.
	var chosen uint64
	count := 0
	if ops != nil {
		ops.LeavesScanned++
		ops.Memberships += n.hi - n.lo
	}
	var buf [maxScratchK]uint64
	scratch := buf[:0]
	for x := n.lo; x < n.hi; x++ {
		var hit bool
		hit, scratch = s.q.ContainsScratch(x, scratch)
		if hit {
			count++
			if rng.Intn(count) == 0 {
				chosen = x
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	alpha := float64(count) / (s.nHat * pathProb * s.SafetyFactor)
	if alpha >= 1 {
		// Under-proposed leaf: returning now would bias the output, so
		// discard the attempt and widen the headroom for all future
		// acceptances (self-calibration; exact once clamps stop).
		s.stats.Clamped++
		s.SafetyFactor *= 2
		s.MaxAttempts *= 2
		return 0, false
	}
	return chosen, rng.Float64() < alpha
}

// childWeight is the proposal weight of a child: the estimated
// intersection size plus the uniform-mixture share β·n̂·(range/M), or 0
// for a missing child.
func (s *UniformSampler) childWeight(child *node, ops *Ops) float64 {
	if child == nil {
		return 0
	}
	if ops != nil {
		ops.Intersections++
	}
	m := child.f.M()
	k := child.f.K()
	t1 := child.f.SetBits()
	t2 := s.q.SetBits()
	tand := child.f.IntersectionSetBits(s.q)
	est := bloom.EstimateIntersection(m, k, t1, t2, tand)
	if est < 0 || math.IsNaN(est) {
		est = 0
	}
	if math.IsInf(est, 1) || est > s.nHat {
		est = s.nHat
	}
	// Shrink the estimate by one standard deviation of its chance-level
	// noise: the AND bit count fluctuates by ~√(t1·t2/m) even for
	// disjoint sets, and at mid-tree levels that noise (converted to
	// elements) exceeds the true count. Without shrinkage the proposal
	// chases noise and the acceptance probabilities spread over orders of
	// magnitude (heavy clamping).
	if est > 0 && est < s.nHat {
		sigmaBits := 1.5 * math.Sqrt(float64(t1)*float64(t2)/float64(m))
		lo := tand - uint64(sigmaBits)
		if sigmaBits >= float64(tand) {
			lo = 0
		}
		estLo := bloom.EstimateIntersection(m, k, t1, t2, lo)
		if math.IsNaN(estLo) || math.IsInf(estLo, 0) || estLo < 0 {
			estLo = 0
		}
		est = estLo
	}
	frac := float64(child.hi-child.lo) / float64(s.t.cfg.Namespace)
	return est + s.UniformMix*s.nHat*frac
}

// String summarizes the sampler's configuration and statistics.
func (s *UniformSampler) String() string {
	return fmt.Sprintf("UniformSampler(n̂=%.1f C=%.1f β=%.2f attempts=%d accepted=%d clamped=%d)",
		s.nHat, s.SafetyFactor, s.UniformMix, s.stats.Attempts, s.stats.Accepted, s.stats.Clamped)
}
