package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// DefaultCostRatioDivisor calibrates the intersection-to-membership cost
// ratio as icost/mcost = m / DefaultCostRatioDivisor when no measured ratio
// is supplied. An intersection touches all m bits while a membership query
// touches k; the divisor 350 reproduces the depth/M⊥ choices of the
// paper's Table 3 (M = 10⁷) exactly and Table 2 within one level.
const DefaultCostRatioDivisor = 350

// Plan is the outcome of the §5.4 parameter planning: Bloom-filter
// parameters chosen for a desired accuracy plus the tree depth chosen by
// the icost/mcost tradeoff.
type Plan struct {
	bloom.Params
	// Depth is the number of halvings (the tree has 2^Depth leaf ranges).
	Depth int
	// LeafRange is M⊥, the number of namespace elements per leaf.
	LeafRange uint64
	// CostRatio is the icost/mcost ratio the depth choice used.
	CostRatio float64
}

// TreeConfig converts the plan into a buildable Config.
func (p Plan) TreeConfig(kind hashfam.Kind, seed uint64) Config {
	return Config{
		Namespace: p.M,
		Bits:      p.Bits,
		K:         p.K,
		HashKind:  kind,
		Seed:      seed,
		Depth:     p.Depth,
	}
}

// LeafRangeForRatio returns the largest leaf range N⊥ satisfying the §5.4
// rule N⊥ / log₂(N⊥) ≤ icost/mcost: below that size it is cheaper to
// brute-force the leaf with membership queries than to keep intersecting
// down the tree.
func LeafRangeForRatio(ratio float64) uint64 {
	if ratio < 2 {
		return 2 // log2(1) = 0; the rule is vacuous below 2
	}
	// N/log2(N) is increasing for N >= 3; binary-search the threshold.
	lo, hi := uint64(2), uint64(1)<<62
	cost := func(n uint64) float64 { return float64(n) / math.Log2(float64(n)) }
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if cost(mid) <= ratio {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// PlanTree performs the full §5.4 planning: it sizes the Bloom filter for
// the desired sampling accuracy (via bloom.PlanParams) and picks the tree
// depth from the intersection/membership cost ratio. costRatio <= 0 uses
// the default model m/DefaultCostRatioDivisor; pass a measured ratio from
// CalibrateCosts for machine-specific planning.
func PlanTree(accuracy float64, n, M uint64, k int, costRatio float64) (Plan, error) {
	params, err := bloom.PlanParams(accuracy, n, M, k)
	if err != nil {
		return Plan{}, err
	}
	if costRatio <= 0 {
		costRatio = float64(params.Bits) / DefaultCostRatioDivisor
	}
	leaf := LeafRangeForRatio(costRatio)
	if leaf > M {
		leaf = M
	}
	depth := 0
	for r := M; r > leaf; r = (r + 1) / 2 {
		depth++
	}
	plan := Plan{Params: params, Depth: depth, CostRatio: costRatio}
	plan.LeafRange = leafRangeAtDepth(M, depth)
	return plan, nil
}

func leafRangeAtDepth(M uint64, depth int) uint64 {
	r := M
	for i := 0; i < depth; i++ {
		r = (r + 1) / 2
	}
	return r
}

// CostEstimate holds measured per-operation costs on this machine.
type CostEstimate struct {
	// Membership is the cost of one membership query (k hashes + probes).
	Membership time.Duration
	// Intersection is the cost of one intersection-size estimation over
	// two m-bit filters.
	Intersection time.Duration
}

// Ratio returns icost/mcost, the quantity §5.4's rule consumes.
func (c CostEstimate) Ratio() float64 {
	if c.Membership <= 0 {
		return 0
	}
	return float64(c.Intersection) / float64(c.Membership)
}

// CalibrateCosts measures the membership and intersection costs for the
// given filter parameters on the current machine by timing repeated
// operations on representative filters. iters controls measurement effort
// (0 means a reasonable default).
func CalibrateCosts(kind hashfam.Kind, m uint64, k int, iters int) (CostEstimate, error) {
	if iters <= 0 {
		iters = 20000
	}
	fam, err := hashfam.New(kind, m, k, 12345)
	if err != nil {
		return CostEstimate{}, err
	}
	a := bloom.New(fam)
	b := bloom.New(fam)
	for x := uint64(0); x < 1000; x++ {
		a.Add(x)
		b.Add(x * 3)
	}

	var sink bool
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink = a.Contains(uint64(i)) != sink
	}
	mcost := time.Since(start) / time.Duration(iters)

	interIters := iters/20 + 1
	var fsink float64
	start = time.Now()
	for i := 0; i < interIters; i++ {
		fsink += bloom.EstimateIntersectionOf(a, b)
	}
	icost := time.Since(start) / time.Duration(interIters)
	_ = sink
	_ = fsink
	if mcost <= 0 {
		mcost = time.Nanosecond
	}
	return CostEstimate{Membership: mcost, Intersection: icost}, nil
}

// String renders the cost estimate for reports.
func (c CostEstimate) String() string {
	return fmt.Sprintf("membership=%v intersection=%v ratio=%.1f", c.Membership, c.Intersection, c.Ratio())
}
