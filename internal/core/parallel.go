package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bloom"
)

// BuildTreeParallel constructs the same full BloomSampleTree as BuildTree
// using up to workers goroutines (0 means GOMAXPROCS). The namespace is
// split at a shallow level into independent subtrees that are built
// concurrently; the remaining top levels are unioned serially. Intended
// for paper-scale namespaces (10⁷ and beyond), where construction is a
// pure hash pass and parallelizes near-linearly.
func BuildTreeParallel(cfg Config, workers int) (*Tree, error) {
	t, err := newTree(cfg, false)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Fan out at the shallowest level with >= workers subtrees (capped at
	// the tree depth itself).
	fanDepth := 0
	for (1<<fanDepth) < workers && fanDepth < t.cfg.Depth {
		fanDepth++
	}
	if fanDepth == 0 {
		t.root.Store(t.buildFull(0, cfg.Namespace, cfg.Depth))
		return t, nil
	}

	type job struct {
		lo, hi uint64
		depth  int
		out    *node
	}
	// Enumerate the fan-out ranges exactly as the serial recursion would.
	var jobs []*job
	var enumerate func(lo, hi uint64, depth, remaining int)
	enumerate = func(lo, hi uint64, depth, remaining int) {
		if remaining == 0 || hi-lo <= 1 {
			jobs = append(jobs, &job{lo: lo, hi: hi, depth: depth})
			return
		}
		mid := split(lo, hi)
		enumerate(lo, mid, depth-1, remaining-1)
		enumerate(mid, hi, depth-1, remaining-1)
	}
	enumerate(0, cfg.Namespace, cfg.Depth, fanDepth)

	// Workers share the tree's atomic node counter, so subtrees build
	// concurrently with no per-worker bookkeeping.
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j *job) {
			defer wg.Done()
			defer func() { <-sem }()
			j.out = t.buildFull(j.lo, j.hi, j.depth)
		}(j)
	}
	wg.Wait()

	// Stitch the subtrees under the top levels, unioning upward.
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].lo < jobs[b].lo })
	level := make([]*node, len(jobs))
	for i, j := range jobs {
		level[i] = j.out
	}
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			l, r := level[i], level[i+1]
			f, err := l.filter().QueryView().Union(r.filter().QueryView())
			if err != nil {
				return nil, err
			}
			parent := newNodeBloom(l.lo, r.hi, f)
			parent.left.Store(l)
			parent.right.Store(r)
			t.nodes.Add(1)
			next = append(next, parent)
		}
		level = next
	}
	t.root.Store(level[0])
	return t, nil
}

// Stats describes the realized structure of a tree, level by level — the
// diagnostics behind the §5.5/§5.6 discussion: node filters near the top
// saturate (fill → 1) and carry no pruning signal, and the level at which
// fill drops below ~0.5 is where the descent starts discriminating.
type Stats struct {
	// Levels has one entry per tree level, root first.
	Levels []LevelStats
	// SaturationDepth is the first level whose mean fill ratio is below
	// 0.9 (len(Levels) if none).
	SaturationDepth int
	// Nodes and MemoryBytes mirror the Tree getters.
	Nodes       uint64
	MemoryBytes uint64
}

// LevelStats aggregates one tree level.
type LevelStats struct {
	Level    int
	Nodes    int
	MinFill  float64
	MeanFill float64
	MaxFill  float64
}

// ComputeStats walks the tree and aggregates per-level fill ratios.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Nodes: t.Nodes(), MemoryBytes: t.MemoryBytes()}
	if t.rootNode() == nil {
		return s
	}
	type lv struct {
		sum      float64
		min, max float64
		n        int
	}
	var levels []lv
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n == nil {
			return
		}
		for len(levels) <= depth {
			levels = append(levels, lv{min: 2})
		}
		fill := n.filter().QueryView().FillRatio()
		l := &levels[depth]
		l.sum += fill
		l.n++
		if fill < l.min {
			l.min = fill
		}
		if fill > l.max {
			l.max = fill
		}
		left, right := n.children()
		walk(left, depth+1)
		walk(right, depth+1)
	}
	walk(t.rootNode(), 0)
	s.SaturationDepth = len(levels)
	for i, l := range levels {
		ls := LevelStats{Level: i, Nodes: l.n, MinFill: l.min, MeanFill: l.sum / float64(l.n), MaxFill: l.max}
		s.Levels = append(s.Levels, ls)
		if s.SaturationDepth == len(levels) && ls.MeanFill < 0.9 {
			s.SaturationDepth = i
		}
	}
	return s
}

// EstimateSetSize estimates the cardinality of the set stored in a query
// filter — convenience re-export of the §5.2-proof estimator used by the
// uniform sampler.
func (t *Tree) EstimateSetSize(q *bloom.Filter) (float64, error) {
	if err := t.checkQuery(q); err != nil {
		return 0, err
	}
	return q.EstimateCardinality(), nil
}
