package core

import (
	"fmt"
	"math/rand"

	"repro/internal/bloom"
	"repro/internal/hashfam"
)

// ErrNoSample is returned by Sample when the search exhausts the tree
// without finding any element answering positively — possible only when
// the query filter is empty or every branch taken was a false set overlap.
var ErrNoSample = fmt.Errorf("core: no sample found")

// Sample draws one element approximately uniformly at random from the set
// stored in the query Bloom filter q, following Algorithm 1 (BSTSample):
// descend from the root, at each internal node estimating the size of the
// intersection of each child filter with q (§5.3's Ŝ⁻¹ estimator),
// pruning children whose estimate falls below the empty threshold (§5.6),
// choosing among the rest with probability proportional to the estimates,
// and backtracking to the sibling when a branch turns out to be a false
// positive path. At a leaf, the whole leaf range is checked by membership
// queries and a uniform choice among the positives is returned.
//
// The returned element is a member of S ∪ S(B) — the stored set plus the
// filter's false positives — per the problem statement (§1). ops, if
// non-nil, accumulates operation counts.
func (t *Tree) Sample(q *bloom.Filter, rng *rand.Rand, ops *Ops) (uint64, error) {
	var buf [maxScratchK]uint64
	x, _, err := t.SampleScratch(q, rng, ops, buf[:0])
	return x, err
}

// SampleScratch is Sample with a caller-owned hash-position scratch
// buffer: the whole descent (including every leaf membership probe, via
// bloom.ContainsScratch) appends into scratch instead of allocating, and
// the possibly grown buffer is returned for the next call. A steady-state
// sampling loop that threads the returned buffer back in performs zero
// heap allocations per draw; DB.SampleMany's workers are built on it.
// Like Sample it is read-only on the tree and the query filter; the
// caller owns rng, ops and scratch.
func (t *Tree) SampleScratch(q *bloom.Filter, rng *rand.Rand, ops *Ops, scratch []uint64) (uint64, []uint64, error) {
	if err := t.checkQuery(q); err != nil {
		return 0, scratch, err
	}
	root := t.rootNode()
	if root == nil { // empty pruned tree
		return 0, scratch, ErrNoSample
	}
	x, ok, scratch := t.sampleNode(root, q, rng, ops, scratch)
	if !ok {
		return 0, scratch, ErrNoSample
	}
	return x, scratch, nil
}

// sampleNode implements one recursive step of BSTSample. Child pointers
// and filters are loaded once per visit, so a step races a concurrent
// growth publish only by seeing either the old or the new version. The
// scratch buffer is threaded through the recursion and returned grown.
func (t *Tree) sampleNode(n *node, q *bloom.Filter, rng *rand.Rand, ops *Ops, scratch []uint64) (uint64, bool, []uint64) {
	if ops != nil {
		ops.NodesVisited++
	}
	left, right := n.children()
	if left == nil && right == nil {
		return t.sampleLeaf(n, q, rng, ops, scratch)
	}

	lEst := t.childEstimate(left, q, ops)
	rEst := t.childEstimate(right, q, ops)
	thr := t.cfg.EmptyThreshold
	lOK, rOK := lEst >= thr, rEst >= thr

	// Both intersections estimated empty: we arrived here on a false
	// positive path; report NULL so the caller backtracks (Algorithm 1
	// lines 17–18).
	if !lOK && !rOK {
		return 0, false, scratch
	}

	// Otherwise choose a child with probability proportional to the
	// estimates and fall back to the sibling on failure — even a
	// sub-threshold sibling, exactly as Algorithm 1 lines 21–32 do. The
	// estimator is noisy at leaf scale (§5.6), so a sparse but live
	// branch can estimate to zero; reaching it through backtracking keeps
	// its elements sampleable.
	first, second := left, right
	if p := lEst / (lEst + rEst); rng.Float64() >= p {
		first, second = right, left
	}
	x, ok, scratch := t.sampleNode(first, q, rng, ops, scratch)
	if ok {
		return x, true, scratch
	}
	if ops != nil {
		ops.Backtracks++
	}
	if second == nil { // pruned tree: missing sibling
		return 0, false, scratch
	}
	return t.sampleNode(second, q, rng, ops, scratch)
}

// childEstimate returns the estimated intersection size of a child filter
// with the query, treating missing (pruned) children as empty.
func (t *Tree) childEstimate(child *node, q *bloom.Filter, ops *Ops) float64 {
	if child == nil {
		return 0
	}
	if ops != nil {
		ops.Intersections++
	}
	return child.filter().IntersectionEstimate(q)
}

// sampleLeaf brute-force checks the leaf's range against q and picks one
// positive uniformly at random (reservoir over the range, so no
// allocation beyond the caller's scratch buffer). The range is probed in
// blocks of leafProbeBatch: each block's keys are hashed with one
// PositionsMany call through the family's batched path and every k-group
// is then checked against the query's word-sliced bit vector, so the
// per-element cost is one inlined hash plus a short-circuiting probe.
// Both the key block and the position block are carved out of the
// threaded scratch buffer — stack arrays would escape through the
// interface call and break the zero-allocation contract of steady-state
// sampling loops.
func (t *Tree) sampleLeaf(n *node, q *bloom.Filter, rng *rand.Rand, ops *Ops, scratch []uint64) (uint64, bool, []uint64) {
	if ops != nil {
		ops.LeavesScanned++
		ops.Memberships += n.hi - n.lo
	}
	fam := q.Family()
	bits := q.Bits()
	k := fam.K()
	need := leafProbeBatch * (k + 1)
	if cap(scratch) < need {
		scratch = make([]uint64, 0, need)
	}
	buf := scratch[:need]
	xs := buf[:leafProbeBatch]
	var chosen uint64
	count := 0
	for lo := n.lo; lo < n.hi; lo += leafProbeBatch {
		m := int(min(uint64(leafProbeBatch), n.hi-lo))
		for i := 0; i < m; i++ {
			xs[i] = lo + uint64(i)
		}
		pos := hashfam.PositionsMany(fam, xs[:m], buf[leafProbeBatch:leafProbeBatch])
		for i := 0; i < m; i++ {
			if bits.TestAll(pos[i*k : (i+1)*k]) {
				count++
				if rng.Intn(count) == 0 {
					chosen = xs[i]
				}
			}
		}
	}
	return chosen, count > 0, buf[:0]
}

// leafProbeBatch is the number of leaf elements hashed per PositionsMany
// call during leaf scans; it bounds the scratch carve-out at
// leafProbeBatch*(k+1) words.
const leafProbeBatch = 64

// maxScratchK sizes the per-key hash-position scratch for descents and
// leaf scans; families with more hash functions than this just grow the
// buffer once per scan.
const maxScratchK = 16

// ScratchHint is the recommended initial capacity for the scratch buffer
// threaded through SampleScratch: one full leaf probe block (keys plus k
// positions per key) for every shipped hash family, so steady-state
// sampling loops never grow it.
const ScratchHint = leafProbeBatch * (maxScratchK + 1)

// positivesInLeaf collects every element of the leaf range answering
// positively, appending to out. It runs the same batched block probe as
// sampleLeaf, carving key and position blocks from scratch (allocating a
// fresh buffer when the one passed in is too small) and returning the
// possibly grown buffer for the next leaf.
func (t *Tree) positivesInLeaf(n *node, q *bloom.Filter, ops *Ops, out, scratch []uint64) ([]uint64, []uint64) {
	if ops != nil {
		ops.LeavesScanned++
		ops.Memberships += n.hi - n.lo
	}
	fam := q.Family()
	bits := q.Bits()
	k := fam.K()
	need := leafProbeBatch * (k + 1)
	if cap(scratch) < need {
		scratch = make([]uint64, 0, need)
	}
	buf := scratch[:need]
	xs := buf[:leafProbeBatch]
	for lo := n.lo; lo < n.hi; lo += leafProbeBatch {
		m := int(min(uint64(leafProbeBatch), n.hi-lo))
		for i := 0; i < m; i++ {
			xs[i] = lo + uint64(i)
		}
		pos := hashfam.PositionsMany(fam, xs[:m], buf[leafProbeBatch:leafProbeBatch])
		for i := 0; i < m; i++ {
			if bits.TestAll(pos[i*k : (i+1)*k]) {
				out = append(out, xs[i])
			}
		}
	}
	return out, buf[:0]
}
