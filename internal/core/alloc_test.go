package core

import (
	"math/rand"
	"testing"
)

// TestSampleScratchSteadyStateZeroAllocs pins the allocation-free
// contract of the scratch-threaded descent: once the caller-owned
// scratch buffer has grown to the family's k, a draw performs zero heap
// allocations — no pooled buffers, no per-leaf scratch, nothing. This is
// the per-draw path under DB.SampleMany, so a regression here taxes
// every batched sampling workload.
func TestSampleScratchSteadyStateZeroAllocs(t *testing.T) {
	cfg := Config{Namespace: 4096, Bits: 4096, K: 3, Seed: 5, Depth: 6}
	tree, err := BuildTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := tree.NewQueryFilter()
	for i := uint64(0); i < 200; i++ {
		q.Add(i * 19 % 4096)
	}
	rng := rand.New(rand.NewSource(42))
	scratch := make([]uint64, 0, ScratchHint)
	// Warm up: grow the scratch to k and let any lazy runtime state
	// settle before counting.
	for i := 0; i < 16; i++ {
		if _, scratch, err = tree.SampleScratch(q, rng, nil, scratch); err != nil && err != ErrNoSample {
			t.Fatal(err)
		}
	}
	var ops Ops
	allocs := testing.AllocsPerRun(500, func() {
		var err error
		if _, scratch, err = tree.SampleScratch(q, rng, &ops, scratch); err != nil && err != ErrNoSample {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SampleScratch allocates %v per draw, want 0", allocs)
	}
	if ops.NodesVisited == 0 {
		t.Fatal("descent did no work")
	}
}
