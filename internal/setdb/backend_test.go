package setdb

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/membership"
)

func openBackendDB(t *testing.T, kind membership.Kind) *DB {
	t.Helper()
	opts, err := PlanOptions(0.9, 100, 10_000, 3)
	if err != nil {
		t.Fatalf("PlanOptions: %v", err)
	}
	opts.Backend = kind
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// TestCuckooBackendEndToEnd drives the cuckoo backend through the whole
// database surface: dynamic writes, removes, native probes, sampling
// through the shared tree, reconstruction, stats and persistence.
func TestCuckooBackendEndToEnd(t *testing.T) {
	db := openBackendDB(t, membership.KindCuckoo)
	ids := []uint64{2, 4, 6, 8, 100, 2000, 9999}
	if err := db.AddDynamic("c", ids...); err != nil {
		t.Fatalf("AddDynamic: %v", err)
	}
	if err := db.RemoveDynamic("c", 4, 100); err != nil {
		t.Fatalf("RemoveDynamic: %v", err)
	}
	for _, id := range []uint64{2, 6, 8, 2000, 9999} {
		ok, err := db.ContainsDynamic("c", id)
		if err != nil || !ok {
			t.Fatalf("ContainsDynamic(%d) = %v, %v; want member", id, ok, err)
		}
	}
	if ok, _ := db.ContainsDynamic("c", 4); ok {
		t.Fatal("removed id 4 still a native member")
	}

	m := db.MembershipDynamic("c")
	if m.Backend() != membership.KindCuckoo {
		t.Fatalf("backend = %q, want cuckoo", m.Backend())
	}
	if m.Live() != 5 {
		t.Fatalf("Live() = %d, want 5", m.Live())
	}

	rng := rand.New(rand.NewSource(7))
	counts := map[uint64]int{}
	for i := 0; i < 500; i++ {
		x, err := db.SampleDynamic("c", rng, nil)
		if err == core.ErrNoSample {
			continue
		}
		if err != nil {
			t.Fatalf("SampleDynamic: %v", err)
		}
		counts[x]++
	}
	if len(counts) == 0 {
		t.Fatal("no samples drawn from cuckoo-backed set")
	}

	got, err := db.ReconstructDynamic("c", core.PruneByAndBits, nil)
	if err != nil {
		t.Fatalf("ReconstructDynamic: %v", err)
	}
	want := map[uint64]bool{2: true, 6: true, 8: true, 2000: true, 9999: true}
	for id := range want {
		found := false
		for _, g := range got {
			if g == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reconstruction missing live member %d (got %v)", id, got)
		}
	}

	st := db.Stats()
	if st.Backend.Kind != string(membership.KindCuckoo) {
		t.Fatalf("Stats().Backend.Kind = %q, want cuckoo", st.Backend.Kind)
	}
	if st.Backend.Entries != 5 || st.Backend.MemoryBytes == 0 {
		t.Fatalf("Stats().Backend = %+v, want 5 entries with nonzero memory", st.Backend)
	}
	if st.Backend.LoadFactor <= 0 {
		t.Fatalf("Stats().Backend.LoadFactor = %v, want > 0 for cuckoo", st.Backend.LoadFactor)
	}

	// Persistence round-trip keeps the backend kind and the live members.
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	db2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if db2.Options().Backend != membership.KindCuckoo {
		t.Fatalf("reloaded backend = %q, want cuckoo", db2.Options().Backend)
	}
	m2 := db2.MembershipDynamic("c")
	if m2 == nil || m2.Backend() != membership.KindCuckoo || m2.Live() != 5 {
		t.Fatalf("reloaded dynamic set = %v, want cuckoo with 5 live", m2)
	}
	if ok, _ := db2.ContainsDynamic("c", 4); ok {
		t.Fatal("reloaded set resurrects removed id 4")
	}
	if err := db2.AddDynamic("c", 42); err != nil {
		t.Fatalf("AddDynamic after reload: %v", err)
	}
}

// TestLegacySnapshotLoads hand-crafts a pre-backend SETDB1 snapshot —
// old magic, no backend header field, one plain section of bare BSF1
// filter payloads, no dynamic section — and verifies it still loads,
// defaulting the backend to counting.
func TestLegacySnapshotLoads(t *testing.T) {
	const (
		namespace = uint64(10_000)
		bits      = uint64(4096)
		k         = 3
		seed      = uint64(9)
		depth     = 8
	)
	fam, err := hashfam.New(hashfam.DefaultKind, bits, k, seed)
	if err != nil {
		t.Fatalf("hashfam.New: %v", err)
	}
	ids := []uint64{5, 17, 4011}
	filter, err := bloom.NewFromElements(fam, ids).MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if string(filter[:4]) != "BSF1" {
		t.Fatalf("plain filter payload starts %q, want legacy bare BSF1", filter[:4])
	}

	var buf bytes.Buffer
	buf.WriteString("SETDB1")
	hdr := make([]byte, 0, 64)
	hdr = binary.LittleEndian.AppendUint64(hdr, namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(k))
	hdr = binary.LittleEndian.AppendUint64(hdr, seed)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(depth))
	hdr = binary.LittleEndian.AppendUint64(hdr, 100) // design set size
	hdr = append(hdr, 0)                             // not pruned
	kind := string(hashfam.DefaultKind)
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	buf.Write(hdr)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], 1)
	buf.Write(cnt[:])
	key := "old"
	var kl [2]byte
	binary.LittleEndian.PutUint16(kl[:], uint16(len(key)))
	buf.Write(kl[:])
	buf.WriteString(key)
	var fl [4]byte
	binary.LittleEndian.PutUint32(fl[:], uint32(len(filter)))
	buf.Write(fl[:])
	buf.Write(filter)

	db, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom(SETDB1): %v", err)
	}
	if db.Options().Backend != membership.KindCounting {
		t.Fatalf("legacy backend = %q, want counting default", db.Options().Backend)
	}
	for _, id := range ids {
		ok, err := db.Contains("old", id)
		if err != nil || !ok {
			t.Fatalf("Contains(old, %d) = %v, %v; want member", id, ok, err)
		}
	}
	// The loaded database is fully writable, including dynamic sets on
	// the defaulted backend.
	if err := db.Add("old", 77); err != nil {
		t.Fatalf("Add after legacy load: %v", err)
	}
	if err := db.AddDynamic("dyn", 123); err != nil {
		t.Fatalf("AddDynamic after legacy load: %v", err)
	}
	if db.MembershipDynamic("dyn").Backend() != membership.KindCounting {
		t.Fatal("dynamic set on legacy db not counting-backed")
	}
}

// TestBackendBatchAndSnapshotRoundTrip runs the group-commit path and a
// v2 persistence round-trip on both dynamic backends.
func TestBackendBatchAndSnapshotRoundTrip(t *testing.T) {
	for _, kind := range []membership.Kind{membership.KindCounting, membership.KindCuckoo} {
		t.Run(string(kind), func(t *testing.T) {
			db := openBackendDB(t, kind)
			err := db.ApplyBatch([]Write{
				{Key: "p", IDs: []uint64{1, 2, 3}},
				{Key: "d", IDs: []uint64{10, 20, 30}, Dynamic: true},
				{Key: "d", IDs: []uint64{20}, Dynamic: true, Remove: true},
			})
			if err != nil {
				t.Fatalf("ApplyBatch: %v", err)
			}
			if ok, _ := db.ContainsDynamic("d", 20); ok {
				t.Fatal("batched remove left 20 a member")
			}
			var buf bytes.Buffer
			if _, err := db.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			db2, err := ReadFrom(&buf)
			if err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if db2.Options().Backend != kind {
				t.Fatalf("reloaded backend = %q, want %q", db2.Options().Backend, kind)
			}
			for _, id := range []uint64{10, 30} {
				ok, err := db2.ContainsDynamic("d", id)
				if err != nil || !ok {
					t.Fatalf("reloaded ContainsDynamic(%d) = %v, %v", id, ok, err)
				}
			}
			if ok, _ := db2.Contains("p", 2); !ok {
				t.Fatal("reloaded plain set lost a member")
			}
		})
	}
}
