package setdb

import (
	"fmt"
	"testing"
)

// TestChunkedMapAdaptiveGrowth pins the growth schedule: a table starts
// at one chunk, doubles when average occupancy crosses chunkGrowKeys,
// never exceeds maxChunks, and every stored key remains reachable across
// rehashes.
func TestChunkedMapAdaptiveGrowth(t *testing.T) {
	var m chunkedMap[int]
	if m.numChunks() != 0 || m.len() != 0 {
		t.Fatalf("zero value: chunks=%d len=%d", m.numChunks(), m.len())
	}
	const n = 3 * chunkGrowKeys
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		m, _ = m.with(keyHash(keys[i]), keys[i], i)

		nc := m.numChunks()
		if nc&(nc-1) != 0 || nc < 1 || nc > maxChunks {
			t.Fatalf("after %d inserts: %d chunks, want a power of two in [1,%d]", i+1, nc, maxChunks)
		}
		if count := i + 1; count <= chunkGrowKeys && nc != 1 {
			t.Fatalf("grew to %d chunks at %d keys, threshold is %d", nc, count, chunkGrowKeys)
		} else if count > chunkGrowKeys && nc*chunkGrowKeys < count && nc < maxChunks {
			t.Fatalf("%d keys overflow %d chunks without growing", count, nc)
		}
	}
	if m.len() != n {
		t.Fatalf("len = %d, want %d", m.len(), n)
	}
	for i, k := range keys {
		if v, ok := m.get(keyHash(k), k); !ok || v != i {
			t.Fatalf("get(%q) = (%d,%v) after growth, want (%d,true)", k, v, ok, i)
		}
	}

	// Removal keeps the table size (never shrink) and the remaining keys.
	m2, bytes, ok := m.without(keyHash(keys[0]), keys[0])
	if !ok || bytes == 0 {
		t.Fatalf("without: ok=%v bytes=%d", ok, bytes)
	}
	if m2.numChunks() != m.numChunks() {
		t.Fatalf("table shrank %d -> %d on removal", m.numChunks(), m2.numChunks())
	}
	if _, ok := m2.get(keyHash(keys[0]), keys[0]); ok {
		t.Fatal("removed key still reachable")
	}
	if _, ok := m.get(keyHash(keys[0]), keys[0]); !ok {
		t.Fatal("removal mutated the predecessor version")
	}
}

// TestChunkBuilderDelete pins the group-commit removal primitive: deletes
// clone the touched chunk once, observe earlier writes in the batch, and
// report misses.
func TestChunkBuilderDelete(t *testing.T) {
	var m chunkedMap[int]
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key-%d", i)
		m, _ = m.with(keyHash(k), k, i)
	}
	b := newChunkBuilder(m)
	if b.delete(keyHash("nope"), "nope") {
		t.Fatal("delete of absent key reported true")
	}
	b.set(keyHash("fresh"), "fresh", 99)
	if !b.delete(keyHash("fresh"), "fresh") {
		t.Fatal("delete did not observe earlier write in the batch")
	}
	if !b.delete(keyHash("key-3"), "key-3") {
		t.Fatal("delete of stored key reported false")
	}
	out := b.freeze()
	if out.len() != 9 {
		t.Fatalf("len = %d, want 9", out.len())
	}
	if _, ok := out.get(keyHash("key-3"), "key-3"); ok {
		t.Fatal("deleted key still reachable")
	}
	if _, ok := m.get(keyHash("key-3"), "key-3"); !ok {
		t.Fatal("builder delete mutated the source version")
	}
}

// TestAdaptiveChunkBytesSmallShard pins the point of adaptive layout: a
// write into a lightly loaded shard must copy less than the fixed-256
// design's table clone alone (2 KB), because the table has not fanned
// out yet.
func TestAdaptiveChunkBytesSmallShard(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Collect keys that all land in shard 0, holding it at 16 keys.
	var keys []string
	for i := 0; len(keys) < 16; i++ {
		k := fmt.Sprintf("skey-%d", i)
		if ShardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		if err := db.Add(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats()
	const writes = 8
	for i := 0; i < writes; i++ {
		if err := db.Add(keys[i], uint64(2+i)); err != nil {
			t.Fatal(err)
		}
	}
	after := db.Stats()
	perWrite := (after.StateBytesCopied - before.StateBytesCopied) / writes
	if fixed := tableCopyBytes(maxChunks); perWrite >= fixed {
		t.Fatalf("write into a 16-key shard copies %d B, want < the fixed-256 table clone alone (%d B)", perWrite, fixed)
	}
	if st := after.Shards[0]; st.Chunks >= 2*maxChunks {
		t.Fatalf("small shard reports %d chunks", st.Chunks)
	}
}
