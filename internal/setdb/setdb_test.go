package setdb

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

func testOptions(t *testing.T, pruned bool) Options {
	t.Helper()
	opts, err := PlanOptions(0.9, 500, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts.Pruned = pruned
	opts.Seed = 7
	return opts
}

func TestPlanOptions(t *testing.T) {
	opts, err := PlanOptions(0.9, 1000, 1_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Bits == 0 || opts.TreeDepth == 0 {
		t.Fatalf("degenerate options: %+v", opts)
	}
	if _, err := PlanOptions(0, 1000, 100, 3); err == nil {
		t.Fatal("bad accuracy accepted")
	}
}

func TestOpenDerivesDepth(t *testing.T) {
	opts := testOptions(t, false)
	opts.TreeDepth = 0
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if db.Options().TreeDepth == 0 {
		t.Fatal("depth not derived")
	}
	if db.Tree() == nil {
		t.Fatal("no tree")
	}
}

func TestAddSampleReconstruct(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	members := []uint64{5, 99_999, 500_000, 999_999}
	if err := db.Add("alpha", members...); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	for _, id := range members {
		ok, err := db.Contains("alpha", id)
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v", id, ok, err)
		}
	}
	x, err := db.Sample("alpha", rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Contains("alpha", x); !ok {
		t.Fatalf("sample %d not a member", x)
	}
	got, err := db.Reconstruct("alpha", core.PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, id := range got {
		found[id] = true
	}
	for _, id := range members {
		if !found[id] {
			t.Fatalf("reconstruction missing %d", id)
		}
	}
}

func TestMissingKeyErrors(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := db.Sample("nope", rng, nil); err == nil {
		t.Fatal("missing key accepted by Sample")
	}
	if _, err := db.SampleN("nope", 2, true, rng, nil); err == nil {
		t.Fatal("missing key accepted by SampleN")
	}
	if _, err := db.Reconstruct("nope", core.PruneByEstimate, nil); err == nil {
		t.Fatal("missing key accepted by Reconstruct")
	}
	if _, err := db.Contains("nope", 1); err == nil {
		t.Fatal("missing key accepted by Contains")
	}
	if _, err := db.UniformSampler("nope"); err == nil {
		t.Fatal("missing key accepted by UniformSampler")
	}
	if _, err := db.IntersectionEstimate("nope", "nope2"); err == nil {
		t.Fatal("missing keys accepted by IntersectionEstimate")
	}
	if db.Filter("nope") != nil {
		t.Fatal("missing key returned a filter")
	}
}

func TestAddValidatesNamespace(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", 1_000_000); err == nil {
		t.Fatal("out-of-namespace id accepted")
	}
}

func TestDeleteAndKeys(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("b", 1)
	db.Add("a", 2)
	keys := db.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if !db.Delete("a") {
		t.Fatal("Delete existing returned false")
	}
	if db.Delete("a") {
		t.Fatal("Delete missing returned true")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestPrunedGrowsTree(t *testing.T) {
	db, err := Open(testOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	before := db.Tree().Nodes()
	if err := db.Add("x", 123, 999_000); err != nil {
		t.Fatal(err)
	}
	if db.Tree().Nodes() <= before {
		t.Fatal("pruned tree did not grow")
	}
	rng := rand.New(rand.NewSource(3))
	x, err := db.Sample("x", rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x != 123 && x != 999_000 {
		// Could be a false positive within occupied ranges; must at least
		// answer positively.
		if ok, _ := db.Contains("x", x); !ok {
			t.Fatalf("sample %d not a member", x)
		}
	}
}

func TestIntersectionEstimate(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	var shared, aOnly, bOnly []uint64
	for i := uint64(0); i < 300; i++ {
		shared = append(shared, i*3)
		aOnly = append(aOnly, 500_000+i*3)
		bOnly = append(bOnly, 700_000+i*3)
	}
	db.Add("a", append(shared, aOnly...)...)
	db.Add("b", append(shared, bOnly...)...)
	est, err := db.IntersectionEstimate("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if est < 150 || est > 450 {
		t.Fatalf("estimate %.1f, want ~300", est)
	}
}

func TestUniformSamplerThroughDB(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("s", 10, 20, 30, 40)
	s, err := db.UniformSampler("s")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x, err := s.Sample(rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := db.Contains("s", x); !ok {
		t.Fatalf("uniform sample %d not a member", x)
	}
}

func TestWriteToReadFromRoundTrip(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("alpha", 1, 2, 3)
	db.Add("beta", 100_000, 200_000)

	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	for _, id := range []uint64{1, 2, 3} {
		if ok, _ := got.Contains("alpha", id); !ok {
			t.Fatalf("loaded db missing alpha/%d", id)
		}
	}
	if !got.Filter("beta").Equal(db.Filter("beta")) {
		t.Fatal("beta filter differs after round trip")
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := got.Sample("beta", rng, nil); err != nil {
		t.Fatalf("loaded db cannot sample: %v", err)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a db"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPrunedSaveLoad(t *testing.T) {
	db, err := Open(testOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	occupied := []uint64{5, 10, 500_000, 900_001}
	db.Add("s1", 5, 10)
	db.Add("s2", 500_000, 900_001)

	path := filepath.Join(t.TempDir(), "sets.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	// Loading a pruned database without ids must fail loudly.
	if _, err := Load(path, nil); err == nil {
		t.Fatal("pruned load without ids accepted")
	}
	got, err := Load(path, occupied)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x, err := got.Sample("s1", rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := got.Contains("s1", x); !ok {
		t.Fatalf("sample %d not a member", x)
	}
	recon, err := got.Reconstruct("s2", core.PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, id := range recon {
		found[id] = true
	}
	if !found[500_000] || !found[900_001] {
		t.Fatalf("pruned reconstruction missing members: %v", recon)
	}
}

func TestSaveLoadFullDB(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("k", 42)
	path := filepath.Join(t.TempDir(), "full.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := got.Contains("k", 42); !ok {
		t.Fatal("loaded db missing element")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		db.Add("set", uint64(i*1000))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					db.Sample("set", rng, nil)
				case 1:
					db.Contains("set", uint64(i))
				case 2:
					db.Add("set", uint64(g*10000+i))
				case 3:
					db.Keys()
				}
			}
		}(g)
	}
	wg.Wait()
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
}
