package setdb

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// smallOptions is a cheap fixture for state-machinery tests that don't
// need a realistic sampling profile.
func smallOptions() Options {
	return Options{Namespace: 4096, Bits: 512, K: 3, Seed: 11, TreeDepth: 6}
}

func TestApplyBatchGroupCommit(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	writes := []Write{
		{Key: "a", IDs: []uint64{1, 2, 3}},
		{Key: "b", IDs: []uint64{4}},
		{Key: "dyn", IDs: []uint64{5, 6}, Dynamic: true},
		{Key: "a", IDs: []uint64{7}}, // same-key writes compose in order
	}
	if err := db.ApplyBatch(writes); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 2, 3, 7} {
		ok, err := db.Contains("a", id)
		if err != nil || !ok {
			t.Fatalf("a should contain %d (ok=%v err=%v)", id, ok, err)
		}
	}
	if ok, err := db.Contains("b", 4); err != nil || !ok {
		t.Fatalf("b should contain 4 (ok=%v err=%v)", ok, err)
	}
	if ok, err := db.ContainsDynamic("dyn", 5); err != nil || !ok {
		t.Fatalf("dyn should contain 5 (ok=%v err=%v)", ok, err)
	}
	if got := db.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 plain sets", got)
	}
	st := db.Stats()
	if st.StateWrites != 4 {
		t.Fatalf("StateWrites = %d, want 4", st.StateWrites)
	}
	// "a" and "b"/"dyn" may or may not share shards, but group commit
	// must publish at most one snapshot per touched shard — strictly
	// fewer publishes than writes.
	if st.StatePublishes >= st.StateWrites {
		t.Fatalf("StatePublishes = %d, want < StateWrites = %d (group commit)", st.StatePublishes, st.StateWrites)
	}
	if st.StateBytesCopied == 0 || st.MeanBytesCopiedPerWrite() <= 0 {
		t.Fatalf("write-amplification accounting missing: %+v", st)
	}
}

func TestApplyBatchAllOrNothing(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("taken", 1); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	err = db.ApplyBatch([]Write{
		{Key: "fresh", IDs: []uint64{2}},
		{Key: "taken", IDs: []uint64{3}}, // plain write onto a dynamic key
	})
	if !errors.Is(err, ErrKeyClash) {
		t.Fatalf("err = %v, want ErrKeyClash", err)
	}
	if _, cerr := db.Contains("fresh", 2); !errors.Is(cerr, ErrNoSet) {
		t.Fatalf("aborted batch leaked %q: %v", "fresh", cerr)
	}
	after := db.Stats()
	if after.StateWrites != before.StateWrites || after.StatePublishes != before.StatePublishes {
		t.Fatalf("aborted batch moved write counters: %+v -> %+v", before, after)
	}

	// Same for validation failures: one out-of-range id rejects the
	// whole batch before anything happens.
	err = db.ApplyBatch([]Write{
		{Key: "fresh", IDs: []uint64{2}},
		{Key: "fresh2", IDs: []uint64{1 << 40}},
	})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, cerr := db.Contains("fresh", 2); !errors.Is(cerr, ErrNoSet) {
		t.Fatalf("invalid batch leaked %q: %v", "fresh", cerr)
	}
}

func TestApplyBatchEmptyAndAddMany(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AddMany(Write{Key: "x", IDs: []uint64{9}}); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.Contains("x", 9); err != nil || !ok {
		t.Fatalf("x should contain 9 (ok=%v err=%v)", ok, err)
	}
}

func TestApplyBatchGrowsPrunedTree(t *testing.T) {
	opts := smallOptions()
	opts.Pruned = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyBatch([]Write{
		{Key: "a", IDs: []uint64{10, 20, 30}},
		{Key: "d", IDs: []uint64{40}, Dynamic: true},
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	got := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		x, err := db.Sample("a", rng, nil)
		if err != nil {
			continue
		}
		got[x] = true
	}
	for _, id := range []uint64{10, 20, 30} {
		if !got[id] {
			t.Fatalf("id %d never sampled after batch insert into pruned tree (got %v)", id, got)
		}
	}
	if x, err := db.SampleDynamic("d", rng, nil); err != nil || x != 40 {
		t.Fatalf("SampleDynamic = %d, %v; want 40", x, err)
	}
}

func TestDeleteMissCopiesNothing(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("present", 1); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	// A delete-miss in the same (and in a different) shard must neither
	// publish nor copy anything.
	if db.Delete("absent") {
		t.Fatal("Delete of absent key returned true")
	}
	after := db.Stats()
	if after.StateBytesCopied != before.StateBytesCopied || after.StatePublishes != before.StatePublishes {
		t.Fatalf("delete-miss copied state: %+v -> %+v", before, after)
	}
	if !db.Delete("present") {
		t.Fatal("Delete of present key returned false")
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d after delete", db.Len())
	}
}

// TestWriteAmplificationBounded is the unit-level form of the writeamp
// acceptance criterion: at high single-shard occupancy, one write must
// copy several times less state than the old whole-shard flat map clone
// would have.
func TestWriteAmplificationBounded(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 8192
	var keys []string
	var flatBytes uint64
	batch := make([]Write, 0, 1024)
	for i := 0; len(keys) < nKeys; i++ {
		k := "k" + strconv.Itoa(i)
		if shardIndex(k) != 0 {
			continue
		}
		keys = append(keys, k)
		flatBytes += EntryCopyBytes(len(k))
		batch = append(batch, Write{Key: k, IDs: []uint64{uint64(i) % 4096}})
		if len(batch) == cap(batch) {
			if err := db.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := db.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	const writes = 64
	before := db.Stats()
	for i := 0; i < writes; i++ {
		if err := db.Add(keys[i*97%len(keys)], uint64(i)%4096); err != nil {
			t.Fatal(err)
		}
	}
	after := db.Stats()
	perWrite := float64(after.StateBytesCopied-before.StateBytesCopied) / writes
	if ratio := float64(flatBytes) / perWrite; ratio < 5 {
		t.Fatalf("chunked write copies %.0f B at %d keys/shard — only %.1fx below the flat clone's %d B, want >= 5x",
			perWrite, nKeys, ratio, flatBytes)
	}
}

func TestStatsChunkOccupancy(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := db.Add(fmt.Sprintf("key-%d", i), uint64(i)%4096); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.MaxChunksPerShard != maxChunks {
		t.Fatalf("MaxChunksPerShard = %d, want %d", st.MaxChunksPerShard, maxChunks)
	}
	occupied, maxChunk, total := 0, 0, 0
	for _, ss := range st.Shards {
		occupied += ss.OccupiedChunks
		total += ss.Chunks
		if ss.MaxChunkKeys > maxChunk {
			maxChunk = ss.MaxChunkKeys
		}
		if ss.OccupiedChunks > ss.Chunks {
			t.Fatalf("shard reports %d occupied chunks of %d allocated", ss.OccupiedChunks, ss.Chunks)
		}
		if ss.Chunks > 2*maxChunks {
			t.Fatalf("shard reports %d chunks, cap is %d per kind", ss.Chunks, maxChunks)
		}
	}
	if occupied == 0 || maxChunk == 0 {
		t.Fatalf("chunk occupancy not reported: occupied=%d max=%d", occupied, maxChunk)
	}
	if total != st.TotalChunks {
		t.Fatalf("TotalChunks = %d, shard sum = %d", st.TotalChunks, total)
	}
	if st.StateWrites != 512 || st.StatePublishes != 512 {
		t.Fatalf("single-write counters off: writes=%d publishes=%d", st.StateWrites, st.StatePublishes)
	}
}

// TestConcurrentApplyBatch exercises group commits racing single writes
// and lock-free readers across overlapping shards (run under -race).
func TestConcurrentApplyBatch(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := db.Add("seed-"+strconv.Itoa(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				writes := []Write{
					{Key: fmt.Sprintf("b%d-%d", w, i), IDs: []uint64{uint64(i)}},
					{Key: "seed-" + strconv.Itoa(i%64), IDs: []uint64{uint64(w*100 + i)}},
					{Key: fmt.Sprintf("dyn%d", w), IDs: []uint64{uint64(i)}, Dynamic: true},
				}
				if err := db.ApplyBatch(writes); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 400; i++ {
			key := "seed-" + strconv.Itoa(rng.Intn(64))
			if _, err := db.Sample(key, rng, nil); err != nil {
				continue // false-positive descents are fine; missing keys are not
			}
		}
	}()
	wg.Wait()
	st := db.Stats()
	if st.StatePublishes >= st.StateWrites {
		t.Fatalf("batches did not coalesce publishes: writes=%d publishes=%d", st.StateWrites, st.StatePublishes)
	}
	for w := 0; w < 4; w++ {
		if ok, err := db.ContainsDynamic(fmt.Sprintf("dyn%d", w), 39); err != nil || !ok {
			t.Fatalf("dyn%d lost writes (ok=%v err=%v)", w, ok, err)
		}
	}
}
