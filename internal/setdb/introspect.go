package setdb

// Introspection: a point-in-time view of the database's internal shape —
// shard occupancy, tree growth epochs, memory — for operational surfaces
// (the bstserved /v1/stats endpoint, debugging, capacity planning). All
// of it reads the same lock-free snapshots the query path uses, so
// calling Stats on a hot database disturbs nothing.

// ShardStats describes one key shard.
type ShardStats struct {
	// Sets and Dynamic are the number of plain and dynamic keys stored in
	// the shard's current snapshot.
	Sets    int
	Dynamic int
}

// DBStats is a consistent-enough introspection snapshot of the database:
// each shard is read atomically, but shards are read one after another,
// so counts can straddle concurrent writes (fine for monitoring).
type DBStats struct {
	// Sets and DynamicSets are the database-wide key counts.
	Sets        int
	DynamicSets int
	// Shards holds per-shard occupancy, indexed by shard number.
	Shards []ShardStats
	// Generations is the number of key lifetimes ever created (it only
	// grows; Delete does not reclaim it).
	Generations uint64
	// TreeNodes, TreeDepth, TreePruned and TreeMemoryBytes describe the
	// shared BloomSampleTree.
	TreeNodes       uint64
	TreeDepth       int
	TreePruned      bool
	TreeMemoryBytes uint64
	// GrowthEpoch is the total number of completed growth epochs across
	// all subtrees of a pruned tree (0 for a full tree); SubtreeEpochs is
	// the per-stripe breakdown.
	GrowthEpoch   uint64
	SubtreeEpochs []uint64
}

// Stats returns an introspection snapshot. It is lock-free and safe to
// call at any frequency while readers and writers run.
func (db *DB) Stats() DBStats {
	st := DBStats{
		Shards:          make([]ShardStats, numShards),
		Generations:     db.gen.Load(),
		TreeNodes:       db.tree.Nodes(),
		TreeDepth:       db.tree.Depth(),
		TreePruned:      db.tree.Pruned(),
		TreeMemoryBytes: db.tree.MemoryBytes(),
		GrowthEpoch:     db.tree.GrowthEpoch(),
		SubtreeEpochs:   db.tree.SubtreeEpochs(),
	}
	for i := range db.shards {
		snap := db.shards[i].load()
		st.Shards[i] = ShardStats{Sets: len(snap.sets), Dynamic: len(snap.dynamic)}
		st.Sets += len(snap.sets)
		st.DynamicSets += len(snap.dynamic)
	}
	return st
}
