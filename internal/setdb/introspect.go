package setdb

// Introspection: a point-in-time view of the database's internal shape —
// shard occupancy, chunk occupancy, write amplification, tree growth
// epochs, memory — for operational surfaces (the bstserved /v1/stats
// endpoint, debugging, capacity planning). All of it reads the same
// lock-free snapshots the query path uses, so calling Stats on a hot
// database disturbs nothing.

// ShardStats describes one key shard.
type ShardStats struct {
	// Sets and Dynamic are the number of plain and dynamic keys stored in
	// the shard's current snapshot.
	Sets    int
	Dynamic int
	// OccupiedChunks is the number of the shard's chunks (out of
	// ChunksPerShard, counting plain and dynamic chunk pairs together)
	// holding at least one key; MaxChunkKeys is the largest combined key
	// count of any single chunk pair — the worst-case copy unit of one
	// write into this shard.
	OccupiedChunks int
	MaxChunkKeys   int
}

// DBStats is a consistent-enough introspection snapshot of the database:
// each shard is read atomically, but shards are read one after another,
// so counts can straddle concurrent writes (fine for monitoring).
type DBStats struct {
	// Sets and DynamicSets are the database-wide key counts.
	Sets        int
	DynamicSets int
	// Shards holds per-shard occupancy, indexed by shard number.
	Shards []ShardStats
	// ChunksPerShard is the fixed chunk count each shard's persistent key
	// map is split into — the denominator of the copy-on-write bound (a
	// write copies ~keys/ChunksPerShard entries, not the whole shard).
	ChunksPerShard int
	// StateWrites counts logical write operations applied (Add, Delete,
	// AddDynamic, RemoveDynamic, and each Write of a batch).
	// StatePublishes counts snapshot publishes; group commit makes it
	// smaller than StateWrites (one publish per touched shard per batch).
	// StateBytesCopied is the estimated total bytes copied building
	// successor snapshots (chunk tables plus cloned chunk entries; filter
	// clones are not included — they are payload, not amplification).
	// StateBytesCopied/StateWrites is the mean write amplification.
	StateWrites      uint64
	StatePublishes   uint64
	StateBytesCopied uint64
	// Generations is the number of key lifetimes ever created (it only
	// grows; Delete does not reclaim it).
	Generations uint64
	// TreeNodes, TreeDepth, TreePruned and TreeMemoryBytes describe the
	// shared BloomSampleTree.
	TreeNodes       uint64
	TreeDepth       int
	TreePruned      bool
	TreeMemoryBytes uint64
	// GrowthEpoch is the total number of completed growth epochs across
	// all subtrees of a pruned tree (0 for a full tree); SubtreeEpochs is
	// the per-stripe breakdown.
	GrowthEpoch   uint64
	SubtreeEpochs []uint64
}

// MeanBytesCopiedPerWrite returns StateBytesCopied/StateWrites (0 before
// the first write) — the headline write-amplification figure.
func (st DBStats) MeanBytesCopiedPerWrite() float64 {
	if st.StateWrites == 0 {
		return 0
	}
	return float64(st.StateBytesCopied) / float64(st.StateWrites)
}

// Stats returns an introspection snapshot. It is lock-free and safe to
// call at any frequency while readers and writers run.
func (db *DB) Stats() DBStats {
	st := DBStats{
		Shards:           make([]ShardStats, numShards),
		ChunksPerShard:   numChunks,
		StateWrites:      db.stateWrites.Load(),
		StatePublishes:   db.statePublishes.Load(),
		StateBytesCopied: db.stateBytes.Load(),
		Generations:      db.gen.Load(),
		TreeNodes:        db.tree.Nodes(),
		TreeDepth:        db.tree.Depth(),
		TreePruned:       db.tree.Pruned(),
		TreeMemoryBytes:  db.tree.MemoryBytes(),
		GrowthEpoch:      db.tree.GrowthEpoch(),
		SubtreeEpochs:    db.tree.SubtreeEpochs(),
	}
	for i := range db.shards {
		snap := db.shards[i].load()
		ss := ShardStats{Sets: snap.sets.len(), Dynamic: snap.dynamic.len()}
		for c := 0; c < numChunks; c++ {
			keys := snap.sets.chunkLen(c) + snap.dynamic.chunkLen(c)
			if keys > 0 {
				ss.OccupiedChunks++
			}
			if keys > ss.MaxChunkKeys {
				ss.MaxChunkKeys = keys
			}
		}
		st.Shards[i] = ss
		st.Sets += ss.Sets
		st.DynamicSets += ss.Dynamic
	}
	return st
}
