package setdb

import "repro/internal/membership"

// Introspection: a point-in-time view of the database's internal shape —
// shard occupancy, chunk occupancy, write amplification, tree growth
// epochs, memory — for operational surfaces (the bstserved /v1/stats
// endpoint, debugging, capacity planning). All of it reads the same
// lock-free snapshots the query path uses, so calling Stats on a hot
// database disturbs nothing.

// ShardStats describes one key shard.
type ShardStats struct {
	// Sets and Dynamic are the number of plain and dynamic keys stored in
	// the shard's current snapshot.
	Sets    int
	Dynamic int
	// Chunks is the number of chunks currently allocated across the
	// shard's plain and dynamic tables combined. Each table grows
	// independently from 1 up to MaxChunksPerShard with occupancy, so a
	// lightly loaded shard reports 2 while a saturated one reports 512.
	Chunks int
	// OccupiedChunks is the number of those chunks holding at least one
	// key; MaxChunkKeys is the largest key count of any single chunk —
	// the worst-case copy unit of one write into this shard.
	OccupiedChunks int
	MaxChunkKeys   int
}

// DBStats is a consistent-enough introspection snapshot of the database:
// each shard is read atomically, but shards are read one after another,
// so counts can straddle concurrent writes (fine for monitoring).
type DBStats struct {
	// Sets and DynamicSets are the database-wide key counts.
	Sets        int
	DynamicSets int
	// Shards holds per-shard occupancy, indexed by shard number.
	Shards []ShardStats
	// MaxChunksPerShard is the cap each shard's persistent key maps grow
	// to — the asymptotic denominator of the copy-on-write bound (a
	// write into a saturated shard copies ~keys/MaxChunksPerShard
	// entries, not the whole shard). TotalChunks is the number of chunks
	// currently allocated across all shards and kinds; an untouched
	// shard map contributes 0, and the total approaches
	// 2·numShards·MaxChunksPerShard as shards saturate.
	MaxChunksPerShard int
	TotalChunks       int
	// StateWrites counts logical write operations applied (Add, Delete,
	// AddDynamic, RemoveDynamic, and each Write of a batch).
	// StatePublishes counts snapshot publishes; group commit makes it
	// smaller than StateWrites (one publish per touched shard per batch).
	// StateBytesCopied is the estimated total bytes copied building
	// successor snapshots (chunk tables plus cloned chunk entries; filter
	// clones are not included — they are payload, not amplification).
	// StateBytesCopied/StateWrites is the mean write amplification.
	StateWrites      uint64
	StatePublishes   uint64
	StateBytesCopied uint64
	// Generations is the number of key lifetimes ever created (it only
	// grows; Delete does not reclaim it).
	Generations uint64
	// TreeNodes, TreeDepth, TreePruned and TreeMemoryBytes describe the
	// shared BloomSampleTree.
	TreeNodes       uint64
	TreeDepth       int
	TreePruned      bool
	TreeMemoryBytes uint64
	// GrowthEpoch is the total number of completed growth epochs across
	// all subtrees of a pruned tree (0 for a full tree); SubtreeEpochs is
	// the per-stripe breakdown.
	GrowthEpoch   uint64
	SubtreeEpochs []uint64
	// Backend describes the configured dynamic-set membership backend and
	// its realized aggregates.
	Backend BackendStats
}

// BackendStats is the per-DB membership-backend descriptor surfaced by
// Stats() and /v1/stats.
type BackendStats struct {
	// Kind is the configured dynamic-set backend (plain sets are always
	// "bloom").
	Kind string `json:"kind"`
	// Entries is the total number of live elements across dynamic sets;
	// MemoryBytes their total resident bytes (tables plus query views).
	Entries     uint64 `json:"entries"`
	MemoryBytes uint64 `json:"memory_bytes"`
	// BitsPerEntry is 8·MemoryBytes/Entries (0 with no entries) — the
	// figure the backend bench sweeps compare.
	BitsPerEntry float64 `json:"bits_per_entry"`
	// LoadFactor is the mean fingerprint-slot occupancy for backends
	// that have one (cuckoo); 0 otherwise.
	LoadFactor float64 `json:"load_factor,omitempty"`
}

// MeanBytesCopiedPerWrite returns StateBytesCopied/StateWrites (0 before
// the first write) — the headline write-amplification figure.
func (st DBStats) MeanBytesCopiedPerWrite() float64 {
	if st.StateWrites == 0 {
		return 0
	}
	return float64(st.StateBytesCopied) / float64(st.StateWrites)
}

// Stats returns an introspection snapshot. It is lock-free and safe to
// call at any frequency while readers and writers run.
func (db *DB) Stats() DBStats {
	st := DBStats{
		Shards:            make([]ShardStats, numShards),
		MaxChunksPerShard: maxChunks,
		StateWrites:       db.stateWrites.Load(),
		StatePublishes:    db.statePublishes.Load(),
		StateBytesCopied:  db.stateBytes.Load(),
		Generations:       db.gen.Load(),
		TreeNodes:         db.tree.Nodes(),
		TreeDepth:         db.tree.Depth(),
		TreePruned:        db.tree.Pruned(),
		TreeMemoryBytes:   db.tree.MemoryBytes(),
		GrowthEpoch:       db.tree.GrowthEpoch(),
		SubtreeEpochs:     db.tree.SubtreeEpochs(),
	}
	st.Backend.Kind = string(db.opts.Backend)
	var lfSum float64
	var lfN int
	for i := range db.shards {
		snap := db.shards[i].load()
		ss := ShardStats{
			Sets:    snap.sets.len(),
			Dynamic: snap.dynamic.len(),
			Chunks:  snap.sets.numChunks() + snap.dynamic.numChunks(),
		}
		snap.dynamic.rangeAll(func(_ string, m membership.DynamicMembership) {
			st.Backend.Entries += m.Live()
			st.Backend.MemoryBytes += m.SizeBytes()
			if lf, ok := m.(membership.LoadFactorer); ok {
				lfSum += lf.LoadFactor()
				lfN++
			}
		})
		for _, chunk := range snap.sets.chunks {
			if n := len(chunk); n > 0 {
				ss.OccupiedChunks++
				if n > ss.MaxChunkKeys {
					ss.MaxChunkKeys = n
				}
			}
		}
		for _, chunk := range snap.dynamic.chunks {
			if n := len(chunk); n > 0 {
				ss.OccupiedChunks++
				if n > ss.MaxChunkKeys {
					ss.MaxChunkKeys = n
				}
			}
		}
		st.Shards[i] = ss
		st.TotalChunks += ss.Chunks
		st.Sets += ss.Sets
		st.DynamicSets += ss.Dynamic
	}
	if st.Backend.Entries > 0 {
		st.Backend.BitsPerEntry = 8 * float64(st.Backend.MemoryBytes) / float64(st.Backend.Entries)
	}
	if lfN > 0 {
		st.Backend.LoadFactor = lfSum / float64(lfN)
	}
	return st
}
