package setdb

// Durability primitives: a version-pinned SnapshotView over the shard
// states, and the self-delimiting "bundle" container the durability
// layer (internal/wal) and the snapshot/restore API ship around.
//
// A plain SETDB2 file is not enough to restart a pruned database — the
// tree occupancy lives outside the filters — so the bundle carries the
// database followed by its serialized BloomSampleTree:
//
//	magic  [7]byte "BSTBND1"
//	db     SETDB2 stream (WriteTo; self-delimiting)
//	tree   uint8 presence flag; when 1, a core.Tree stream ("BST1")
//
// Non-pruned databases rebuild their full tree deterministically from
// the header options, so they carry presence 0. ReadBundle also accepts
// a bare SETDB1/SETDB2 stream (non-pruned only), so a pre-durability
// snapshot file restores directly.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/membership"
)

const bundleMagic = "BSTBND1"

// SnapshotView is a cross-shard-consistent, immutable view of the
// database's sets, pinned at construction. Serializing it never blocks
// writers or readers: the pinned shard states are copy-on-write
// snapshots, and on a pruned database the shared tree is monotone — it
// only ever grows — so any tree state serialized at or after the pin
// covers every id reachable through the pinned filters.
type SnapshotView struct {
	db     *DB
	states [numShards]*shardState
}

// SnapshotView pins a consistent view of the current sets. The pin
// itself briefly holds every shard's writer mutex (pointer loads only);
// everything after — including WriteTo — runs lock-free.
func (db *DB) SnapshotView() *SnapshotView {
	return &SnapshotView{db: db, states: db.snapshotAll()}
}

// WriteTo serializes the pinned view in the SETDB2 format. It implements
// io.WriterTo.
func (v *SnapshotView) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return cw.n, err
	}
	if err := v.writeHeader(bw); err != nil {
		return cw.n, err
	}

	var keys []string
	for i := range v.states {
		v.states[i].sets.rangeAll(func(k string, _ setEntry) {
			keys = append(keys, k)
		})
	}
	sort.Strings(keys)
	lookupSet := func(k string) (membership.Membership, error) {
		h := keyHash(k)
		e, _ := v.states[h%numShards].sets.get(h, k)
		return e.f, nil
	}
	if err := writeSection(bw, keys, lookupSet); err != nil {
		return cw.n, err
	}

	keys = keys[:0]
	for i := range v.states {
		v.states[i].dynamic.rangeAll(func(k string, _ membership.DynamicMembership) {
			keys = append(keys, k)
		})
	}
	sort.Strings(keys)
	lookupDynamic := func(k string) (membership.Membership, error) {
		h := keyHash(k)
		c, _ := v.states[h%numShards].dynamic.get(h, k)
		return c, nil
	}
	if err := writeSection(bw, keys, lookupDynamic); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeHeader emits the SETDB2 header fields after the magic.
func (v *SnapshotView) writeHeader(bw *bufio.Writer) error {
	opts := v.db.opts
	kind := string(opts.HashKind)
	hdr := make([]byte, 0, 64)
	hdr = binary.LittleEndian.AppendUint64(hdr, opts.Namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, opts.Bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(opts.K))
	hdr = binary.LittleEndian.AppendUint64(hdr, opts.Seed)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(opts.TreeDepth))
	hdr = binary.LittleEndian.AppendUint64(hdr, opts.DesignSetSize)
	if opts.Pruned {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	backend := string(opts.Backend)
	hdr = append(hdr, byte(len(backend)))
	hdr = append(hdr, backend...)
	_, err := bw.Write(hdr)
	return err
}

// WriteBundleTo serializes the pinned view as a restore bundle: the
// SETDB2 stream plus, for pruned databases, the serialized tree. The
// tree bytes are produced after the view pin, which is exactly the safe
// order — the monotone tree can only cover more than the pinned filters
// need, never less.
func (v *SnapshotView) WriteBundleTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, bundleMagic); err != nil {
		return cw.n, err
	}
	if _, err := v.WriteTo(cw); err != nil {
		return cw.n, err
	}
	if !v.db.opts.Pruned {
		_, err := cw.Write([]byte{0})
		return cw.n, err
	}
	if _, err := cw.Write([]byte{1}); err != nil {
		return cw.n, err
	}
	if _, err := v.db.tree.WriteTo(cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadBundle deserializes a bundle written by WriteBundleTo, or a bare
// SETDB1/SETDB2 stream for non-pruned databases (a bare pruned stream
// has no tree and is rejected — use ReadFromWithIDs for those).
func ReadBundle(r io.Reader) (*DB, error) {
	// One shared buffered reader for all three sections. parse and
	// core.ReadTree wrap their reader in bufio.NewReader, which returns
	// the argument unchanged when it is already a *bufio.Reader of at
	// least default size — so no reader ever buffers ahead past its
	// section.
	br := bufio.NewReader(r)
	head, err := br.Peek(len(bundleMagic))
	if err != nil {
		return nil, fmt.Errorf("setdb: reading bundle magic: %w", err)
	}
	if string(head) != bundleMagic {
		// Bare database stream (parse validates its own magic).
		db, err := parse(br)
		if err != nil {
			return nil, err
		}
		if db.opts.Pruned {
			return nil, fmt.Errorf("setdb: bare pruned snapshot has no tree; restore needs a bundle (or ReadFromWithIDs)")
		}
		return db, nil
	}
	if _, err := br.Discard(len(bundleMagic)); err != nil {
		return nil, err
	}
	db, err := parse(br)
	if err != nil {
		return nil, err
	}
	presence, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("setdb: reading bundle tree flag: %w", err)
	}
	switch presence {
	case 0:
		if db.opts.Pruned {
			return nil, fmt.Errorf("setdb: bundle of a pruned database is missing its tree")
		}
		return db, nil
	case 1:
		tree, err := core.ReadTree(br)
		if err != nil {
			return nil, fmt.Errorf("setdb: bundle tree: %w", err)
		}
		if err := db.adoptTree(tree); err != nil {
			return nil, err
		}
		return db, nil
	default:
		return nil, fmt.Errorf("setdb: bad bundle tree flag %d", presence)
	}
}

// adoptTree swaps in a deserialized tree after checking it was built
// with the database's exact profile — a tree from a different profile
// would silently missample every set.
func (db *DB) adoptTree(tree *core.Tree) error {
	cfg := tree.Config()
	o := db.opts
	if cfg.Namespace != o.Namespace || cfg.Bits != o.Bits || cfg.K != o.K ||
		cfg.HashKind != o.HashKind || cfg.Seed != o.Seed || cfg.Depth != o.TreeDepth {
		return fmt.Errorf("setdb: bundle tree profile %+v does not match database options", cfg)
	}
	if o.Pruned != tree.Pruned() {
		return fmt.Errorf("setdb: bundle tree pruned=%v, database pruned=%v", tree.Pruned(), o.Pruned)
	}
	db.tree = tree
	return nil
}
