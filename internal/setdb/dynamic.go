package setdb

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bloom"
	"repro/internal/core"
)

// Dynamic sets: the paper's motivating applications track communities
// whose membership changes over time (§1). A plain Bloom filter cannot
// forget a member, so DB also supports counting-filter-backed sets: ids
// can be removed, and queries run against a point-in-time snapshot
// projected onto a plain filter compatible with the shared tree.
//
// Dynamic sets live in a separate key space from plain sets (a key is
// either plain or dynamic; mixing is an error) and cost 8× the filter
// memory.

// AddDynamic inserts ids into the dynamic (deletable) set under key,
// creating it on first use.
func (db *DB) AddDynamic(key string, ids ...uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, clash := db.sets[key]; clash {
		return fmt.Errorf("setdb: %q already exists as a plain set", key)
	}
	for _, id := range ids {
		if id >= db.opts.Namespace {
			return fmt.Errorf("setdb: id %d outside namespace [0,%d)", id, db.opts.Namespace)
		}
	}
	if db.dynamic == nil {
		db.dynamic = map[string]*bloom.CountingFilter{}
	}
	c, ok := db.dynamic[key]
	if !ok {
		c = bloom.NewCounting(db.fam)
		db.dynamic[key] = c
	}
	for _, id := range ids {
		c.Add(id)
		if db.opts.Pruned {
			if err := db.tree.Insert(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveDynamic removes one insertion of each id from the dynamic set
// under key. Removing an id that is not currently a member is an error
// and leaves the set unchanged. (The shared pruned tree retains the id's
// range — tree occupancy is monotone — which affects only performance,
// not correctness.)
func (db *DB) RemoveDynamic(key string, ids ...uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.dynamic[key]
	if !ok {
		return fmt.Errorf("setdb: no dynamic set %q", key)
	}
	for _, id := range ids {
		if err := c.Remove(id); err != nil {
			return err
		}
	}
	return nil
}

// ContainsDynamic reports membership in the dynamic set under key.
func (db *DB) ContainsDynamic(key string, id uint64) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.dynamic[key]
	if !ok {
		return false, fmt.Errorf("setdb: no dynamic set %q", key)
	}
	return c.Contains(id), nil
}

// SnapshotDynamic returns a point-in-time plain filter of the dynamic
// set, compatible with the shared tree (and with every plain set).
func (db *DB) SnapshotDynamic(key string) (*bloom.Filter, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.dynamic[key]
	if !ok {
		return nil, fmt.Errorf("setdb: no dynamic set %q", key)
	}
	return c.Snapshot(), nil
}

// SampleDynamic draws one element from the current state of the dynamic
// set under key.
func (db *DB) SampleDynamic(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Sample(snap, rng, ops)
}

// ReconstructDynamic reconstructs the current state of the dynamic set
// under key.
func (db *DB) ReconstructDynamic(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tree.Reconstruct(snap, rule, ops)
}

// DynamicKeys returns the dynamic set keys in sorted order.
func (db *DB) DynamicKeys() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.dynamic))
	for k := range db.dynamic {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
