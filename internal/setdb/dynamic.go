package setdb

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/membership"
)

// Dynamic sets: the paper's motivating applications track communities
// whose membership changes over time (§1). A plain Bloom filter cannot
// forget a member, so DB also supports deletable sets behind the
// membership.DynamicMembership interface: ids can be removed, and
// queries run against a point-in-time view compatible with the shared
// tree. Options.Backend picks the implementation — the counting Bloom
// filter (8-bit counters, 8× the plain filter's memory) or the cuckoo
// filter (16-bit fingerprints, ~2.4 bytes per live entry plus a plain
// query view).
//
// Dynamic sets live in a separate key space from plain sets (a key is
// either plain or dynamic; mixing is an error). They shard with the
// plain sets — a key's plain and dynamic entries always live in the same
// shard snapshot — and they follow the same copy-on-write discipline:
// mutations publish a fresh immutable membership value, so readers (and
// any memoized query-view projection) never observe a set mid-update.

// AddDynamic inserts ids into the dynamic (deletable) set under key,
// creating it on first use. On a pruned database the shared tree grows
// to cover the new ids before the update is published; the growth runs
// outside the shard lock (the tree has its own per-subtree
// synchronization), so a slow tree epoch never stalls the shard's other
// writers, and readers are never stalled by anything.
func (db *DB) AddDynamic(key string, ids ...uint64) error {
	if err := db.validateIDs(ids); err != nil {
		return err
	}
	s, h := db.shardFor(key)
	// Advisory clash precheck before paying for tree growth; the
	// authoritative check runs under the shard mutex below.
	if _, clash := s.load().sets.get(h, key); clash {
		return fmt.Errorf("%w: %q already exists as a plain set", ErrKeyClash, key)
	}
	if err := db.growTree(ids); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.load()
	if _, clash := cur.sets.get(h, key); clash {
		return fmt.Errorf("%w: %q already exists as a plain set", ErrKeyClash, key)
	}
	var next membership.DynamicMembership
	if c, ok := cur.dynamic.get(h, key); ok {
		next = c.CloneAddDynamic(ids...)
	} else {
		var err error
		next, err = db.newDynamic(ids)
		if err != nil {
			return err
		}
	}
	nextState, copied := cur.withDynamic(h, key, next)
	s.state.Store(nextState)
	db.recordWrites(1, 1, copied)
	return nil
}

// RemoveDynamic removes one insertion of each id from the dynamic set
// under key. The batch is all-or-nothing: removing an id that is not
// currently a member is an error and leaves the whole set unchanged —
// no partially-removed state is ever published. (The shared pruned tree
// retains the id's range — tree occupancy is monotone — which affects
// only performance, never correctness.)
//
// Ids are namespace-validated like Add's: an out-of-range id can alias
// onto occupied counter positions and would otherwise corrupt genuine
// members' counters while looking like a successful remove.
func (db *DB) RemoveDynamic(key string, ids ...uint64) error {
	if err := db.validateIDs(ids); err != nil {
		return err
	}
	s, h := db.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.load()
	c, ok := cur.dynamic.get(h, key)
	if !ok {
		return fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	next, err := c.CloneRemove(ids...)
	if err != nil {
		return err
	}
	nextState, copied := cur.withDynamic(h, key, next)
	s.state.Store(nextState)
	db.recordWrites(1, 1, copied)
	return nil
}

// ContainsDynamic reports membership in the dynamic set under key.
func (db *DB) ContainsDynamic(key string, id uint64) (bool, error) {
	c, ok := db.getDynamic(key)
	if !ok {
		return false, fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	return c.Contains(id), nil
}

// SnapshotDynamic returns a point-in-time plain filter of the dynamic
// set, compatible with the shared tree (and with every plain set). The
// snapshot is immutable and shared (the backend memoizes or maintains
// it on the published version): treat it as read-only. For the cuckoo
// backend the view is a monotone over-approximation across deletes;
// ContainsDynamic goes through the delete-aware native probe.
func (db *DB) SnapshotDynamic(key string) (*bloom.Filter, error) {
	c, ok := db.getDynamic(key)
	if !ok {
		return nil, fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	return c.QueryView(), nil
}

// MembershipDynamic returns the stored dynamic membership value for key
// (nil if absent), exposing the backend-native probe surface.
func (db *DB) MembershipDynamic(key string) membership.DynamicMembership {
	c, ok := db.getDynamic(key)
	if !ok {
		return nil
	}
	return c
}

// SampleDynamic draws one element from the current state of the dynamic
// set under key. The snapshot is a lock-free load of the published
// version; the tree query then runs against that immutable projection.
func (db *DB) SampleDynamic(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return 0, err
	}
	return db.tree.Sample(snap, rng, ops)
}

// ReconstructDynamic reconstructs the current state of the dynamic set
// under key.
func (db *DB) ReconstructDynamic(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return nil, err
	}
	return db.tree.Reconstruct(snap, rule, ops)
}

// DynamicKeys returns the dynamic set keys in sorted order.
func (db *DB) DynamicKeys() []string {
	var keys []string
	for i := range db.shards {
		db.shards[i].load().dynamic.rangeAll(func(k string, _ membership.DynamicMembership) {
			keys = append(keys, k)
		})
	}
	sort.Strings(keys)
	return keys
}
