package setdb

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bloom"
	"repro/internal/core"
)

// Dynamic sets: the paper's motivating applications track communities
// whose membership changes over time (§1). A plain Bloom filter cannot
// forget a member, so DB also supports counting-filter-backed sets: ids
// can be removed, and queries run against a point-in-time snapshot
// projected onto a plain filter compatible with the shared tree.
//
// Dynamic sets live in a separate key space from plain sets (a key is
// either plain or dynamic; mixing is an error) and cost 8× the filter
// memory. They shard with the plain sets: a key's plain and dynamic
// entries always share one lock.

// AddDynamic inserts ids into the dynamic (deletable) set under key,
// creating it on first use.
func (db *DB) AddDynamic(key string, ids ...uint64) error {
	for _, id := range ids {
		if id >= db.opts.Namespace {
			return fmt.Errorf("setdb: id %d outside namespace [0,%d)", id, db.opts.Namespace)
		}
	}
	s := db.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, clash := s.sets[key]; clash {
		return fmt.Errorf("setdb: %q already exists as a plain set", key)
	}
	if s.dynamic == nil {
		s.dynamic = map[string]*bloom.CountingFilter{}
	}
	c, ok := s.dynamic[key]
	if !ok {
		c = bloom.NewCounting(db.fam)
		s.dynamic[key] = c
	}
	for _, id := range ids {
		c.Add(id)
	}
	if db.opts.Pruned {
		db.treeMu.Lock()
		defer db.treeMu.Unlock()
		for _, id := range ids {
			if err := db.tree.Insert(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// RemoveDynamic removes one insertion of each id from the dynamic set
// under key. Removing an id that is not currently a member is an error
// and leaves the set unchanged. (The shared pruned tree retains the id's
// range — tree occupancy is monotone — which affects only performance,
// not correctness.)
func (db *DB) RemoveDynamic(key string, ids ...uint64) error {
	s := db.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.dynamic[key]
	if !ok {
		return fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	for _, id := range ids {
		if err := c.Remove(id); err != nil {
			return err
		}
	}
	return nil
}

// ContainsDynamic reports membership in the dynamic set under key.
func (db *DB) ContainsDynamic(key string, id uint64) (bool, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.dynamic[key]
	if !ok {
		return false, fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	return c.Contains(id), nil
}

// SnapshotDynamic returns a point-in-time plain filter of the dynamic
// set, compatible with the shared tree (and with every plain set). The
// snapshot is private to the caller.
func (db *DB) SnapshotDynamic(key string) (*bloom.Filter, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.dynamic[key]
	if !ok {
		return nil, fmt.Errorf("%w %q (dynamic)", ErrNoSet, key)
	}
	return c.Snapshot(), nil
}

// SampleDynamic draws one element from the current state of the dynamic
// set under key. The snapshot is taken under the shard lock; the tree
// query then runs lock-free against the private snapshot (read-gated on
// pruned databases).
func (db *DB) SampleDynamic(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return 0, err
	}
	db.rlockTree()
	defer db.runlockTree()
	return db.tree.Sample(snap, rng, ops)
}

// ReconstructDynamic reconstructs the current state of the dynamic set
// under key.
func (db *DB) ReconstructDynamic(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return nil, err
	}
	db.rlockTree()
	defer db.runlockTree()
	return db.tree.Reconstruct(snap, rule, ops)
}

// DynamicKeys returns the dynamic set keys in sorted order.
func (db *DB) DynamicKeys() []string {
	var keys []string
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for k := range s.dynamic {
			keys = append(keys, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}
