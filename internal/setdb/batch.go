package setdb

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/membership"
)

// Group commit: the write-coalescing path. A single Add pays one chunk
// clone plus one snapshot publish; under heavy ingest (bulk loads, the
// server's batch /v1/add) that is still one publish per key. ApplyBatch
// instead folds any number of pending writes into one published
// successor snapshot per touched shard: the chunk table is cloned once
// per shard, each touched chunk once, and the atomic store happens once —
// N writes landing in one shard pay amortized O(keys/chunk · touched
// chunks / N) copying instead of N full clones.

// Write is one pending mutation for the group-commit path: insert IDs
// into the set under Key, creating it on first use; Dynamic selects the
// deletable storage kind backed by the database's configured membership
// backend, exactly as AddDynamic does.
//
// Remove inverts the mutation, mirroring the single-write removal
// surface. A dynamic remove (Remove with Dynamic set) removes one
// insertion of each id from the dynamic set under Key with
// RemoveDynamic's semantics: the key must exist (ErrNoSet) and every id
// must be a member at its turn (bloom.ErrNotMember) or the whole batch
// aborts unpublished. A plain remove (Remove without Dynamic) deletes
// the entire stored set like Delete — IDs must be empty, since
// individual ids cannot be removed from a plain Bloom filter — and a
// delete-miss is a no-op rather than an error, matching Delete's
// bool-not-error contract. Mixed add/remove batches compose in slice
// order and still publish once per touched shard.
type Write struct {
	Key     string
	IDs     []uint64
	Dynamic bool
	Remove  bool
}

// AddMany is the variadic convenience form of ApplyBatch.
func (db *DB) AddMany(writes ...Write) error { return db.ApplyBatch(writes) }

// ApplyBatch applies a batch of writes with one snapshot publish per
// touched shard. Writes to the same key compose in slice order, exactly
// as sequential Add/AddDynamic/Delete/RemoveDynamic calls would; adds
// and removes may be mixed freely in one batch.
//
// The batch is all-or-nothing: every id is namespace-validated and every
// key's storage kind is checked before anything is published, and a
// failure (ErrOutOfRange, ErrKeyClash, ErrNoSet, bloom.ErrNotMember)
// leaves the database exactly as it was. On a pruned database the shared tree grows once for the union of
// all ids, before any shard lock is taken; as with Add, tree occupancy
// from a batch that later fails costs performance, never correctness.
//
// Locking: the touched shards are locked in ascending index order (the
// same order snapshotAll uses), so concurrent batches, single writes and
// serialization never deadlock. Readers are unaffected throughout — they
// keep loading the previous snapshots until the single publishing store.
func (db *DB) ApplyBatch(writes []Write) error {
	if len(writes) == 0 {
		return nil
	}
	// Validate everything validatable before paying for tree growth.
	// Only inserted ids grow the tree: removals never add occupancy (and
	// the tree is monotone anyway — removed ids keep their ranges).
	total := 0
	for i := range writes {
		if err := db.validateIDs(writes[i].IDs); err != nil {
			return err
		}
		if writes[i].Remove && !writes[i].Dynamic && len(writes[i].IDs) > 0 {
			return fmt.Errorf("setdb: remove of plain set %q carries ids (individual ids cannot be removed from a plain Bloom filter)", writes[i].Key)
		}
		if !writes[i].Remove {
			total += len(writes[i].IDs)
		}
	}
	if db.opts.Pruned && total > 0 {
		all := make([]uint64, 0, total)
		for i := range writes {
			if !writes[i].Remove {
				all = append(all, writes[i].IDs...)
			}
		}
		if err := db.tree.InsertBatch(all); err != nil {
			return err
		}
	}

	// Group the writes by shard, keeping slice order within each group.
	hashes := make([]uint64, len(writes))
	var byShard [numShards][]int
	var touched []int
	for i := range writes {
		h := keyHash(writes[i].Key)
		hashes[i] = h
		si := int(h % numShards)
		if byShard[si] == nil {
			touched = append(touched, si)
		}
		byShard[si] = append(byShard[si], i)
	}
	// touched must be ascending for the deadlock-free lock order; the
	// shard count is tiny, so insertion sort is plenty.
	for i := 1; i < len(touched); i++ {
		for j := i; j > 0 && touched[j] < touched[j-1]; j-- {
			touched[j], touched[j-1] = touched[j-1], touched[j]
		}
	}
	for _, si := range touched {
		db.shards[si].mu.Lock()
	}
	defer func() {
		for _, si := range touched {
			db.shards[si].mu.Unlock()
		}
	}()

	// Build every shard's successor snapshot before publishing any of
	// them: a clash detected while building aborts the whole batch with
	// nothing published. Builders are created lazily per entry kind so a
	// plain-only batch never copies a shard's dynamic chunk table (and
	// vice versa).
	type pendingShard struct {
		si   int
		sets *chunkBuilder[setEntry]
		dyn  *chunkBuilder[membership.DynamicMembership]
	}
	pending := make([]pendingShard, 0, len(touched))
	for _, si := range touched {
		cur := db.shards[si].load()
		p := pendingShard{si: si}
		for _, wi := range byShard[si] {
			w := &writes[wi]
			h := hashes[wi]
			if w.Remove {
				if w.Dynamic {
					if p.dyn == nil {
						p.dyn = newChunkBuilder(cur.dynamic)
					}
					c, ok := p.dyn.get(h, w.Key)
					if !ok {
						return fmt.Errorf("%w %q (dynamic)", ErrNoSet, w.Key)
					}
					next, err := c.CloneRemove(w.IDs...)
					if err != nil {
						return err
					}
					p.dyn.set(h, w.Key, next)
				} else {
					// Delete-miss is a no-op; don't build (or later
					// publish) a snapshot for a shard only touched by
					// misses.
					if p.sets != nil {
						p.sets.delete(h, w.Key)
					} else if _, ok := cur.sets.get(h, w.Key); ok {
						p.sets = newChunkBuilder(cur.sets)
						p.sets.delete(h, w.Key)
					}
				}
				continue
			}
			if w.Dynamic {
				if p.sets != nil {
					if _, clash := p.sets.get(h, w.Key); clash {
						return fmt.Errorf("%w: %q already exists as a plain set", ErrKeyClash, w.Key)
					}
				} else if _, clash := cur.sets.get(h, w.Key); clash {
					return fmt.Errorf("%w: %q already exists as a plain set", ErrKeyClash, w.Key)
				}
				if p.dyn == nil {
					p.dyn = newChunkBuilder(cur.dynamic)
				}
				if c, ok := p.dyn.get(h, w.Key); ok {
					p.dyn.set(h, w.Key, c.CloneAddDynamic(w.IDs...))
				} else {
					c, err := db.newDynamic(w.IDs)
					if err != nil {
						return err
					}
					p.dyn.set(h, w.Key, c)
				}
			} else {
				if p.dyn != nil {
					if _, clash := p.dyn.get(h, w.Key); clash {
						return fmt.Errorf("%w: %q already exists as a dynamic set", ErrKeyClash, w.Key)
					}
				} else if _, clash := cur.dynamic.get(h, w.Key); clash {
					return fmt.Errorf("%w: %q already exists as a dynamic set", ErrKeyClash, w.Key)
				}
				if p.sets == nil {
					p.sets = newChunkBuilder(cur.sets)
				}
				if e, ok := p.sets.get(h, w.Key); ok {
					p.sets.set(h, w.Key, setEntry{f: e.f.CloneAdd(w.IDs...), gen: e.gen, ver: e.ver + 1})
				} else {
					p.sets.set(h, w.Key, setEntry{f: membership.FromBloom(bloom.NewFromElements(db.fam, w.IDs)), gen: db.gen.Add(1)})
				}
			}
		}
		pending = append(pending, p)
	}

	// Publish: one atomic store per touched shard.
	var copied uint64
	for _, p := range pending {
		cur := db.shards[p.si].load()
		next := &shardState{sets: cur.sets, dynamic: cur.dynamic}
		if p.sets != nil {
			next.sets = p.sets.freeze()
			copied += p.sets.bytes
		}
		if p.dyn != nil {
			next.dynamic = p.dyn.freeze()
			copied += p.dyn.bytes
		}
		db.shards[p.si].state.Store(next)
	}
	db.recordWrites(uint64(len(writes)), uint64(len(pending)), copied)
	return nil
}
