package setdb

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentReadWriteMix hammers one database with a parallel mix of
// Sample, SampleN, Contains, Reconstruct, IntersectionEstimate, Add and
// Delete (on a dedicated churn key, so the stable keys stay countable).
// Run under -race this is the regression test for the lock-free read
// path: stored filters and the tree must never be mutated by query-side
// operations.
func TestConcurrentReadWriteMix(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, k := range keys {
		for j := 0; j < 16; j++ {
			if err := db.Add(k, uint64(i*10_000+j*100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	const churnKey = "victim"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 35; i++ {
				key := keys[rng.Intn(len(keys))]
				switch i % 8 {
				case 0:
					db.Sample(key, rng, nil)
				case 1:
					db.SampleN(key, 4, true, rng, nil)
				case 2:
					db.Contains(key, uint64(rng.Intn(1_000_000)))
				case 3:
					db.Reconstruct(key, core.PruneByEstimate, nil)
				case 4:
					db.IntersectionEstimate(key, keys[rng.Intn(len(keys))])
				case 5:
					db.Add(key, uint64(rng.Intn(1_000_000)))
				case 6:
					db.Keys()
					db.Len()
				case 7:
					// Create/read/delete churn racing the read path.
					db.Add(churnKey, uint64(rng.Intn(1_000_000)))
					db.Sample(churnKey, rng, nil)
					db.Delete(churnKey)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := db.Len(); n != len(keys) && n != len(keys)+1 {
		t.Fatalf("Len = %d, want %d or %d", n, len(keys), len(keys)+1)
	}
	for _, k := range keys {
		if db.Filter(k) == nil {
			t.Fatalf("stable key %q lost", k)
		}
	}
}

// TestConcurrentPrunedGrowth checks that pruned-tree growth (Add) is
// correctly serialized against concurrent sampling via the tree gate.
func TestConcurrentPrunedGrowth(t *testing.T) {
	db, err := Open(testOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("seedset", 1, 500_000, 999_999); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			us, err := db.UniformSampler("seedset")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					db.Add("seedset", uint64(rng.Intn(1_000_000)))
				} else {
					db.Sample("seedset", rng, nil)
					db.Reconstruct("seedset", core.PruneByAndBits, nil)
					if i%8 == 0 {
						// Sampler draws must stay gated against tree growth.
						us.Sample(rng, nil)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentDynamicMix mixes dynamic-set mutation with snapshots and
// sampling under -race.
func TestConcurrentDynamicMix(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("dyn", 10, 20, 30, 40, 50); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				switch i % 4 {
				case 0:
					db.AddDynamic("dyn", uint64(100+g*1000+i))
				case 1:
					db.ContainsDynamic("dyn", uint64(rng.Intn(1000)))
				case 2:
					db.SampleDynamic("dyn", rng, nil)
				case 3:
					db.DynamicKeys()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSampleMany(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	members := []uint64{7, 1_000, 99_999, 500_000, 999_998}
	if err := db.Add("s", members...); err != nil {
		t.Fatal(err)
	}
	var ops core.Ops
	got, err := db.SampleManyWorkers("s", 200, 4, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 200 {
		t.Fatalf("SampleMany returned %d samples, want 1..200", len(got))
	}
	for _, x := range got {
		if ok, _ := db.Contains("s", x); !ok {
			t.Fatalf("sample %d not a positive of the set", x)
		}
	}
	if ops.NodesVisited == 0 {
		t.Fatal("Ops not accumulated across workers")
	}
	if _, err := db.SampleMany("absent", 5); err == nil {
		t.Fatal("missing key accepted by SampleMany")
	}
	if got, err := db.SampleMany("s", 0); err != nil || got != nil {
		t.Fatalf("SampleMany(0) = %v, %v", got, err)
	}
}

func TestReconstructAll(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]uint64{
		"odds":  {1, 3, 5},
		"evens": {2, 4, 6},
		"big":   {999_999},
	}
	for k, ids := range want {
		if err := db.Add(k, ids...); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.ReconstructAll(core.PruneByAndBits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ReconstructAll returned %d sets, want %d", len(got), len(want))
	}
	for k, ids := range want {
		found := map[uint64]bool{}
		for _, x := range got[k] {
			found[x] = true
		}
		for _, id := range ids {
			if !found[id] {
				t.Fatalf("set %q: reconstruction missing %d", k, id)
			}
		}
	}

	empty, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := empty.ReconstructAll(core.PruneByEstimate, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty ReconstructAll = %v, %v", got, err)
	}
}

// TestShardDistribution sanity-checks that the FNV sharding actually
// spreads keys over multiple shards (a constant shardIndex would silently
// serialize all writers again).
func TestShardDistribution(t *testing.T) {
	used := map[int]bool{}
	for i := 0; i < 256; i++ {
		used[shardIndex(string(rune('a'+i%26))+string(rune('0'+i%10)))] = true
	}
	if len(used) < numShards/2 {
		t.Fatalf("only %d of %d shards used by 256 keys", len(used), numShards)
	}
}

// TestSamplerInvalidatedByDelete pins the Sampler detachment rule: after
// its key is deleted (or deleted and re-added), draws must fail loudly
// instead of silently serving the old set version.
func TestSamplerInvalidatedByDelete(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("s", 10, 20, 30, 40)
	us, err := db.UniformSampler("s")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := us.Sample(rng, nil); err != nil {
		t.Fatalf("fresh sampler: %v", err)
	}
	db.Delete("s")
	if _, err := us.Sample(rng, nil); err != ErrSamplerInvalid {
		t.Fatalf("after Delete: err = %v, want ErrSamplerInvalid", err)
	}
	db.Add("s", 99)
	if _, err := us.Sample(rng, nil); err != ErrSamplerInvalid {
		t.Fatalf("after re-Add: err = %v, want ErrSamplerInvalid", err)
	}
	us2, err := db.UniformSampler("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := us2.Sample(rng, nil); err != nil {
		t.Fatalf("rebuilt sampler: %v", err)
	}
}
