package setdb

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentReadWriteMix hammers one database with a parallel mix of
// Sample, SampleN, Contains, Reconstruct, IntersectionEstimate, Add and
// Delete (on a dedicated churn key, so the stable keys stay countable).
// Run under -race this is the regression test for the lock-free read
// path: stored filters and the tree must never be mutated by query-side
// operations.
func TestConcurrentReadWriteMix(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, k := range keys {
		for j := 0; j < 16; j++ {
			if err := db.Add(k, uint64(i*10_000+j*100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	const churnKey = "victim"
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 35; i++ {
				key := keys[rng.Intn(len(keys))]
				switch i % 8 {
				case 0:
					db.Sample(key, rng, nil)
				case 1:
					db.SampleN(key, 4, true, rng, nil)
				case 2:
					db.Contains(key, uint64(rng.Intn(1_000_000)))
				case 3:
					db.Reconstruct(key, core.PruneByEstimate, nil)
				case 4:
					db.IntersectionEstimate(key, keys[rng.Intn(len(keys))])
				case 5:
					db.Add(key, uint64(rng.Intn(1_000_000)))
				case 6:
					db.Keys()
					db.Len()
				case 7:
					// Create/read/delete churn racing the read path.
					db.Add(churnKey, uint64(rng.Intn(1_000_000)))
					db.Sample(churnKey, rng, nil)
					db.Delete(churnKey)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := db.Len(); n != len(keys) && n != len(keys)+1 {
		t.Fatalf("Len = %d, want %d or %d", n, len(keys), len(keys)+1)
	}
	for _, k := range keys {
		if db.Filter(k) == nil {
			t.Fatalf("stable key %q lost", k)
		}
	}
}

// TestConcurrentPrunedGrowth checks that pruned-tree growth (Add) and
// concurrent sampling coexist on the lock-free epoch-based growth path:
// queries never wait, and every published id stays reachable.
func TestConcurrentPrunedGrowth(t *testing.T) {
	db, err := Open(testOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("seedset", 1, 500_000, 999_999); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			us, err := db.UniformSampler("seedset")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					db.Add("seedset", uint64(rng.Intn(1_000_000)))
				} else {
					db.Sample("seedset", rng, nil)
					db.Reconstruct("seedset", core.PruneByAndBits, nil)
					if i%8 == 0 {
						// Sampler draws must stay gated against tree growth.
						us.Sample(rng, nil)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentDynamicMix mixes dynamic-set mutation — AddDynamic AND
// RemoveDynamic — with snapshots, sampling and reconstruction under
// -race. Each goroutine removes only ids it added itself, so every
// remove targets a member and the final membership is predictable: the
// seed ids survive, every id a goroutine left in place survives, and
// every removed id is gone.
func TestConcurrentDynamicMix(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{10, 20, 30, 40, 50}
	if err := db.AddDynamic("dyn", seeds...); err != nil {
		t.Fatal(err)
	}
	const perG = 30
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				own := uint64(100 + g*1000 + i)
				switch i % 6 {
				case 0:
					if err := db.AddDynamic("dyn", own); err != nil {
						t.Error(err)
					}
				case 1:
					// Add then remove an id this goroutine owns; the pair
					// races other goroutines' mutations but never targets
					// their ids.
					if err := db.AddDynamic("dyn", own); err != nil {
						t.Error(err)
					}
					if err := db.RemoveDynamic("dyn", own); err != nil {
						t.Error(err)
					}
				case 2:
					db.ContainsDynamic("dyn", uint64(rng.Intn(1000)))
				case 3:
					db.SampleDynamic("dyn", rng, nil)
				case 4:
					db.ReconstructDynamic("dyn", core.PruneByAndBits, nil)
				case 5:
					db.DynamicKeys()
					db.SnapshotDynamic("dyn")
				}
			}
		}(g)
	}
	wg.Wait()
	for _, id := range seeds {
		ok, err := db.ContainsDynamic("dyn", id)
		if err != nil || !ok {
			t.Fatalf("seed id %d lost after churn (ok=%v err=%v)", id, ok, err)
		}
	}
	// Ids added in case 0 (never removed) must be members; a plain filter
	// snapshot of the final state must agree.
	snap, err := db.SnapshotDynamic("dyn")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < perG; i += 6 { // case 0 iterations
			id := uint64(100 + g*1000 + i)
			if ok, _ := db.ContainsDynamic("dyn", id); !ok {
				t.Fatalf("kept id %d lost", id)
			}
			if !snap.Contains(id) {
				t.Fatalf("kept id %d missing from snapshot", id)
			}
		}
	}
}

// TestConcurrentSamplerShared pins the new Sampler contract: one Sampler
// instance shared by many goroutines keeps serving valid members while a
// writer goroutine keeps growing the same key (forcing copy-on-write
// filter swaps and sampler retargets).
func TestConcurrentSamplerShared(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	// Seed with a design-sized set so the rejection sampler's initial
	// safety factor (∝ leaves/n̂) stays small and draws stay cheap.
	seedRng := rand.New(rand.NewSource(7))
	seedIDs := make([]uint64, 400)
	for i := range seedIDs {
		seedIDs[i] = seedRng.Uint64() % 1_000_000
	}
	if err := db.Add("hot", seedIDs...); err != nil {
		t.Fatal(err)
	}
	us, err := db.UniformSampler("hot")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// A bounded writer keeps the key growing (each Add publishes a
		// copy-on-write swap the samplers must follow); keeping the set
		// small keeps the rejection loops fast under -race.
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 60; i++ {
			if err := db.Add("hot", uint64(rng.Intn(1_000_000))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < 25; i++ {
				x, err := us.Sample(rng, nil)
				if err == core.ErrNoSample {
					continue
				}
				if err != nil {
					t.Errorf("shared sampler: %v", err)
					return
				}
				// The sample must be a member of some published version —
				// the current filter is a superset of all earlier ones.
				if ok, cerr := db.Contains("hot", x); cerr != nil || !ok {
					t.Errorf("sample %d not a member (err=%v)", x, cerr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := us.Stats(); st.Accepted == 0 {
		t.Fatal("shared sampler accepted nothing")
	}
}

// TestConcurrentAddSameKey pins the copy-on-write write path against lost
// updates: many writers hammering ONE key publish serialized clone-swaps,
// so every id from every writer must be present afterwards.
func TestConcurrentAddSameKey(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perW = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := db.Add("one", uint64(g*perW+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for id := uint64(0); id < writers*perW; id++ {
		if ok, err := db.Contains("one", id); err != nil || !ok {
			t.Fatalf("id %d lost to a concurrent COW swap (ok=%v err=%v)", id, ok, err)
		}
	}
	if f := db.Filter("one"); f.Insertions() != writers*perW {
		t.Fatalf("insertions = %d, want %d", f.Insertions(), writers*perW)
	}
}

func TestSampleMany(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	members := []uint64{7, 1_000, 99_999, 500_000, 999_998}
	if err := db.Add("s", members...); err != nil {
		t.Fatal(err)
	}
	var ops core.Ops
	got, err := db.SampleManyWorkers("s", 200, 4, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > 200 {
		t.Fatalf("SampleMany returned %d samples, want 1..200", len(got))
	}
	for _, x := range got {
		if ok, _ := db.Contains("s", x); !ok {
			t.Fatalf("sample %d not a positive of the set", x)
		}
	}
	if ops.NodesVisited == 0 {
		t.Fatal("Ops not accumulated across workers")
	}
	if _, err := db.SampleMany("absent", 5); err == nil {
		t.Fatal("missing key accepted by SampleMany")
	}
	if got, err := db.SampleMany("s", 0); err != nil || got != nil {
		t.Fatalf("SampleMany(0) = %v, %v", got, err)
	}
}

func TestReconstructAll(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]uint64{
		"odds":  {1, 3, 5},
		"evens": {2, 4, 6},
		"big":   {999_999},
	}
	for k, ids := range want {
		if err := db.Add(k, ids...); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.ReconstructAll(core.PruneByAndBits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ReconstructAll returned %d sets, want %d", len(got), len(want))
	}
	for k, ids := range want {
		found := map[uint64]bool{}
		for _, x := range got[k] {
			found[x] = true
		}
		for _, id := range ids {
			if !found[id] {
				t.Fatalf("set %q: reconstruction missing %d", k, id)
			}
		}
	}

	empty, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := empty.ReconstructAll(core.PruneByEstimate, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty ReconstructAll = %v, %v", got, err)
	}
}

// TestShardDistribution sanity-checks that the FNV sharding actually
// spreads keys over multiple shards (a constant shardIndex would silently
// serialize all writers again).
func TestShardDistribution(t *testing.T) {
	used := map[int]bool{}
	for i := 0; i < 256; i++ {
		used[shardIndex(string(rune('a'+i%26))+string(rune('0'+i%10)))] = true
	}
	if len(used) < numShards/2 {
		t.Fatalf("only %d of %d shards used by 256 keys", len(used), numShards)
	}
}

// TestSamplerInvalidatedByDelete pins the Sampler detachment rule: after
// its key is deleted (or deleted and re-added), draws must fail loudly
// instead of silently serving the old set version.
func TestSamplerInvalidatedByDelete(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	db.Add("s", 10, 20, 30, 40)
	us, err := db.UniformSampler("s")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := us.Sample(rng, nil); err != nil {
		t.Fatalf("fresh sampler: %v", err)
	}
	db.Delete("s")
	if _, err := us.Sample(rng, nil); err != ErrSamplerInvalid {
		t.Fatalf("after Delete: err = %v, want ErrSamplerInvalid", err)
	}
	db.Add("s", 99)
	if _, err := us.Sample(rng, nil); err != ErrSamplerInvalid {
		t.Fatalf("after re-Add: err = %v, want ErrSamplerInvalid", err)
	}
	us2, err := db.UniformSampler("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := us2.Sample(rng, nil); err != nil {
		t.Fatalf("rebuilt sampler: %v", err)
	}
}
