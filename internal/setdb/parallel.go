package setdb

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/bloom"
	"repro/internal/core"
)

// Batch read APIs. These exploit the wait-free read path: stored filters
// are immutable versions published through atomic shard snapshots and
// the tree is never mutated in place, so the workers below run genuinely
// in parallel, each with its own rand source and Ops accumulator, all
// sharing the same stored filter — with no locks to take at any point.

// SampleMany draws n samples from the set under key using up to
// GOMAXPROCS goroutines. The samples follow the same per-sample
// distribution as n repeated Sample calls; their order is unspecified.
// Fewer than n results means some descents ended on false-positive paths
// (the per-call ErrNoSample); an empty result for a present key is
// possible only for an (almost) empty filter. A missing key returns an
// error wrapping ErrNoSet; any other tree error aborts the batch and is
// returned alongside the samples drawn so far.
func (db *DB) SampleMany(key string, n int) ([]uint64, error) {
	return db.SampleManyWorkers(key, n, 0, nil)
}

// SampleManyWorkers is SampleMany with an explicit worker count (0 means
// GOMAXPROCS) and an optional Ops accumulator that receives the summed
// operation counts of all workers.
func (db *DB) SampleManyWorkers(key string, n, workers int, ops *core.Ops) ([]uint64, error) {
	// Load the published filter version once: it is immutable, so the
	// whole batch shares it directly — no clone, no lock, and a
	// consistent view for free (concurrent Adds to the key publish new
	// versions that apply to the next batch, not halfway through this
	// one). A missing key errors even for n <= 0, so the batch API
	// always validates key existence.
	e, ok := db.getSet(key)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return db.sampleManyFilter(e.f.QueryView(), n, workers, ops)
}

// SampleManyDynamic is SampleManyWorkers for a dynamic set: the batch
// runs against one immutable point-in-time snapshot of the counting
// filter, so concurrent RemoveDynamic calls never yield a half-updated
// view partway through the batch.
func (db *DB) SampleManyDynamic(key string, n, workers int, ops *core.Ops) ([]uint64, error) {
	snap, err := db.SnapshotDynamic(key)
	if err != nil {
		return nil, err
	}
	return db.sampleManyFilter(snap, n, workers, ops)
}

// SampleManyFrom draws n samples from one caller-held immutable filter
// version (obtained from Filter or SnapshotDynamic). It is the hook for
// callers that spread one logical batch over several calls — chunked
// streaming, pagination — and need every chunk drawn from the same
// point-in-time version regardless of concurrent writes.
func (db *DB) SampleManyFrom(f *bloom.Filter, n, workers int, ops *core.Ops) ([]uint64, error) {
	if f == nil {
		return nil, fmt.Errorf("%w (nil filter)", ErrNoSet)
	}
	return db.sampleManyFilter(f, n, workers, ops)
}

// sampleManyFilter draws n samples from one immutable filter with up to
// workers goroutines (0 means GOMAXPROCS).
func (db *DB) sampleManyFilter(f *bloom.Filter, n, workers int, ops *core.Ops) ([]uint64, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	type result struct {
		xs  []uint64
		ops core.Ops
		err error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := n / workers
		if w < n%workers {
			quota++
		}
		wg.Add(1)
		go func(w, quota int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			res := &results[w]
			var wops *core.Ops
			if ops != nil {
				wops = &res.ops
			}
			// One rng, one output slice and one hash-position scratch
			// buffer per worker, allocated up front: the draw loop itself
			// is allocation-free (core.Tree.SampleScratch threads the
			// buffer through the descent down to the leaf membership
			// probes), so steady-state sampling costs zero heap
			// allocations per draw.
			xs := make([]uint64, 0, quota)
			scratch := make([]uint64, 0, core.ScratchHint)
			for i := 0; i < quota; i++ {
				var x uint64
				var err error
				x, scratch, err = db.tree.SampleScratch(f, rng, wops, scratch)
				if err == core.ErrNoSample {
					continue // a false-positive path; try the next draw
				}
				if err != nil {
					res.xs = xs
					res.err = err
					return
				}
				xs = append(xs, x)
			}
			res.xs = xs
		}(w, quota, rand.Int63())
	}
	wg.Wait()

	out := make([]uint64, 0, n)
	var firstErr error
	for i := range results {
		out = append(out, results[i].xs...)
		if ops != nil {
			ops.Add(results[i].ops)
		}
		if firstErr == nil {
			firstErr = results[i].err
		}
	}
	return out, firstErr
}

// ReconstructAll reconstructs every plain set in the database using up to
// workers goroutines (0 means GOMAXPROCS), returning key → reconstructed
// set. Keys deleted while the scan runs are silently skipped. Each
// reconstruction is read-only, so the workers proceed without serializing
// against concurrent samplers.
func (db *DB) ReconstructAll(rule core.PruneRule, workers int) (map[string][]uint64, error) {
	keys := db.Keys()
	if len(keys) == 0 {
		return map[string][]uint64{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}

	var (
		mu       sync.Mutex
		out      = make(map[string][]uint64, len(keys))
		next     = make(chan string)
		wg       sync.WaitGroup
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range next {
				set, rerr := db.Reconstruct(key, rule, nil)
				if errors.Is(rerr, ErrNoSet) {
					continue // key deleted mid-scan
				}
				if rerr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = rerr
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				out[key] = set
				mu.Unlock()
			}
		}()
	}
	for _, key := range keys {
		next <- key
	}
	close(next)
	wg.Wait()
	return out, firstErr
}
