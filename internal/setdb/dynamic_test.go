package setdb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestDynamicAddRemoveSample(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := db.AddDynamic("community", 10, 20, 30, 40); err != nil {
		t.Fatal(err)
	}
	ok, err := db.ContainsDynamic("community", 20)
	if err != nil || !ok {
		t.Fatalf("ContainsDynamic = %v, %v", ok, err)
	}
	x, err := db.SampleDynamic("community", rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := db.SnapshotDynamic("community")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Contains(x) {
		t.Fatalf("sample %d not in snapshot", x)
	}

	// A member leaves the community.
	if err := db.RemoveDynamic("community", 20); err != nil {
		t.Fatal(err)
	}
	ok, _ = db.ContainsDynamic("community", 20)
	if ok {
		t.Fatal("removed member still present")
	}
	recon, err := db.ReconstructDynamic("community", core.PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range recon {
		if id == 20 {
			t.Fatal("removed member reconstructed")
		}
	}
	found := map[uint64]bool{}
	for _, id := range recon {
		found[id] = true
	}
	for _, id := range []uint64{10, 30, 40} {
		if !found[id] {
			t.Fatalf("remaining member %d missing from reconstruction", id)
		}
	}
}

func TestDynamicErrors(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := db.RemoveDynamic("nope", 1); err == nil {
		t.Fatal("remove from missing set accepted")
	}
	if _, err := db.ContainsDynamic("nope", 1); err == nil {
		t.Fatal("contains on missing set accepted")
	}
	if _, err := db.SampleDynamic("nope", rng, nil); err == nil {
		t.Fatal("sample from missing set accepted")
	}
	if _, err := db.ReconstructDynamic("nope", core.PruneByEstimate, nil); err == nil {
		t.Fatal("reconstruct of missing set accepted")
	}
	if _, err := db.SnapshotDynamic("nope"); err == nil {
		t.Fatal("snapshot of missing set accepted")
	}
	if err := db.AddDynamic("d", 1_000_000); err == nil {
		t.Fatal("out-of-namespace id accepted")
	}
	if err := db.AddDynamic("d", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveDynamic("d", 2); err == nil {
		t.Fatal("remove of non-member accepted")
	}
}

func TestDynamicPlainKeySpacesDisjoint(t *testing.T) {
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("k", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("k", 2); err == nil {
		t.Fatal("dynamic set allowed over plain key")
	}
	if err := db.AddDynamic("d", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("d", 3); err == nil {
		t.Fatal("plain set allowed over dynamic key")
	}
	keys := db.DynamicKeys()
	if len(keys) != 1 || keys[0] != "d" {
		t.Fatalf("DynamicKeys = %v", keys)
	}
}

func TestDynamicOnPrunedTreeGrows(t *testing.T) {
	db, err := Open(testOptions(t, true))
	if err != nil {
		t.Fatal(err)
	}
	before := db.Tree().Nodes()
	if err := db.AddDynamic("d", 999_999); err != nil {
		t.Fatal(err)
	}
	if db.Tree().Nodes() <= before {
		t.Fatal("pruned tree did not grow for dynamic insert")
	}
	rng := rand.New(rand.NewSource(3))
	x, err := db.SampleDynamic("d", rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := db.SnapshotDynamic("d")
	if !snap.Contains(x) {
		t.Fatalf("sample %d not positive", x)
	}
}

func TestDynamicChurn(t *testing.T) {
	// A community with heavy join/leave churn stays queryable and
	// reconstructs to exactly its current membership (modulo filter FPs).
	db, err := Open(testOptions(t, false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	live := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			// A random current member leaves.
			for id := range live {
				if err := db.RemoveDynamic("churn", id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
		} else {
			id := rng.Uint64() % 1_000_000
			if !live[id] {
				if err := db.AddDynamic("churn", id); err != nil {
					t.Fatal(err)
				}
				live[id] = true
			}
		}
	}
	recon, err := db.ReconstructDynamic("churn", core.PruneByAndBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, id := range recon {
		found[id] = true
	}
	for id := range live {
		if !found[id] {
			t.Fatalf("live member %d missing after churn", id)
		}
	}
}
