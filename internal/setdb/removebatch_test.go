package setdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bloom"
)

func TestApplyBatchMixedAddRemove(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("gone", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("dyn", 10, 11, 12); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	err = db.ApplyBatch([]Write{
		{Key: "kept", IDs: []uint64{5}},
		{Key: "gone", Remove: true},
		{Key: "dyn", IDs: []uint64{11}, Dynamic: true, Remove: true},
		{Key: "dyn", IDs: []uint64{13}, Dynamic: true}, // remove then add composes in order
		{Key: "miss", Remove: true},                    // delete-miss: silent no-op, like Delete
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, cerr := db.Contains("kept", 5); cerr != nil || !ok {
		t.Fatalf("kept should contain 5 (ok=%v err=%v)", ok, cerr)
	}
	if _, cerr := db.Contains("gone", 1); !errors.Is(cerr, ErrNoSet) {
		t.Fatalf("gone should be deleted, got %v", cerr)
	}
	if ok, cerr := db.ContainsDynamic("dyn", 11); cerr != nil || ok {
		t.Fatalf("dyn should have forgotten 11 (ok=%v err=%v)", ok, cerr)
	}
	for _, id := range []uint64{10, 12, 13} {
		if ok, cerr := db.ContainsDynamic("dyn", id); cerr != nil || !ok {
			t.Fatalf("dyn should contain %d (ok=%v err=%v)", id, ok, cerr)
		}
	}
	after := db.Stats()
	if got := after.StateWrites - before.StateWrites; got != 5 {
		t.Fatalf("batch recorded %d writes, want 5", got)
	}
	if pubs := after.StatePublishes - before.StatePublishes; pubs >= 5 {
		t.Fatalf("mixed batch published %d times, want group commit (< 5)", pubs)
	}
}

func TestApplyBatchRemoveAllOrNothing(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddDynamic("dyn", 1); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()

	// Removing a non-member id aborts the whole batch unpublished.
	err = db.ApplyBatch([]Write{
		{Key: "fresh", IDs: []uint64{2}},
		{Key: "dyn", IDs: []uint64{99}, Dynamic: true, Remove: true},
	})
	if !errors.Is(err, bloom.ErrNotMember) {
		t.Fatalf("err = %v, want ErrNotMember", err)
	}
	if _, cerr := db.Contains("fresh", 2); !errors.Is(cerr, ErrNoSet) {
		t.Fatalf("aborted batch leaked %q: %v", "fresh", cerr)
	}

	// A dynamic remove of an absent key aborts with ErrNoSet, matching
	// RemoveDynamic.
	err = db.ApplyBatch([]Write{
		{Key: "fresh", IDs: []uint64{2}},
		{Key: "absent", IDs: []uint64{1}, Dynamic: true, Remove: true},
	})
	if !errors.Is(err, ErrNoSet) {
		t.Fatalf("err = %v, want ErrNoSet", err)
	}

	// A plain remove carrying ids is a caller mistake caught up front.
	err = db.ApplyBatch([]Write{{Key: "dyn2", IDs: []uint64{1}, Remove: true}})
	if err == nil {
		t.Fatal("plain remove with ids should be rejected")
	}

	after := db.Stats()
	if after.StateWrites != before.StateWrites || after.StatePublishes != before.StatePublishes {
		t.Fatalf("aborted batches moved write counters: %+v -> %+v", before, after)
	}
	if ok, cerr := db.ContainsDynamic("dyn", 1); cerr != nil || !ok {
		t.Fatalf("dyn lost its member across aborted batches (ok=%v err=%v)", ok, cerr)
	}
}

// TestConcurrentMixedBatches races mixed add/remove group commits from
// many goroutines against lock-free readers (run under -race). Each
// writer owns a disjoint key space, so every batch must succeed; the
// readers continuously probe and sample whatever snapshot is published.
func TestConcurrentMixedBatches(t *testing.T) {
	db, err := Open(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		rounds  = 50
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-plain", rng.Intn(writers))
				if _, err := db.Contains(key, uint64(rng.Intn(64))); err != nil && !errors.Is(err, ErrNoSet) {
					t.Errorf("Contains(%q): %v", key, err)
				}
				dkey := fmt.Sprintf("w%d-dyn", rng.Intn(writers))
				if _, err := db.SnapshotDynamic(dkey); err != nil && !errors.Is(err, ErrNoSet) {
					t.Errorf("SnapshotDynamic(%q): %v", dkey, err)
				}
			}
		}(int64(100 + r))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			plain := fmt.Sprintf("w%d-plain", w)
			dyn := fmt.Sprintf("w%d-dyn", w)
			base := uint64(w * 64)
			for i := 0; i < rounds; i++ {
				id := base + uint64(i%64)
				if err := db.ApplyBatch([]Write{
					{Key: plain, IDs: []uint64{id}},
					{Key: dyn, IDs: []uint64{id}, Dynamic: true},
				}); err != nil {
					t.Errorf("writer %d add batch: %v", w, err)
					return
				}
				if err := db.ApplyBatch([]Write{
					{Key: dyn, IDs: []uint64{id}, Dynamic: true, Remove: true},
					{Key: dyn, IDs: []uint64{id}, Dynamic: true},
					{Key: plain, Remove: true},
					{Key: plain, IDs: []uint64{id}},
				}); err != nil {
					t.Errorf("writer %d mixed batch: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	for w := 0; w < writers; w++ {
		plain := fmt.Sprintf("w%d-plain", w)
		dyn := fmt.Sprintf("w%d-dyn", w)
		last := uint64(w*64) + uint64((rounds-1)%64)
		if ok, err := db.Contains(plain, last); err != nil || !ok {
			t.Fatalf("%s should contain %d (ok=%v err=%v)", plain, last, ok, err)
		}
		if ok, err := db.ContainsDynamic(dyn, last); err != nil || !ok {
			t.Fatalf("%s should contain %d (ok=%v err=%v)", dyn, last, ok, err)
		}
	}
}
