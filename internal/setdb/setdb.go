// Package setdb implements the paper's §3.2 framework substrate: a
// database D̄ = {B(X₁), B(X₂), …} of sets stored only as Bloom filters,
// sharing one parameter profile and one BloomSampleTree. It is the layer a
// downstream application talks to — store adjacency lists, keyword
// posting lists or community member sets by key, then sample from or
// reconstruct any of them, without the database ever materializing the
// sets themselves.
//
// The database persists to a single file (Save/Load, or the streaming
// WriteTo/ReadFrom), so a collection built by an ingest job can be served
// by a separate process.
package setdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
	"repro/internal/membership"
)

// Options configures a database.
type Options struct {
	// Namespace is the id domain [0, M) all stored sets draw from.
	Namespace uint64
	// Bits, K, HashKind, Seed define the shared Bloom-filter profile.
	Bits     uint64
	K        int
	HashKind hashfam.Kind
	Seed     uint64
	// TreeDepth is the BloomSampleTree depth; 0 derives it from the cost
	// model for DesignSetSize.
	TreeDepth int
	// DesignSetSize is the typical stored-set size used when TreeDepth is
	// derived (default 1000).
	DesignSetSize uint64
	// Pruned selects a Pruned-BloomSampleTree fed by the ids actually
	// inserted (recommended for sparse namespaces). A full tree is built
	// eagerly otherwise.
	Pruned bool
	// Backend selects the membership backend for dynamic sets (counting
	// or cuckoo; default counting). Plain sets are always Bloom-backed —
	// they never delete, so nothing beats the plain filter. The choice is
	// persisted in the snapshot header.
	Backend membership.Kind
}

func (o Options) withDefaults() Options {
	if o.HashKind == "" {
		o.HashKind = hashfam.DefaultKind
	}
	if o.DesignSetSize == 0 {
		o.DesignSetSize = 1000
	}
	if o.Backend == "" {
		o.Backend = membership.KindCounting
	}
	return o
}

// PlanOptions derives Options from a desired sampling accuracy, mirroring
// the paper's §5.4 planning.
func PlanOptions(accuracy float64, designSetSize, namespace uint64, k int) (Options, error) {
	plan, err := core.PlanTree(accuracy, designSetSize, namespace, k, 0)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Namespace:     namespace,
		Bits:          plan.Bits,
		K:             plan.K,
		TreeDepth:     plan.Depth,
		DesignSetSize: designSetSize,
	}, nil
}

// ErrNoSet is wrapped by the error every query operation returns for an
// absent key; match it with errors.Is.
var ErrNoSet = errors.New("setdb: no set")

// ErrKeyClash is wrapped by Add/AddDynamic when the key already exists
// with the other storage kind (a key is either plain or dynamic, never
// both); match it with errors.Is.
var ErrKeyClash = errors.New("setdb: key clash")

// ErrOutOfRange is wrapped by writes carrying an id outside the
// database namespace; match it with errors.Is. It marks a caller
// mistake, as opposed to an internal failure.
var ErrOutOfRange = errors.New("setdb: id outside namespace")

// numShards is the number of key shards the set maps are split across.
// Writers to different shards never contend; the count is an internal
// constant (not persisted). It is sized generously for many-core
// write-heavy workloads; the copy-on-write cost of a single write is
// bounded separately by the chunked shard state (see chunked.go), which
// splits each shard into occupancy-adaptive chunks and copies only one
// of them.
const numShards = 64

// setEntry is one stored plain set: an immutable filter plus the
// generation stamped when the key was created and the version advanced
// on every copy-on-write swap. The generation survives filter swaps
// (Add) but not Delete/re-Add, which is how a Sampler distinguishes "my
// set grew" (recalibrate and continue) from "my set was replaced" (fail
// loudly); the monotone version lets the Sampler retarget strictly
// forward even when goroutines race with stale snapshots in hand.
type setEntry struct {
	f   membership.Membership
	gen uint64
	ver uint64
}

// shardState is the immutable snapshot of one shard: readers load it from
// the shard's atomic pointer and never lock. Both chunked maps (and every
// filter they reach) are frozen once published; a writer builds the next
// snapshot by cloning the chunk table and only the chunk it modifies
// (see chunked.go) and publishes it with a single store. An untouched
// chunk — and an untouched kind's whole map — is carried over by
// reference, so the copied volume of one write is O(keys/chunk), not
// O(keys/shard).
type shardState struct {
	sets    chunkedMap[setEntry]
	dynamic chunkedMap[membership.DynamicMembership]
}

// withSet returns a successor snapshot with key bound to e, plus the
// estimated bytes copied building it.
func (st *shardState) withSet(h uint64, key string, e setEntry) (*shardState, uint64) {
	sets, copied := st.sets.with(h, key, e)
	return &shardState{sets: sets, dynamic: st.dynamic}, copied
}

// withoutSet returns a successor snapshot with key removed. When the key
// is absent it returns the receiver itself with zero copies.
func (st *shardState) withoutSet(h uint64, key string) (*shardState, uint64, bool) {
	sets, copied, ok := st.sets.without(h, key)
	if !ok {
		return st, 0, false
	}
	return &shardState{sets: sets, dynamic: st.dynamic}, copied, true
}

// withDynamic returns a successor snapshot with key bound to c, plus the
// estimated bytes copied building it.
func (st *shardState) withDynamic(h uint64, key string, c membership.DynamicMembership) (*shardState, uint64) {
	dynamic, copied := st.dynamic.with(h, key, c)
	return &shardState{sets: st.sets, dynamic: dynamic}, copied
}

// shard is one slice of the key space: an atomically swapped immutable
// snapshot plus a small mutex that serializes the shard's writers (and
// only them — readers never touch it). Plain and dynamic sets for a key
// always live in the same shard, so the plain/dynamic clash check needs
// only one snapshot.
type shard struct {
	mu    sync.Mutex
	state atomic.Pointer[shardState]
}

// load returns the shard's current snapshot.
func (s *shard) load() *shardState { return s.state.Load() }

// DB is a keyed collection of Bloom-filter-encoded sets over one shared
// namespace and one shared BloomSampleTree.
//
// DB is safe for concurrent use, and the read path is wait-free: every
// operation that evaluates a stored filter (Sample, SampleN, Reconstruct,
// Contains, IntersectionEstimate, …) loads an immutable shard snapshot
// through an atomic pointer and touches no lock, so readers never block —
// not on each other, and not on writers, even under a 100% write mix.
// Writers are copy-on-write: Add/Delete serialize briefly on their
// shard's mutex, build the successor snapshot (cloning only the filter
// they change and the one chunk of the shard's chunked key map holding
// their key) and publish it with one atomic store; group commit
// (AddMany/ApplyBatch, see batch.go) folds a whole batch of writes into
// one publish per touched shard; on a pruned
// database the shared tree grows through its own lock-free epoch-based
// path (core.Tree.InsertBatch) before the new filter becomes visible, so
// a published set is always coverable by the tree.
//
// SampleMany and ReconstructAll (parallel.go) exploit these guarantees
// with internal worker pools.
type DB struct {
	opts   Options
	fam    hashfam.Family
	tree   *core.Tree
	gen    atomic.Uint64 // key-lifetime generator for setEntry.gen
	shards [numShards]shard

	// Write-amplification accounting (see Stats): logical write
	// operations applied, snapshot publishes performed (fewer than
	// stateWrites when group commit folds a batch into one publish), and
	// the estimated bytes copied building successor snapshots.
	stateWrites    atomic.Uint64
	statePublishes atomic.Uint64
	stateBytes     atomic.Uint64
}

// recordWrites accumulates write-amplification accounting for one
// publish-side operation.
func (db *DB) recordWrites(writes, publishes, bytes uint64) {
	db.stateWrites.Add(writes)
	db.statePublishes.Add(publishes)
	db.stateBytes.Add(bytes)
}

// Open creates an empty database with the given options.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.TreeDepth == 0 {
		ratio := float64(opts.Bits) / core.DefaultCostRatioDivisor
		leaf := core.LeafRangeForRatio(ratio)
		depth := 0
		for r := opts.Namespace; r > leaf; r = (r + 1) / 2 {
			depth++
		}
		opts.TreeDepth = depth
	}
	cfg := core.Config{
		Namespace: opts.Namespace,
		Bits:      opts.Bits,
		K:         opts.K,
		HashKind:  opts.HashKind,
		Seed:      opts.Seed,
		Depth:     opts.TreeDepth,
	}
	var tree *core.Tree
	var err error
	if opts.Pruned {
		tree, err = core.BuildPruned(cfg, nil)
	} else {
		tree, err = core.BuildTree(cfg)
	}
	if err != nil {
		return nil, err
	}
	fam, err := hashfam.New(opts.HashKind, opts.Bits, opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, fam: fam, tree: tree}
	empty := &shardState{}
	for i := range db.shards {
		db.shards[i].state.Store(empty)
	}
	return db, nil
}

// shardFor returns the shard responsible for key together with the key's
// hash, which the chunked shard state reuses for chunk addressing.
func (db *DB) shardFor(key string) (*shard, uint64) {
	h := keyHash(key)
	return &db.shards[h%numShards], h
}

// getSet is the lock-free read-path lookup of a plain entry: one hash,
// one atomic snapshot load, one chunk map lookup, zero allocations.
func (db *DB) getSet(key string) (setEntry, bool) {
	s, h := db.shardFor(key)
	return s.load().sets.get(h, key)
}

// getDynamic is getSet for dynamic entries.
func (db *DB) getDynamic(key string) (membership.DynamicMembership, bool) {
	s, h := db.shardFor(key)
	return s.load().dynamic.get(h, key)
}

// newDynamic creates an empty dynamic set with the database's configured
// backend, pre-populated with ids.
func (db *DB) newDynamic(ids []uint64) (membership.DynamicMembership, error) {
	return membership.NewDynamicWith(db.opts.Backend, db.fam, db.opts.DesignSetSize, ids)
}

// Options returns the database's (defaulted) options.
func (db *DB) Options() Options { return db.opts }

// Tree exposes the shared BloomSampleTree (read-only use; on a pruned
// database it may grow concurrently with Add).
func (db *DB) Tree() *core.Tree { return db.tree }

// Len returns the number of stored sets.
func (db *DB) Len() int {
	n := 0
	for i := range db.shards {
		n += db.shards[i].load().sets.len()
	}
	return n
}

// Keys returns the stored set keys in sorted order.
func (db *DB) Keys() []string {
	var keys []string
	for i := range db.shards {
		db.shards[i].load().sets.rangeAll(func(k string, _ setEntry) {
			keys = append(keys, k)
		})
	}
	sort.Strings(keys)
	return keys
}

// validateIDs checks every id against the namespace bound.
func (db *DB) validateIDs(ids []uint64) error {
	for _, id := range ids {
		if id >= db.opts.Namespace {
			return fmt.Errorf("%w: id %d outside [0,%d)", ErrOutOfRange, id, db.opts.Namespace)
		}
	}
	return nil
}

// growTree covers ids in the shared pruned tree. It runs before the new
// filter version is published and outside any shard lock: tree growth has
// its own per-subtree synchronization and never blocks readers, and ids
// present in the tree but not (yet, or ever, if the write later fails)
// in any filter only cost occupancy, never correctness.
func (db *DB) growTree(ids []uint64) error {
	if !db.opts.Pruned {
		return nil
	}
	return db.tree.InsertBatch(ids)
}

// Add inserts ids into the set stored under key, creating it on first
// use. On a pruned database the shared tree grows to cover the new ids
// before the updated filter is published. The stored filter is replaced
// by a copy-on-write clone, so in-flight readers of the previous version
// are never disturbed and new readers see the update atomically.
func (db *DB) Add(key string, ids ...uint64) error {
	if err := db.validateIDs(ids); err != nil {
		return err
	}
	s, h := db.shardFor(key)
	// Advisory clash precheck before paying for tree growth; the
	// authoritative check runs under the shard mutex below.
	if _, clash := s.load().dynamic.get(h, key); clash {
		return fmt.Errorf("%w: %q already exists as a dynamic set", ErrKeyClash, key)
	}
	if err := db.growTree(ids); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.load()
	if _, clash := cur.dynamic.get(h, key); clash {
		return fmt.Errorf("%w: %q already exists as a dynamic set", ErrKeyClash, key)
	}
	e, ok := cur.sets.get(h, key)
	if ok {
		e = setEntry{f: e.f.CloneAdd(ids...), gen: e.gen, ver: e.ver + 1}
	} else {
		e = setEntry{f: membership.FromBloom(bloom.NewFromElements(db.fam, ids)), gen: db.gen.Add(1)}
	}
	next, copied := cur.withSet(h, key, e)
	s.state.Store(next)
	db.recordWrites(1, 1, copied)
	return nil
}

// Delete removes a stored set. It returns false if the key is absent.
// (Individual ids cannot be removed from a Bloom filter.)
func (db *DB) Delete(key string) bool {
	s, h := db.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	next, copied, ok := s.load().withoutSet(h, key)
	if !ok {
		// Delete-miss: no clone was built and nothing is published.
		return false
	}
	s.state.Store(next)
	db.recordWrites(1, 1, copied)
	return true
}

// Filter returns the stored filter for key (nil if absent) as its plain
// Bloom query view. The returned filter is immutable: an Add to the same
// key publishes a new version rather than mutating it, so it is always
// safe to keep reading.
func (db *DB) Filter(key string) *bloom.Filter {
	e, ok := db.getSet(key)
	if !ok {
		return nil
	}
	return e.f.QueryView()
}

// Membership returns the stored membership value for key (nil if
// absent), exposing the backend-native probe surface.
func (db *DB) Membership(key string) membership.Membership {
	e, ok := db.getSet(key)
	if !ok {
		return nil
	}
	return e.f
}

// Contains reports whether id answers positively for the set under key.
func (db *DB) Contains(key string, id uint64) (bool, error) {
	e, ok := db.getSet(key)
	if !ok {
		return false, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return e.f.Contains(id), nil
}

// Sample draws one element from the set under key using BSTSample.
func (db *DB) Sample(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	e, ok := db.getSet(key)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return db.tree.Sample(e.f.QueryView(), rng, ops)
}

// SampleN draws r elements in a single tree pass (§5.3).
func (db *DB) SampleN(key string, r int, withReplacement bool, rng *rand.Rand, ops *core.Ops) ([]uint64, error) {
	e, ok := db.getSet(key)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return db.tree.SampleN(e.f.QueryView(), r, withReplacement, rng, ops)
}

// Sampler is a rejection-corrected exactly-uniform sampler bound to its
// database key (see core.UniformSampler). It is shareable: any number of
// goroutines may draw from one Sampler concurrently (each with its own
// rand source), and it follows its key across copy-on-write Adds by
// retargeting the underlying sampler to the newly published filter
// version — recalibrating through an atomic max over the cardinality
// estimate, so no draw ever blocks on a writer. Deleting (or deleting
// and re-adding) the key invalidates the sampler: subsequent draws
// return ErrSamplerInvalid.
type Sampler struct {
	db  *DB
	key string
	gen uint64 // key lifetime the sampler is bound to
	u   *core.UniformSampler

	// ver is the entry version u was last retargeted to; retargetMu
	// serializes the (rare) retargets so the underlying sampler can only
	// ever move forward — a goroutine holding a stale shard snapshot
	// must not rebind the shared sampler to an older filter version.
	// Draws never block on it: a draw that fails to acquire it simply
	// samples the version already bound, which is equally valid.
	ver        atomic.Uint64
	retargetMu sync.Mutex
}

// ErrSamplerInvalid is returned by Sampler.Sample after the sampler's key
// is Deleted (or Deleted and re-Added): the sampler is bound to the old
// key lifetime and would silently keep serving the deleted set version.
var ErrSamplerInvalid = fmt.Errorf("setdb: sampler invalidated: its set was deleted or replaced")

// Sample draws one uniform element; see core.UniformSampler.Sample. It
// returns ErrSamplerInvalid if the sampler's key no longer maps to the
// key lifetime it was created on.
func (s *Sampler) Sample(rng *rand.Rand, ops *core.Ops) (uint64, error) {
	e, ok := s.db.getSet(s.key)
	if !ok || e.gen != s.gen {
		return 0, ErrSamplerInvalid
	}
	if e.ver > s.ver.Load() && s.retargetMu.TryLock() {
		// The key grew since the last retarget: follow it strictly
		// forward. The version re-check under the mutex (and the mutex
		// itself) keep a goroutine with a stale snapshot from rebinding
		// the shared sampler backward; a draw that loses TryLock just
		// samples the currently bound version, which is equally valid.
		if e.ver > s.ver.Load() {
			if err := s.u.Retarget(e.f.QueryView()); err != nil {
				s.retargetMu.Unlock()
				return 0, err
			}
			s.ver.Store(e.ver)
		}
		s.retargetMu.Unlock()
	}
	return s.u.Sample(rng, ops)
}

// SampleN draws r uniform samples (with replacement) by repeated Sample.
func (s *Sampler) SampleN(r int, rng *rand.Rand, ops *core.Ops) ([]uint64, error) {
	out := make([]uint64, 0, r)
	for i := 0; i < r; i++ {
		x, err := s.Sample(rng, ops)
		if err == core.ErrNoSample {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, x)
	}
	return out, nil
}

// Stats returns cumulative rejection statistics.
func (s *Sampler) Stats() core.UniformStats { return s.u.Stats() }

// Valid reports whether the sampler's key still maps to the key
// lifetime it was created on; false means every future Sample will
// return ErrSamplerInvalid (the key was Deleted, or Deleted and
// re-Added). Caches of shareable samplers use it to evict dead entries.
func (s *Sampler) Valid() bool {
	e, ok := s.db.getSet(s.key)
	return ok && e.gen == s.gen
}

// SafetyFactor returns the underlying sampler's current acceptance
// headroom C (calibration introspection; it only ever rises).
func (s *Sampler) SafetyFactor() float64 { return s.u.SafetyFactor() }

// MaxAttempts returns the underlying sampler's rejection-loop bound.
func (s *Sampler) MaxAttempts() int { return s.u.MaxAttempts() }

// UniformSampler returns a rejection-corrected exactly-uniform sampler
// for the set under key. The returned Sampler is lock-free on every draw
// and safe to share across goroutines; it keeps serving (and
// self-recalibrating) while other goroutines Add to the database,
// including to its own key.
func (db *DB) UniformSampler(key string) (*Sampler, error) {
	e, ok := db.getSet(key)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	u, err := db.tree.NewUniformSampler(e.f.QueryView())
	if err != nil {
		return nil, err
	}
	s := &Sampler{db: db, key: key, gen: e.gen, u: u}
	s.ver.Store(e.ver)
	return s, nil
}

// Reconstruct returns the set stored under key (§6).
func (db *DB) Reconstruct(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	e, ok := db.getSet(key)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return db.tree.Reconstruct(e.f.QueryView(), rule, ops)
}

// IntersectionEstimate estimates |A ∩ B| for two stored sets. The two
// shard snapshots are loaded independently (no locks, so no ordering
// concerns); each filter is an immutable point-in-time version.
func (db *DB) IntersectionEstimate(keyA, keyB string) (float64, error) {
	a, okA := db.getSet(keyA)
	b, okB := db.getSet(keyB)
	if !okA || !okB {
		return 0, fmt.Errorf("%w %q or %q", ErrNoSet, keyA, keyB)
	}
	return a.f.IntersectionEstimate(b.f.QueryView()), nil
}

// File format:
//
//	magic    [6]byte "SETDB2"
//	opts     namespace, bits, k, kind, seed, depth, pruned, design
//	backend  uint8 length + backend kind string
//	plain    uint32 count × { keyLen uint16, key, len uint32, membership envelope }
//	dynamic  uint32 count × { keyLen uint16, key, len uint32, membership envelope }
//
// Each set is a tagged membership envelope ("BSM1" + backend kind), so a
// snapshot can mix backends and a reader reconstructs the right
// implementation per set; views are validated against the database
// profile on load. Snapshots written before backends existed ("SETDB1")
// still load: they carry no backend field (the dynamic backend defaults
// to counting), no dynamic section, and bare "BSF1" filter payloads,
// which decode as the Bloom backend.
const (
	dbMagic       = "SETDB2"
	dbMagicLegacy = "SETDB1"
)

// snapshotAll captures a cross-shard-consistent view of the database by
// briefly holding every shard's writer mutex while loading the snapshots.
// Readers are unaffected; writers wait only for the pointer loads.
func (db *DB) snapshotAll() [numShards]*shardState {
	var states [numShards]*shardState
	for i := range db.shards {
		db.shards[i].mu.Lock()
	}
	for i := range db.shards {
		states[i] = db.shards[i].load()
	}
	for i := range db.shards {
		db.shards[i].mu.Unlock()
	}
	return states
}

// WriteTo serializes the database. It implements io.WriterTo. The
// snapshot is consistent across shards; neither readers nor writers are
// blocked while the bytes are produced.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	return db.SnapshotView().WriteTo(w)
}

// writeSection serializes one keyed section (plain or dynamic): a count,
// then sorted key/envelope pairs.
func writeSection(bw *bufio.Writer, keys []string, lookup func(string) (membership.Membership, error)) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	for _, k := range keys {
		if len(k) > 1<<16-1 {
			return fmt.Errorf("setdb: key %.20q... too long", k)
		}
		m, err := lookup(k)
		if err != nil {
			return err
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return err
		}
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(k)))
		if _, err := bw.Write(kl[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		var fl [4]byte
		binary.LittleEndian.PutUint32(fl[:], uint32(len(data)))
		if _, err := bw.Write(fl[:]); err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrom deserializes a non-pruned database written by WriteTo. Pruned
// databases need the occupied ids to rebuild their tree; use
// ReadFromWithIDs (or Load with ids) for those.
func ReadFrom(r io.Reader) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		return nil, fmt.Errorf("setdb: pruned database requires the occupied ids; use ReadFromWithIDs")
	}
	return db, nil
}

// parse reads the on-disk format. For pruned databases the returned DB's
// tree is empty until the caller rebuilds it.
func parse(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	legacy := false
	switch string(magic) {
	case dbMagic:
	case dbMagicLegacy:
		legacy = true
	default:
		return nil, fmt.Errorf("setdb: bad magic %q", magic)
	}
	fixed := make([]byte, 8+8+4+8+4+8+1+1)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, err
	}
	opts := Options{
		Namespace:     binary.LittleEndian.Uint64(fixed[0:]),
		Bits:          binary.LittleEndian.Uint64(fixed[8:]),
		K:             int(binary.LittleEndian.Uint32(fixed[16:])),
		Seed:          binary.LittleEndian.Uint64(fixed[20:]),
		TreeDepth:     int(binary.LittleEndian.Uint32(fixed[28:])),
		DesignSetSize: binary.LittleEndian.Uint64(fixed[32:]),
		Pruned:        fixed[40] == 1,
	}
	kindLen := int(fixed[41])
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, err
	}
	opts.HashKind = hashfam.Kind(kind)
	if !legacy {
		// The configured dynamic backend rides in the v2 header; legacy
		// snapshots predate backends and default to counting.
		var bl [1]byte
		if _, err := io.ReadFull(br, bl[:]); err != nil {
			return nil, err
		}
		bk := make([]byte, bl[0])
		if _, err := io.ReadFull(br, bk); err != nil {
			return nil, err
		}
		backend, err := membership.ParseKind(string(bk))
		if err != nil {
			return nil, fmt.Errorf("setdb: header: %w", err)
		}
		opts.Backend = backend
	}

	db, err := Open(opts)
	if err != nil {
		return nil, err
	}
	// Accumulate per-shard builders and publish each snapshot once, so
	// the load is O(keys), not O(keys × shard size).
	var sets [numShards]*chunkBuilder[setEntry]
	err = readSection(br, func(key string, data []byte) error {
		m, err := membership.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("setdb: set %q: %w", key, err)
		}
		if err := m.QueryView().MatchesFamily(db.fam); err != nil {
			return fmt.Errorf("setdb: set %q: %w", key, err)
		}
		h := keyHash(key)
		si := int(h % numShards)
		if sets[si] == nil {
			sets[si] = newChunkBuilder(chunkedMap[setEntry]{})
		}
		sets[si].set(h, key, setEntry{f: m, gen: db.gen.Add(1)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	var dyn [numShards]*chunkBuilder[membership.DynamicMembership]
	if !legacy {
		err = readSection(br, func(key string, data []byte) error {
			m, err := membership.UnmarshalDynamic(data)
			if err != nil {
				return fmt.Errorf("setdb: dynamic set %q: %w", key, err)
			}
			if err := m.QueryView().MatchesFamily(db.fam); err != nil {
				return fmt.Errorf("setdb: dynamic set %q: %w", key, err)
			}
			h := keyHash(key)
			si := int(h % numShards)
			if dyn[si] == nil {
				dyn[si] = newChunkBuilder(chunkedMap[membership.DynamicMembership]{})
			}
			dyn[si].set(h, key, m)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for i := range db.shards {
		if sets[i] == nil && dyn[i] == nil {
			continue
		}
		st := &shardState{}
		if sets[i] != nil {
			st.sets = sets[i].freeze()
		}
		if dyn[i] != nil {
			st.dynamic = dyn[i].freeze()
		}
		db.shards[i].state.Store(st)
	}
	return db, nil
}

// readSection decodes one keyed section written by writeSection, calling
// fn for each key/envelope pair.
func readSection(br *bufio.Reader, fn func(key string, data []byte) error) error {
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	for i := uint32(0); i < count; i++ {
		var kl [2]byte
		if _, err := io.ReadFull(br, kl[:]); err != nil {
			return err
		}
		key := make([]byte, binary.LittleEndian.Uint16(kl[:]))
		if _, err := io.ReadFull(br, key); err != nil {
			return err
		}
		var fl [4]byte
		if _, err := io.ReadFull(br, fl[:]); err != nil {
			return err
		}
		data := make([]byte, binary.LittleEndian.Uint32(fl[:]))
		if _, err := io.ReadFull(br, data); err != nil {
			return err
		}
		if err := fn(string(key), data); err != nil {
			return err
		}
	}
	return nil
}

// ReadFromWithIDs deserializes a pruned database, rebuilding its tree
// from the supplied occupied ids (typically persisted alongside by the
// application, which owns the id universe).
func ReadFromWithIDs(r io.Reader, occupied []uint64) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		cfg := core.Config{
			Namespace: db.opts.Namespace, Bits: db.opts.Bits, K: db.opts.K,
			HashKind: db.opts.HashKind, Seed: db.opts.Seed, Depth: db.opts.TreeDepth,
		}
		tree, err := core.BuildPruned(cfg, occupied)
		if err != nil {
			return nil, err
		}
		db.tree = tree
	}
	return db, nil
}

// Save writes the database (and, for pruned databases, the occupied ids)
// to path atomically (write to temp file, then rename).
func (db *DB) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := db.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a database saved with Save. For pruned databases pass the
// occupied ids via opts.
func Load(path string, occupied []uint64) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if occupied != nil {
		return ReadFromWithIDs(f, occupied)
	}
	return ReadFrom(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
