// Package setdb implements the paper's §3.2 framework substrate: a
// database D̄ = {B(X₁), B(X₂), …} of sets stored only as Bloom filters,
// sharing one parameter profile and one BloomSampleTree. It is the layer a
// downstream application talks to — store adjacency lists, keyword
// posting lists or community member sets by key, then sample from or
// reconstruct any of them, without the database ever materializing the
// sets themselves.
//
// The database persists to a single file (Save/Load, or the streaming
// WriteTo/ReadFrom), so a collection built by an ingest job can be served
// by a separate process.
package setdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// Options configures a database.
type Options struct {
	// Namespace is the id domain [0, M) all stored sets draw from.
	Namespace uint64
	// Bits, K, HashKind, Seed define the shared Bloom-filter profile.
	Bits     uint64
	K        int
	HashKind hashfam.Kind
	Seed     uint64
	// TreeDepth is the BloomSampleTree depth; 0 derives it from the cost
	// model for DesignSetSize.
	TreeDepth int
	// DesignSetSize is the typical stored-set size used when TreeDepth is
	// derived (default 1000).
	DesignSetSize uint64
	// Pruned selects a Pruned-BloomSampleTree fed by the ids actually
	// inserted (recommended for sparse namespaces). A full tree is built
	// eagerly otherwise.
	Pruned bool
}

func (o Options) withDefaults() Options {
	if o.HashKind == "" {
		o.HashKind = hashfam.KindMurmur3
	}
	if o.DesignSetSize == 0 {
		o.DesignSetSize = 1000
	}
	return o
}

// PlanOptions derives Options from a desired sampling accuracy, mirroring
// the paper's §5.4 planning.
func PlanOptions(accuracy float64, designSetSize, namespace uint64, k int) (Options, error) {
	plan, err := core.PlanTree(accuracy, designSetSize, namespace, k, 0)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Namespace:     namespace,
		Bits:          plan.Bits,
		K:             plan.K,
		TreeDepth:     plan.Depth,
		DesignSetSize: designSetSize,
	}, nil
}

// ErrNoSet is wrapped by the error every query operation returns for an
// absent key; match it with errors.Is.
var ErrNoSet = errors.New("setdb: no set")

// numShards is the number of key shards the set maps are split across.
// Writers to different shards never contend; the count is an internal
// constant (not persisted) sized so that even write-heavy workloads on a
// many-core machine rarely collide.
const numShards = 16

// shard is one slice of the key space, with its own lock. Plain and
// dynamic sets for a key always live in the same shard, so the
// plain/dynamic clash check needs only one lock.
type shard struct {
	mu      sync.RWMutex
	sets    map[string]*bloom.Filter
	dynamic map[string]*bloom.CountingFilter
}

// shardIndex maps a key to its shard with FNV-1a.
func shardIndex(key string) int {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % numShards)
}

// DB is a keyed collection of Bloom-filter-encoded sets over one shared
// namespace and one shared BloomSampleTree.
//
// DB is safe for concurrent use, and the query path is genuinely
// parallel: every operation that evaluates a stored filter (Sample,
// SampleN, Reconstruct, Contains, IntersectionEstimate, …) is read-only
// on shared state and takes only a read lock, so any number of goroutines
// can sample — even from the same key — simultaneously. Keys are sharded
// across independently locked maps, so writers to different keys don't
// serialize against each other either; a writer blocks readers only of
// its own shard. On a pruned database, Add also grows the shared tree
// under a tree-level write lock, briefly excluding queries.
//
// SampleMany and ReconstructAll (parallel.go) exploit these guarantees
// with internal worker pools.
type DB struct {
	opts   Options
	fam    hashfam.Family
	tree   *core.Tree
	treeMu sync.RWMutex // serializes pruned-tree growth against queries
	shards [numShards]shard
}

// Open creates an empty database with the given options.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.TreeDepth == 0 {
		ratio := float64(opts.Bits) / core.DefaultCostRatioDivisor
		leaf := core.LeafRangeForRatio(ratio)
		depth := 0
		for r := opts.Namespace; r > leaf; r = (r + 1) / 2 {
			depth++
		}
		opts.TreeDepth = depth
	}
	cfg := core.Config{
		Namespace: opts.Namespace,
		Bits:      opts.Bits,
		K:         opts.K,
		HashKind:  opts.HashKind,
		Seed:      opts.Seed,
		Depth:     opts.TreeDepth,
	}
	var tree *core.Tree
	var err error
	if opts.Pruned {
		tree, err = core.BuildPruned(cfg, nil)
	} else {
		tree, err = core.BuildTree(cfg)
	}
	if err != nil {
		return nil, err
	}
	fam, err := hashfam.New(opts.HashKind, opts.Bits, opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, fam: fam, tree: tree}
	for i := range db.shards {
		db.shards[i].sets = map[string]*bloom.Filter{}
	}
	return db, nil
}

// shardOf returns the shard responsible for key.
func (db *DB) shardOf(key string) *shard { return &db.shards[shardIndex(key)] }

// rlockTree / runlockTree bracket the tree read gate on pruned databases
// (whose tree can grow concurrently); full trees are immutable after
// Open, so their queries take no tree lock at all. A paired function
// (rather than a returned unlock closure) keeps the hot read path
// allocation-free.
func (db *DB) rlockTree() {
	if db.opts.Pruned {
		db.treeMu.RLock()
	}
}

func (db *DB) runlockTree() {
	if db.opts.Pruned {
		db.treeMu.RUnlock()
	}
}

// Options returns the database's (defaulted) options.
func (db *DB) Options() Options { return db.opts }

// Tree exposes the shared BloomSampleTree (read-only use; on a pruned
// database it may grow concurrently with Add).
func (db *DB) Tree() *core.Tree { return db.tree }

// Len returns the number of stored sets.
func (db *DB) Len() int {
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		n += len(s.sets)
		s.mu.RUnlock()
	}
	return n
}

// Keys returns the stored set keys in sorted order.
func (db *DB) Keys() []string {
	var keys []string
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for k := range s.sets {
			keys = append(keys, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Add inserts ids into the set stored under key, creating it on first
// use. On a pruned database the shared tree grows to cover the new ids.
func (db *DB) Add(key string, ids ...uint64) error {
	for _, id := range ids {
		if id >= db.opts.Namespace {
			return fmt.Errorf("setdb: id %d outside namespace [0,%d)", id, db.opts.Namespace)
		}
	}
	s := db.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, clash := s.dynamic[key]; clash {
		return fmt.Errorf("setdb: %q already exists as a dynamic set", key)
	}
	f, ok := s.sets[key]
	if !ok {
		f = bloom.New(db.fam)
		s.sets[key] = f
	}
	var buf []uint64
	for _, id := range ids {
		buf = f.AddScratch(id, buf)
	}
	if db.opts.Pruned {
		db.treeMu.Lock()
		defer db.treeMu.Unlock()
		for _, id := range ids {
			if err := db.tree.Insert(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes a stored set. It returns false if the key is absent.
// (Individual ids cannot be removed from a Bloom filter.)
func (db *DB) Delete(key string) bool {
	s := db.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sets[key]
	delete(s.sets, key)
	return ok
}

// Filter returns the stored filter for key (nil if absent). The returned
// filter is shared — do not mutate it (use Add), and be aware that a
// concurrent Add to the same key mutates it in place; hold off on writes
// to the key while reading the filter directly.
func (db *DB) Filter(key string) *bloom.Filter {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sets[key]
}

// Contains reports whether id answers positively for the set under key.
func (db *DB) Contains(key string, id uint64) (bool, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.sets[key]
	if !ok {
		return false, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	return f.Contains(id), nil
}

// Sample draws one element from the set under key using BSTSample.
func (db *DB) Sample(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.sets[key]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	db.rlockTree()
	defer db.runlockTree()
	return db.tree.Sample(f, rng, ops)
}

// SampleN draws r elements in a single tree pass (§5.3).
func (db *DB) SampleN(key string, r int, withReplacement bool, rng *rand.Rand, ops *core.Ops) ([]uint64, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.sets[key]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	db.rlockTree()
	defer db.runlockTree()
	return db.tree.SampleN(f, r, withReplacement, rng, ops)
}

// Sampler is a rejection-corrected exactly-uniform sampler bound to its
// database (see core.UniformSampler). Each draw takes the key's shard
// read lock and — on pruned databases — the tree read gate, so it stays
// safe against concurrent Adds anywhere in the database. A Sampler
// instance self-calibrates and is not safe for concurrent use; create
// one per goroutine. Its calibration snapshots the stored set's
// estimated cardinality at creation time; rebuild it after large Adds to
// its key. Deleting (or deleting and re-adding) the key invalidates the
// sampler: subsequent draws return ErrSamplerInvalid.
type Sampler struct {
	db  *DB
	sh  *shard
	key string
	f   *bloom.Filter // the stored filter the sampler was calibrated on
	u   *core.UniformSampler
}

// ErrSamplerInvalid is returned by Sampler.Sample after the sampler's key
// is Deleted (or Deleted and re-Added): the sampler is calibrated on the
// old filter and would silently keep serving the deleted set version.
var ErrSamplerInvalid = fmt.Errorf("setdb: sampler invalidated: its set was deleted or replaced")

// Sample draws one uniform element; see core.UniformSampler.Sample. It
// returns ErrSamplerInvalid if the sampler's key no longer maps to the
// filter it was created on.
func (s *Sampler) Sample(rng *rand.Rand, ops *core.Ops) (uint64, error) {
	s.sh.mu.RLock()
	defer s.sh.mu.RUnlock()
	if s.sh.sets[s.key] != s.f {
		return 0, ErrSamplerInvalid
	}
	s.db.rlockTree()
	defer s.db.runlockTree()
	return s.u.Sample(rng, ops)
}

// SampleN draws r uniform samples (with replacement) by repeated Sample.
func (s *Sampler) SampleN(r int, rng *rand.Rand, ops *core.Ops) ([]uint64, error) {
	out := make([]uint64, 0, r)
	for i := 0; i < r; i++ {
		x, err := s.Sample(rng, ops)
		if err == core.ErrNoSample {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, x)
	}
	return out, nil
}

// Stats returns cumulative rejection statistics.
func (s *Sampler) Stats() core.UniformStats { return s.u.Stats() }

// UniformSampler returns a rejection-corrected exactly-uniform sampler
// for the set under key. The returned Sampler locks per draw, so it is
// safe to keep using while other goroutines Add to the database.
func (db *DB) UniformSampler(key string) (*Sampler, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.sets[key]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	db.rlockTree()
	defer db.runlockTree()
	u, err := db.tree.NewUniformSampler(f)
	if err != nil {
		return nil, err
	}
	return &Sampler{db: db, sh: s, key: key, f: f, u: u}, nil
}

// Reconstruct returns the set stored under key (§6).
func (db *DB) Reconstruct(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	s := db.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.sets[key]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrNoSet, key)
	}
	db.rlockTree()
	defer db.runlockTree()
	return db.tree.Reconstruct(f, rule, ops)
}

// IntersectionEstimate estimates |A ∩ B| for two stored sets.
func (db *DB) IntersectionEstimate(keyA, keyB string) (float64, error) {
	ia, ib := shardIndex(keyA), shardIndex(keyB)
	sa, sb := &db.shards[ia], &db.shards[ib]
	// Lock in shard-index order so concurrent estimates can't deadlock.
	if ia > ib {
		ia, ib = ib, ia
	}
	db.shards[ia].mu.RLock()
	defer db.shards[ia].mu.RUnlock()
	if ib != ia {
		db.shards[ib].mu.RLock()
		defer db.shards[ib].mu.RUnlock()
	}
	a, okA := sa.sets[keyA]
	b, okB := sb.sets[keyB]
	if !okA || !okB {
		return 0, fmt.Errorf("%w %q or %q", ErrNoSet, keyA, keyB)
	}
	return bloom.EstimateIntersectionOf(a, b), nil
}

// File format:
//
//	magic    [6]byte "SETDB1"
//	opts     namespace, bits, k, kind, seed, depth, pruned, design
//	count    uint32
//	entries  count × { keyLen uint16, key, filterLen uint32, filter }
//
// Filters embed their own parameters (bloom.MarshalBinary); they are
// validated against the database profile on load.
const dbMagic = "SETDB1"

// WriteTo serializes the database. It implements io.WriterTo. All shards
// are read-locked for the duration, so the snapshot is consistent;
// concurrent readers proceed, writers wait.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	for i := range db.shards {
		db.shards[i].mu.RLock()
		defer db.shards[i].mu.RUnlock()
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return cw.n, err
	}
	kind := string(db.opts.HashKind)
	hdr := make([]byte, 0, 64)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(db.opts.K))
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Seed)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(db.opts.TreeDepth))
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.DesignSetSize)
	if db.opts.Pruned {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}

	var keys []string
	for i := range db.shards {
		for k := range db.shards[i].sets {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return cw.n, err
	}
	for _, k := range keys {
		if len(k) > 1<<16-1 {
			return cw.n, fmt.Errorf("setdb: key %.20q... too long", k)
		}
		data, err := db.shardOf(k).sets[k].MarshalBinary()
		if err != nil {
			return cw.n, err
		}
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(k)))
		if _, err := bw.Write(kl[:]); err != nil {
			return cw.n, err
		}
		if _, err := bw.WriteString(k); err != nil {
			return cw.n, err
		}
		var fl [4]byte
		binary.LittleEndian.PutUint32(fl[:], uint32(len(data)))
		if _, err := bw.Write(fl[:]); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(data); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a non-pruned database written by WriteTo. Pruned
// databases need the occupied ids to rebuild their tree; use
// ReadFromWithIDs (or Load with ids) for those.
func ReadFrom(r io.Reader) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		return nil, fmt.Errorf("setdb: pruned database requires the occupied ids; use ReadFromWithIDs")
	}
	return db, nil
}

// parse reads the on-disk format. For pruned databases the returned DB's
// tree is empty until the caller rebuilds it.
func parse(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("setdb: bad magic %q", magic)
	}
	fixed := make([]byte, 8+8+4+8+4+8+1+1)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, err
	}
	opts := Options{
		Namespace:     binary.LittleEndian.Uint64(fixed[0:]),
		Bits:          binary.LittleEndian.Uint64(fixed[8:]),
		K:             int(binary.LittleEndian.Uint32(fixed[16:])),
		Seed:          binary.LittleEndian.Uint64(fixed[20:]),
		TreeDepth:     int(binary.LittleEndian.Uint32(fixed[28:])),
		DesignSetSize: binary.LittleEndian.Uint64(fixed[32:]),
		Pruned:        fixed[40] == 1,
	}
	kindLen := int(fixed[41])
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, err
	}
	opts.HashKind = hashfam.Kind(kind)

	db, err := Open(opts)
	if err != nil {
		return nil, err
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	for i := uint32(0); i < count; i++ {
		var kl [2]byte
		if _, err := io.ReadFull(br, kl[:]); err != nil {
			return nil, err
		}
		key := make([]byte, binary.LittleEndian.Uint16(kl[:]))
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, err
		}
		var fl [4]byte
		if _, err := io.ReadFull(br, fl[:]); err != nil {
			return nil, err
		}
		data := make([]byte, binary.LittleEndian.Uint32(fl[:]))
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, err
		}
		f, err := bloom.UnmarshalFilter(data)
		if err != nil {
			return nil, fmt.Errorf("setdb: set %q: %w", key, err)
		}
		if err := f.MatchesFamily(db.fam); err != nil {
			return nil, fmt.Errorf("setdb: set %q: %w", key, err)
		}
		k := string(key)
		db.shardOf(k).sets[k] = f
	}
	return db, nil
}

// ReadFromWithIDs deserializes a pruned database, rebuilding its tree
// from the supplied occupied ids (typically persisted alongside by the
// application, which owns the id universe).
func ReadFromWithIDs(r io.Reader, occupied []uint64) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		cfg := core.Config{
			Namespace: db.opts.Namespace, Bits: db.opts.Bits, K: db.opts.K,
			HashKind: db.opts.HashKind, Seed: db.opts.Seed, Depth: db.opts.TreeDepth,
		}
		tree, err := core.BuildPruned(cfg, occupied)
		if err != nil {
			return nil, err
		}
		db.tree = tree
	}
	return db, nil
}

// Save writes the database (and, for pruned databases, the occupied ids)
// to path atomically (write to temp file, then rename).
func (db *DB) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := db.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a database saved with Save. For pruned databases pass the
// occupied ids via opts.
func Load(path string, occupied []uint64) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if occupied != nil {
		return ReadFromWithIDs(f, occupied)
	}
	return ReadFrom(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
