// Package setdb implements the paper's §3.2 framework substrate: a
// database D̄ = {B(X₁), B(X₂), …} of sets stored only as Bloom filters,
// sharing one parameter profile and one BloomSampleTree. It is the layer a
// downstream application talks to — store adjacency lists, keyword
// posting lists or community member sets by key, then sample from or
// reconstruct any of them, without the database ever materializing the
// sets themselves.
//
// The database persists to a single file (Save/Load, or the streaming
// WriteTo/ReadFrom), so a collection built by an ingest job can be served
// by a separate process.
package setdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashfam"
)

// Options configures a database.
type Options struct {
	// Namespace is the id domain [0, M) all stored sets draw from.
	Namespace uint64
	// Bits, K, HashKind, Seed define the shared Bloom-filter profile.
	Bits     uint64
	K        int
	HashKind hashfam.Kind
	Seed     uint64
	// TreeDepth is the BloomSampleTree depth; 0 derives it from the cost
	// model for DesignSetSize.
	TreeDepth int
	// DesignSetSize is the typical stored-set size used when TreeDepth is
	// derived (default 1000).
	DesignSetSize uint64
	// Pruned selects a Pruned-BloomSampleTree fed by the ids actually
	// inserted (recommended for sparse namespaces). A full tree is built
	// eagerly otherwise.
	Pruned bool
}

func (o Options) withDefaults() Options {
	if o.HashKind == "" {
		o.HashKind = hashfam.KindMurmur3
	}
	if o.DesignSetSize == 0 {
		o.DesignSetSize = 1000
	}
	return o
}

// PlanOptions derives Options from a desired sampling accuracy, mirroring
// the paper's §5.4 planning.
func PlanOptions(accuracy float64, designSetSize, namespace uint64, k int) (Options, error) {
	plan, err := core.PlanTree(accuracy, designSetSize, namespace, k, 0)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Namespace:     namespace,
		Bits:          plan.Bits,
		K:             plan.K,
		TreeDepth:     plan.Depth,
		DesignSetSize: designSetSize,
	}, nil
}

// DB is a keyed collection of Bloom-filter-encoded sets over one shared
// namespace and one shared BloomSampleTree.
//
// DB is safe for concurrent use. Operations that evaluate a stored
// filter (Sample, Reconstruct, Contains, …) take the exclusive lock even
// though they are logically reads, because Filter reuses an internal
// hash-position buffer per instance; metadata reads (Len, Keys, Options)
// share the lock. Shard across DBs for read parallelism.
type DB struct {
	mu      sync.RWMutex
	opts    Options
	fam     hashfam.Family
	tree    *core.Tree
	sets    map[string]*bloom.Filter
	dynamic map[string]*bloom.CountingFilter
}

// Open creates an empty database with the given options.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.TreeDepth == 0 {
		ratio := float64(opts.Bits) / core.DefaultCostRatioDivisor
		leaf := core.LeafRangeForRatio(ratio)
		depth := 0
		for r := opts.Namespace; r > leaf; r = (r + 1) / 2 {
			depth++
		}
		opts.TreeDepth = depth
	}
	cfg := core.Config{
		Namespace: opts.Namespace,
		Bits:      opts.Bits,
		K:         opts.K,
		HashKind:  opts.HashKind,
		Seed:      opts.Seed,
		Depth:     opts.TreeDepth,
	}
	var tree *core.Tree
	var err error
	if opts.Pruned {
		tree, err = core.BuildPruned(cfg, nil)
	} else {
		tree, err = core.BuildTree(cfg)
	}
	if err != nil {
		return nil, err
	}
	fam, err := hashfam.New(opts.HashKind, opts.Bits, opts.K, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &DB{opts: opts, fam: fam, tree: tree, sets: map[string]*bloom.Filter{}}, nil
}

// Options returns the database's (defaulted) options.
func (db *DB) Options() Options { return db.opts }

// Tree exposes the shared BloomSampleTree (read-only use).
func (db *DB) Tree() *core.Tree { return db.tree }

// Len returns the number of stored sets.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.sets)
}

// Keys returns the stored set keys in sorted order.
func (db *DB) Keys() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.sets))
	for k := range db.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Add inserts ids into the set stored under key, creating it on first
// use. On a pruned database the shared tree grows to cover the new ids.
func (db *DB) Add(key string, ids ...uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, id := range ids {
		if id >= db.opts.Namespace {
			return fmt.Errorf("setdb: id %d outside namespace [0,%d)", id, db.opts.Namespace)
		}
	}
	if _, clash := db.dynamic[key]; clash {
		return fmt.Errorf("setdb: %q already exists as a dynamic set", key)
	}
	f, ok := db.sets[key]
	if !ok {
		f = bloom.New(db.fam)
		db.sets[key] = f
	}
	for _, id := range ids {
		f.Add(id)
		if db.opts.Pruned {
			if err := db.tree.Insert(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes a stored set. It returns false if the key is absent.
// (Individual ids cannot be removed from a Bloom filter.)
func (db *DB) Delete(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.sets[key]
	delete(db.sets, key)
	return ok
}

// Filter returns the stored filter for key (nil if absent). The returned
// filter is shared — do not mutate it; use Add.
func (db *DB) Filter(key string) *bloom.Filter {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sets[key]
}

// Contains reports whether id answers positively for the set under key.
func (db *DB) Contains(key string, id uint64) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, ok := db.sets[key]
	if !ok {
		return false, fmt.Errorf("setdb: no set %q", key)
	}
	return f.Contains(id), nil
}

// Sample draws one element from the set under key using BSTSample.
func (db *DB) Sample(key string, rng *rand.Rand, ops *core.Ops) (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, ok := db.sets[key]
	if !ok {
		return 0, fmt.Errorf("setdb: no set %q", key)
	}
	return db.tree.Sample(f, rng, ops)
}

// SampleN draws r elements in a single tree pass (§5.3).
func (db *DB) SampleN(key string, r int, withReplacement bool, rng *rand.Rand, ops *core.Ops) ([]uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, ok := db.sets[key]
	if !ok {
		return nil, fmt.Errorf("setdb: no set %q", key)
	}
	return db.tree.SampleN(f, r, withReplacement, rng, ops)
}

// UniformSampler returns a rejection-corrected exactly-uniform sampler
// for the set under key.
func (db *DB) UniformSampler(key string) (*core.UniformSampler, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, ok := db.sets[key]
	if !ok {
		return nil, fmt.Errorf("setdb: no set %q", key)
	}
	return db.tree.NewUniformSampler(f)
}

// Reconstruct returns the set stored under key (§6).
func (db *DB) Reconstruct(key string, rule core.PruneRule, ops *core.Ops) ([]uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f, ok := db.sets[key]
	if !ok {
		return nil, fmt.Errorf("setdb: no set %q", key)
	}
	return db.tree.Reconstruct(f, rule, ops)
}

// IntersectionEstimate estimates |A ∩ B| for two stored sets.
func (db *DB) IntersectionEstimate(keyA, keyB string) (float64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	a, okA := db.sets[keyA]
	b, okB := db.sets[keyB]
	if !okA || !okB {
		return 0, fmt.Errorf("setdb: missing set %q or %q", keyA, keyB)
	}
	return bloom.EstimateIntersectionOf(a, b), nil
}

// File format:
//
//	magic    [6]byte "SETDB1"
//	opts     namespace, bits, k, kind, seed, depth, pruned, design
//	count    uint32
//	entries  count × { keyLen uint16, key, filterLen uint32, filter }
//
// Filters embed their own parameters (bloom.MarshalBinary); they are
// validated against the database profile on load.
const dbMagic = "SETDB1"

// WriteTo serializes the database. It implements io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return cw.n, err
	}
	kind := string(db.opts.HashKind)
	hdr := make([]byte, 0, 64)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Namespace)
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Bits)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(db.opts.K))
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.Seed)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(db.opts.TreeDepth))
	hdr = binary.LittleEndian.AppendUint64(hdr, db.opts.DesignSetSize)
	if db.opts.Pruned {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}

	keys := make([]string, 0, len(db.sets))
	for k := range db.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(keys)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return cw.n, err
	}
	for _, k := range keys {
		if len(k) > 1<<16-1 {
			return cw.n, fmt.Errorf("setdb: key %.20q... too long", k)
		}
		data, err := db.sets[k].MarshalBinary()
		if err != nil {
			return cw.n, err
		}
		var kl [2]byte
		binary.LittleEndian.PutUint16(kl[:], uint16(len(k)))
		if _, err := bw.Write(kl[:]); err != nil {
			return cw.n, err
		}
		if _, err := bw.WriteString(k); err != nil {
			return cw.n, err
		}
		var fl [4]byte
		binary.LittleEndian.PutUint32(fl[:], uint32(len(data)))
		if _, err := bw.Write(fl[:]); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(data); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a non-pruned database written by WriteTo. Pruned
// databases need the occupied ids to rebuild their tree; use
// ReadFromWithIDs (or Load with ids) for those.
func ReadFrom(r io.Reader) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		return nil, fmt.Errorf("setdb: pruned database requires the occupied ids; use ReadFromWithIDs")
	}
	return db, nil
}

// parse reads the on-disk format. For pruned databases the returned DB's
// tree is empty until the caller rebuilds it.
func parse(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("setdb: bad magic %q", magic)
	}
	fixed := make([]byte, 8+8+4+8+4+8+1+1)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, err
	}
	opts := Options{
		Namespace:     binary.LittleEndian.Uint64(fixed[0:]),
		Bits:          binary.LittleEndian.Uint64(fixed[8:]),
		K:             int(binary.LittleEndian.Uint32(fixed[16:])),
		Seed:          binary.LittleEndian.Uint64(fixed[20:]),
		TreeDepth:     int(binary.LittleEndian.Uint32(fixed[28:])),
		DesignSetSize: binary.LittleEndian.Uint64(fixed[32:]),
		Pruned:        fixed[40] == 1,
	}
	kindLen := int(fixed[41])
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, err
	}
	opts.HashKind = hashfam.Kind(kind)

	db, err := Open(opts)
	if err != nil {
		return nil, err
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	probe := bloom.New(db.fam)
	for i := uint32(0); i < count; i++ {
		var kl [2]byte
		if _, err := io.ReadFull(br, kl[:]); err != nil {
			return nil, err
		}
		key := make([]byte, binary.LittleEndian.Uint16(kl[:]))
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, err
		}
		var fl [4]byte
		if _, err := io.ReadFull(br, fl[:]); err != nil {
			return nil, err
		}
		data := make([]byte, binary.LittleEndian.Uint32(fl[:]))
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, err
		}
		f, err := bloom.UnmarshalFilter(data)
		if err != nil {
			return nil, fmt.Errorf("setdb: set %q: %w", key, err)
		}
		if err := probe.Compatible(f); err != nil {
			return nil, fmt.Errorf("setdb: set %q: %w", key, err)
		}
		db.sets[string(key)] = f
	}
	return db, nil
}

// ReadFromWithIDs deserializes a pruned database, rebuilding its tree
// from the supplied occupied ids (typically persisted alongside by the
// application, which owns the id universe).
func ReadFromWithIDs(r io.Reader, occupied []uint64) (*DB, error) {
	db, err := parse(r)
	if err != nil {
		return nil, err
	}
	if db.opts.Pruned {
		cfg := core.Config{
			Namespace: db.opts.Namespace, Bits: db.opts.Bits, K: db.opts.K,
			HashKind: db.opts.HashKind, Seed: db.opts.Seed, Depth: db.opts.TreeDepth,
		}
		tree, err := core.BuildPruned(cfg, occupied)
		if err != nil {
			return nil, err
		}
		db.tree = tree
	}
	return db, nil
}

// Save writes the database (and, for pruned databases, the occupied ids)
// to path atomically (write to temp file, then rename).
func (db *DB) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := db.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a database saved with Save. For pruned databases pass the
// occupied ids via opts.
func Load(path string, occupied []uint64) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if occupied != nil {
		return ReadFromWithIDs(f, occupied)
	}
	return ReadFrom(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
