package setdb

// Chunked persistent shard states. The original copy-on-write design
// cloned a shard's whole key map on every write — O(keys/shard)
// amplification that becomes the dominant write cost once a shard holds
// ~10⁵ keys. Here each shard's key space is instead split into numChunks
// fixed chunks by hash; a shard snapshot holds an immutable table of
// per-chunk maps, and a write clones the table (numChunks pointers) plus
// only the one chunk its key lives in, so the copied volume is
// O(numChunks + keys/chunk) instead of O(keys/shard). Everything stays
// within the existing immutable-snapshot contract: chunk maps and the
// table are frozen once a shardState is published through the shard's
// atomic pointer, readers never lock, and an untouched chunk is carried
// into the successor snapshot by reference.

const (
	// numChunks is the number of fixed chunks per shard (and per entry
	// kind). With the 64-way shard split in front of it, a database holds
	// 16384 chunks per kind; at 10⁵ keys in one shard a chunk carries
	// ~400 keys, so a write copies ~2 KB of table plus ~20 KB of chunk
	// instead of several MB of flat map.
	numChunks = 256
	// chunkTableBytes estimates the bytes copied when a chunk table is
	// cloned (one map header per chunk).
	chunkTableBytes = numChunks * 8
	// perEntryCopyBytes estimates the bytes copied per entry carried into
	// a cloned chunk beyond the key bytes themselves: string header, the
	// entry value and amortized map-bucket overhead.
	perEntryCopyBytes = 48
)

// EntryCopyBytes is the database's estimate of the bytes copied when one
// stored entry with a key of keyLen bytes is carried into a cloned map.
// It is exported so external write-amplification accounting (the
// bstbench writeamp experiment's flat-map baseline) uses the same
// formula the database's own Stats counters use.
func EntryCopyBytes(keyLen int) uint64 { return perEntryCopyBytes + uint64(keyLen) }

// keyHash is the FNV-1a hash both the shard split and the chunk split
// derive from: the shard index uses the hash modulo numShards, the chunk
// index an independent higher bit range.
func keyHash(key string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// shardIndex maps a key to its shard.
func shardIndex(key string) int { return int(keyHash(key) % numShards) }

// ShardOf returns the shard index key maps to. Exposed for experiments
// and workload planning that need shard-local key sets (the bstbench
// writeamp sweep stresses one shard at a chosen occupancy); the mapping
// is stable for a given key, but the shard count is an internal constant.
func ShardOf(key string) int { return shardIndex(key) }

// chunkIndex maps a key hash to its chunk within a shard. It draws on a
// bit range disjoint from the shard split so the two partitions stay
// independent.
func chunkIndex(h uint64) int { return int((h >> 32) % numChunks) }

// chunkedMap is a persistent string-keyed map split into numChunks
// chunks: an immutable table of small immutable maps. The zero value is
// the empty map. Readers use get/len/rangeAll with no synchronization;
// successor versions are produced by with/without (single write) or a
// chunkBuilder (group commit), which clone the table and only the
// touched chunks.
type chunkedMap[V any] struct {
	chunks *[numChunks]map[string]V // nil for the empty map
	count  int
}

// len returns the number of stored keys.
func (c chunkedMap[V]) len() int { return c.count }

// get looks key up using its precomputed hash.
func (c chunkedMap[V]) get(h uint64, key string) (V, bool) {
	if c.chunks == nil {
		var zero V
		return zero, false
	}
	v, ok := c.chunks[chunkIndex(h)][key]
	return v, ok
}

// rangeAll calls fn for every stored key/value, in unspecified order.
func (c chunkedMap[V]) rangeAll(fn func(key string, v V)) {
	if c.chunks == nil {
		return
	}
	for i := range c.chunks {
		for k, v := range c.chunks[i] {
			fn(k, v)
		}
	}
}

// chunkLen returns the number of keys in chunk i.
func (c chunkedMap[V]) chunkLen(i int) int {
	if c.chunks == nil {
		return 0
	}
	return len(c.chunks[i])
}

// with returns a successor version with key bound to v, plus the
// estimated bytes copied building it.
func (c chunkedMap[V]) with(h uint64, key string, v V) (chunkedMap[V], uint64) {
	b := newChunkBuilder(c)
	b.set(h, key, v)
	return b.freeze(), b.bytes
}

// without returns a successor version with key removed, plus the
// estimated bytes copied. When the key is absent it returns the receiver
// unchanged with zero copies — a delete-miss must not pay for (or
// publish) a clone of anything.
func (c chunkedMap[V]) without(h uint64, key string) (chunkedMap[V], uint64, bool) {
	if c.chunks == nil {
		return c, 0, false
	}
	ci := chunkIndex(h)
	old := c.chunks[ci]
	if _, ok := old[key]; !ok {
		return c, 0, false
	}
	next := *c.chunks
	bytes := uint64(chunkTableBytes)
	var m map[string]V
	if len(old) > 1 {
		m = make(map[string]V, len(old)-1)
		for k, v := range old {
			if k != key {
				m[k] = v
				bytes += EntryCopyBytes(len(k))
			}
		}
	}
	next[ci] = m
	return chunkedMap[V]{chunks: &next, count: c.count - 1}, bytes, true
}

// chunkBuilder accumulates any number of writes into one successor
// chunkedMap version: the chunk table is cloned once up front, each
// touched chunk is cloned at most once (on first touch) and then mutated
// privately, and freeze publishes the result. It is the group-commit
// engine behind ApplyBatch — N writes landing in the same chunk pay for
// one clone, not N.
type chunkBuilder[V any] struct {
	chunks *[numChunks]map[string]V
	dirty  [numChunks]bool // chunks already cloned (safe to mutate)
	count  int
	bytes  uint64 // estimated bytes copied so far
}

// newChunkBuilder starts a builder from an existing version, paying the
// table clone immediately.
func newChunkBuilder[V any](from chunkedMap[V]) *chunkBuilder[V] {
	b := &chunkBuilder[V]{count: from.count, bytes: chunkTableBytes}
	var next [numChunks]map[string]V
	if from.chunks != nil {
		next = *from.chunks
	}
	b.chunks = &next
	return b
}

// get looks key up in the working state (later writes observe earlier
// ones, exactly as sequential single writes would).
func (b *chunkBuilder[V]) get(h uint64, key string) (V, bool) {
	v, ok := b.chunks[chunkIndex(h)][key]
	return v, ok
}

// set binds key to v, cloning the target chunk on first touch.
func (b *chunkBuilder[V]) set(h uint64, key string, v V) {
	ci := chunkIndex(h)
	if !b.dirty[ci] {
		old := b.chunks[ci]
		m := make(map[string]V, len(old)+1)
		for k, val := range old {
			m[k] = val
			b.bytes += EntryCopyBytes(len(k))
		}
		b.chunks[ci] = m
		b.dirty[ci] = true
	}
	if _, had := b.chunks[ci][key]; !had {
		b.count++
	}
	b.chunks[ci][key] = v
}

// freeze returns the built version. The builder must not be used after.
func (b *chunkBuilder[V]) freeze() chunkedMap[V] {
	return chunkedMap[V]{chunks: b.chunks, count: b.count}
}
